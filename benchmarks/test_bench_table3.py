"""Benchmark: regenerate Table 3 (execution-time comparison).

Prints execution time per application for the six policies and asserts
the paper's ordering: 3.4 GHz fastest, powersave slowest, and the
proposed approach faster than the Ge & Qiu baseline.
"""

from benchmarks.conftest import run_once, save_artifact
from repro.experiments.table3_exec_time import run_table3


def test_table3_execution_time(benchmark, bench_scale):
    result = run_once(benchmark, run_table3, iteration_scale=bench_scale)
    print()
    print(result.format_table())
    save_artifact("table3", result.format_table())

    for row in result.rows:
        times = {p: row.execution_time(p) for p in row.summaries}
        # The highest fixed frequency is (near-)fastest; powersave slowest.
        assert times["userspace@3.4"] <= min(times.values()) * 1.05
        assert times["powersave"] == max(times.values())

    # Averaged over the applications, proposed runs faster than Ge & Qiu
    # (the paper reports ~14%).
    ratios = [
        row.execution_time("proposed") / row.execution_time("ge")
        for row in result.rows
    ]
    mean_ratio = sum(ratios) / len(ratios)
    print(f"\nproposed/ge execution-time ratio: {mean_ratio:.3f} (paper: ~0.86)")
    assert mean_ratio < 1.05
