"""Benchmark: regenerate Figure 3 (inter-application results).

Prints the normalised thermal-cycling MTTF of the six application-
switching scenarios under Linux, the modified Ge & Qiu baseline and the
proposed approach, and asserts the paper's ordering.
"""

from benchmarks.conftest import run_once, save_artifact
from repro.experiments.fig3_inter import run_fig3


def test_fig3_inter_application(benchmark, bench_scale):
    result = run_once(benchmark, run_fig3, iteration_scale=bench_scale)
    print()
    print(result.format_table())
    save_artifact("fig3", result.format_table())

    ge = result.mean_improvement("ge_modified")
    proposed = result.mean_improvement("proposed")
    print(
        f"\nmean normalised cycling MTTF — ge_modified: {ge:.2f}x, "
        f"proposed: {proposed:.2f}x (paper: ~1.8x and ~5x vs Linux)"
    )

    # Ordering: Linux < modified Ge & Qiu < proposed on average.
    assert ge > 1.2
    assert proposed > ge
    # The proposed approach wins the majority of individual scenarios.
    wins = sum(
        1 for row in result.rows if row.normalised("proposed") >= row.normalised("ge_modified")
    )
    assert wins >= 4
