"""Benchmark: regenerate Figure 6 (temperature sampling interval).

Prints, per sampling interval 1..10 s: the cycling MTTF as computed
from the sampled trace, the sample autocorrelation, and the cache-miss /
page-fault overhead counters, and asserts all four of the paper's
trends.
"""

from benchmarks.conftest import run_once, save_artifact
from repro.experiments.fig6_sampling import run_fig6


def test_fig6_sampling_interval(benchmark, bench_scale):
    result = run_once(benchmark, run_fig6, iteration_scale=bench_scale)
    print()
    print(result.format_table())
    save_artifact("fig6", result.format_table())

    first, last = result.rows[0], result.rows[-1]
    # Autocorrelation is high at 1 s and decays with the interval.
    assert first.autocorrelation > 0.5
    assert last.autocorrelation < first.autocorrelation
    # Coarse sampling loses cycles: the computed MTTF inflates.
    assert last.computed_mttf_years >= first.computed_mttf_years
    # Management overhead falls roughly with 1/interval.
    assert last.cache_misses < first.cache_misses * 0.6
    assert last.page_faults < first.page_faults * 0.6
