"""Benchmark: regenerate Table 2 (intra-application results).

Prints the paper's Table 2 columns — average temperature, peak
temperature, thermal-cycling MTTF and aging MTTF for Linux, Ge & Qiu and
the proposed approach on tachyon / mpeg_dec / mpeg_enc x 3 datasets —
and asserts its qualitative shape.
"""

from benchmarks.conftest import run_once, save_artifact
from repro.experiments.table2_intra import run_table2


def test_table2_intra_application(benchmark, bench_scale):
    result = run_once(benchmark, run_table2, iteration_scale=bench_scale)
    print()
    print(result.format_table())
    save_artifact("table2", result.format_table())

    tc_gain_vs_linux = result.improvement("cycling_mttf_years", over="linux")
    tc_gain_vs_ge = result.improvement("cycling_mttf_years", over="ge")
    age_gain_vs_ge = result.improvement("aging_mttf_years", over="ge")
    print(
        f"\nproposed vs linux cycling MTTF: {tc_gain_vs_linux:.2f}x "
        f"(paper: ~2.3x)\n"
        f"proposed vs ge cycling MTTF:    {tc_gain_vs_ge:.2f}x (paper: ~2x)\n"
        f"proposed vs ge aging MTTF:      {age_gain_vs_ge:.2f}x (paper: ~1.13x)"
    )

    # Shape assertions: who wins, roughly by how much.
    assert tc_gain_vs_linux > 1.5
    assert tc_gain_vs_ge > 1.2
    assert age_gain_vs_ge > 1.0
    # Proposed has the lowest average temperature on most rows.
    cooler_rows = sum(
        1
        for row in result.rows
        if row.summaries["proposed"].average_temp_c
        <= min(
            row.summaries["linux"].average_temp_c,
            row.summaries["ge"].average_temp_c,
        )
        + 1.0
    )
    assert cooler_rows >= len(result.rows) * 2 // 3
