"""Benchmark: regenerate Figure 8 (convergence vs table size).

Prints, for mpeg_dec with states x actions in {4, 8, 12}^2: the decision
epochs to convergence and the resulting (cycling, aging) MTTF pair, and
asserts that training time grows with the Q-table size.
"""

from benchmarks.conftest import run_once, save_artifact
from repro.experiments.fig8_convergence import run_fig8


def test_fig8_convergence(benchmark, bench_scale):
    result = run_once(benchmark, run_fig8, iteration_scale=bench_scale)
    print()
    print(result.format_table())
    save_artifact("fig8", result.format_table())

    def iterations(states, actions):
        return next(
            r.iterations_to_converge
            for r in result.rows
            if r.num_states == states and r.num_actions == actions
        )

    # The corner-to-corner trend of the convergence surface.
    assert iterations(12, 12) > iterations(4, 4)
    # Growth along each axis from the smallest design point.
    assert iterations(12, 4) >= iterations(4, 4)
    assert iterations(4, 12) >= iterations(4, 4)
    # Every design point still produces a safe, finite MTTF pair.
    for row in result.rows:
        assert 0.0 < row.cycling_mttf_years <= 10.0
        assert 0.0 < row.aging_mttf_years <= 10.0
