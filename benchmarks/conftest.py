"""Shared infrastructure for the reproduction benchmarks.

Each benchmark regenerates one table or figure of the paper and prints
the rows/series it reports, so running

    pytest benchmarks/ --benchmark-only -s

produces a console version of the paper's whole evaluation section.
Every experiment is a deterministic simulation, so a single benchmark
round is meaningful; the benchmark timer then records how long the
artefact takes to regenerate.

Set ``REPRO_BENCH_SCALE`` (default 1.0) to scale the application lengths
down for quicker sweeps.  Scaled-down artefacts are routed into the
experiment-engine cache tree (``.repro-cache/results-scale-<s>/``, see
:func:`repro.experiments.engine.artifact_dir`) instead of ``results/``,
so a quick sweep can never clobber the committed full-scale artefacts.
"""

import os
from pathlib import Path

import pytest

from repro.experiments.engine import artifact_dir

#: Scale on application iteration counts used by all benchmarks.
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


#: Where benchmarks persist their formatted artefacts (the console
#: tables of every reproduced figure/table), so results survive pytest's
#: output capturing.  Only full-scale runs may write here.
RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


def save_artifact(name: str, text: str, scale: float = None) -> None:
    """Write one artefact's formatted output to <name>.txt.

    Full-scale runs (``scale == 1.0``) write into the repository's
    committed ``results/`` directory; any other scale is routed into the
    engine cache tree so reduced sweeps leave the committed artefacts
    untouched.  ``scale`` defaults to the ``REPRO_BENCH_SCALE``
    environment variable read at call time.
    """
    if scale is None:
        scale = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
    target = artifact_dir(scale, RESULTS_DIR)
    target.mkdir(parents=True, exist_ok=True)
    (target / f"{name}.txt").write_text(text + "\n")


@pytest.fixture
def bench_scale():
    """The configured iteration scale."""
    return BENCH_SCALE
