"""Benchmark: regenerate Figures 4 & 5 (learning phases).

Prints the average/peak temperature of the face_rec trace during the
learning transient (Figure 4 — comparable to Linux ondemand) and during
exploitation (Figure 5 — visibly cooler).
"""

from benchmarks.conftest import run_once, save_artifact
from repro.analysis.traces import render_profile
from repro.experiments.fig45_phases import run_fig45


def test_fig45_learning_phases(benchmark, bench_scale):
    result = run_once(benchmark, run_fig45, iteration_scale=bench_scale)
    print()
    print(result.format_table())
    save_artifact("fig45", result.format_table())
    print()
    print(
        render_profile(
            result.exploration_profile,
            t_min=30.0,
            t_max=80.0,
            height=8,
            title="Figure 4 — exploration phase (proposed, face_rec)",
        )
    )
    print()
    print(
        render_profile(
            result.exploitation_profile,
            t_min=30.0,
            t_max=80.0,
            height=8,
            title="Figure 5 — exploitation phase (proposed, face_rec)",
        )
    )

    # Figure 4: while exploring, the agent still drives the chip through
    # Linux-like excursions — the exploration window's peak reaches
    # within a few degrees of Linux's peak.
    assert result.exploration_profile.peak_temp_c() > result.linux.peak_temp_c - 8.0
    # Figure 5: exploitation is clearly cooler than both.
    assert result.exploitation_avg_c < result.exploration_avg_c - 1.0
    assert result.exploitation_avg_c < result.linux_avg_c - 2.0
