"""Benchmark: ablation of the proposed controller's design choices.

Not a paper artefact — DESIGN.md calls out the mechanisms that
differentiate the proposed controller, and this bench quantifies each
one by removing it: the sampling/decision decoupling (contribution 2 of
the paper), the affinity dimension of the action space, and the
workload-variation detection.
"""

from benchmarks.conftest import run_once, save_artifact
from repro.experiments.ablation import run_ablation


def test_ablation(benchmark, bench_scale):
    result = run_once(benchmark, run_ablation, iteration_scale=bench_scale)
    print()
    print(result.format_table())
    save_artifact("ablation", result.format_table())

    # Removing the sampling/decision decoupling blinds the agent to
    # thermal cycling: the cycling MTTF of the cycling-dominated
    # workloads collapses.
    assert result.value(
        "mpeg_dec:clip 1", "no_decoupling", "cycling_mttf_years"
    ) < result.value("mpeg_dec:clip 1", "full", "cycling_mttf_years")
    assert result.value(
        "mpeg_dec-tachyon", "no_decoupling", "cycling_mttf_years"
    ) < result.value("mpeg_dec-tachyon", "full", "cycling_mttf_years")

    # The DVFS-only variant must still be a functional controller (the
    # affinity dimension is a refinement, not a crutch).
    assert result.value("tachyon:set 2", "no_affinity", "aging_mttf_years") > 1.0
