"""Benchmark: regenerate the fault-tolerance grid.

Prints lifetime, thermal-cycle and overhead numbers for the headline
controllers across {no faults, sensor faults, actuation faults} with
the supervision layer off and on, and asserts the robustness headline:
every cell completes, and the supervisor never makes a faulty run worse
than unsupervised by more than the measurement noise allows.
"""

from benchmarks.conftest import run_once, save_artifact
from repro.experiments.fault_tolerance import run_fault_tolerance


def test_fault_tolerance_grid(benchmark, bench_scale):
    result = run_once(benchmark, run_fault_tolerance, iteration_scale=bench_scale)
    print()
    print(result.format_table())
    save_artifact("fault_tolerance", result.format_table())

    # Every cell of the grid must have run to completion — robustness
    # means no controller crashes or stalls on a faulty substrate.
    assert len(result.rows) == 18
    for row in result.rows:
        assert row.summary.completed, (row.policy, row.fault_mode, row.supervised)

    # On a healthy platform the supervision layer is almost free: the
    # watchdog sampling costs well under 5% execution time.
    for policy in ("linux", "ge", "proposed"):
        off = result.row(policy, "none", False).summary.execution_time_s
        on = result.row(policy, "none", True).summary.execution_time_s
        assert on <= off * 1.05, policy

    # Under sensor faults the supervisor actually repairs readings.
    for policy in ("ge", "proposed"):
        assert result.row(policy, "sensor", True).sensor_fixups > 0, policy
