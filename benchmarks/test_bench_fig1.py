"""Benchmark: regenerate Figure 1 (the motivational experiment).

face_rec and mpeg_enc under Linux's default placement vs the fixed
2-2-1-1 user assignment: the four thermal-profile summaries show that
the thermal profile varies with the application and that thread
placement influences it — the paper's two motivating observations.
"""

from benchmarks.conftest import run_once, save_artifact
from repro.analysis.traces import render_profile
from repro.experiments.fig1_motivation import run_fig1


def test_fig1_motivation(benchmark, bench_scale):
    result = run_once(benchmark, run_fig1, iteration_scale=bench_scale)
    print()
    print(result.format_table())
    save_artifact("fig1", result.format_table())
    print()
    for cell in result.cells:
        print(
            render_profile(
                cell.profile,
                t_min=30.0,
                t_max=80.0,
                height=8,
                title=f"{cell.app} / {cell.placement} (hottest core)",
            )
        )
        print()

    face_linux = result.cell("face_rec", "linux_default").summary
    face_user = result.cell("face_rec", "user_paired_2211").summary
    mpeg_linux = result.cell("mpeg_enc", "linux_default").summary

    # Observation 1: the thermal profile varies with the application —
    # face_rec runs hot with little headroom, mpeg_enc runs cool with
    # pronounced cycling.
    assert face_linux.average_temp_c > mpeg_linux.average_temp_c + 10.0
    assert mpeg_linux.num_cycles > 0

    # Observation 2: thread placement influences the profile — the two
    # placements produce measurably different traces for face_rec.
    assert (
        abs(face_linux.average_temp_c - face_user.average_temp_c) > 0.5
        or abs(face_linux.stress - face_user.stress) / max(face_linux.stress, 1e-12)
        > 0.02
    )
