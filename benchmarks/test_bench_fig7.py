"""Benchmark: regenerate Figure 7 (decision-epoch length).

Prints, per application and decision epoch 5..80 s: execution time and
dynamic energy normalised to Linux, and training time normalised to the
5 s setting, asserting the trade-off the paper uses to pick its epoch.
"""

from benchmarks.conftest import run_once, save_artifact
from repro.experiments.fig7_epoch import run_fig7


def test_fig7_decision_epoch(benchmark, bench_scale):
    result = run_once(benchmark, run_fig7, iteration_scale=bench_scale)
    print()
    print(result.format_table())
    save_artifact("fig7", result.format_table())

    for app in {row.app for row in result.rows}:
        series = result.series(app)
        # Training time grows with the decision epoch (Figure 7c).
        assert series[-1].training_time_s > series[0].training_time_s
        # Small epochs carry adaptation overhead: the smallest epoch is
        # never the cheapest point of the execution-time curve.
        exec_times = [r.normalized_execution_time for r in series]
        assert exec_times[0] >= min(exec_times)
