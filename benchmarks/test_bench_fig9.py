"""Benchmark: regenerate Figure 9 (power and energy comparison).

Prints average dynamic power, dynamic energy and static (leakage)
energy per application and policy, and asserts the paper's claims:
powersave draws the least power, and the proposed approach saves
dynamic energy relative to the Ge & Qiu baseline and leakage energy
rate relative to Linux.
"""

from benchmarks.conftest import run_once, save_artifact
from repro.experiments.fig9_power import run_fig9


def test_fig9_power_energy(benchmark, bench_scale):
    result = run_once(benchmark, run_fig9, iteration_scale=bench_scale)
    print()
    print(result.format_table())
    save_artifact("fig9", result.format_table())

    for row in result.rows:
        # powersave has the lowest average dynamic power of the static set.
        static_policies = ("linux", "powersave", "userspace@2.4", "userspace@3.4")
        powers = {p: row.dynamic_power_w(p) for p in static_policies}
        assert powers["powersave"] == min(powers.values())
        assert powers["userspace@3.4"] == max(powers.values())

    dyn_saving_vs_ge = result.saving("dynamic_energy_j", "proposed", over="ge")
    print(
        f"\nproposed dynamic-energy saving vs ge: {dyn_saving_vs_ge:+.1%} "
        f"(paper: ~+10%)"
    )
    assert dyn_saving_vs_ge > -0.05

    # Cooler silicon leaks less: aggregated across the applications the
    # proposed approach draws less static power than Linux ondemand.
    # (Per-application this can invert for the idle-heavy codecs, where
    # ondemand's idle voltage drop beats the temperature effect — the
    # hot workloads dominate the aggregate, as in the paper's 11-15%.)
    linux_rate = sum(
        r.summaries["linux"].static_energy_j / r.summaries["linux"].execution_time_s
        for r in result.rows
    )
    proposed_rate = sum(
        r.summaries["proposed"].static_energy_j
        / r.summaries["proposed"].execution_time_s
        for r in result.rows
    )
    print(f"aggregate leakage power: linux {linux_rate:.2f} W, proposed {proposed_rate:.2f} W")
    assert proposed_rate < linux_rate
