"""Observability must be observation-only.

The acceptance contract of the obs layer: attaching an
:class:`~repro.obs.instrument.Instrumentation` to a run changes
*nothing* about the simulated trajectory — every reported statistic,
the tick-for-tick thermal profile, the fault and supervisor counters
are all byte-identical to the uninstrumented run.  These tests run the
same workload twice (with and without instrumentation) and demand
exact equality, no tolerances.
"""

import dataclasses

import numpy as np
import pytest

from repro.experiments.runner import run_workload
from repro.faults.presets import (
    combined_fault_config,
    default_supervisor_config,
)
from repro.obs.instrument import Instrumentation
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import TraceEmitter, summarize_events, validate_event

SCALE = 0.02  # tiny but long enough to cross several decision epochs


def _run(instrumentation=None, faults=None, supervisor=None):
    return run_workload(
        "mpeg_dec",
        policy="proposed",
        seed=7,
        iteration_scale=SCALE,
        faults=faults,
        supervisor=supervisor,
        instrumentation=instrumentation,
    )


def _assert_identical(plain, instrumented):
    for field in dataclasses.fields(plain):
        if field.name == "profile":
            continue
        assert getattr(plain, field.name) == getattr(instrumented, field.name), (
            f"field {field.name} drifted under instrumentation"
        )
    assert plain.profile is not None and instrumented.profile is not None
    assert len(plain.profile) == len(instrumented.profile)
    assert np.array_equal(plain.profile.as_array(), instrumented.profile.as_array())


class TestInstrumentedTrajectoryIdentity:
    def test_plain_run_identical(self):
        plain = _run()
        obs = Instrumentation(registry=MetricsRegistry(), tracer=TraceEmitter())
        instrumented = _run(instrumentation=obs)
        _assert_identical(plain, instrumented)
        assert obs.tracer.events, "instrumented run emitted no events"

    def test_faulted_supervised_run_identical(self):
        faults = combined_fault_config()
        supervisor = default_supervisor_config()
        plain = _run(faults=faults, supervisor=supervisor)
        obs = Instrumentation(registry=MetricsRegistry(), tracer=TraceEmitter())
        instrumented = _run(
            instrumentation=obs, faults=faults, supervisor=supervisor
        )
        _assert_identical(plain, instrumented)
        # The faulty run must actually exercise the fault/supervisor
        # emit sites for the identity claim to mean anything.
        types = {e["type"] for e in obs.tracer.events}
        assert "fault" in types
        assert "supervisor" in types

    def test_rerun_with_instrumentation_is_deterministic(self):
        obs_a = Instrumentation(registry=MetricsRegistry(), tracer=TraceEmitter())
        obs_b = Instrumentation(registry=MetricsRegistry(), tracer=TraceEmitter())
        _run(instrumentation=obs_a)
        _run(instrumentation=obs_b)
        assert obs_a.tracer.events == obs_b.tracer.events
        assert obs_a.registry.as_dict() == obs_b.registry.as_dict()


class TestEmittedTraceContract:
    @pytest.fixture(scope="class")
    def traced(self):
        obs = Instrumentation(registry=MetricsRegistry(), tracer=TraceEmitter())
        summary = _run(
            instrumentation=obs,
            faults=combined_fault_config(),
            supervisor=default_supervisor_config(),
        )
        return obs, summary

    def test_every_event_validates(self, traced):
        obs, _ = traced
        for event in obs.tracer.events:
            validate_event(event)

    def test_sequence_numbers_monotone(self, traced):
        obs, _ = traced
        assert [e["seq"] for e in obs.tracer.events] == list(
            range(len(obs.tracer.events))
        )

    def test_core_event_types_present(self, traced):
        obs, _ = traced
        types = {e["type"] for e in obs.tracer.events}
        for required in ("run_start", "tick", "decision", "q_update",
                         "governor_change", "app_switch", "run_end"):
            assert required in types, f"no {required} event in traced run"

    def test_trace_headlines_match_run_summary(self, traced):
        # The tick events replay the eval-sensor profile sample-for-
        # sample; the run summary covers only the measurement window, so
        # that window must appear as a contiguous slice of the trace and
        # re-summarising exactly it reproduces the summary's headline
        # temperatures.
        obs, summary = traced
        tick_events = [e for e in obs.tracer.events if e["type"] == "tick"]
        ticks = np.array([e["temps_c"] for e in tick_events])
        window = summary.profile.as_array()
        length = len(window)
        offsets = [
            k
            for k in range(len(ticks) - length + 1)
            if np.array_equal(ticks[k : k + length], window)
        ]
        assert offsets, "measurement-window profile absent from tick events"
        windowed = summarize_events(tick_events[offsets[0] : offsets[0] + length])
        assert windowed.avg_temp_c == pytest.approx(summary.average_temp_c)
        assert windowed.peak_temp_c == pytest.approx(summary.peak_temp_c)

    def test_metrics_agree_with_trace(self, traced):
        obs, _ = traced
        ticks = sum(1 for e in obs.tracer.events if e["type"] == "tick")
        decisions = sum(1 for e in obs.tracer.events if e["type"] == "decision")
        assert obs.registry.get("repro_eval_samples_total").value == ticks
        assert obs.registry.get("repro_decisions_total").value == decisions
        assert obs.registry.get("repro_runs_total").value == 1
