"""Tests for the future-work extensions (concurrent apps, big.LITTLE)."""

from dataclasses import replace

import pytest

from repro.config import default_agent_config, default_reliability_config
from repro.core.manager import ProposedThermalManager
from repro.extensions.concurrent import CompositeApplication
from repro.extensions.heterogeneous import (
    DEFAULT_SPEED_FACTORS,
    HeterogeneousChip,
    heterogeneous_platform,
    make_heterogeneous_simulation,
)
from repro.soc.simulator import Simulation
from repro.workloads.alpbench import make_application
from repro.workloads.application import Application


def short_app(name="mpeg_dec", iters=8, seed=5):
    app = make_application(name, seed=seed)
    return Application(replace(app.spec, iterations=iters), metric=app.metric, seed=seed)


# ---------------------------------------------------------------------------
# Concurrent applications
# ---------------------------------------------------------------------------


def test_composite_renumbers_threads():
    composite = CompositeApplication([short_app(seed=1), short_app(seed=2)])
    ids = [t.thread_id for t in composite.threads]
    assert ids == list(range(12))
    assert composite.spec.num_threads == 12


def test_composite_requires_applications():
    with pytest.raises(ValueError):
        CompositeApplication([])


def test_composite_name_and_constraint():
    composite = CompositeApplication([short_app(seed=1), short_app(seed=2)])
    assert composite.spec.name == "mpeg_dec+mpeg_dec"
    assert composite.spec.performance_constraint == 2.0


def test_composite_runs_to_completion():
    composite = CompositeApplication(
        [short_app("mpeg_dec", seed=1), short_app("tachyon", iters=6, seed=2)]
    )
    sim = Simulation([composite], governor="ondemand", seed=1, max_time_s=4000)
    result = sim.run()
    assert result.completed
    assert composite.done
    for name, iterations, done in composite.per_app_records():
        assert done, name
        assert iterations > 0


def test_composite_throughput_normalised():
    apps = [short_app(seed=1), short_app(seed=2)]
    composite = CompositeApplication(apps)
    sim = Simulation([composite], seed=1, max_time_s=4000)
    sim.run()
    # Whole-run normalised throughput should be near "both satisfied",
    # i.e. around the constraint of 2.0 (within a factor).
    assert composite.throughput() > 0.5


def test_composite_under_proposed_manager():
    composite = CompositeApplication(
        [short_app("mpeg_dec", iters=20, seed=1), short_app("mpeg_enc", iters=20, seed=2)]
    )
    manager = ProposedThermalManager(
        default_agent_config(), default_reliability_config()
    )
    sim = Simulation([composite], manager=manager, seed=1, max_time_s=8000)
    result = sim.run()
    assert result.completed
    assert result.manager_stats["epochs"] > 3


# ---------------------------------------------------------------------------
# Heterogeneous cores
# ---------------------------------------------------------------------------


def test_heterogeneous_platform_validation():
    with pytest.raises(ValueError):
        heterogeneous_platform((1.0, 1.0))  # wrong width
    with pytest.raises(ValueError):
        heterogeneous_platform((1.0, 1.0, 0.0, 0.5))  # non-positive


def test_heterogeneous_chip_power_scales():
    platform, factors = heterogeneous_platform()
    big = HeterogeneousChip(platform, (1.0, 1.0, 1.0, 1.0), seed=0)
    little = HeterogeneousChip(platform, (0.5, 0.5, 0.5, 0.5), seed=0)
    big.step([0.8] * 4, [2.4e9] * 4, 0.1)
    little.step([0.8] * 4, [2.4e9] * 4, 0.1)
    assert little.energy.dynamic_j < big.energy.dynamic_j


def test_heterogeneous_simulation_completes_slower_than_homogeneous():
    """Replacing two cores with LITTLE ones costs throughput."""
    hom = Simulation([short_app("tachyon", iters=10, seed=3)], seed=1, max_time_s=4000)
    hom_result = hom.run()
    het = make_heterogeneous_simulation(
        [short_app("tachyon", iters=10, seed=3)],
        speed_factors=DEFAULT_SPEED_FACTORS,
        seed=1,
        max_time_s=4000,
    )
    het_result = het.run()
    assert het_result.completed
    assert het_result.total_time_s > hom_result.total_time_s


def test_heterogeneous_under_manager():
    manager = ProposedThermalManager(
        default_agent_config(), default_reliability_config()
    )
    sim = make_heterogeneous_simulation(
        [short_app("mpeg_dec", iters=25, seed=1)],
        manager=manager,
        seed=1,
        max_time_s=8000,
    )
    result = sim.run()
    assert result.completed
    assert result.manager_stats["epochs"] > 3
