"""Bit-faithfulness harness for the vectorized ensemble engine.

The contract under test: for every member, an
:class:`~repro.ensemble.engine.EnsembleSimulation` run produces results
**bit-for-bit identical** to what that member's scalar
``Simulation.run()`` would have produced — thermal profile samples,
energy accumulators, perf counters, app records, manager statistics and
fault counters, all compared with exact equality (no tolerances).

The ensemble width is ``REPRO_ENSEMBLE_MEMBERS`` (CI exports 64; the
local default keeps tier-1 runs fast).  Coverage:

* headline equivalence across barrier and work-queue apps under static
  governors, the GE baselines and the full learning agent;
* equivalence with the fault injector and an affinity mapping active;
* ensemble checkpoint capture -> restore into a fresh engine ->
  continue, byte-identical to the uninterrupted run (results *and*
  final captured state);
* cross-member isolation: a member's results never depend on who else
  is in the ensemble;
* degenerate shapes: single member, empty ensemble, mixed workloads
  with different lengths and early ``max_time_s`` freezes.
"""

import os
from dataclasses import replace

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import FaultConfig
from repro.ensemble.engine import EnsembleSimulation
from repro.experiments.runner import build_manager
from repro.sched.affinity import AffinityMapping
from repro.soc.simulator import Simulation
from repro.workloads.alpbench import make_application
from repro.workloads.application import Application

#: Ensemble width of the headline tests (CI: REPRO_ENSEMBLE_MEMBERS=64).
MEMBERS = int(os.environ.get("REPRO_ENSEMBLE_MEMBERS", "8"))

#: Perf-counter channels compared bit-exactly.
PERF_CHANNELS = (
    "executed_cycles",
    "cache_misses",
    "page_faults",
    "migrations",
    "sample_events",
    "decision_events",
)

FAULTS = FaultConfig(
    enabled=True,
    dropout_prob=0.02,
    spike_prob=0.02,
    stuck_prob=0.01,
    drift_rate_c_per_s=0.01,
    governor_fail_prob=0.05,
    governor_noop_prob=0.05,
    mapping_fail_prob=0.05,
    mapping_noop_prob=0.05,
    seed=99,
)

HALF = AffinityMapping("half", tuple(frozenset({0, 1}) for _ in range(6)))


def tiny_app(name: str, seed: int, iterations: int = 5) -> Application:
    """A short version of an ALPBench app (same spec, fewer iterations)."""
    app = make_application(name, seed=seed)
    return Application(
        replace(app.spec, iterations=iterations), metric=app.metric, seed=seed
    )


def build_sim(
    app: str,
    policy: str,
    seed: int,
    iterations: int = 5,
    max_time_s: float = 400.0,
    mapping: AffinityMapping | None = None,
    faults: FaultConfig | None = None,
) -> Simulation:
    """One scalar simulation; called twice to produce bit-equal twins."""
    manager, governor, userspace_hz = build_manager(policy)
    return Simulation(
        [tiny_app(app, seed, iterations)],
        governor=governor,
        userspace_frequency_hz=userspace_hz,
        mapping=mapping,
        manager=manager,
        seed=seed,
        max_time_s=max_time_s,
        faults=faults,
    )


def assert_results_equal(scalar, batched, member: int = -1) -> None:
    """Exact (bitwise) equality of two SimulationResult objects."""
    where = f"member {member}" if member >= 0 else "result"
    assert scalar.profile.num_cores == batched.profile.num_cores, where
    assert scalar.profile.sample_period_s == batched.profile.sample_period_s
    sdata = scalar.profile._data[:, : scalar.profile._len]
    bdata = batched.profile._data[:, : batched.profile._len]
    assert sdata.shape == bdata.shape, f"{where}: profile length differs"
    assert sdata.tobytes() == bdata.tobytes(), f"{where}: profile samples differ"
    assert scalar.energy.dynamic_j == batched.energy.dynamic_j, where
    assert scalar.energy.static_j == batched.energy.static_j, where
    assert scalar.energy.elapsed_s == batched.energy.elapsed_s, where
    for channel in PERF_CHANNELS:
        assert getattr(scalar.perf, channel) == getattr(
            batched.perf, channel
        ), f"{where}: perf.{channel} differs"
    assert scalar.app_records == batched.app_records, where
    assert scalar.total_time_s == batched.total_time_s, where
    assert scalar.completed == batched.completed, where
    assert scalar.manager_stats == batched.manager_stats, where
    assert scalar.fault_stats == batched.fault_stats, where


def assert_state_equal(a, b, path: str = "state") -> None:
    """Recursive byte-level equality of two capture() snapshots."""
    if isinstance(a, np.ndarray):
        assert isinstance(b, np.ndarray), path
        assert a.dtype == b.dtype and a.shape == b.shape, path
        assert a.tobytes() == b.tobytes(), f"{path}: array bytes differ"
    elif isinstance(a, dict):
        assert isinstance(b, dict) and set(a) == set(b), path
        for key in a:
            assert_state_equal(a[key], b[key], f"{path}.{key}")
    elif isinstance(a, (list, tuple)):
        assert type(a) is type(b) and len(a) == len(b), path
        for index, (x, y) in enumerate(zip(a, b)):
            assert_state_equal(x, y, f"{path}[{index}]")
    else:
        assert a == b, f"{path}: {a!r} != {b!r}"


# ----------------------------------------------------------------------
# Headline equivalence
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "app,policy",
    [
        ("tachyon", "linux"),
        ("mpeg_dec", "proposed"),
        ("sphinx", "ge"),
        ("face_rec", "powersave"),
    ],
)
def test_ensemble_matches_scalar(app, policy):
    """Every member's results equal its scalar run, bit for bit."""
    seeds = [11 + 3 * k for k in range(MEMBERS)]
    scalar_results = [build_sim(app, policy, seed).run() for seed in seeds]
    ensemble = EnsembleSimulation(
        [build_sim(app, policy, seed) for seed in seeds]
    )
    batched_results = ensemble.run()
    assert batched_results is not None
    for member, (scalar, batched) in enumerate(
        zip(scalar_results, batched_results)
    ):
        assert_results_equal(scalar, batched, member)


def test_ensemble_matches_scalar_under_faults():
    """Fault injection + an affinity mapping stay bit-faithful."""
    seeds = [7 + 5 * k for k in range(MEMBERS)]
    kwargs = dict(mapping=HALF, faults=FAULTS)
    scalar_results = [
        build_sim("mpeg_dec", "proposed", seed, **kwargs).run()
        for seed in seeds
    ]
    ensemble = EnsembleSimulation(
        [build_sim("mpeg_dec", "proposed", seed, **kwargs) for seed in seeds]
    )
    for member, (scalar, batched) in enumerate(
        zip(scalar_results, ensemble.run())
    ):
        assert_results_equal(scalar, batched, member)
        assert batched.fault_stats  # the injector actually fired


def test_vectorized_agent_matches_scalar_under_faults():
    """The vectorized RL control plane (face_rec/proposed exercises the
    batched agents and managers) stays bit-faithful to the scalar agent
    when the sensor/actuation paths are faulty."""
    seeds = [17 + 7 * k for k in range(MEMBERS)]
    kwargs = dict(faults=FAULTS)
    scalar_results = [
        build_sim("face_rec", "proposed", seed, **kwargs).run()
        for seed in seeds
    ]
    ensemble = EnsembleSimulation(
        [build_sim("face_rec", "proposed", seed, **kwargs) for seed in seeds]
    )
    for member, (scalar, batched) in enumerate(
        zip(scalar_results, ensemble.run())
    ):
        assert_results_equal(scalar, batched, member)
        assert batched.fault_stats  # the injector actually fired
        assert batched.manager_stats  # the vectorized agent actually ran


# ----------------------------------------------------------------------
# Checkpoint / resume
# ----------------------------------------------------------------------
def _mixed_members():
    return [
        build_sim("tachyon", "linux", 31),
        build_sim("mpeg_dec", "proposed", 32, iterations=4),
        build_sim("sphinx", "ge_modified", 33, iterations=6),
        build_sim("face_rec", "performance", 34),
        # A vectorized-agent member with live fault injection: resume
        # must round-trip the Q-table, agent RNG and fault state too.
        build_sim("face_rec", "proposed", 35, iterations=4, faults=FAULTS),
    ]


def test_ensemble_checkpoint_resume_byte_identity():
    """capture -> restore into a fresh engine -> continue: byte-identical.

    Compares the resumed run against the uninterrupted one at three
    levels: the continued capture state, the final capture state, and
    the per-member results.
    """
    straight = EnsembleSimulation(_mixed_members())
    straight_results = straight.run()

    interrupted = EnsembleSimulation(_mixed_members())
    interrupted.prepare()
    for _ in range(120):
        interrupted.step()
        interrupted.advance()
    snapshot = interrupted.capture()

    resumed = EnsembleSimulation(_mixed_members())
    resumed.restore(snapshot)
    # The snapshot itself round-trips byte-identically.
    assert_state_equal(snapshot, resumed.capture())

    # Continue both engines in lockstep to completion.
    while bool(interrupted.active.any()):
        interrupted.step()
        interrupted.advance()
        resumed.step()
        resumed.advance()
    assert not bool(resumed.active.any())
    assert_state_equal(interrupted.capture(), resumed.capture())
    for member, (a, b, c) in enumerate(
        zip(straight_results, interrupted.results(), resumed.results())
    ):
        assert_results_equal(a, b, member)
        assert_results_equal(a, c, member)


# ----------------------------------------------------------------------
# Cross-member isolation
# ----------------------------------------------------------------------
@given(
    st.sampled_from(["tachyon", "mpeg_dec", "sphinx"]),
    st.integers(min_value=0, max_value=40),
    st.sampled_from(["linux", "powersave", "ge"]),
)
@settings(max_examples=8, deadline=None)
def test_cross_member_isolation(app, seed, other_policy):
    """A member's results never depend on who else is in the ensemble."""
    alone = EnsembleSimulation([build_sim(app, "linux", seed)]).run()[0]
    crowd = EnsembleSimulation(
        [
            build_sim(app, "linux", seed),
            build_sim("face_rec", other_policy, seed + 101, iterations=3),
            build_sim("mpeg_enc", "performance", seed + 202, iterations=7),
        ]
    ).run()[0]
    assert_results_equal(alone, crowd)


# ----------------------------------------------------------------------
# Degenerate shapes
# ----------------------------------------------------------------------
def test_single_member_ensemble_matches_scalar():
    def sim():
        # The conservative governor has no policy name; build directly.
        return Simulation(
            [tiny_app("mpeg_enc", 5)],
            governor="conservative",
            seed=5,
            max_time_s=400.0,
        )

    scalar = sim().run()
    batched = EnsembleSimulation([sim()]).run()[0]
    assert_results_equal(scalar, batched)


def test_empty_ensemble_rejected():
    with pytest.raises(ValueError, match="at least one member"):
        EnsembleSimulation([])


def test_mixed_workloads_and_lengths_match_scalar():
    """Different apps, policies, iteration counts and an early max_time
    freeze in one ensemble: members finish at different ticks and each
    still matches its scalar twin (including the ``completed`` flag)."""

    def members():
        return _mixed_members() + [
            # Hits max_time_s mid-app: completed=False paths.
            build_sim("sphinx", "linux", 35, iterations=500, max_time_s=6.0),
        ]

    scalar_results = [sim.run() for sim in members()]
    batched_results = EnsembleSimulation(members()).run()
    assert any(not r.completed for r in scalar_results)
    for member, (scalar, batched) in enumerate(
        zip(scalar_results, batched_results)
    ):
        assert_results_equal(scalar, batched, member)


# ----------------------------------------------------------------------
# Randomized equivalence sweep
# ----------------------------------------------------------------------
@given(
    st.lists(
        st.tuples(
            st.sampled_from(
                ["tachyon", "mpeg_dec", "mpeg_enc", "face_rec", "sphinx"]
            ),
            st.sampled_from(["linux", "powersave", "performance", "proposed"]),
            st.integers(min_value=0, max_value=60),
            st.integers(min_value=2, max_value=8),
        ),
        min_size=2,
        max_size=4,
    )
)
@settings(max_examples=8, deadline=None)
def test_random_ensembles_match_scalar(specs):
    """Random mixed ensembles equal their scalar twins, bit for bit."""
    scalar_results = [
        build_sim(app, policy, seed, iterations=iters).run()
        for app, policy, seed, iters in specs
    ]
    batched_results = EnsembleSimulation(
        [
            build_sim(app, policy, seed, iterations=iters)
            for app, policy, seed, iters in specs
        ]
    ).run()
    for member, (scalar, batched) in enumerate(
        zip(scalar_results, batched_results)
    ):
        assert_results_equal(scalar, batched, member)
