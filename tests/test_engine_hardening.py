"""Tests for the fault-hardened experiment engine.

Covers the reliability half of the engine contract: worker exceptions
burn bounded retries with deterministic backoff accounting, hung
attempts are killed by the per-job timeout, a crashed worker pool is
respawned with only the unfinished jobs requeued, and jobs that exhaust
every attempt surface as structured :class:`JobFailure` records instead
of a bare traceback — without aborting the rest of the campaign.
"""

import os
import time
from pathlib import Path

import pytest

import repro.experiments.engine.scheduler as scheduler_module
from repro.config import EngineConfig
from repro.experiments.engine import ExperimentEngine, job_key, workload_job
from repro.experiments.engine.scheduler import EngineJobError, JobFailure
from repro.experiments.engine import sweep as sweep_module


def _specs(count):
    return [workload_job("tachyon", None, "linux", seed=100 + i) for i in range(count)]


# Worker stand-ins must be module-level so a ProcessPoolExecutor can
# pickle them by reference.


def _ok(spec, *args):
    return ("done", spec.seed)


def _fail_seed_999(spec, *args):
    if spec.seed == 999:
        raise RuntimeError("worker exploded")
    return ("done", spec.seed)


def _sleep_forever(spec, *args):
    time.sleep(300)


def _die_once(spec, *args):
    marker = Path(os.environ["HARDENING_DIE_ONCE_MARKER"])
    if not marker.exists():
        marker.write_text("died")
        os._exit(3)
    return ("revived", spec.seed)


class _FlakyThenOk:
    """In-process flaky worker: fails ``failures`` times, then succeeds."""

    def __init__(self, failures):
        self.remaining = failures

    def __call__(self, spec, *args):
        if self.remaining > 0:
            self.remaining -= 1
            raise ValueError("transient wobble")
        return ("done", spec.seed)


# ---------------------------------------------------------------------------
# Serial path: retries and structured failures
# ---------------------------------------------------------------------------


def test_flaky_job_is_retried_to_success(monkeypatch):
    monkeypatch.setattr(scheduler_module, "execute_job", _FlakyThenOk(2))
    engine = ExperimentEngine(max_job_attempts=3)
    [result] = engine.run(_specs(1))
    assert result == ("done", 100)
    assert engine.stats.retried == 2
    assert engine.stats.failed == 0
    assert engine.failures == []


def test_exhausted_job_raises_structured_failure(monkeypatch):
    monkeypatch.setattr(scheduler_module, "execute_job", _FlakyThenOk(10))
    engine = ExperimentEngine(max_job_attempts=3, retry_backoff_s=0.5)
    spec = _specs(1)[0]
    with pytest.raises(EngineJobError) as excinfo:
        engine.run([spec])
    [failure] = excinfo.value.failures
    assert failure.key == job_key(spec)
    assert failure.label == spec.label
    assert failure.attempts == 3
    assert failure.error_type == "ValueError"
    assert failure.message == "transient wobble"
    # Deterministic backoff accounting: 0.5 * 2**0 + 0.5 * 2**1.
    assert failure.backoff_s == pytest.approx(1.5)
    assert failure.timed_out is False
    assert failure.duration_s >= 0.0
    # The engine also keeps the record, and the message names the job.
    assert engine.failures == [failure]
    assert engine.stats.failed == 1
    assert engine.stats.retried == 2
    assert spec.label in str(excinfo.value)
    assert failure.key[:12] in str(excinfo.value)


def test_max_job_attempts_one_never_retries(monkeypatch):
    monkeypatch.setattr(scheduler_module, "execute_job", _FlakyThenOk(10))
    engine = ExperimentEngine(max_job_attempts=1)
    with pytest.raises(EngineJobError) as excinfo:
        engine.run(_specs(1))
    assert excinfo.value.failures[0].attempts == 1
    assert excinfo.value.failures[0].backoff_s == 0.0
    assert engine.stats.retried == 0


# ---------------------------------------------------------------------------
# Parallel path: exceptions, timeouts, pool crashes
# ---------------------------------------------------------------------------


def test_parallel_worker_exception_becomes_failure(monkeypatch):
    monkeypatch.setattr(scheduler_module, "execute_job", _fail_seed_999)
    specs = _specs(2) + [workload_job("tachyon", None, "linux", seed=999)]
    engine = ExperimentEngine(jobs=2, max_job_attempts=2)
    with pytest.raises(EngineJobError) as excinfo:
        engine.run(specs)
    [failure] = excinfo.value.failures
    assert failure.error_type == "RuntimeError"
    assert failure.attempts == 2
    assert engine.stats.retried == 1
    assert engine.stats.failed == 1


def test_parallel_success_path_unchanged(monkeypatch):
    monkeypatch.setattr(scheduler_module, "execute_job", _ok)
    engine = ExperimentEngine(jobs=2)
    results = engine.run(_specs(4))
    assert results == [("done", 100 + i) for i in range(4)]
    assert engine.stats.failed == 0


def test_timeout_kills_hung_attempt(monkeypatch):
    monkeypatch.setattr(scheduler_module, "execute_job", _sleep_forever)
    engine = ExperimentEngine(jobs=2, job_timeout_s=0.4, max_job_attempts=1)
    start = time.perf_counter()
    with pytest.raises(EngineJobError) as excinfo:
        engine.run(_specs(2))
    elapsed = time.perf_counter() - start
    assert elapsed < 60.0, "timeout reaping did not fire"
    failures = excinfo.value.failures
    assert len(failures) == 2
    assert all(failure.timed_out for failure in failures)
    assert all(failure.error_type == "TimeoutError" for failure in failures)
    assert engine.stats.timeouts == 2
    assert engine.stats.pool_restarts >= 1


def test_broken_pool_is_respawned_and_job_retried(monkeypatch, tmp_path):
    marker = tmp_path / "died.marker"
    monkeypatch.setenv("HARDENING_DIE_ONCE_MARKER", str(marker))
    monkeypatch.setattr(scheduler_module, "execute_job", _die_once)
    engine = ExperimentEngine(jobs=2, max_job_attempts=3)
    results = engine.run(_specs(2))
    assert results == [("revived", 100), ("revived", 101)]
    assert marker.exists()
    assert engine.stats.pool_restarts >= 1
    assert engine.stats.retried >= 1
    assert engine.stats.failed == 0


# ---------------------------------------------------------------------------
# Accounting surfaces
# ---------------------------------------------------------------------------


def test_stats_dict_carries_hardening_counters():
    stats = ExperimentEngine().stats.as_dict()
    for key in ("retried", "failed", "timeouts", "pool_restarts"):
        assert stats[key] == 0


def test_engine_from_config_threads_hardening_fields():
    engine = ExperimentEngine.from_config(
        EngineConfig(
            jobs=2,
            use_cache=False,
            job_timeout_s=12.5,
            max_job_attempts=5,
            retry_backoff_s=0.25,
            checkpoint_every=400,
            checkpoint_dir="ckpts",
            resume=True,
        )
    )
    assert engine.job_timeout_s == 12.5
    assert engine.max_job_attempts == 5
    assert engine.retry_backoff_s == 0.25
    assert engine.checkpoint_every == 400
    assert engine.checkpoint_dir == "ckpts"
    assert engine.resume is True


def test_engine_config_validates_hardening_fields():
    with pytest.raises(ValueError):
        EngineConfig(job_timeout_s=0.0)
    with pytest.raises(ValueError):
        EngineConfig(max_job_attempts=0)
    with pytest.raises(ValueError):
        EngineConfig(retry_backoff_s=-1.0)
    with pytest.raises(ValueError):
        EngineConfig(checkpoint_every=0)


def test_job_failure_as_dict_round_trips():
    failure = JobFailure(
        key="a" * 64,
        label="tachyon/linux",
        attempts=3,
        duration_s=1.25,
        error_type="RuntimeError",
        message="boom",
        backoff_s=1.5,
        timed_out=True,
    )
    assert failure.as_dict() == {
        "key": "a" * 64,
        "label": "tachyon/linux",
        "attempts": 3,
        "duration_s": 1.25,
        "error_type": "RuntimeError",
        "message": "boom",
        "backoff_s": 1.5,
        "timed_out": True,
    }


# ---------------------------------------------------------------------------
# Campaign-level degradation: one failed artefact never aborts the sweep
# ---------------------------------------------------------------------------


class _FakeResult:
    def format_table(self):
        return "fake table"


def test_sweep_survives_a_failed_artefact(monkeypatch, tmp_path):
    def good(iteration_scale, seed, engine):
        return _FakeResult()

    def bad(iteration_scale, seed, engine):
        raise EngineJobError(
            [
                JobFailure(
                    key="f" * 64,
                    label="tachyon/proposed",
                    attempts=3,
                    duration_s=2.0,
                    error_type="RuntimeError",
                    message="boom",
                )
            ]
        )

    monkeypatch.setattr(sweep_module, "ARTEFACTS", {"good": good, "bad": bad})
    report = sweep_module.regenerate_all(results_dir=tmp_path)
    assert [run.name for run in report.runs] == ["good"]
    assert (tmp_path / "good.txt").read_text() == "fake table\n"
    assert not report.ok
    assert set(report.failed_artefacts) == {"bad"}
    [failure] = report.failed_artefacts["bad"]
    assert failure.label == "tachyon/proposed"
    summary = "\n".join(report.summary_lines())
    assert "FAILED bad: 1 job(s) gave up" in summary
    assert "tachyon/proposed" in summary


def test_sweep_report_ok_when_nothing_failed(monkeypatch, tmp_path):
    monkeypatch.setattr(
        sweep_module, "ARTEFACTS", {"solo": lambda **kwargs: _FakeResult()}
    )
    report = sweep_module.regenerate_all(results_dir=tmp_path)
    assert report.ok
    assert report.failed_artefacts == {}
