"""Golden-master regression tests for every paper artefact.

Each case regenerates one artefact at a reduced grid (``scale`` 0.12 is
the smallest scale at which every application clears the warm-up skip)
and compares the formatted table byte-for-byte against a committed
golden file under ``tests/golden/``.  Any drift fails with a readable
unified diff.

The simulations are fully deterministic, so these goldens are stable
across machines and worker counts; they only change when the model
itself changes.  When that happens intentionally, regenerate them with::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_golden_artefacts.py

and commit the refreshed files together with the model change.
"""

import difflib
import os
from pathlib import Path

import pytest

from repro.experiments.engine import ExperimentEngine, ResultCache
from repro.experiments.engine.sweep import ARTEFACTS
from repro.obs.metrics import MetricsRegistry

GOLDEN_DIR = Path(__file__).resolve().parent / "golden"

#: Smallest scale at which every app clears the 60 s warm-up skip.
SCALE = 0.12

#: Reduced grid per artefact: big enough to exercise every code path of
#: the experiment (multiple rows, multiple policies), small enough that
#: the whole suite regenerates in well under a minute.
CASES = {
    "fig1": {},
    "table2": {"workloads": ("mpeg_dec",)},
    "fig3": {"scenarios": (("mpeg_dec", "tachyon"), ("tachyon", "mpeg_dec"))},
    "fig45": {},
    "fig6": {"intervals": (1, 5, 10)},
    "fig7": {"epochs": (5.0, 30.0), "apps": (("mpeg_dec", "clip 1"),)},
    "fig8": {"state_grid": ((4, (2, 2)),), "action_grid": (4, 8)},
    "table3": {"apps": ("mpeg_dec",)},
    "fig9": {"apps": ("mpeg_enc",)},
    "ablation": {
        "variants": ("full", "no_decoupling"),
        "workloads": (("mpeg_dec", "clip 1"),),
    },
    "fault_tolerance": {
        "policies": ("linux", "proposed"),
        "fault_modes": ("none", "sensor"),
    },
    "montecarlo": {
        "apps": ("mpeg_dec",),
        "policies": ("linux", "proposed"),
        "seeds": 8,
    },
}


def test_every_artefact_has_a_golden_case():
    assert set(CASES) == set(ARTEFACTS)


@pytest.fixture(scope="module")
def engine(tmp_path_factory):
    """One shared engine so overlapping grids resolve from the cache.

    A metrics registry is attached so the goldens are regenerated with
    observability enabled — the golden comparison itself then doubles as
    the proof that metric collection never perturbs the outputs.
    """
    root = tmp_path_factory.mktemp("golden-cache")
    return ExperimentEngine(
        jobs=1, cache=ResultCache(root=root), metrics=MetricsRegistry()
    )


@pytest.mark.parametrize("name", list(CASES), ids=list(CASES))
def test_artefact_matches_golden(name, engine):
    result = ARTEFACTS[name](iteration_scale=SCALE, seed=1, engine=engine, **CASES[name])
    text = result.format_table() + "\n"
    golden_path = GOLDEN_DIR / f"{name}.txt"

    if os.environ.get("REPRO_REGEN_GOLDEN"):
        GOLDEN_DIR.mkdir(exist_ok=True)
        golden_path.write_text(text)
        pytest.skip(f"regenerated {golden_path}")

    assert golden_path.exists(), (
        f"missing golden file {golden_path}; generate it with "
        "REPRO_REGEN_GOLDEN=1 pytest tests/test_golden_artefacts.py"
    )
    golden = golden_path.read_text()
    if text != golden:
        diff = "".join(
            difflib.unified_diff(
                golden.splitlines(keepends=True),
                text.splitlines(keepends=True),
                fromfile=f"golden/{name}.txt",
                tofile=f"regenerated {name}",
            )
        )
        pytest.fail(
            f"artefact {name!r} drifted from its golden master:\n{diff}\n"
            "If the change is intentional, regenerate the goldens with "
            "REPRO_REGEN_GOLDEN=1 and commit them with the model change."
        )
