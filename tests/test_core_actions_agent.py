"""Tests for the action space and the learning agent."""

import numpy as np
import pytest

from repro.core.actions import Action, ActionSpace, build_action_space, default_action_space
from repro.core.agent import QLearningThermalAgent
from repro.core.schedule import LearningPhase
from repro.units import ghz


# ---------------------------------------------------------------------------
# Action space
# ---------------------------------------------------------------------------


def test_default_space_has_eight_actions():
    space = default_action_space()
    assert len(space) == 8
    assert len(set(space.labels())) == 8


def test_build_sizes():
    for size in (2, 4, 8, 12):
        assert len(build_action_space(size)) == size


def test_build_rejects_bad_sizes():
    with pytest.raises(ValueError):
        build_action_space(1)
    with pytest.raises(ValueError):
        build_action_space(99)


def test_action_labels_and_mapping():
    action = Action("spread_rr", "userspace", ghz(2.4))
    assert action.label == "spread_rr+userspace@2.4GHz"
    mapping = action.mapping(6)
    assert mapping is not None and mapping.num_threads == 6


def test_os_default_action_has_no_mapping():
    action = Action("os_default", "ondemand")
    assert action.mapping(6) is None
    assert action.label == "os_default+ondemand"


def test_space_index_of():
    space = default_action_space()
    label = space[3].label
    assert space.index_of(label) == 3
    with pytest.raises(KeyError):
        space.index_of("nope")


def test_space_rejects_duplicates():
    action = Action("os_default", "ondemand")
    with pytest.raises(ValueError):
        ActionSpace([action, action])


def test_default_space_covers_both_knobs():
    """The space exercises both affinity mappings and governors."""
    space = default_action_space()
    mappings = {a.mapping_name for a in space}
    governors = {a.governor for a in space}
    assert len(mappings) >= 3
    assert {"ondemand", "powersave", "userspace"} <= governors


# ---------------------------------------------------------------------------
# Agent (Algorithm 1)
# ---------------------------------------------------------------------------


@pytest.fixture
def agent(agent_config, reliability):
    return QLearningThermalAgent(agent_config, reliability)


def feed_epoch(agent, temps):
    """Push one epoch's worth of identical sample vectors."""
    for _ in range(agent.samples_per_epoch):
        agent.record_sample(temps)


def test_samples_per_epoch(agent, agent_config):
    expected = round(agent_config.decision_epoch_s / agent_config.sampling_interval_s)
    assert agent.samples_per_epoch == expected


def test_decide_requires_full_epoch(agent):
    agent.record_sample([40.0] * 4)
    assert not agent.epoch_ready
    with pytest.raises(RuntimeError):
        agent.decide(1.0, 0.5)


def test_decide_returns_valid_action(agent):
    feed_epoch(agent, [40.0] * 4)
    action = agent.decide(1.0, 0.5)
    assert 0 <= action < len(agent.actions)
    assert agent.stats.epochs == 1
    assert not agent.epoch_ready  # TRec cleared


def test_round_robin_exploration_covers_all_actions(agent):
    chosen = []
    for _ in range(len(agent.actions)):
        feed_epoch(agent, [40.0] * 4)
        chosen.append(agent.decide(1.0, 0.5))
    assert sorted(chosen) == list(range(len(agent.actions)))


def test_agent_reaches_exploitation(agent):
    for _ in range(60):
        feed_epoch(agent, [40.0] * 4)
        agent.decide(1.0, 0.5)
    assert agent.phase is LearningPhase.EXPLOITATION
    assert agent.qtable.has_exploration_snapshot


def test_hot_epochs_counted_unsafe(agent):
    for _ in range(12):
        feed_epoch(agent, [78.0] * 4)
        agent.decide(1.0, 0.5)
    assert agent.stats.unsafe_epochs > 0
    assert agent.stats.reward_sum < 0.0


def test_greedy_prefers_rewarded_action(agent_config, reliability):
    """After learning, the greedy choice in the cool state is an action
    whose epochs were cool, not one whose epochs were hot."""
    agent = QLearningThermalAgent(agent_config, reliability)
    # Alternate: even actions produce cool epochs, odd actions hot ones.
    last_action = None
    for _ in range(60):
        temps = [40.0] * 4 if (last_action is None or last_action % 2 == 0) else [72.0] * 4
        feed_epoch(agent, temps)
        last_action = agent.decide(1.0, 0.5)
    # In exploitation the agent should be holding an even (cool) action.
    assert last_action % 2 == 0


def test_inter_reset_on_level_shift(agent):
    """A sustained shift after convergence resets the Q-table."""
    for _ in range(30):
        feed_epoch(agent, [62.0] * 4)
        agent.decide(1.0, 0.5)
    assert agent.stats.inter_events == 0
    before = agent.qtable.total_visits
    for _ in range(4):
        feed_epoch(agent, [35.0] * 4)
        agent.decide(1.0, 0.5)
    assert agent.stats.inter_events == 1
    assert agent.qtable.total_visits < before  # table was reset


def test_stats_dict_keys(agent):
    feed_epoch(agent, [40.0] * 4)
    agent.decide(1.0, 0.5)
    stats = agent.stats.as_dict()
    for key in (
        "epochs",
        "inter_events",
        "intra_events",
        "mean_reward",
        "convergence_epoch",
        "last_policy_change_epoch",
    ):
        assert key in stats


def test_action_hysteresis_prevents_flip_flop(agent_config, reliability):
    """Two near-equal actions must not alternate under greedy choice."""
    agent = QLearningThermalAgent(agent_config, reliability)
    rng = np.random.default_rng(3)
    for step in range(80):
        # Observations hover around a bin boundary.
        base = 41.0 + float(rng.normal(0.0, 0.4))
        feed_epoch(agent, [base] * 4)
        agent.decide(1.0, 0.5)
    # During exploitation, measure action changes over 20 more epochs.
    changes = 0
    prev = None
    for _ in range(20):
        base = 41.0 + float(rng.normal(0.0, 0.4))
        feed_epoch(agent, [base] * 4)
        action = agent.decide(1.0, 0.5)
        if prev is not None and action != prev:
            changes += 1
        prev = action
    assert changes <= 2
