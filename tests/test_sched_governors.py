"""Tests for the cpufreq governor models."""

import pytest

from repro.sched.governors import (
    ConservativeGovernor,
    OndemandGovernor,
    PerformanceGovernor,
    PowersaveGovernor,
    UserspaceGovernor,
    make_governor,
)


def test_performance_pins_max(ladder):
    gov = PerformanceGovernor(ladder, 4)
    assert gov.update([0.0] * 4) == [3.4e9] * 4


def test_powersave_pins_min(ladder):
    gov = PowersaveGovernor(ladder, 4)
    assert gov.update([1.0] * 4) == [1.6e9] * 4


def test_userspace_snaps_to_opp(ladder):
    gov = UserspaceGovernor(ladder, 4, 2.5e9)
    assert gov.target_frequency_hz == 2.4e9
    assert gov.update([0.5] * 4) == [2.4e9] * 4
    assert "userspace@2.4GHz" == gov.name


def test_ondemand_jumps_to_max_when_busy(ladder):
    gov = OndemandGovernor(ladder, 4)
    freqs = gov.update([1.0, 0.9, 0.85, 0.95])
    assert freqs == [3.4e9] * 4


def test_ondemand_scales_down_when_idle(ladder):
    gov = OndemandGovernor(ladder, 4)
    gov.update([1.0] * 4)  # go to max
    freqs = gov.update([0.1] * 4)
    assert all(f < 3.4e9 for f in freqs)


def test_ondemand_keeps_util_below_threshold(ladder):
    """The chosen frequency projects utilisation under the threshold."""
    gov = OndemandGovernor(ladder, 1, up_threshold=0.8)
    gov.update([1.0])
    freqs = gov.update([0.5])
    demand_hz = 0.5 * 3.4e9
    assert freqs[0] >= demand_hz / 0.8 or freqs[0] == 3.4e9


def test_ondemand_per_core_independent(ladder):
    gov = OndemandGovernor(ladder, 2)
    freqs = gov.update([1.0, 0.0])
    assert freqs[0] == 3.4e9
    assert freqs[1] == 1.6e9


def test_conservative_steps_one_rung(ladder):
    gov = ConservativeGovernor(ladder, 1)
    first = gov.update([1.0])[0]
    second = gov.update([1.0])[0]
    assert first == 2.0e9  # one rung up from 1.6
    assert second == 2.4e9


def test_conservative_steps_down(ladder):
    gov = ConservativeGovernor(ladder, 1)
    for _ in range(10):
        gov.update([1.0])
    assert gov.frequencies()[0] == 3.4e9
    down = gov.update([0.1])[0]
    assert down == 3.2e9


def test_conservative_holds_in_band(ladder):
    gov = ConservativeGovernor(ladder, 1)
    gov.update([1.0])
    held = gov.update([0.5])[0]
    assert held == 2.0e9


def test_conservative_threshold_validation(ladder):
    with pytest.raises(ValueError):
        ConservativeGovernor(ladder, 1, up_threshold=0.3, down_threshold=0.5)


def test_make_governor_factory(ladder):
    assert make_governor("ondemand", ladder, 4).name == "ondemand"
    assert make_governor("performance", ladder, 4).name == "performance"
    assert make_governor("powersave", ladder, 4).name == "powersave"
    assert make_governor("conservative", ladder, 4).name == "conservative"
    gov = make_governor("userspace", ladder, 4, 2.0e9)
    assert gov.target_frequency_hz == 2.0e9


def test_make_governor_userspace_needs_frequency(ladder):
    with pytest.raises(ValueError):
        make_governor("userspace", ladder, 4)


def test_make_governor_unknown(ladder):
    with pytest.raises(KeyError):
        make_governor("turbo", ladder, 4)


def test_governor_frequencies_always_on_ladder(ladder):
    gov = OndemandGovernor(ladder, 4)
    valid = set(ladder.frequencies())
    for utils in ([0.1] * 4, [0.5] * 4, [0.9] * 4, [1.0, 0.0, 0.3, 0.7]):
        for f in gov.update(utils):
            assert f in valid


def test_governor_reset(ladder):
    gov = OndemandGovernor(ladder, 2)
    gov.update([1.0, 1.0])
    gov.reset()
    assert gov.frequencies() == [1.6e9] * 2
