"""Edge-case tests for the experiment runner.

A run whose measured pass is shorter than the warm-up skip has an empty
measurement window; the runner must fail with a readable ``ValueError``
rather than crashing deep in the profile code or reporting NaN metrics.
Unknown policy names must be rejected up front with the allowed list.
"""

import pytest

from repro.experiments.runner import (
    POLICIES,
    WARMUP_SKIP_S,
    build_manager,
    run_scenario,
    run_workload,
)


def test_run_shorter_than_warmup_raises_clear_error():
    # face_rec at minimum length (10 iterations) runs ~43 s, inside the
    # 60 s warm-up skip that applies when train_passes == 0.
    with pytest.raises(ValueError) as excinfo:
        run_workload("face_rec", None, "linux", iteration_scale=0.01, train_passes=0)
    message = str(excinfo.value)
    assert "empty measurement window" in message
    assert f"{WARMUP_SKIP_S:.0f}" in message
    assert "iteration_scale" in message  # actionable advice


def test_scenario_shorter_than_warmup_raises_clear_error():
    # A single minimum-length tachyon pass lasts ~30 s < 60 s warm-up.
    with pytest.raises(ValueError, match="empty measurement window"):
        run_scenario(("tachyon",), "linux", iteration_scale=0.01)


def test_trained_short_run_is_fine():
    # With a training pass the warm-up skip does not apply: the same
    # short workload measures normally.
    summary = run_workload(
        "face_rec", None, "linux", iteration_scale=0.01, train_passes=1
    )
    assert summary.execution_time_s > 0.0
    assert summary.average_temp_c == summary.average_temp_c  # not NaN


def test_unknown_policy_rejected_with_allowed_list():
    with pytest.raises(ValueError) as excinfo:
        run_workload("tachyon", None, "magic", iteration_scale=0.05)
    message = str(excinfo.value)
    assert "magic" in message
    for policy in POLICIES:
        assert policy in message


def test_unknown_policy_rejected_for_scenarios():
    with pytest.raises(ValueError, match="allowed policies"):
        run_scenario(("tachyon", "mpeg_dec"), "turbo", iteration_scale=0.05)


def test_malformed_userspace_policy_rejected():
    with pytest.raises(ValueError, match="allowed policies"):
        run_workload("tachyon", None, "userspace@fast", iteration_scale=0.05)


def test_nonstandard_userspace_frequency_accepted():
    summary = run_workload("tachyon", "set 2", "userspace@2.0", iteration_scale=0.05)
    assert summary.policy == "userspace@2.0"
    assert summary.completed


def test_build_manager_still_raises_keyerror_with_allowed_list():
    with pytest.raises(KeyError, match="unknown policy"):
        build_manager("magic")
