"""Tests for unit helpers."""

import math

from repro.units import (
    BOLTZMANN_EV,
    SECONDS_PER_YEAR,
    celsius_to_kelvin,
    ghz,
    kelvin_to_celsius,
    seconds_to_years,
    years_to_seconds,
)


def test_celsius_kelvin_roundtrip():
    assert celsius_to_kelvin(0.0) == 273.15
    assert kelvin_to_celsius(celsius_to_kelvin(42.5)) == 42.5


def test_celsius_kelvin_negative():
    assert celsius_to_kelvin(-273.15) == 0.0


def test_year_conversions_roundtrip():
    assert math.isclose(seconds_to_years(years_to_seconds(3.7)), 3.7)


def test_seconds_per_year_magnitude():
    assert 3.1e7 < SECONDS_PER_YEAR < 3.2e7


def test_ghz():
    assert ghz(3.4) == 3.4e9


def test_boltzmann_constant():
    assert math.isclose(BOLTZMANN_EV, 8.617e-5, rel_tol=1e-3)
