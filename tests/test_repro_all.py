"""Acceptance tests for ``repro all``: parallel + cached == serial.

Three full sweeps at reduced scale (everything the ``repro all`` command
does, minus argument parsing):

* **serial** — ``--jobs 1 --no-cache``, the original serial code path;
* **parallel** — ``--jobs 4`` with a cold content-addressed cache;
* **warm** — the same sweep again on the now-warm cache.

The parallel sweep must write byte-identical artefact files, and the
warm sweep must execute zero jobs.  Each sweep gets its output routed
into a temporary cache tree via ``REPRO_CACHE_DIR`` so the committed
``results/`` artefacts are never touched.
"""

from pathlib import Path

import pytest

from repro.experiments.engine import ExperimentEngine, ResultCache
from repro.experiments.engine.sweep import ARTEFACTS, regenerate_all
from repro.obs.metrics import MetricsRegistry

#: Smallest scale at which every app clears the 60 s warm-up skip.
SCALE = 0.12


@pytest.fixture(scope="module")
def sweeps(tmp_path_factory):
    """Run the three sweeps once; every test inspects the reports."""
    serial_root = tmp_path_factory.mktemp("serial-root")
    parallel_root = tmp_path_factory.mktemp("parallel-root")

    with pytest.MonkeyPatch.context() as mp:
        mp.setenv("REPRO_CACHE_DIR", str(serial_root))
        serial = regenerate_all(
            iteration_scale=SCALE,
            seed=1,
            engine=ExperimentEngine(jobs=1, metrics=MetricsRegistry()),
        )

    with pytest.MonkeyPatch.context() as mp:
        mp.setenv("REPRO_CACHE_DIR", str(parallel_root))
        # The caches are constructed inside the patched environment so
        # they land in the temporary root, exactly as the CLI would.
        parallel = regenerate_all(
            iteration_scale=SCALE,
            seed=1,
            engine=ExperimentEngine(
                jobs=4, cache=ResultCache(), metrics=MetricsRegistry()
            ),
        )
        warm = regenerate_all(
            iteration_scale=SCALE,
            seed=1,
            engine=ExperimentEngine(jobs=4, cache=ResultCache()),
        )

    return {"serial": serial, "parallel": parallel, "warm": warm}


def test_all_artefacts_written(sweeps):
    for report in sweeps.values():
        assert [run.name for run in report.runs] == list(ARTEFACTS)
        for run in report.runs:
            assert run.path.exists()


def test_parallel_cached_output_is_bit_identical_to_serial(sweeps):
    serial, parallel = sweeps["serial"], sweeps["parallel"]
    assert serial.output_dir != parallel.output_dir
    for name in ARTEFACTS:
        serial_bytes = (serial.output_dir / f"{name}.txt").read_bytes()
        parallel_bytes = (parallel.output_dir / f"{name}.txt").read_bytes()
        assert serial_bytes == parallel_bytes, (
            f"{name}: parallel+cached sweep diverged from the serial sweep"
        )


def test_warm_cache_rerun_executes_zero_jobs(sweeps):
    warm = sweeps["warm"]
    stats = warm.stats.as_dict()
    assert stats["executed"] == 0
    assert stats["cache_misses"] == 0
    assert stats["cache_hits"] > 0
    for warm_run, serial_run in zip(warm.runs, sweeps["serial"].runs):
        assert warm_run.text == serial_run.text


def test_serial_engine_ran_uncached(sweeps):
    stats = sweeps["serial"].stats.as_dict()
    assert stats["cache_hits"] == 0
    assert stats["executed"] > 0


def test_serial_and_parallel_metrics_agree(sweeps):
    """Metric folding happens in submission order, so the deterministic
    subset of the registry is identical between serial and parallel
    execution of the same sweep.  (The cache gauges and the executed-job
    counter legitimately differ: the serial engine is uncached and
    re-executes cross-batch duplicates the parallel engine's cache
    resolves.)"""
    serial = sweeps["serial"].metrics
    parallel = sweeps["parallel"].metrics
    assert serial is not None and parallel is not None
    deterministic = (
        "repro_engine_jobs_submitted_total",
        "repro_artefacts_regenerated_total",
        "repro_job_avg_temp_c",
        "repro_job_execution_time_s",
    )
    serial_dump = serial.as_dict()
    parallel_dump = parallel.as_dict()
    for name in deterministic:
        assert serial_dump[name] == parallel_dump[name], (
            f"metric {name} differs between serial and parallel sweeps"
        )
    assert serial_dump["repro_artefacts_regenerated_total"]["value"] == float(
        len(ARTEFACTS)
    )
    # Per-job rollups cover every submitted job exactly once.
    assert (
        serial_dump["repro_job_avg_temp_c"]["count"]
        == serial_dump["repro_engine_jobs_submitted_total"]["value"]
    )


def test_scaled_sweeps_never_touch_committed_results(sweeps):
    committed = (Path(__file__).resolve().parent.parent / "results").resolve()
    for report in sweeps.values():
        assert report.output_dir.resolve() != committed
        assert committed not in report.output_dir.resolve().parents
