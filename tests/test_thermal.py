"""Tests for the thermal substrate: floorplan, RC model, sensors, profile."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import SensorConfig, ThermalConfig, default_reliability_config
from repro.thermal.floorplan import Floorplan
from repro.thermal.profile import ThermalProfile
from repro.thermal.rc_model import RCThermalModel
from repro.thermal.sensors import SensorBank

THERMAL = ThermalConfig()


# ---------------------------------------------------------------------------
# Floorplan
# ---------------------------------------------------------------------------


def test_grid_neighbours():
    fp = Floorplan.grid_2x2()
    assert fp.neighbours(0) == (1, 2)
    assert fp.neighbours(3) == (1, 2)


def test_line_floorplan():
    fp = Floorplan.line(4)
    assert fp.neighbours(0) == (1,)
    assert fp.neighbours(1) == (0, 2)


def test_invalid_adjacency_rejected():
    with pytest.raises(ValueError):
        Floorplan(num_cores=2, adjacency=((0, 5),))
    with pytest.raises(ValueError):
        Floorplan(num_cores=2, adjacency=((1, 1),))


def test_conductance_matrix_symmetric_positive():
    fp = Floorplan.grid_2x2()
    g = fp.conductance_matrix(THERMAL)
    assert np.allclose(g, g.T)
    eigenvalues = np.linalg.eigvalsh(g)
    assert np.all(eigenvalues > 0)  # grounded network is positive definite


def test_conductance_rows_sum_to_ambient_leg():
    fp = Floorplan.grid_2x2()
    g = fp.conductance_matrix(THERMAL)
    sums = g.sum(axis=1)
    assert np.allclose(sums[: fp.num_cores], 0.0, atol=1e-12)
    assert sums[-1] == pytest.approx(THERMAL.spreader_to_ambient)


# ---------------------------------------------------------------------------
# RC model
# ---------------------------------------------------------------------------


@pytest.fixture
def model():
    return RCThermalModel(Floorplan.grid_2x2(), THERMAL, dt=0.1)


def test_cold_start_at_ambient(model):
    assert np.allclose(model.core_temps_c(), THERMAL.ambient_c)


def test_zero_power_stays_at_ambient(model):
    for _ in range(100):
        model.step([0.0] * 4)
    assert np.allclose(model.core_temps_c(), THERMAL.ambient_c, atol=1e-9)


def test_step_converges_to_steady_state(model):
    powers = [5.0, 0.0, 0.0, 0.0]
    target = model.steady_state(powers)
    for _ in range(5000):
        model.step(powers)
    assert np.allclose(model.node_temps_c(), target, atol=0.01)


def test_steady_state_superposition(model):
    """The network is linear: steady states superpose."""
    ambient = model.steady_state([0.0] * 4)
    one = model.steady_state([4.0, 0.0, 0.0, 0.0]) - ambient
    two = model.steady_state([0.0, 3.0, 0.0, 0.0]) - ambient
    both = model.steady_state([4.0, 3.0, 0.0, 0.0]) - ambient
    assert np.allclose(both, one + two, atol=1e-9)


def test_heated_core_is_hottest(model):
    model.warm_start([6.0, 0.0, 0.0, 0.0])
    temps = model.core_temps_c()
    assert temps[0] == max(temps)
    assert temps[0] > THERMAL.ambient_c + 5.0


def test_neighbour_coupling(model):
    """Cores adjacent to the heated core run warmer than the diagonal."""
    model.warm_start([8.0, 0.0, 0.0, 0.0])
    temps = model.core_temps_c()
    assert temps[1] > temps[3]
    assert temps[2] > temps[3]


def test_propagator_matches_euler_integration():
    coarse = RCThermalModel(Floorplan.grid_2x2(), THERMAL, dt=0.5)
    fine = RCThermalModel(Floorplan.grid_2x2(), THERMAL, dt=0.001)
    powers = [3.0, 1.0, 0.0, 2.0]
    for _ in range(10):
        coarse.step(powers)
    for _ in range(5000):
        fine.step(powers)
    assert np.allclose(coarse.core_temps_c(), fine.core_temps_c(), atol=0.05)


def test_monotone_in_power(model):
    low = model.steady_state([2.0] * 4)
    high = model.steady_state([4.0] * 4)
    assert np.all(high > low)


def test_negative_power_rejected(model):
    with pytest.raises(ValueError):
        model.step([-1.0, 0.0, 0.0, 0.0])


def test_bad_power_length_rejected(model):
    with pytest.raises(ValueError):
        model.step([1.0, 2.0])


def test_spreader_power_heats_all_cores(model):
    base = model.steady_state([0.0] * 4)
    heated = model.steady_state([0.0] * 4, spreader_power_w=5.0)
    assert np.all(heated[:4] > base[:4])


@given(st.lists(st.floats(min_value=0.0, max_value=10.0), min_size=4, max_size=4))
@settings(max_examples=50, deadline=None)
def test_steady_state_above_ambient(powers):
    model = RCThermalModel(Floorplan.grid_2x2(), THERMAL, dt=0.1)
    steady = model.steady_state(powers)
    assert np.all(steady >= THERMAL.ambient_c - 1e-9)


# ---------------------------------------------------------------------------
# Sensors
# ---------------------------------------------------------------------------


def test_sensor_quantisation():
    bank = SensorBank(4, SensorConfig(noise_std_c=0.0, quantisation_c=1.0), seed=1)
    readings = bank.read([40.2, 40.6, 41.4, 50.0])
    assert list(readings) == [40.0, 41.0, 41.0, 50.0]


def test_sensor_noise_is_reproducible():
    a = SensorBank(4, SensorConfig(), seed=5).read([40.0] * 4)
    b = SensorBank(4, SensorConfig(), seed=5).read([40.0] * 4)
    assert np.array_equal(a, b)


def test_sensor_noise_differs_across_seeds():
    readings = [SensorBank(4, SensorConfig(), seed=s).read([40.4] * 4) for s in range(20)]
    assert len({tuple(r) for r in readings}) > 1


def test_sensor_saturation():
    bank = SensorBank(1, SensorConfig(noise_std_c=0.0, min_c=0.0, max_c=100.0), seed=0)
    assert bank.read([150.0])[0] == 100.0
    assert bank.read([-20.0])[0] == 0.0


def test_sensor_wrong_width_rejected():
    bank = SensorBank(4, SensorConfig(), seed=0)
    with pytest.raises(ValueError):
        bank.read([40.0, 41.0])


def test_sensor_reset_clears_ema_state():
    """A reused bank must not leak filtered history into the next run.

    Noise and quantisation are disabled to isolate the EMA: after many
    reads at a hot temperature the filter lags a sudden cold input, but
    a reset makes the first read track the input exactly again.
    """
    config = SensorConfig(noise_std_c=0.0, quantisation_c=0.0, ema_tau_s=5.0)
    bank = SensorBank(4, config, seed=0)
    for _ in range(50):
        bank.read([80.0] * 4)
    lagged = bank.read([40.0] * 4)
    assert np.all(lagged > 60.0)  # filter still remembers the hot run
    bank.reset()
    fresh = bank.read([40.0] * 4)
    assert np.allclose(fresh, 40.0)


def test_sensor_reset_preserves_noise_stream():
    """Resetting the filter must not rewind the noise RNG — otherwise
    two back-to-back runs would draw correlated noise."""
    config = SensorConfig(quantisation_c=0.0)  # keep the raw noise visible
    bank = SensorBank(4, config, seed=5)
    first = bank.read([40.4] * 4)
    bank.reset()
    second = bank.read([40.4] * 4)
    assert not np.array_equal(second, first)  # the stream advanced
    reference = SensorBank(4, config, seed=5)
    reference.read([40.4] * 4)
    assert np.array_equal(second, reference.read([40.4] * 4))


# ---------------------------------------------------------------------------
# Profile
# ---------------------------------------------------------------------------


def test_profile_statistics():
    profile = ThermalProfile(2, 1.0)
    profile.append([40.0, 50.0])
    profile.append([42.0, 48.0])
    assert profile.average_temp_c() == pytest.approx(45.0)
    assert profile.peak_temp_c() == pytest.approx(50.0)
    assert profile.per_core_average_c() == [pytest.approx(41.0), pytest.approx(49.0)]
    assert len(profile) == 2
    assert profile.duration_s == pytest.approx(2.0)


def test_profile_window():
    profile = ThermalProfile(1, 1.0)
    for value in range(10):
        profile.append([float(value)])
    window = profile.window(2.0, 5.0)
    assert window.core_series(0) == [2.0, 3.0, 4.0]


def test_profile_window_open_end():
    profile = ThermalProfile(1, 1.0)
    for value in range(5):
        profile.append([float(value)])
    assert profile.window(3.0).core_series(0) == [3.0, 4.0]


def test_profile_tail():
    profile = ThermalProfile(1, 1.0)
    for value in range(5):
        profile.append([float(value)])
    assert profile.tail(2).core_series(0) == [3.0, 4.0]


def test_profile_worst_case_report_picks_worst_core():
    rel = default_reliability_config()
    profile = ThermalProfile(2, 1.0)
    for i in range(200):
        hot = 40.0 + (15.0 if i % 8 < 4 else 0.0)
        profile.append([hot, 36.0])
    report = profile.worst_case_report(rel)
    per_core = profile.core_reports(rel)
    assert report["cycling_mttf_years"] == pytest.approx(
        min(r.cycling_mttf_years for r in per_core)
    )
    assert report["aging_mttf_years"] == pytest.approx(
        min(r.aging_mttf_years for r in per_core)
    )


def test_profile_append_validates_width():
    profile = ThermalProfile(2, 1.0)
    with pytest.raises(ValueError):
        profile.append([40.0])


def test_profile_extend():
    a = ThermalProfile(1, 1.0)
    a.append([1.0])
    b = ThermalProfile(1, 1.0)
    b.append([2.0])
    a.extend(b)
    assert a.core_series(0) == [1.0, 2.0]
    mismatched = ThermalProfile(1, 2.0)
    with pytest.raises(ValueError):
        a.extend(mismatched)
