"""Tests for the proposed run-time manager bound to the simulator."""

import pytest

from repro.config import default_agent_config, default_reliability_config
from repro.core.manager import ProposedThermalManager
from repro.soc.simulator import Simulation
from repro.workloads.alpbench import make_application


def short_app(name="mpeg_dec", iters=15, seed=5):
    from dataclasses import replace

    from repro.workloads.application import Application

    app = make_application(name, seed=seed)
    return Application(replace(app.spec, iterations=iters), metric=app.metric, seed=seed)


@pytest.fixture
def manager():
    return ProposedThermalManager(default_agent_config(), default_reliability_config())


def test_manager_samples_at_interval(manager):
    sim = Simulation([short_app(iters=60)], manager=manager, seed=1, max_time_s=200.0)
    result = sim.run()
    # With a 3 s interval and the 200 s cap, ~66 samples.
    assert 55 <= result.perf.sample_events <= 75


def test_manager_decides_at_epochs(manager):
    sim = Simulation([short_app(iters=40)], manager=manager, seed=1, max_time_s=400.0)
    result = sim.run()
    epochs = result.manager_stats["epochs"]
    assert epochs == pytest.approx(result.total_time_s / 30.0, abs=2)
    assert result.perf.decision_events == int(epochs)


def test_manager_actuates(manager):
    sim = Simulation([short_app(iters=60)], manager=manager, seed=1, max_time_s=700.0)
    sim.run()
    assert manager.current_action is not None


def test_manager_ignores_explicit_switch_signal(manager):
    """The proposed approach must not use the application-layer signal."""
    sim = Simulation([short_app(seed=1)], manager=manager, seed=1, max_time_s=100.0)
    sim._start_next_app()
    before_epochs = manager.agent.stats.epochs
    before_visits = manager.agent.qtable.total_visits
    manager.on_app_switch(sim, sim.current_app)
    assert manager.agent.stats.epochs == before_epochs
    assert manager.agent.qtable.total_visits == before_visits


def test_manager_stats_exposed(manager):
    sim = Simulation([short_app(iters=20)], manager=manager, seed=1, max_time_s=400.0)
    result = sim.run()
    assert "epochs" in result.manager_stats
    assert "inter_events" in result.manager_stats


def test_unchanged_action_is_not_reapplied(manager):
    """Re-applying the same action must not re-pin threads."""
    sim = Simulation([short_app(iters=60)], manager=manager, seed=1, max_time_s=700.0)
    sim._start_next_app()
    action = manager.agent.actions[1]  # a pinned mapping
    manager._apply(sim, action, sim.current_app)
    migrations_after_first = sim.perf.migrations
    manager._apply(sim, action, sim.current_app)
    assert sim.perf.migrations == migrations_after_first
