"""Process sharding of ensemble jobs: partition, identity, hardening.

The contract under test (``repro.ensemble.shard``): splitting an
:class:`EnsembleJobSpec` into per-process member shards changes
*nothing* about the results — sharded == unsharded == serial, member
for member, bit for bit (compared through each summary's pickle, the
same bytes the result cache stores) — while failures of a shard are
surfaced as the engine's structured :class:`JobFailure` records instead
of aborting the whole job.
"""

import pickle

import pytest

from repro.ensemble.runner import run_ensemble_job
from repro.ensemble.shard import (
    ShardedRunReport,
    run_sharded_ensemble_job,
    shard_members,
)
from repro.experiments.engine.cache import ResultCache
from repro.experiments.engine.scheduler import ExperimentEngine
from repro.experiments.engine.spec import EnsembleJobSpec, job_key, workload_job
from repro.experiments.engine.worker import execute_job

#: Small-but-real member grid shared by the identity tests.
SCALE = 0.05


def _spec(members: int, app: str = "tachyon", policy: str = "linux"):
    return EnsembleJobSpec(
        members=tuple(
            workload_job(
                app, policy=policy, seed=1 + offset, iteration_scale=SCALE
            )
            for offset in range(members)
        )
    )


def _pickles(summaries):
    return [pickle.dumps(summary) for summary in summaries]


# ----------------------------------------------------------------------
# Partition
# ----------------------------------------------------------------------
class TestShardMembers:
    def test_contiguous_balanced_order_preserving(self):
        parts = shard_members(7, 3)
        assert parts == [range(0, 3), range(3, 5), range(5, 7)]

    def test_covers_every_member_exactly_once(self):
        for count in (1, 2, 5, 16, 17):
            for shards in (1, 2, 3, 8, 40):
                parts = shard_members(count, shards)
                flat = [index for part in parts for index in part]
                assert flat == list(range(count)), (count, shards)
                assert all(len(part) > 0 for part in parts)

    def test_more_shards_than_members_degenerates_to_singletons(self):
        assert shard_members(2, 5) == [range(0, 1), range(1, 2)]

    def test_empty_and_invalid(self):
        assert shard_members(0, 4) == []
        with pytest.raises(ValueError):
            shard_members(-1, 2)
        with pytest.raises(ValueError):
            shard_members(4, 0)

    def test_deterministic(self):
        assert shard_members(13, 4) == shard_members(13, 4)


# ----------------------------------------------------------------------
# Sharded == unsharded == serial
# ----------------------------------------------------------------------
def test_sharded_equals_unsharded_equals_serial():
    """The same job at jobs 1/2/3 and through ``run_ensemble_job`` and
    the scalar worker path produces byte-identical member summaries."""
    spec = _spec(5)
    unsharded = _pickles(run_ensemble_job(spec, cache=None))
    for jobs in (1, 2, 3):
        engine = ExperimentEngine(jobs=jobs, cache=None)
        report = run_sharded_ensemble_job(spec, engine, cache=None)
        assert report.ok
        assert report.shards == min(jobs, 5)
        assert report.executed_members == 5
        assert _pickles(report.summaries) == unsharded, f"jobs={jobs}"
    # Serial scalar execution of one member — the path a cache producer
    # takes — yields the same bytes as the sharded member summary.
    scalar = pickle.dumps(execute_job(spec.members[2]))
    assert scalar == unsharded[2]


def test_shards_share_the_member_level_cache(tmp_path):
    """A sharded run populates per-member scalar keys; a subsequent
    unsharded run (and a wider sharded one) hits them."""
    cache = ResultCache(root=tmp_path / "cache")
    spec = _spec(4)
    engine = ExperimentEngine(jobs=2, cache=None)
    first = run_sharded_ensemble_job(spec, engine, cache=cache)
    assert first.ok and first.executed_members == 4 and first.cache_hits == 0

    # Unsharded consumer: every member resolves from the cache.
    warm = run_ensemble_job(spec, cache=cache)
    assert _pickles(warm) == _pickles(first.summaries)
    # Wider job: the overlapping seeds hit, only the new members run.
    wider = _spec(6)
    engine2 = ExperimentEngine(jobs=2, cache=None)
    second = run_sharded_ensemble_job(wider, engine2, cache=cache)
    assert second.ok
    assert second.cache_hits == 4
    assert second.executed_members == 2
    assert _pickles(second.summaries[:4]) == _pickles(first.summaries)


# ----------------------------------------------------------------------
# Failure surfacing
# ----------------------------------------------------------------------
def test_failed_shard_surfaces_jobfailure_and_partial_results(monkeypatch):
    """One shard exhausting its retries yields None summaries for its
    members plus a structured JobFailure; the other shards' results
    survive."""
    import repro.experiments.engine.scheduler as scheduler_module

    real_execute = scheduler_module.execute_job
    calls = {"n": 0}

    def flaky(spec, *args, **kwargs):
        if isinstance(spec, EnsembleJobSpec) and spec.members[0].seed == 1:
            calls["n"] += 1
            raise RuntimeError("boom")
        return real_execute(spec, *args, **kwargs)

    monkeypatch.setattr(scheduler_module, "execute_job", flaky)
    spec = _spec(4)
    engine = ExperimentEngine(jobs=1, cache=None, max_job_attempts=2)
    report = run_sharded_ensemble_job(spec, engine, cache=None)
    assert not report.ok
    assert calls["n"] == 2  # bounded retries were attempted
    # Failures are member-granular: the single failed 4-member shard
    # surfaces one JobFailure per member, keyed by the member's scalar
    # job key and labelled with the member's label.
    assert len(report.failures) == 4
    member_keys = [job_key(member) for member in spec.members]
    assert [failure.key for failure in report.failures] == member_keys
    assert [failure.label for failure in report.failures] == [
        member.label for member in spec.members
    ]
    for failure in report.failures:
        assert failure.error_type == "RuntimeError"
        assert failure.attempts == 2
    assert engine.failures == report.failures
    # jobs=1 -> a single shard holds every member; all of them are None.
    assert report.summaries == [None] * 4


def test_engine_run_collect_does_not_raise(monkeypatch):
    """run_collect returns (outcomes, failures) instead of raising
    EngineJobError, and leaves the cache out of the loop."""
    import repro.experiments.engine.scheduler as scheduler_module

    def always_fail(spec, *args, **kwargs):
        raise ValueError("nope")

    monkeypatch.setattr(scheduler_module, "execute_job", always_fail)
    engine = ExperimentEngine(jobs=1, cache=None, max_job_attempts=1)
    outcomes, failures = engine.run_collect([_spec(2)])
    assert outcomes == {}
    # One failure per member of the two-member ensemble spec.
    assert len(failures) == 2
    assert all(failure.error_type == "ValueError" for failure in failures)
    assert engine.run_collect([]) == ({}, [])


def test_report_ok_requires_every_member():
    report = ShardedRunReport(summaries=[None])
    assert not report.ok
    report = ShardedRunReport(summaries=[])
    assert report.ok
