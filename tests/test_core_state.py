"""Tests for the (stress, aging) state space."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.state import EpochObservation, StateSpace


@pytest.fixture
def states(reliability):
    return StateSpace(3, 3, reliability)


def obs(stress, aging):
    return EpochObservation(
        stress_norm=stress, aging_norm=aging, raw_stress_rate=0.0, raw_aging_rate=1.0
    )


def test_num_states(states):
    assert states.num_states == 9


def test_rejects_tiny_spaces(reliability):
    with pytest.raises(ValueError):
        StateSpace(1, 3, reliability)


def test_bins_cover_unit_interval(states):
    assert states.stress_bin(0.0) == 0
    assert states.stress_bin(0.999) == 2
    assert states.stress_bin(1.0) == 2  # clamped into the last bin
    assert states.aging_bin(0.5) == 1


def test_state_of_roundtrip(states):
    for stress in (0.1, 0.5, 0.9):
        for aging in (0.1, 0.5, 0.9):
            state = states.state_of(obs(stress, aging))
            a_bin, s_bin = states.bins_of(state)
            assert a_bin == states.aging_bin(aging)
            assert s_bin == states.stress_bin(stress)


def test_bins_of_validates(states):
    with pytest.raises(ValueError):
        states.bins_of(9)
    with pytest.raises(ValueError):
        states.bins_of(-1)


def test_unsafe_zone(states):
    assert states.is_unsafe(obs(0.95, 0.1))
    assert states.is_unsafe(obs(0.1, 0.95))
    assert not states.is_unsafe(obs(0.5, 0.5))


def test_describe(states):
    text = states.describe(4)
    assert "aging[1/3]" in text and "stress[1/3]" in text


def test_observe_constant_profile(states):
    samples = [[40.0] * 20 for _ in range(4)]
    observation = states.observe(samples, 3.0)
    assert observation.stress_norm == 0.0
    assert observation.raw_aging_rate > 1.0  # 40 C > idle reference


def test_observe_idle_profile_is_origin(states, reliability):
    samples = [[reliability.reference_temp_c] * 20 for _ in range(4)]
    observation = states.observe(samples, 3.0)
    assert observation.aging_norm == pytest.approx(0.0, abs=1e-9)
    assert states.state_of(observation) == 0


def test_observe_cycling_profile_has_stress(states):
    series = [40.0, 55.0] * 10
    observation = states.observe([series], 3.0)
    assert observation.stress_norm > 0.0


def test_observe_uses_worst_core(states):
    hot = [70.0] * 20
    cold = [35.0] * 20
    worst = states.observe([cold, hot, cold, cold], 3.0)
    only_cold = states.observe([cold, cold, cold, cold], 3.0)
    assert worst.aging_norm > only_cold.aging_norm


def test_observe_trailing_half_aging(states):
    """Aging reflects the destination temperature of a ramp epoch."""
    ramp = [40.0 + 3.0 * i for i in range(10)]  # 40 -> 67
    steady_mean = states.observe([[sum(ramp) / len(ramp)] * 10], 3.0)
    ramped = states.observe([ramp], 3.0)
    assert ramped.aging_norm > steady_mean.aging_norm


def test_observe_context_counts_boundary_cycles(states):
    """A hot->cold step across the epoch boundary is invisible without
    context and visible with it."""
    previous = [[60.0] * 10]
    current = [[40.0] * 10]
    without = states.observe(current, 3.0)
    with_ctx = states.observe(current, 3.0, context_samples=previous)
    assert with_ctx.stress_norm > without.stress_norm


@given(st.floats(min_value=0.0, max_value=1.0), st.floats(min_value=0.0, max_value=1.0))
@settings(max_examples=100, deadline=None)
def test_every_observation_maps_to_valid_state(stress, aging):
    from repro.config import default_reliability_config

    states = StateSpace(4, 3, default_reliability_config())
    state = states.state_of(obs(stress, aging))
    assert 0 <= state < states.num_states
