"""Property-based tests of the reliability mathematics.

Three layers of evidence that the lifetime models are implemented
correctly:

* the stack-based rainflow counter is compared against an independent
  brute-force transcription of the ASTM E1049-85 counting rules over
  hundreds of randomized temperature series (exact multiset equality);
* hypothesis-driven invariants for rainflow, Coffin-Manson (Eq. 3) and
  Miner's rule (Eqs. 4-5): bounds, monotonicity, and the
  ``MTTF = total_time / damage`` identity;
* :func:`~repro.reliability.mttf.evaluate_profile` sanity under extreme
  traces (square waves at the temperature limits, monotone ramps,
  constant profiles): MTTFs stay positive and the cycling channel never
  exceeds its baseline bound.
"""

import math
from typing import List, Sequence, Tuple

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import default_reliability_config
from repro.reliability.coffin_manson import cycles_to_failure
from repro.reliability.miner import effective_cycles_to_failure, miner_mttf_seconds
from repro.reliability.mttf import (
    calibrate_atc,
    evaluate_profile,
    resolved_atc,
    sofr_mttf_years,
)
from repro.reliability.rainflow import (
    ThermalCycle,
    count_cycles,
    extract_reversals,
    max_amplitude,
    total_cycle_count,
)

# ---------------------------------------------------------------------------
# Independent brute-force ASTM E1049-85 reference implementation
# ---------------------------------------------------------------------------


def _reference_reversals(series: Sequence[float]) -> List[float]:
    """Reversal extraction, written independently of the production code."""
    collapsed: List[float] = []
    for value in series:
        value = float(value)
        if not collapsed or value != collapsed[-1]:
            collapsed.append(value)
    if len(collapsed) < 2:
        return []
    kept = [collapsed[0]]
    for prev, cur, nxt in zip(collapsed, collapsed[1:], collapsed[2:]):
        if (cur > prev and cur > nxt) or (cur < prev and cur < nxt):
            kept.append(cur)
    kept.append(collapsed[-1])
    return kept


def _reference_count(series: Sequence[float]) -> List[Tuple[float, float, float]]:
    """Literal transcription of the ASTM E1049-85 rainflow rules.

    After every counted cycle the scan restarts from the beginning of
    the (mutated) reversal list — the textbook O(n^2) formulation the
    one-pass stack algorithm is an optimisation of.  Returns
    ``(low, high, weight)`` tuples with zero-amplitude pairs dropped.
    """
    points = _reference_reversals(series)
    counted: List[Tuple[float, float, float]] = []
    while len(points) >= 3:
        progressed = False
        for j in range(len(points) - 2):
            y_range = abs(points[j + 1] - points[j])
            x_range = abs(points[j + 2] - points[j + 1])
            if x_range < y_range:
                continue
            if j == 0:
                # Range Y contains the starting point: count a half
                # cycle and retire the starting point.
                counted.append((points[0], points[1], 0.5))
                del points[0]
            else:
                # Interior range: one full cycle; remove its endpoints.
                counted.append((points[j], points[j + 1], 1.0))
                del points[j + 1]
                del points[j]
            progressed = True
            break
        if not progressed:
            break
    for a, b in zip(points, points[1:]):
        counted.append((a, b, 0.5))
    # Key on (amplitude, max, weight): both implementations compute the
    # amplitude as ``high - low`` with identical arithmetic, so the
    # comparison is exact (the derived ``min_c`` re-rounds by one ulp).
    return [
        (max(a, b) - min(a, b), max(a, b), weight)
        for a, b, weight in counted
        if a != b
    ]


def _as_multiset(cycles: Sequence[ThermalCycle]) -> List[Tuple[float, float, float]]:
    return sorted(
        (cycle.amplitude_k, cycle.max_c, cycle.count) for cycle in cycles
    )


def _check_against_reference(series: Sequence[float]) -> None:
    produced = _as_multiset(count_cycles(series))
    expected = sorted(_reference_count(series))
    assert produced == expected, (
        f"rainflow mismatch for series {list(series)!r}:\n"
        f"  production: {produced}\n  reference : {expected}"
    )


class TestRainflowAgainstBruteForce:
    def test_textbook_examples(self):
        # The canonical ASTM E1049 example history (values as ranges).
        _check_against_reference([-2.0, 1.0, -3.0, 5.0, -1.0, 3.0, -4.0, 4.0, -2.0])
        _check_against_reference([40.0, 60.0, 40.0, 60.0, 40.0])
        _check_against_reference([50.0, 50.0, 50.0])
        _check_against_reference([40.0, 50.0])
        _check_against_reference([])
        _check_against_reference([45.0])

    def test_randomized_continuous_series(self):
        # 300 random continuous series: ties are measure-zero, exercises
        # the generic interleaving of full and half cycles.
        checked = 0
        for seed in range(300):
            rng = np.random.default_rng(seed)
            length = int(rng.integers(0, 40))
            series = rng.uniform(25.0, 95.0, size=length)
            _check_against_reference(series.tolist())
            checked += 1
        assert checked == 300

    def test_randomized_quantized_series(self):
        # 300 quantized series: repeated values, plateaus and exact
        # X == Y range ties, the branchy corners of the algorithm.
        checked = 0
        for seed in range(300):
            rng = np.random.default_rng(10_000 + seed)
            length = int(rng.integers(0, 30))
            series = np.round(rng.uniform(30.0, 80.0, size=length) / 5.0) * 5.0
            _check_against_reference(series.tolist())
            checked += 1
        assert checked == 300

    def test_randomized_random_walks(self):
        # Random walks produce long monotone stretches and nested ranges.
        for seed in range(50):
            rng = np.random.default_rng(20_000 + seed)
            steps = rng.choice([-10.0, -5.0, 0.0, 5.0, 10.0], size=25)
            series = 55.0 + np.cumsum(steps)
            _check_against_reference(series.tolist())


# A temperature-series strategy for the hypothesis invariants.
_temps = st.lists(
    st.floats(min_value=20.0, max_value=110.0, allow_nan=False,
              allow_infinity=False, width=32),
    min_size=0,
    max_size=60,
)


class TestRainflowInvariants:
    @given(series=_temps)
    @settings(max_examples=200, deadline=None)
    def test_counts_and_amplitudes_bounded(self, series):
        cycles = count_cycles(series)
        reversals = extract_reversals(series)
        # Summing half cycles as 0.5, the count is bounded by half the
        # number of reversal points.
        assert total_cycle_count(cycles) <= len(reversals) / 2 + 1e-9
        if series:
            series_range = max(series) - min(series)
            assert max_amplitude(cycles) <= series_range + 1e-9
        for cycle in cycles:
            assert cycle.count in (0.5, 1.0)
            assert cycle.amplitude_k > 0.0
            assert cycle.min_c >= min(series) - 1e-9
            assert cycle.max_c <= max(series) + 1e-9
            assert cycle.mean_c == pytest.approx(
                0.5 * (cycle.min_c + cycle.max_c)
            )

    @given(series=_temps)
    @settings(max_examples=200, deadline=None)
    def test_matches_brute_force_reference(self, series):
        _check_against_reference(series)

    def test_reversal_of_series_preserves_total_range_damage(self):
        # Deterministic regression: a pure triangle wave counts the same
        # forwards and backwards.
        series = [40.0, 70.0, 40.0, 70.0, 40.0, 70.0, 40.0]
        forward = _as_multiset(count_cycles(series))
        backward = _as_multiset(count_cycles(list(reversed(series))))
        assert forward == backward


class TestCoffinMansonMonotonicity:
    @pytest.fixture(scope="class")
    def config(self):
        return default_reliability_config()

    def _cycle(self, amplitude_k, max_c):
        return ThermalCycle(
            amplitude_k=amplitude_k,
            mean_c=max_c - amplitude_k / 2.0,
            max_c=max_c,
            count=1.0,
        )

    def test_elastic_cycles_never_fail(self, config):
        amplitude = config.elastic_threshold_k
        assert cycles_to_failure(self._cycle(amplitude, 80.0), config) == math.inf
        assert cycles_to_failure(self._cycle(amplitude / 2, 80.0), config) == math.inf

    @given(
        base=st.floats(min_value=1.0, max_value=40.0),
        extra=st.floats(min_value=0.5, max_value=40.0),
        max_c=st.floats(min_value=30.0, max_value=110.0),
    )
    @settings(max_examples=200, deadline=None)
    def test_larger_amplitude_fails_sooner(self, config, base, extra, max_c):
        amplitude = config.elastic_threshold_k + base
        smaller = cycles_to_failure(self._cycle(amplitude, max_c), config)
        larger = cycles_to_failure(self._cycle(amplitude + extra, max_c), config)
        assert 0.0 < larger < smaller

    @given(
        amplitude=st.floats(min_value=6.0, max_value=50.0),
        max_c=st.floats(min_value=30.0, max_value=100.0),
        hotter=st.floats(min_value=1.0, max_value=30.0),
    )
    @settings(max_examples=200, deadline=None)
    def test_hotter_peak_fails_sooner(self, config, amplitude, max_c, hotter):
        cool = cycles_to_failure(self._cycle(amplitude, max_c), config)
        hot = cycles_to_failure(self._cycle(amplitude, max_c + hotter), config)
        assert 0.0 < hot < cool

    def test_atc_scales_linearly(self, config):
        from dataclasses import replace

        cycle = self._cycle(20.0, 80.0)
        base = cycles_to_failure(cycle, config)
        atc = resolved_atc(config)
        doubled = replace(config, cycling_scale_atc=2.0 * atc)
        assert cycles_to_failure(cycle, doubled) == pytest.approx(2.0 * base)

    def test_calibration_anchor(self, config):
        # The auto-calibrated A_TC makes the documented reference
        # profile (10 K cycles, 20 s period, 55 C peak) hit exactly the
        # configured reference MTTF.
        from repro.units import years_to_seconds

        cycle = ThermalCycle(amplitude_k=10.0, mean_c=50.0, max_c=55.0, count=1.0)
        mttf_s = miner_mttf_seconds([cycle], total_time_s=20.0, config=config)
        assert calibrate_atc(config) > 0.0
        assert mttf_s == pytest.approx(
            years_to_seconds(config.cycling_reference_mttf_years), rel=1e-9
        )


#: A strategy for plastic (damage-causing) thermal cycles.
_cycles = st.lists(
    st.builds(
        lambda amp, max_c, half: ThermalCycle(
            amplitude_k=amp,
            mean_c=max_c - amp / 2.0,
            max_c=max_c,
            count=0.5 if half else 1.0,
        ),
        amp=st.floats(min_value=6.0, max_value=60.0),
        max_c=st.floats(min_value=30.0, max_value=110.0),
        half=st.booleans(),
    ),
    min_size=1,
    max_size=12,
)


class TestMinerRule:
    @pytest.fixture(scope="class")
    def config(self):
        return default_reliability_config()

    @given(cycles=_cycles, total_time_s=st.floats(min_value=1.0, max_value=1e5))
    @settings(max_examples=150, deadline=None)
    def test_mttf_is_total_time_over_damage(self, config, cycles, total_time_s):
        # Eqs. 4-5 collapse to MTTF = sum(t_i) / damage.
        damage = sum(
            cycle.count / cycles_to_failure(cycle, config) for cycle in cycles
        )
        expected = total_time_s / damage if damage > 0.0 else math.inf
        assert miner_mttf_seconds(cycles, total_time_s, config) == pytest.approx(
            expected
        )

    @given(cycles=_cycles, total_time_s=st.floats(min_value=1.0, max_value=1e5))
    @settings(max_examples=150, deadline=None)
    def test_adding_a_cycle_never_increases_mttf(self, config, cycles, total_time_s):
        before = miner_mttf_seconds(cycles, total_time_s, config)
        extra = ThermalCycle(amplitude_k=25.0, mean_c=60.0, max_c=72.5, count=1.0)
        after = miner_mttf_seconds(cycles + [extra], total_time_s, config)
        assert after <= before
        assert after > 0.0

    def test_elastic_cycles_contribute_no_damage(self, config):
        plastic = ThermalCycle(amplitude_k=20.0, mean_c=60.0, max_c=70.0, count=1.0)
        elastic = ThermalCycle(amplitude_k=1.0, mean_c=60.0, max_c=60.5, count=1.0)
        alone = miner_mttf_seconds([plastic], 100.0, config)
        mixed = miner_mttf_seconds([plastic, elastic], 100.0, config)
        assert mixed == pytest.approx(alone)
        assert miner_mttf_seconds([elastic], 100.0, config) == math.inf
        assert effective_cycles_to_failure([], config) == math.inf

    def test_harmonic_mean_between_extremes(self, config):
        weak = ThermalCycle(amplitude_k=40.0, mean_c=70.0, max_c=90.0, count=1.0)
        mild = ThermalCycle(amplitude_k=10.0, mean_c=50.0, max_c=55.0, count=1.0)
        n_weak = cycles_to_failure(weak, config)
        n_mild = cycles_to_failure(mild, config)
        n_eff = effective_cycles_to_failure([weak, mild], config)
        assert n_weak < n_eff < n_mild


class TestMttfExtremeProfiles:
    @pytest.fixture(scope="class")
    def config(self):
        return default_reliability_config()

    def _assert_sane(self, report, config):
        assert report.aging_mttf_years > 0.0
        assert report.cycling_mttf_years > 0.0
        assert math.isfinite(report.aging_mttf_years)
        # The SOFR combination with the baseline channel bounds cycling
        # MTTF above by the baseline, even for brutal profiles.
        assert report.cycling_mttf_years <= config.baseline_mttf_years + 1e-9
        assert report.num_cycles >= 0.0
        assert report.stress >= 0.0
        combined = report.combined_mttf_years
        assert 0.0 < combined <= min(
            report.aging_mttf_years, report.cycling_mttf_years
        ) + 1e-9

    def test_extreme_square_wave(self, config):
        series = [25.0, 110.0] * 500
        report = evaluate_profile(series, sample_period_s=1.0, config=config)
        self._assert_sane(report, config)
        # A near-limit square wave must be dramatically worse than idle.
        assert report.cycling_mttf_years < 0.1 * config.baseline_mttf_years
        assert report.aging_mttf_years < config.baseline_mttf_years

    def test_constant_profile_is_all_elastic(self, config):
        report = evaluate_profile([55.0] * 1000, sample_period_s=1.0, config=config)
        self._assert_sane(report, config)
        assert report.num_cycles == 0.0
        assert report.cycling_mttf_years == pytest.approx(config.baseline_mttf_years)

    def test_monotone_ramp_counts_at_most_one_half_cycle(self, config):
        series = list(np.linspace(30.0, 100.0, 200))
        report = evaluate_profile(series, sample_period_s=1.0, config=config)
        self._assert_sane(report, config)
        assert report.num_cycles == pytest.approx(0.5)

    def test_empty_profile_reports_baseline(self, config):
        report = evaluate_profile([], sample_period_s=1.0, config=config)
        assert report.aging_mttf_years == config.baseline_mttf_years
        assert report.cycling_mttf_years == config.baseline_mttf_years
        assert report.num_cycles == 0.0

    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        length=st.integers(min_value=1, max_value=300),
    )
    @settings(max_examples=100, deadline=None)
    def test_random_extreme_profiles_stay_sane(self, config, seed, length):
        rng = np.random.default_rng(seed)
        series = rng.uniform(20.0, 115.0, size=length).tolist()
        report = evaluate_profile(series, sample_period_s=3.0, config=config)
        self._assert_sane(report, config)
        assert report.peak_temp_c == pytest.approx(max(series))
        assert report.average_temp_c == pytest.approx(sum(series) / len(series))

    def test_sofr_combination_properties(self):
        assert sofr_mttf_years(10.0, 10.0) == pytest.approx(5.0)
        assert sofr_mttf_years(math.inf, 10.0) == pytest.approx(10.0)
        assert sofr_mttf_years(math.inf, math.inf) == math.inf
        assert sofr_mttf_years(0.0, 10.0) == 0.0
