"""Tests for the Eq. 8 reward and the learning-rate schedule."""

import math

import pytest

from repro.core.reward import RewardFunction
from repro.core.schedule import AlphaSchedule, LearningPhase
from repro.core.state import EpochObservation, StateSpace


def obs(stress, aging):
    return EpochObservation(stress, aging, 0.0, 1.0)


@pytest.fixture
def reward_fn(agent_config, reliability):
    return RewardFunction(agent_config, StateSpace(3, 3, reliability))


# ---------------------------------------------------------------------------
# Reward (Eq. 8)
# ---------------------------------------------------------------------------


def test_unsafe_zone_is_penalised(reward_fn):
    breakdown = reward_fn.evaluate(obs(0.95, 0.5), performance=1.0, constraint=0.5)
    assert breakdown.unsafe
    assert breakdown.total < 0.0


def test_unsafe_penalty_grows_with_depth(reward_fn):
    shallow = reward_fn.evaluate(obs(0.7, 0.7), 1.0, 0.5).total
    deep = reward_fn.evaluate(obs(1.0, 1.0), 1.0, 0.5).total
    assert deep < shallow < 0.0


def test_safe_reward_positive_when_performance_met(reward_fn):
    breakdown = reward_fn.evaluate(obs(0.2, 0.2), performance=1.0, constraint=0.5)
    assert not breakdown.unsafe
    assert breakdown.total > 0.0
    assert breakdown.performance_term == 0.0


def test_thermal_term_monotone_in_safety(reward_fn):
    """Cooler, less-cycling epochs never earn less (the Gaussian blend
    must not invert the preference)."""
    values = [reward_fn.thermal_term(obs(s, s)) for s in (0.0, 0.2, 0.4, 0.6)]
    assert all(a >= b for a, b in zip(values, values[1:]))


def test_performance_shortfall_penalised(reward_fn):
    met = reward_fn.evaluate(obs(0.2, 0.2), performance=0.5, constraint=0.5).total
    missed = reward_fn.evaluate(obs(0.2, 0.2), performance=0.25, constraint=0.5).total
    assert missed < met


def test_no_bonus_above_constraint(reward_fn):
    at = reward_fn.evaluate(obs(0.2, 0.2), performance=0.5, constraint=0.5).total
    above = reward_fn.evaluate(obs(0.2, 0.2), performance=5.0, constraint=0.5).total
    assert above == pytest.approx(at)


def test_importance_pair_selection(reward_fn, agent_config):
    assert reward_fn.importance(obs(0.5, 0.1)) == agent_config.weight_stress_dominant
    assert reward_fn.importance(obs(0.1, 0.5)) == agent_config.weight_aging_dominant


def test_gaussian_weight_peaks_at_centre(reward_fn, agent_config):
    centre = agent_config.gaussian_centre
    assert reward_fn.gaussian_weight(centre) == pytest.approx(1.0)
    assert reward_fn.gaussian_weight(0.0) < 1.0
    assert reward_fn.gaussian_weight(1.0) < 1.0


def test_zero_constraint_disables_perf_term(reward_fn):
    assert reward_fn.performance_term(0.0, 0.0) == 0.0


# ---------------------------------------------------------------------------
# Alpha schedule / learning phases
# ---------------------------------------------------------------------------


def test_alpha_starts_at_one():
    schedule = AlphaSchedule(8.0, 0.05, table_size=72)
    assert schedule.alpha == 1.0
    assert schedule.phase is LearningPhase.EXPLORATION


def test_alpha_decays_exponentially():
    schedule = AlphaSchedule(8.0, 0.05, table_size=72)
    for _ in range(8):
        schedule.advance()
    assert schedule.alpha == pytest.approx(math.exp(-1.0))


def test_phase_transitions():
    schedule = AlphaSchedule(8.0, 0.05, table_size=72)
    phases = []
    for _ in range(40):
        phases.append(schedule.phase)
        schedule.advance()
    assert phases[0] is LearningPhase.EXPLORATION
    assert LearningPhase.EXPLORATION_EXPLOITATION in phases
    assert phases[-1] is LearningPhase.EXPLOITATION


def test_exploitation_epsilon_is_zero():
    schedule = AlphaSchedule(8.0, 0.05, table_size=72)
    while schedule.phase is not LearningPhase.EXPLOITATION:
        schedule.advance()
    assert schedule.epsilon == 0.0


def test_exploration_just_ended_fires_once():
    schedule = AlphaSchedule(8.0, 0.05, table_size=72)
    fired = 0
    for _ in range(30):
        schedule.advance()
        if schedule.exploration_just_ended():
            fired += 1
    assert fired == 1


def test_tau_scales_with_table_size():
    small = AlphaSchedule(8.0, 0.05, table_size=72)
    large = AlphaSchedule(8.0, 0.05, table_size=288)
    assert large.tau == pytest.approx(2 * small.tau)


def test_restart_intra_resumes_mid_schedule():
    schedule = AlphaSchedule(8.0, 0.05, table_size=72, alpha_intra=0.15)
    for _ in range(40):
        schedule.advance()
    schedule.restart_intra()
    assert schedule.alpha == pytest.approx(0.15)
    assert schedule.phase is LearningPhase.EXPLORATION_EXPLOITATION


def test_restart_inter_resets_fully():
    schedule = AlphaSchedule(8.0, 0.05, table_size=72)
    for _ in range(40):
        schedule.advance()
    schedule.restart_inter()
    assert schedule.alpha == 1.0
    assert schedule.epoch == 0
    assert schedule.phase is LearningPhase.EXPLORATION
    # The snapshot trigger re-arms after an inter reset.
    fired = 0
    for _ in range(30):
        schedule.advance()
        if schedule.exploration_just_ended():
            fired += 1
    assert fired == 1


def test_schedule_validation():
    with pytest.raises(ValueError):
        AlphaSchedule(0.0, 0.05, table_size=72)
    with pytest.raises(ValueError):
        AlphaSchedule(8.0, 0.9, table_size=72)
