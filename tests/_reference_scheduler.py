"""Reference copy of the seed scheduler (pre fast-path), for equivalence tests.

This is the seed implementation of :mod:`repro.sched.scheduler` preserved
verbatim: every placement decision recomputes the per-core runnable counts
with O(threads x cores) scans, phase 3 rebuilds the run/wait lists with
list comprehensions, and ``np.argmax``/``np.argmin`` pick the
busiest/idlest cores.  The randomized property test in
``test_sched_fastpath.py`` drives this class and the production fast path
with identical inputs and asserts identical placements, migration counts
and :class:`~repro.sched.scheduler.CoreLoad` values.

Do not optimise this file: its value is being the old semantics.
"""


from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.sched.affinity import AffinityMapping
from repro.sched.perf import PerfCounters
from repro.sched.scheduler import CoreLoad
from repro.workloads.thread_model import SimThread


class ReferenceScheduler:
    """Thread placement and execution for one chip.

    Parameters
    ----------
    num_cores:
        Number of cores on the chip.
    perf:
        Counter sink for migrations (optional).
    rebalance_period_s:
        How often the periodic load balancer runs.
    packing_threshold:
        Smoothed busy-fraction below which wake placement packs threads
        onto already-busy cores.
    pack_cap:
        Maximum runnable threads a core accepts while packing.
    idle_activity:
        Activity factor contributed by a waiting (non-runnable) thread.
    """

    def __init__(
        self,
        num_cores: int,
        perf: Optional[PerfCounters] = None,
        rebalance_period_s: float = 1.0,
        idle_pull_delay_s: float = 1.0,
        packing_threshold: float = 0.60,
        pack_cap: int = 3,
        idle_activity: float = 0.02,
    ) -> None:
        if num_cores <= 0:
            raise ValueError("need at least one core")
        self.num_cores = num_cores
        self.perf = perf if perf is not None else PerfCounters()
        self.rebalance_period_s = rebalance_period_s
        self.idle_pull_delay_s = idle_pull_delay_s
        self.packing_threshold = packing_threshold
        self.pack_cap = pack_cap
        self.idle_activity = idle_activity

        self._threads: List[SimThread] = []
        self._mapping: Optional[AffinityMapping] = None
        self._core_of: Dict[SimThread, int] = {}
        self._prev_runnable: Dict[SimThread, bool] = {}
        self._stalled: set = set()
        self._stall_s = np.zeros(num_cores)
        self._idle_for_s = np.zeros(num_cores)
        self._busy_ewma = 0.0
        self._since_rebalance_s = 0.0

    # ------------------------------------------------------------------
    # Thread and mapping management
    # ------------------------------------------------------------------

    @property
    def threads(self) -> List[SimThread]:
        """Threads currently under management."""
        return list(self._threads)

    @property
    def mapping(self) -> Optional[AffinityMapping]:
        """The active affinity mapping (None = OS default)."""
        return self._mapping

    def set_threads(
        self, threads: Sequence[SimThread], mapping: Optional[AffinityMapping] = None
    ) -> None:
        """Adopt a fresh thread set (application start or switch)."""
        self._threads = list(threads)
        self._core_of.clear()
        # Fresh threads are not "waking" — wake-affine packing applies
        # only to genuine sync->compute transitions later on.
        self._prev_runnable = {t: t.runnable for t in self._threads}
        self._stalled.clear()
        self._mapping = None
        if mapping is not None:
            self.set_mapping(mapping)
        for thread in self._threads:
            self._place(thread, initial=True)

    def set_mapping(self, mapping: Optional[AffinityMapping]) -> None:
        """Apply a new affinity mapping, migrating violating threads.

        This is the simulator's ``pthread_setaffinity_np``: threads whose
        current core is outside their new mask are migrated immediately
        (and charged a migration), others stay put.
        """
        if mapping is not None:
            mapping.validate(self.num_cores)
            if self._threads and mapping.num_threads < len(self._threads):
                raise ValueError(
                    f"mapping covers {mapping.num_threads} threads, "
                    f"have {len(self._threads)}"
                )
        self._mapping = mapping
        for thread in self._threads:
            core = self._core_of.get(thread)
            if core is not None and not self._allows(thread, core):
                self._migrate(thread)

    def stall_all(self, seconds: float) -> None:
        """Steal CPU time from every core (management overhead)."""
        if seconds < 0.0:
            raise ValueError("stall cannot be negative")
        self._stall_s += seconds

    # ------------------------------------------------------------------
    # Placement internals
    # ------------------------------------------------------------------

    def _allows(self, thread: SimThread, core: int) -> bool:
        if self._mapping is None:
            return True
        return self._mapping.allows(thread.thread_id, core)

    def _allowed_cores(self, thread: SimThread) -> List[int]:
        return [c for c in range(self.num_cores) if self._allows(thread, c)]

    def _runnable_count(self, core: int) -> int:
        # Stalled (just-migrated) threads still occupy the run queue for
        # placement purposes; they are only excluded from execution.
        return sum(
            1
            for t in self._threads
            if t.runnable and self._core_of.get(t) == core
        )

    def _pick_core(self, thread: SimThread, wake: bool) -> int:
        """Choose a core for a (newly placed or waking) thread."""
        allowed = self._allowed_cores(thread)
        if len(allowed) == 1:
            return allowed[0]
        counts = {core: self._runnable_count(core) for core in allowed}
        if wake and self._busy_ewma < self.packing_threshold:
            # Wake-affine packing: prefer the busiest core with headroom,
            # consolidating onto low-id cores (all-idle tie), which is
            # how low-duty workloads end up "using only a few cores".
            candidates = [c for c in allowed if counts[c] < self.pack_cap]
            if candidates:
                best = max(counts[c] for c in candidates)
                busiest = [c for c in candidates if counts[c] == best]
                return min(busiest)
        # Load balancing: least-loaded core, previous core breaking ties.
        least = min(counts.values())
        idlest = [c for c in allowed if counts[c] == least]
        if thread.last_core in idlest:
            return thread.last_core
        return min(idlest)

    def _place(self, thread: SimThread, initial: bool = False, wake: bool = False) -> None:
        core = self._pick_core(thread, wake=wake)
        previous = self._core_of.get(thread)
        self._core_of[thread] = core
        thread.core = core
        if previous is not None and previous != core:
            thread.last_core = previous
            self.perf.record_migration()
            self._stalled.add(thread)
        elif initial:
            thread.last_core = core

    def _migrate(self, thread: SimThread) -> None:
        self._place(thread, wake=False)

    def _rebalance(self) -> None:
        """Move runnable threads from the busiest to the idlest core."""
        for _ in range(2):  # at most two migrations per balancing pass
            counts = [self._runnable_count(core) for core in range(self.num_cores)]
            busiest = int(np.argmax(counts))
            idlest = int(np.argmin(counts))
            if counts[busiest] - counts[idlest] < 2:
                return
            movable = [
                t
                for t in self._threads
                if t.runnable
                and self._core_of.get(t) == busiest
                and self._allows(t, idlest)
                and t not in self._stalled
            ]
            if not movable:
                return
            thread = movable[0]
            thread.last_core = busiest
            self._core_of[thread] = idlest
            thread.core = idlest
            self.perf.record_migration()
            self._stalled.add(thread)

    # ------------------------------------------------------------------
    # Tick
    # ------------------------------------------------------------------

    def tick(self, frequencies_hz: Sequence[float], dt: float) -> List[CoreLoad]:
        """Place, balance and execute all threads for one tick.

        Parameters
        ----------
        frequencies_hz:
            Per-core clock frequencies for this tick.
        dt:
            Tick length in seconds.

        Returns
        -------
        list of :class:`CoreLoad`
            Per-core utilisation/activity the governor and power model
            consume.
        """
        if len(frequencies_hz) != self.num_cores:
            raise ValueError(f"expected {self.num_cores} frequencies")
        if dt <= 0.0:
            raise ValueError("dt must be positive")

        # 1. Handle wakes and placement.
        for thread in self._threads:
            if thread.done:
                continue
            woke = thread.runnable and not self._prev_runnable.get(thread, False)
            if self._core_of.get(thread) is None:
                self._place(thread, initial=True)
            elif not self._allows(thread, self._core_of[thread]):
                self._migrate(thread)
            elif woke and self._mapping_is_free(thread):
                self._place(thread, wake=True)

        # 2a. Newly-idle balancing: a core that has sat idle for longer
        # than the pull delay steals a runnable thread from the busiest
        # core (Linux's idle balancing, with its reaction latency).
        for core in range(self.num_cores):
            if self._runnable_count(core) == 0:
                self._idle_for_s[core] += dt
            else:
                self._idle_for_s[core] = 0.0
        for core in range(self.num_cores):
            if self._idle_for_s[core] < self.idle_pull_delay_s:
                continue
            counts = [self._runnable_count(c) for c in range(self.num_cores)]
            busiest = int(np.argmax(counts))
            if counts[busiest] < 2:
                continue
            movable = [
                t
                for t in self._threads
                if t.runnable
                and self._core_of.get(t) == busiest
                and self._allows(t, core)
                and t not in self._stalled
            ]
            if not movable:
                continue
            thread = movable[0]
            thread.last_core = busiest
            self._core_of[thread] = core
            thread.core = core
            self.perf.record_migration()
            self._stalled.add(thread)
            self._idle_for_s[core] = 0.0

        # 2b. Periodic load balancing (only for non-pinned threads).
        self._since_rebalance_s += dt
        if self._since_rebalance_s >= self.rebalance_period_s:
            self._since_rebalance_s = 0.0
            self._rebalance()

        # 3. Execute.
        loads = []
        for core in range(self.num_cores):
            stall = min(float(self._stall_s[core]), dt)
            self._stall_s[core] -= stall
            effective_dt = dt - stall
            runnable = [
                t
                for t in self._threads
                if t.runnable and self._core_of.get(t) == core and t not in self._stalled
            ]
            waiting = [
                t
                for t in self._threads
                if not t.runnable
                and not t.done
                and self._core_of.get(t) == core
            ]
            executed = 0.0
            if runnable:
                share = effective_dt / len(runnable)
                for thread in runnable:
                    cycles = frequencies_hz[core] * share
                    thread.execute(cycles)
                    executed += cycles
                self.perf.record_execution(executed)
            utilisation = min(
                1.0,
                (len(runnable) * 1.0 + len(waiting) * 0.03) * (effective_dt / dt)
                + (stall / dt),
            )
            if runnable:
                activity = sum(t.activity for t in runnable) / len(runnable)
                activity *= effective_dt / dt
            else:
                activity = 0.0
            activity = min(1.0, activity + self.idle_activity * len(waiting))
            loads.append(
                CoreLoad(
                    utilisation=utilisation,
                    activity=activity,
                    num_runnable=len(runnable),
                    executed_cycles=executed,
                )
            )

        # 4. Bookkeeping for the next tick.
        busy_fraction = sum(1 for load in loads if load.num_runnable > 0) / self.num_cores
        ewma_weight = min(1.0, dt / 2.0)  # ~2 s smoothing
        self._busy_ewma += ewma_weight * (busy_fraction - self._busy_ewma)
        self._stalled.clear()
        for thread in self._threads:
            self._prev_runnable[thread] = thread.runnable
        return loads

    def _mapping_is_free(self, thread: SimThread) -> bool:
        """Whether the thread has more than one allowed core."""
        if self._mapping is None:
            return True
        mask = self._mapping.mask_for(thread.thread_id)
        return mask is None or len(mask) > 1

    # ------------------------------------------------------------------
    # Introspection (tests, experiments)
    # ------------------------------------------------------------------

    def core_of(self, thread: SimThread) -> Optional[int]:
        """Core a thread currently occupies."""
        return self._core_of.get(thread)

    def runnable_counts(self) -> List[int]:
        """Per-core runnable-thread counts."""
        return [self._runnable_count(core) for core in range(self.num_cores)]

    @property
    def busy_ewma(self) -> float:
        """Smoothed busy-core fraction driving the packing decision."""
        return self._busy_ewma
