"""Tests for the chip composition and the simulation engine."""

import numpy as np
import pytest

from repro.config import PlatformConfig
from repro.soc.chip import Chip
from repro.soc.simulator import AppRecord, Simulation, ThermalManagerBase
from repro.workloads.alpbench import make_application


# ---------------------------------------------------------------------------
# Chip
# ---------------------------------------------------------------------------


@pytest.fixture
def chip(platform):
    return Chip(platform, seed=0)


def test_chip_step_heats_active_cores(chip, platform):
    before = chip.core_temps_c().copy()
    for _ in range(100):
        chip.step([1.0, 0.0, 0.0, 0.0], [3.4e9] * 4, platform.dt)
    after = chip.core_temps_c()
    assert after[0] > before[0] + 5.0
    assert after[0] == max(after)


def test_chip_energy_accumulates(chip, platform):
    chip.step([0.5] * 4, [2.4e9] * 4, platform.dt)
    assert chip.energy.dynamic_j > 0.0
    assert chip.energy.static_j > 0.0


def test_chip_warm_start_idle(chip, platform):
    chip.warm_start_idle()
    temps = chip.core_temps_c()
    ambient = platform.thermal.ambient_c
    assert np.all(temps > ambient + 1.0)
    assert np.all(temps < ambient + 10.0)


def test_chip_sensor_read_near_truth(chip):
    chip.warm_start_idle()
    truth = chip.core_temps_c()
    readings = chip.read_sensors()
    assert np.all(np.abs(readings - truth) < 2.5)


def test_chip_validates_widths(chip, platform):
    with pytest.raises(ValueError):
        chip.step([0.5] * 2, [2.4e9] * 4, platform.dt)


def test_chip_full_load_reaches_seventies(platform):
    """Four tachyon-like cores at 3.4 GHz land near the paper's 70 degC
    (tachyon set 1 saturates the chip at ~0.7 activity)."""
    chip = Chip(platform, seed=0)
    chip.warm_start_idle()
    for _ in range(3000):
        chip.step([0.7] * 4, [3.4e9] * 4, platform.dt)
    peak = float(np.max(chip.core_temps_c()))
    assert 63.0 < peak < 85.0


def test_chip_last_core_powers(chip, platform):
    chip.step([1.0, 0.0, 0.0, 0.0], [3.4e9] * 4, platform.dt)
    powers = chip.last_core_powers_w()
    assert powers[0] > powers[1]
    assert all(p > 0.0 for p in powers)  # leakage everywhere


# ---------------------------------------------------------------------------
# Simulation engine
# ---------------------------------------------------------------------------


def short_app(name="mpeg_dec", dataset="clip 1", iters=10, seed=5):
    from dataclasses import replace

    from repro.workloads.application import Application

    app = make_application(name, dataset, seed=seed)
    return Application(replace(app.spec, iterations=iters), metric=app.metric, seed=seed)


def test_simulation_runs_to_completion():
    sim = Simulation([short_app()], governor="ondemand", seed=1, max_time_s=2000)
    result = sim.run()
    assert result.completed
    assert len(result.app_records) == 1
    record = result.app_records[0]
    assert record.completed
    assert record.completed_iterations == 10
    assert record.execution_time_s > 0.0


def test_simulation_profile_recorded():
    sim = Simulation([short_app()], seed=1, max_time_s=2000)
    result = sim.run()
    assert len(result.profile) == pytest.approx(result.total_time_s, abs=2)
    assert result.profile.average_temp_c() > 30.0


def test_simulation_energy_split():
    sim = Simulation([short_app()], seed=1, max_time_s=2000)
    result = sim.run()
    record = result.app_records[0]
    assert record.dynamic_energy_j > 0.0
    assert record.static_energy_j > 0.0
    total = result.energy.dynamic_j
    assert record.dynamic_energy_j <= total + 1e-6


def test_simulation_sequential_applications():
    sim = Simulation([short_app(seed=1), short_app(seed=2)], seed=1, max_time_s=4000)
    result = sim.run()
    assert len(result.app_records) == 2
    first, second = result.app_records
    assert second.start_s >= first.end_s


def test_simulation_timeout_marks_incomplete():
    sim = Simulation([short_app(iters=10000)], seed=1, max_time_s=30.0)
    result = sim.run()
    assert not result.completed
    assert not result.app_records[-1].completed


def test_simulation_requires_applications():
    with pytest.raises(ValueError):
        Simulation([])


def test_governor_switch_api():
    sim = Simulation([short_app()], governor="ondemand", seed=1, max_time_s=2000)
    sim.set_governor("userspace", 2.0e9)
    assert sim.governor.frequencies() == [2.0e9] * 4
    sim.set_governor("powersave")
    sim.step()
    assert sim.governor.frequencies() == [1.6e9] * 4


def test_mapping_switch_api():
    from repro.sched.affinity import mapping_by_name

    sim = Simulation([short_app()], seed=1, max_time_s=2000)
    sim._start_next_app()
    sim.set_mapping(mapping_by_name("cluster_2"))
    for _ in range(5):
        sim.step()
    for thread in sim.current_app.threads:
        if not thread.done:
            assert sim.scheduler.core_of(thread) in (0, 1)


def test_unknown_governor_rejected():
    sim = Simulation([short_app()], seed=1, max_time_s=2000)
    with pytest.raises(ValueError, match="unknown governor"):
        sim.set_governor("turbo_boost")


def test_userspace_governor_requires_frequency():
    sim = Simulation([short_app()], seed=1, max_time_s=2000)
    with pytest.raises(ValueError, match="frequency"):
        sim.set_governor("userspace")


def test_mapping_with_invalid_core_rejected():
    from repro.sched.affinity import AffinityMapping

    sim = Simulation([short_app()], seed=1, max_time_s=2000)
    with pytest.raises(ValueError):
        sim.set_mapping(AffinityMapping(name="bad", masks=((0, 9),)))


def test_sensor_read_charges_overhead():
    sim = Simulation([short_app()], seed=1, max_time_s=2000)
    sim._start_next_app()
    before = sim.perf.sample_events
    sim.read_sensors()
    assert sim.perf.sample_events == before + 1


class RecordingManager(ThermalManagerBase):
    """Test double that records engine callbacks."""

    def __init__(self):
        self.attached = False
        self.ticks = 0
        self.switches = 0

    def attach(self, sim):
        self.attached = True

    def on_tick(self, sim):
        self.ticks += 1

    def on_app_switch(self, sim, app):
        self.switches += 1

    def stats(self):
        return {"ticks": float(self.ticks)}


def test_manager_callbacks():
    manager = RecordingManager()
    sim = Simulation(
        [short_app(seed=1), short_app(seed=2)],
        manager=manager,
        seed=1,
        max_time_s=4000,
    )
    result = sim.run()
    assert manager.attached
    assert manager.ticks > 100
    assert manager.switches == 1  # one app switch, no signal at start
    assert result.manager_stats["ticks"] == manager.ticks


def test_deterministic_given_seed():
    r1 = Simulation([short_app(seed=3)], seed=9, max_time_s=2000).run()
    r2 = Simulation([short_app(seed=3)], seed=9, max_time_s=2000).run()
    assert r1.total_time_s == r2.total_time_s
    assert r1.profile.average_temp_c() == r2.profile.average_temp_c()
    assert r1.energy.dynamic_j == pytest.approx(r2.energy.dynamic_j)
