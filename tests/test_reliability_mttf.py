"""Tests for the MTTF evaluation and its Table-2 calibration anchor."""

import math

import pytest

from repro.config import ReliabilityConfig, default_reliability_config
from repro.reliability.mttf import (
    aging_mttf_years,
    calibrate_atc,
    cycling_mttf_years,
    evaluate_profile,
    resolved_atc,
    sofr_mttf_years,
)

REL = default_reliability_config()


def test_idle_core_has_baseline_aging_mttf():
    """Table 2 caption: an idle core has an MTTF of 10 years."""
    series = [REL.reference_temp_c] * 100
    assert aging_mttf_years(series, REL) == pytest.approx(REL.baseline_mttf_years)


def test_idle_core_has_baseline_cycling_mttf():
    series = [REL.reference_temp_c] * 100
    assert cycling_mttf_years(series, 100.0, REL) == pytest.approx(
        REL.baseline_mttf_years
    )


def test_hot_core_ages_faster():
    hot = aging_mttf_years([70.0] * 100, REL)
    warm = aging_mttf_years([50.0] * 100, REL)
    assert hot < warm < REL.baseline_mttf_years


def test_cycling_mttf_bounded_by_baseline():
    series = ([40.0, 60.0] * 50)[:100]
    mttf = cycling_mttf_years(series, 100.0, REL)
    assert 0.0 < mttf < REL.baseline_mttf_years


def test_cycling_mttf_decreases_with_amplitude():
    small = cycling_mttf_years(([45.0, 52.0] * 50)[:100], 500.0, REL)
    large = cycling_mttf_years(([40.0, 62.0] * 50)[:100], 500.0, REL)
    assert large < small


def test_calibration_reference_profile():
    """The 45<->55 triangle at 20 s period hits the configured target."""
    atc = calibrate_atc(REL)
    # Build the exact reference: one full cycle per 20 s.
    cycles_per_second = 1.0 / 20.0
    from repro.reliability.rainflow import ThermalCycle
    from repro.reliability.stress import cycle_stress

    cycle = ThermalCycle(amplitude_k=10.0, mean_c=50.0, max_c=55.0, count=1.0)
    stress_rate = cycle_stress(cycle, REL) * cycles_per_second
    raw_mttf_s = atc / stress_rate
    from repro.units import seconds_to_years

    assert seconds_to_years(raw_mttf_s) == pytest.approx(
        REL.cycling_reference_mttf_years, rel=1e-6
    )


def test_resolved_atc_uses_explicit_value():
    config = ReliabilityConfig(cycling_scale_atc=123.0)
    assert resolved_atc(config) == 123.0


def test_sofr_combination():
    assert sofr_mttf_years(10.0, 10.0) == pytest.approx(5.0)
    assert sofr_mttf_years(math.inf, 4.0) == pytest.approx(4.0)
    assert math.isinf(sofr_mttf_years(math.inf, math.inf))
    assert sofr_mttf_years(0.0, 5.0) == 0.0


def test_evaluate_profile_summary_fields():
    series = ([40.0, 55.0] * 60)[:120]
    report = evaluate_profile(series, 1.0, REL)
    assert report.average_temp_c == pytest.approx(sum(series) / len(series))
    assert report.peak_temp_c == pytest.approx(55.0)
    assert report.stress > 0.0
    assert report.num_cycles > 10
    assert 0.0 < report.cycling_mttf_years < REL.baseline_mttf_years
    assert 0.0 < report.aging_mttf_years < REL.baseline_mttf_years
    assert report.combined_mttf_years < min(
        report.cycling_mttf_years, report.aging_mttf_years
    )


def test_evaluate_empty_profile():
    report = evaluate_profile([], 1.0, REL)
    assert report.aging_mttf_years == REL.baseline_mttf_years
    assert report.cycling_mttf_years == REL.baseline_mttf_years
    assert report.num_cycles == 0.0


def test_paper_band_hot_steady_profile():
    """A 70 degC steady profile ages to well under a year, like the
    paper's hottest Linux row (tachyon set 1: 0.7 years)."""
    mttf = aging_mttf_years([71.0] * 600, REL)
    assert 0.2 < mttf < 1.2
