"""Property-based tests of end-to-end simulation invariants."""

from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import default_reliability_config
from repro.soc.simulator import Simulation
from repro.workloads.alpbench import APP_NAMES, make_application
from repro.workloads.application import Application


def tiny_app(name, seed, iters=6):
    app = make_application(name, seed=seed)
    return Application(replace(app.spec, iterations=iters), metric=app.metric, seed=seed)


@given(
    st.sampled_from(APP_NAMES),
    st.integers(min_value=0, max_value=50),
    st.sampled_from(["ondemand", "powersave", "performance", "conservative"]),
)
@settings(max_examples=12, deadline=None)
def test_simulation_invariants(app_name, seed, governor):
    """Any short run obeys the basic physical/accounting invariants."""
    sim = Simulation(
        [tiny_app(app_name, seed)], governor=governor, seed=seed, max_time_s=600.0
    )
    result = sim.run()
    rel = default_reliability_config()

    # Temperatures stay within the physically sane envelope.
    profile = result.profile
    if len(profile):
        assert 25.0 < profile.average_temp_c() < 110.0
        assert profile.peak_temp_c() < 125.0

    # Energy accounting is non-negative and consistent.
    assert result.energy.dynamic_j >= 0.0
    assert result.energy.static_j > 0.0
    assert result.energy.elapsed_s == pytest.approx(result.total_time_s, rel=1e-6)

    # MTTFs never exceed the calibration anchor.
    report = result.reliability(rel)
    assert 0.0 < report["aging_mttf_years"] <= rel.baseline_mttf_years + 1e-9
    assert 0.0 < report["cycling_mttf_years"] <= rel.baseline_mttf_years + 1e-9

    # Records are time-ordered and within the run.
    for record in result.app_records:
        assert 0.0 <= record.start_s <= record.end_s <= result.total_time_s + 1e-6


@given(st.integers(min_value=0, max_value=30))
@settings(max_examples=8, deadline=None)
def test_lower_frequency_never_uses_more_dynamic_energy(seed):
    """For the same work, a lower fixed frequency costs less dynamic
    energy (V^2 f scaling dominates the longer runtime)."""
    def run(freq):
        sim = Simulation(
            [tiny_app("mpeg_dec", seed)],
            governor="userspace",
            userspace_frequency_hz=freq,
            seed=seed,
            max_time_s=2000.0,
        )
        result = sim.run()
        assert result.completed
        return result.app_records[0].dynamic_energy_j

    assert run(2.0e9) < run(3.4e9)


@given(st.integers(min_value=0, max_value=30))
@settings(max_examples=8, deadline=None)
def test_higher_frequency_never_slower(seed):
    def run(freq):
        sim = Simulation(
            [tiny_app("tachyon", seed)],
            governor="userspace",
            userspace_frequency_hz=freq,
            seed=seed,
            max_time_s=2000.0,
        )
        result = sim.run()
        assert result.completed
        return result.app_records[0].execution_time_s

    assert run(3.4e9) <= run(1.6e9)
