"""Tests for the Q-table and its dual-table mechanism."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.qtable import QTable


def test_starts_at_zero():
    table = QTable(3, 4)
    assert np.all(table.as_array() == 0.0)
    assert table.total_visits == 0


def test_update_matches_eq7():
    table = QTable(2, 2)
    table.update(0, 0, reward=1.0, next_state=1, alpha=0.5, gamma=0.5)
    # Q = 0 + 0.5 * (1 + 0.5*0 - 0) = 0.5
    assert table.value(0, 0) == pytest.approx(0.5)
    table.update(1, 1, reward=0.0, next_state=0, alpha=1.0, gamma=0.5)
    # max Q(0, .) = 0.5 -> Q(1,1) = 0 + 1*(0 + 0.25 - 0)
    assert table.value(1, 1) == pytest.approx(0.25)


def test_update_validates_rates():
    table = QTable(2, 2)
    with pytest.raises(ValueError):
        table.update(0, 0, 1.0, 0, alpha=1.5, gamma=0.5)
    with pytest.raises(ValueError):
        table.update(0, 0, 1.0, 0, alpha=0.5, gamma=-0.1)


def test_best_action_of_visited_state():
    table = QTable(2, 3)
    table.update(0, 2, reward=2.0, next_state=0, alpha=1.0, gamma=0.0)
    table.update(0, 1, reward=1.0, next_state=0, alpha=1.0, gamma=0.0)
    assert table.best_action(0) == 2
    assert table.best_value(0) == pytest.approx(2.0)


def test_unvisited_state_generalises():
    """An unvisited state's greedy action is the globally best-known
    action, not blindly action 0."""
    table = QTable(3, 3)
    table.update(0, 1, reward=3.0, next_state=0, alpha=1.0, gamma=0.0)
    assert table.best_action(2) == 1  # state 2 never visited
    assert table.global_best_action() == 1


def test_global_best_of_empty_table():
    assert QTable(2, 2).global_best_action() == 0


def test_snapshot_restore_cycle():
    table = QTable(2, 2)
    table.update(0, 0, 1.0, 0, alpha=1.0, gamma=0.0)
    assert not table.has_exploration_snapshot
    assert not table.restore_exploration()
    table.capture_exploration()
    table.update(0, 0, -5.0, 0, alpha=1.0, gamma=0.0)
    assert table.value(0, 0) < 0.0
    assert table.restore_exploration()
    assert table.value(0, 0) == pytest.approx(1.0)


def test_reset_clears_everything():
    table = QTable(2, 2)
    table.update(0, 0, 1.0, 0, alpha=1.0, gamma=0.0)
    table.capture_exploration()
    table.reset()
    assert np.all(table.as_array() == 0.0)
    assert table.total_visits == 0
    assert not table.has_exploration_snapshot


def test_greedy_policy_shape():
    table = QTable(4, 3)
    policy = table.greedy_policy()
    assert policy.shape == (4,)


def test_visits_counted():
    table = QTable(2, 2)
    table.update(1, 0, 1.0, 0, alpha=0.5, gamma=0.5)
    table.update(1, 0, 1.0, 0, alpha=0.5, gamma=0.5)
    assert table.visits(1, 0) == 2
    assert table.total_visits == 2


def test_dimension_validation():
    with pytest.raises(ValueError):
        QTable(0, 2)


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=2),
            st.integers(min_value=0, max_value=3),
            st.floats(min_value=-2.0, max_value=2.0),
            st.integers(min_value=0, max_value=2),
        ),
        max_size=60,
    )
)
@settings(max_examples=100, deadline=None)
def test_q_values_bounded_by_reward_geometry(updates):
    """With |R| <= 2 and gamma = 0.5, |Q| stays below |R|max/(1-gamma)."""
    table = QTable(3, 4)
    for state, action, reward, next_state in updates:
        table.update(state, action, reward, next_state, alpha=0.7, gamma=0.5)
    assert np.all(np.abs(table.as_array()) <= 2.0 / (1.0 - 0.5) + 1e-9)


@given(st.integers(min_value=1, max_value=30))
@settings(max_examples=30, deadline=None)
def test_fixed_point_convergence(n):
    """Repeated updates with a constant reward converge to R/(1-gamma)
    when the state loops on itself and the action is greedy."""
    table = QTable(1, 1)
    for _ in range(200):
        table.update(0, 0, float(n) / 30.0, 0, alpha=0.5, gamma=0.5)
    assert table.value(0, 0) == pytest.approx((n / 30.0) / 0.5, rel=1e-3)
