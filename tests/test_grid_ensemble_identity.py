"""Grid equivalence: ensemble-routed sweeps == scalar sweeps, byte for byte.

The acceptance layer for the ensemble grid planner.  Four full ``repro
all`` sweeps at reduced scale:

* **scalar** — ``--jobs 1 --no-cache``, the serial reference;
* **ensemble serial** — ``--ensemble --jobs 1`` on a cold cache;
* **ensemble sharded** — ``--ensemble --jobs 2`` on a cold cache;
* **warm** — ``--ensemble --jobs 2`` again on the now-warm cache.

Both ensemble sweeps must write artefact files byte-identical to the
scalar sweep's, and the warm re-run must execute zero jobs — the cache
the ensemble shards populated under scalar member keys satisfies the
very same grids on the next pass.

A second layer replays the committed golden-master grids
(:mod:`tests.test_golden_artefacts`) through an ensemble-routed engine:
the goldens were generated on the scalar path, so matching them proves
scalar/ensemble interchangeability against a fixed on-disk reference,
not merely within one process.
"""

import difflib
import json
from pathlib import Path

import pytest

from repro.experiments.engine import ExperimentEngine, ResultCache
from repro.experiments.engine.sweep import ARTEFACTS, regenerate_all
from repro.experiments.engine.sweep import SweepReport  # noqa: F401  (docs)
from tests.test_golden_artefacts import CASES, GOLDEN_DIR

#: Smallest scale at which every app clears the 60 s warm-up skip.
SCALE = 0.12


@pytest.fixture(scope="module")
def sweeps(tmp_path_factory):
    """Run the four sweeps once; every test inspects the reports."""
    scalar_root = tmp_path_factory.mktemp("scalar-root")
    serial_root = tmp_path_factory.mktemp("ensemble-serial-root")
    sharded_root = tmp_path_factory.mktemp("ensemble-sharded-root")

    with pytest.MonkeyPatch.context() as mp:
        mp.setenv("REPRO_CACHE_DIR", str(scalar_root))
        scalar = regenerate_all(
            iteration_scale=SCALE,
            seed=1,
            engine=ExperimentEngine(jobs=1),
        )

    with pytest.MonkeyPatch.context() as mp:
        mp.setenv("REPRO_CACHE_DIR", str(serial_root))
        ensemble_serial = regenerate_all(
            iteration_scale=SCALE,
            seed=1,
            engine=ExperimentEngine(jobs=1, cache=ResultCache(), ensemble=True),
        )

    with pytest.MonkeyPatch.context() as mp:
        mp.setenv("REPRO_CACHE_DIR", str(sharded_root))
        ensemble_sharded = regenerate_all(
            iteration_scale=SCALE,
            seed=1,
            engine=ExperimentEngine(jobs=2, cache=ResultCache(), ensemble=True),
        )
        warm = regenerate_all(
            iteration_scale=SCALE,
            seed=1,
            engine=ExperimentEngine(jobs=2, cache=ResultCache(), ensemble=True),
        )

    return {
        "scalar": scalar,
        "ensemble_serial": ensemble_serial,
        "ensemble_sharded": ensemble_sharded,
        "warm": warm,
    }


def test_all_artefacts_written(sweeps):
    for report in sweeps.values():
        assert report.ok
        assert [run.name for run in report.runs] == list(ARTEFACTS)
        for run in report.runs:
            assert run.path.exists()


def _assert_bytes_match(reference, candidate, label):
    assert reference.output_dir != candidate.output_dir
    for name in ARTEFACTS:
        reference_bytes = (reference.output_dir / f"{name}.txt").read_bytes()
        candidate_bytes = (candidate.output_dir / f"{name}.txt").read_bytes()
        assert reference_bytes == candidate_bytes, (
            f"{name}: {label} sweep diverged from the scalar sweep"
        )


def test_ensemble_serial_is_bit_identical_to_scalar(sweeps):
    _assert_bytes_match(sweeps["scalar"], sweeps["ensemble_serial"], "--ensemble --jobs 1")


def test_ensemble_sharded_is_bit_identical_to_scalar(sweeps):
    _assert_bytes_match(sweeps["scalar"], sweeps["ensemble_sharded"], "--ensemble --jobs 2")


def test_cold_ensemble_sweeps_actually_executed(sweeps):
    for key in ("ensemble_serial", "ensemble_sharded"):
        stats = sweeps[key].stats.as_dict()
        assert stats["executed"] > 0
        assert stats["cache_misses"] > 0
        assert stats["failed"] == 0


def test_warm_ensemble_rerun_executes_zero_jobs(sweeps):
    """The members the ensemble shards cached under scalar keys satisfy
    the identical grids on the next pass — nothing re-executes."""
    stats = sweeps["warm"].stats.as_dict()
    assert stats["executed"] == 0
    assert stats["cache_misses"] == 0
    assert stats["cache_hits"] > 0
    for warm_run, scalar_run in zip(sweeps["warm"].runs, sweeps["scalar"].runs):
        assert warm_run.text == scalar_run.text


def test_scaled_sweeps_never_touch_committed_results(sweeps):
    committed = (Path(__file__).resolve().parent.parent / "results").resolve()
    for report in sweeps.values():
        assert report.output_dir.resolve() != committed
        assert committed not in report.output_dir.resolve().parents


# ----------------------------------------------------------------------
# Committed goldens through the ensemble path
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def ensemble_engine(tmp_path_factory):
    """One shared ensemble-routed engine, like the golden suite's."""
    root = tmp_path_factory.mktemp("golden-ensemble-cache")
    return ExperimentEngine(jobs=2, cache=ResultCache(root=root), ensemble=True)


@pytest.mark.parametrize("name", list(CASES), ids=list(CASES))
def test_ensemble_path_reproduces_committed_goldens(name, ensemble_engine):
    """The golden masters were generated by the scalar path; the
    ensemble-routed engine must reproduce their bytes exactly."""
    golden_path = GOLDEN_DIR / f"{name}.txt"
    assert golden_path.exists(), f"missing golden file {golden_path}"
    result = ARTEFACTS[name](
        iteration_scale=SCALE, seed=1, engine=ensemble_engine, **CASES[name]
    )
    text = result.format_table() + "\n"
    golden = golden_path.read_text()
    if text != golden:
        diff = "".join(
            difflib.unified_diff(
                golden.splitlines(keepends=True),
                text.splitlines(keepends=True),
                fromfile=f"golden/{name}.txt",
                tofile=f"ensemble-routed {name}",
            )
        )
        pytest.fail(
            f"ensemble-routed {name!r} drifted from the committed golden:\n{diff}"
        )


# ----------------------------------------------------------------------
# Grid-speedup bench: committed report and gate semantics
# ----------------------------------------------------------------------


class TestGridSpeedupGate:
    def test_committed_bench_pr9_meets_the_2x_floor(self):
        """The acceptance bar: the committed full-mode BENCH_PR9.json
        must show the ensemble-routed grid at least 2x faster than the
        scalar serial sweep of the same cells."""
        from repro.perf.bench import check_grid_speedup

        path = Path(__file__).resolve().parent.parent / "BENCH_PR9.json"
        report = json.loads(path.read_text())
        assert report["label"] == "BENCH_PR9"
        grid = report["grid_speedup"]
        assert grid["members"] == grid["seeds_per_cell"] * len(grid["cells"])
        assert grid["cpu_count"] >= 1
        assert check_grid_speedup(report, 2.0) == []

    def test_gate_semantics(self):
        from repro.perf.bench import check_grid_speedup

        report = {
            "grid_speedup": {
                "scalar_elapsed_s": 10.0,
                "runs": [{"jobs": 1, "elapsed_s": 4.0, "speedup_vs_scalar": 2.5}],
            }
        }
        assert check_grid_speedup(report, 2.0) == []
        failures = check_grid_speedup(report, 3.0)
        assert len(failures) == 1 and "2.5" in failures[0]
        # Reports without a grid section pass vacuously.
        assert check_grid_speedup({}, 2.0) == []
        with pytest.raises(ValueError):
            check_grid_speedup(report, 0.0)

    def test_measure_grid_speedup_report_shape(self):
        """A tiny real measurement: both engines run the same grid to
        completion and the report carries the gated fields."""
        from repro.perf.bench import check_grid_speedup, measure_grid_speedup

        report_section = measure_grid_speedup(
            cells=(("tachyon", "linux"),),
            seeds_per_cell=2,
            iteration_scale=0.05,
            jobs_list=(1,),
        )
        assert report_section["cells"] == ["tachyon/linux"]
        assert report_section["members"] == 2
        assert report_section["scalar_elapsed_s"] > 0
        (run,) = report_section["runs"]
        assert run["jobs"] == 1
        assert run["speedup_vs_scalar"] > 0
        wrapped = {"grid_speedup": report_section}
        assert check_grid_speedup(wrapped, 0.01) == []
