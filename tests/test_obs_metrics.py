"""Unit tests for the metrics registry (`repro.obs.metrics`)."""

import json

import pytest

from repro.obs.metrics import (
    DURATION_BUCKETS_S,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    REWARD_BUCKETS,
    TEMPERATURE_BUCKETS_C,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter("repro_things_total")
        assert c.value == 0.0
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_rejects_negative_increment(self):
        c = Counter("repro_things_total")
        with pytest.raises(ValueError, match="cannot decrease"):
            c.inc(-1.0)
        assert c.value == 0.0

    def test_rejects_invalid_name(self):
        with pytest.raises(ValueError, match="invalid metric name"):
            Counter("bad name with spaces")
        with pytest.raises(ValueError, match="invalid metric name"):
            Counter("0starts_with_digit")


class TestGauge:
    def test_set_and_inc(self):
        g = Gauge("repro_level")
        g.set(4.0)
        assert g.value == 4.0
        g.inc(-1.5)
        assert g.value == 2.5

    def test_set_rejects_non_finite(self):
        g = Gauge("repro_level")
        for bad in (float("nan"), float("inf"), float("-inf")):
            with pytest.raises(ValueError, match="must be finite"):
                g.set(bad)


class TestHistogram:
    def test_bucketing_boundaries_inclusive(self):
        h = Histogram("repro_h", buckets=(1.0, 2.0, 5.0))
        for value in (0.5, 1.0, 1.5, 2.0, 4.9, 5.0, 100.0):
            h.observe(value)
        # le=1: 0.5, 1.0 | le=2: 1.5, 2.0 | le=5: 4.9, 5.0 | +Inf: 100
        assert h.bucket_counts == [2, 2, 2, 1]
        assert h.count == 7
        assert h.sum == pytest.approx(0.5 + 1.0 + 1.5 + 2.0 + 4.9 + 5.0 + 100.0)

    def test_cumulative_counts_prometheus_semantics(self):
        h = Histogram("repro_h", buckets=(1.0, 2.0))
        for value in (0.5, 1.5, 3.0, 3.0):
            h.observe(value)
        assert h.cumulative_counts() == [1, 2, 4]

    def test_rejects_non_finite_observation(self):
        h = Histogram("repro_h", buckets=(1.0,))
        with pytest.raises(ValueError, match="must be finite"):
            h.observe(float("nan"))

    def test_rejects_bad_ladders(self):
        with pytest.raises(ValueError, match="at least one bucket"):
            Histogram("repro_h", buckets=())
        with pytest.raises(ValueError, match="strictly increase"):
            Histogram("repro_h", buckets=(1.0, 1.0))
        with pytest.raises(ValueError, match="strictly increase"):
            Histogram("repro_h", buckets=(2.0, 1.0))
        with pytest.raises(ValueError, match="finite"):
            Histogram("repro_h", buckets=(1.0, float("inf")))

    def test_default_ladders_are_valid(self):
        for ladder in (TEMPERATURE_BUCKETS_C, REWARD_BUCKETS, DURATION_BUCKETS_S):
            h = Histogram("repro_h", buckets=ladder)
            assert h.buckets == tuple(float(b) for b in ladder)
            assert all(a < b for a, b in zip(ladder, ladder[1:]))


class TestMetricsRegistry:
    def test_get_or_create_returns_same_instrument(self):
        r = MetricsRegistry()
        c1 = r.counter("repro_ticks_total", "ticks")
        c2 = r.counter("repro_ticks_total")
        assert c1 is c2
        c1.inc()
        assert r.get("repro_ticks_total").value == 1.0

    def test_kind_mismatch_raises(self):
        r = MetricsRegistry()
        r.counter("repro_x")
        with pytest.raises(ValueError, match="already registered"):
            r.gauge("repro_x")
        with pytest.raises(ValueError, match="already registered"):
            r.histogram("repro_x", buckets=(1.0,))

    def test_histogram_ladder_mismatch_raises(self):
        r = MetricsRegistry()
        r.histogram("repro_h", buckets=(1.0, 2.0))
        r.histogram("repro_h", buckets=(1.0, 2.0))  # identical ladder: fine
        with pytest.raises(ValueError, match="different"):
            r.histogram("repro_h", buckets=(1.0, 3.0))

    def test_names_sorted_and_len(self):
        r = MetricsRegistry()
        r.gauge("repro_z")
        r.counter("repro_a")
        assert r.names() == ["repro_a", "repro_z"]
        assert len(r) == 2
        assert r.get("missing") is None

    def test_as_dict_and_json_round_trip(self):
        r = MetricsRegistry()
        r.counter("repro_c", "help c").inc(3)
        r.gauge("repro_g").set(-1.5)
        h = r.histogram("repro_h", buckets=(1.0, 2.0), help="help h")
        h.observe(0.5)
        h.observe(9.0)
        dump = json.loads(r.to_json())
        assert dump["repro_c"] == {"kind": "counter", "help": "help c", "value": 3.0}
        assert dump["repro_g"]["value"] == -1.5
        assert dump["repro_h"]["buckets"] == [1.0, 2.0]
        assert dump["repro_h"]["bucket_counts"] == [1, 0, 1]
        assert dump["repro_h"]["count"] == 2
        assert dump["repro_h"]["sum"] == pytest.approx(9.5)

    def test_prometheus_rendering(self):
        r = MetricsRegistry()
        r.counter("repro_c", "a counter").inc(2)
        r.gauge("repro_g").set(1.5)
        h = r.histogram("repro_h", buckets=(1.0, 2.0))
        h.observe(0.5)
        h.observe(5.0)
        text = r.render_prometheus()
        lines = text.splitlines()
        assert "# HELP repro_c a counter" in lines
        assert "# TYPE repro_c counter" in lines
        assert "repro_c 2" in lines
        assert "# TYPE repro_g gauge" in lines
        assert "repro_g 1.5" in lines
        assert "# TYPE repro_h histogram" in lines
        assert 'repro_h_bucket{le="1"} 1' in lines
        assert 'repro_h_bucket{le="2"} 1' in lines
        assert 'repro_h_bucket{le="+Inf"} 2' in lines
        assert "repro_h_sum 5.5" in lines
        assert "repro_h_count 2" in lines
        assert text.endswith("\n")

    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().render_prometheus() == ""
        assert MetricsRegistry().as_dict() == {}
