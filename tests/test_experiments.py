"""Tests for the experiment harness and the per-figure modules.

These run the experiments in a scaled-down fast mode: assertions target
structure and the robust qualitative trends, not exact values.
"""

import pytest

from repro.experiments.runner import POLICIES, build_manager, run_scenario, run_workload

FAST = 0.3  # iteration scale for quick runs


# ---------------------------------------------------------------------------
# Runner
# ---------------------------------------------------------------------------


def test_build_manager_covers_all_policies():
    for policy in POLICIES:
        manager, governor, userspace = build_manager(policy)
        assert governor
        if policy.startswith("userspace"):
            assert userspace is not None


def test_build_manager_unknown_policy():
    with pytest.raises(KeyError):
        build_manager("magic")


def test_run_workload_summary_fields():
    summary = run_workload("mpeg_dec", "clip 1", "linux", iteration_scale=FAST)
    assert summary.app == "mpeg_dec"
    assert summary.policy == "linux"
    assert summary.completed
    assert summary.execution_time_s > 0.0
    assert summary.average_temp_c > 30.0
    assert summary.peak_temp_c >= summary.average_temp_c
    assert 0.0 < summary.cycling_mttf_years <= 10.0
    assert 0.0 < summary.aging_mttf_years <= 10.0
    assert summary.dynamic_energy_j > 0.0
    assert summary.total_energy_j > summary.dynamic_energy_j
    assert summary.profile is not None


def test_run_workload_measured_seed_shared_across_policies():
    a = run_workload("mpeg_dec", "clip 1", "linux", seed=3, iteration_scale=FAST)
    b = run_workload("mpeg_dec", "clip 1", "powersave", seed=3, iteration_scale=FAST)
    assert a.dataset == b.dataset
    assert a.throughput != b.throughput  # policies actually differ


def test_userspace_policies_order_execution_time():
    fast = run_workload("tachyon", "set 2", "userspace@3.4", iteration_scale=FAST)
    slow = run_workload("tachyon", "set 2", "powersave", iteration_scale=FAST)
    assert fast.execution_time_s < slow.execution_time_s


def test_powersave_is_coolest_static_policy():
    cool = run_workload("tachyon", "set 2", "powersave", iteration_scale=FAST)
    hot = run_workload("tachyon", "set 2", "performance", iteration_scale=FAST)
    assert cool.average_temp_c < hot.average_temp_c
    assert cool.average_dynamic_power_w < hot.average_dynamic_power_w


def test_run_scenario_structure():
    summary = run_scenario(("mpeg_dec", "tachyon"), "linux", iteration_scale=FAST)
    assert summary.app == "mpeg_dec-tachyon"
    assert summary.completed


# ---------------------------------------------------------------------------
# Experiment modules (fast mode)
# ---------------------------------------------------------------------------


def test_fig1_motivation_structure():
    from repro.experiments.fig1_motivation import run_fig1

    result = run_fig1(iteration_scale=FAST)
    assert len(result.cells) == 4
    face_linux = result.cell("face_rec", "linux_default")
    assert face_linux.profile is not None
    assert face_linux.summary.average_temp_c > 45.0  # face_rec runs hot
    mpeg = result.cell("mpeg_enc", "linux_default")
    assert mpeg.summary.average_temp_c < face_linux.summary.average_temp_c
    assert "Figure 1" in result.format_table()


def test_table2_structure_and_trends():
    from repro.experiments.table2_intra import run_table2

    result = run_table2(iteration_scale=FAST, workloads=("tachyon",))
    assert len(result.rows) == 3
    for row in result.rows:
        linux = row.summaries["linux"]
        proposed = row.summaries["proposed"]
        # The headline claims, loosely: cooler and longer-lived.
        assert proposed.average_temp_c < linux.average_temp_c + 1.0
        assert proposed.aging_mttf_years >= linux.aging_mttf_years * 0.9
    assert result.improvement("aging_mttf_years", over="linux") > 1.0
    assert "Table 2" in result.format_table()


def test_fig3_structure():
    from repro.experiments.fig3_inter import run_fig3

    result = run_fig3(iteration_scale=FAST)
    assert len(result.rows) == 6
    for row in result.rows:
        assert row.normalised("linux") == pytest.approx(1.0)
    assert result.mean_improvement("proposed") > 1.0
    assert "Figure 3" in result.format_table()


def test_fig45_split():
    from repro.experiments.fig45_phases import run_fig45

    result = run_fig45(iteration_scale=0.6)
    assert result.split_s > 0.0
    assert len(result.exploration_profile) > 0
    assert len(result.exploitation_profile) > 0
    # The exploitation phase is the cooler one (Figure 5 vs Figure 4).
    assert result.exploitation_avg_c < result.exploration_avg_c
    assert "Figures 4/5" in result.format_table()


def test_fig6_trends():
    from repro.experiments.fig6_sampling import run_fig6

    result = run_fig6(intervals=(1, 3, 6, 10), iteration_scale=FAST)
    assert len(result.rows) == 4
    autocorrs = [r.autocorrelation for r in result.rows]
    # Autocorrelation decays with the interval.
    assert autocorrs[0] > autocorrs[-1]
    # Management overhead falls as sampling gets rarer.
    assert result.rows[0].cache_misses > result.rows[-1].cache_misses
    assert result.rows[0].page_faults > result.rows[-1].page_faults
    # Coarse sampling over-estimates MTTF relative to 1 s.
    assert result.rows[-1].computed_mttf_years >= result.rows[0].computed_mttf_years


def test_fig7_trends():
    from repro.experiments.fig7_epoch import run_fig7

    result = run_fig7(
        epochs=(5.0, 30.0, 80.0), apps=(("mpeg_dec", "clip 1"),), iteration_scale=FAST
    )
    series = result.series("mpeg_dec")
    assert len(series) == 3
    assert series[0].normalized_training_time == pytest.approx(1.0)
    # Training time grows with the epoch length.
    assert series[-1].training_time_s > series[0].training_time_s


def test_fig8_structure():
    from repro.experiments.fig8_convergence import run_fig8

    result = run_fig8(
        state_grid=((4, (2, 2)), (12, (3, 4))),
        action_grid=(4, 12),
        iteration_scale=FAST,
    )
    assert len(result.rows) == 4
    small = next(r for r in result.rows if r.num_states == 4 and r.num_actions == 4)
    large = next(r for r in result.rows if r.num_states == 12 and r.num_actions == 12)
    assert large.iterations_to_converge >= small.iterations_to_converge


def test_table3_structure():
    from repro.experiments.table3_exec_time import run_table3

    result = run_table3(iteration_scale=FAST, apps=("tachyon",))
    row = result.rows[0]
    # 3.4 GHz is the fastest, powersave the slowest.
    assert row.execution_time("userspace@3.4") <= row.execution_time("linux") * 1.05
    assert row.execution_time("powersave") == max(
        row.execution_time(p) for p in ("linux", "powersave", "userspace@3.4")
    )
    assert "Table 3" in result.format_table()


def test_fig9_structure():
    from repro.experiments.fig9_power import run_fig9

    result = run_fig9(iteration_scale=FAST, apps=("tachyon",))
    row = result.rows[0]
    assert row.dynamic_power_w("powersave") < row.dynamic_power_w("userspace@3.4")
    assert row.static_energy_j("linux") > 0.0
    assert "Figure 9" in result.format_table()
