"""Property-based round-trip tests of the checkpoint state capture.

The capture/restore pair must be lossless for every stateful component
of the simulation closure: capturing a live object, restoring the
snapshot into a freshly built twin, and capturing again must reproduce
the snapshot bit-for-bit (via the canonical JSON encoding, which also
proves every snapshot is JSON-serializable).  Hypothesis drives the
objects to arbitrary mid-run states first, so the property holds for
more than the pristine post-``prepare`` state.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.checkpoint import (
    capture_agent,
    capture_chip,
    capture_fault_injector,
    capture_rng_state,
    capture_simulation,
    restore_rng_state,
    restore_simulation,
    serialize_checkpoint,
)
from repro.checkpoint.state import (
    restore_agent,
    restore_chip,
    restore_fault_injector,
)
from repro.config import FaultConfig, default_agent_config, default_reliability_config
from repro.core.manager import ProposedThermalManager
from repro.soc.simulator import Simulation
from repro.workloads.alpbench import make_application


def _canonical(state) -> bytes:
    return serialize_checkpoint({"state": state})


def _build_sim(seed: int, policy: str = "linux", faults: bool = False) -> Simulation:
    manager = None
    if policy == "proposed":
        manager = ProposedThermalManager(
            default_agent_config(), default_reliability_config()
        )
    return Simulation(
        [make_application("tachyon", None, seed=seed)],
        manager=manager,
        seed=seed,
        faults=FaultConfig(enabled=True) if faults else None,
        max_time_s=20000.0,
    )


def _stepped_sim(seed: int, ticks: int, policy: str = "linux", faults: bool = False):
    sim = _build_sim(seed, policy=policy, faults=faults)
    sim.prepare()
    for _ in range(ticks):
        sim.step()
    return sim


@given(st.integers(min_value=0, max_value=10_000), st.integers(min_value=0, max_value=64))
@settings(max_examples=20, deadline=None)
def test_rng_state_round_trip(seed, draws):
    source = np.random.Generator(np.random.PCG64(seed))
    source.random(draws)
    state = _canonical(capture_rng_state(source))

    target = np.random.Generator(np.random.PCG64(0))
    restore_rng_state(target, capture_rng_state(source))
    assert _canonical(capture_rng_state(target)) == state
    # Restored streams continue identically.
    assert target.random(8).tolist() == source.random(8).tolist()


@given(st.integers(min_value=0, max_value=500), st.integers(min_value=1, max_value=300))
@settings(max_examples=6, deadline=None)
def test_chip_state_round_trip(seed, ticks):
    sim = _stepped_sim(seed, ticks)
    state = capture_chip(sim.chip)

    twin = _build_sim(seed)
    twin.prepare()
    restore_chip(twin.chip, state)
    assert _canonical(capture_chip(twin.chip)) == _canonical(state)


@given(st.integers(min_value=0, max_value=500), st.integers(min_value=1, max_value=300))
@settings(max_examples=6, deadline=None)
def test_fault_injector_state_round_trip(seed, ticks):
    sim = _stepped_sim(seed, ticks, faults=True)
    state = capture_fault_injector(sim._fault_injector)

    twin = _build_sim(seed, faults=True)
    twin.prepare()
    restore_fault_injector(twin._fault_injector, state)
    assert _canonical(capture_fault_injector(twin._fault_injector)) == _canonical(
        state
    )


@given(st.integers(min_value=0, max_value=500), st.integers(min_value=1, max_value=400))
@settings(max_examples=5, deadline=None)
def test_agent_state_round_trip(seed, ticks):
    sim = _stepped_sim(seed, ticks, policy="proposed")
    agent = sim.manager.agent
    state = capture_agent(agent)

    twin = _build_sim(seed, policy="proposed")
    twin.prepare()
    restore_agent(twin.manager.agent, state)
    assert _canonical(capture_agent(twin.manager.agent)) == _canonical(state)


@given(st.integers(min_value=0, max_value=200), st.integers(min_value=1, max_value=250))
@settings(max_examples=4, deadline=None)
def test_full_simulation_round_trip(seed, ticks):
    sim = _stepped_sim(seed, ticks, policy="proposed", faults=True)
    state = capture_simulation(sim)

    twin = _build_sim(seed, policy="proposed", faults=True)
    restore_simulation(twin, state)
    assert _canonical(capture_simulation(twin)) == _canonical(state)
