"""Tests for the workload models (threads, applications, ALPBench)."""

import numpy as np
import pytest

from repro.workloads.alpbench import APP_NAMES, make_application, workload_spec
from repro.workloads.application import Application, PerformanceMetric
from repro.workloads.datasets import DATASET_NAMES, dataset_names_for, dataset_overlay
from repro.workloads.scenarios import (
    INTER_APP_SCENARIOS,
    scenario_applications,
    scenario_name,
)
from repro.workloads.thread_model import SimThread, ThreadPhase, WorkloadSpec


def make_spec(**overrides):
    defaults = dict(
        name="t",
        dataset="d",
        num_threads=2,
        work_cycles=1e9,
        work_jitter_sigma=0.0,
        activity_high=0.8,
        activity_low=0.05,
        sync_time_s=0.5,
        iterations=3,
        performance_constraint=0.1,
    )
    defaults.update(overrides)
    return WorkloadSpec(**defaults)


# ---------------------------------------------------------------------------
# Thread model
# ---------------------------------------------------------------------------


def test_thread_lifecycle_barrier_app():
    rng = np.random.default_rng(0)
    thread = SimThread(make_spec(), 0, rng)
    assert thread.phase is ThreadPhase.COMPUTE
    assert thread.runnable
    thread.execute(2e9)
    assert thread.phase is ThreadPhase.BARRIER
    assert not thread.runnable
    thread.release_barrier()
    assert thread.phase is ThreadPhase.SYNC
    thread.finish_sync()
    assert thread.phase is ThreadPhase.COMPUTE
    assert thread.iteration == 1


def test_thread_completes_after_iterations():
    rng = np.random.default_rng(0)
    thread = SimThread(make_spec(iterations=2), 0, rng)
    for _ in range(2):
        thread.execute(2e9)
        thread.release_barrier()
        thread.finish_sync()
    assert thread.done
    assert thread.activity == 0.0


def test_thread_activity_levels():
    rng = np.random.default_rng(0)
    spec = make_spec()
    thread = SimThread(spec, 0, rng)
    assert thread.activity == spec.activity_high
    thread.execute(2e9)
    assert thread.activity == spec.activity_low


def test_thread_jitter_reproducible():
    spec = make_spec(work_jitter_sigma=0.3)
    a = SimThread(spec, 0, np.random.default_rng(42))
    b = SimThread(spec, 0, np.random.default_rng(42))
    assert a.remaining_cycles == b.remaining_cycles
    assert a.remaining_cycles != spec.work_cycles  # jitter applied


def test_thread_queue_continuation():
    rng = np.random.default_rng(0)
    thread = SimThread(make_spec(iterations=2), 0, rng)
    thread.execute(2e9)
    thread.release_barrier()
    thread.continue_from_queue(True)
    assert thread.phase is ThreadPhase.COMPUTE
    thread.execute(2e9)
    thread.release_barrier()
    thread.continue_from_queue(False)
    assert thread.done


def test_spec_validation():
    with pytest.raises(ValueError):
        make_spec(num_threads=0)
    with pytest.raises(ValueError):
        make_spec(activity_high=0.2, activity_low=0.5)
    with pytest.raises(ValueError):
        make_spec(work_cycles=0)


# ---------------------------------------------------------------------------
# Application (barrier coordination)
# ---------------------------------------------------------------------------


def run_app_manually(app, freq=2e9, dt=0.1, max_ticks=5000):
    """Drive an application without a scheduler (all threads execute)."""
    ticks = 0
    while not app.done and ticks < max_ticks:
        for thread in app.threads:
            if thread.runnable:
                thread.execute(freq * dt)
        app.tick(dt)
        ticks += 1
    return ticks


def test_barrier_application_completes():
    app = Application(make_spec(iterations=3), seed=1)
    run_app_manually(app)
    assert app.done
    assert app.completed_iterations == 3


def test_barrier_waits_for_slowest_thread():
    app = Application(make_spec(num_threads=2, iterations=1), seed=1)
    fast, slow = app.threads
    fast.execute(2e9)  # fast thread reaches the barrier
    app.tick(0.1)
    assert fast.phase is ThreadPhase.BARRIER  # still waiting
    slow.execute(2e9)
    app.tick(0.1)
    assert fast.phase is ThreadPhase.SYNC


def test_queue_application_completes_with_total_work():
    spec = make_spec(iterations=4, barrier_sync=False, num_threads=2)
    app = Application(spec, seed=1)
    run_app_manually(app)
    assert app.done
    # Total thread-iterations equals iterations * num_threads; the app
    # credits one iteration per num_threads completions.
    assert app.completed_iterations == 4


def test_throughput_window():
    app = Application(make_spec(iterations=5), seed=1)
    run_app_manually(app)
    assert app.throughput() > 0.0
    assert app.throughput(window_s=1e9) == pytest.approx(app.throughput())


def test_throughput_empty_at_start():
    app = Application(make_spec(), seed=1)
    assert app.throughput() == 0.0


def test_performance_satisfied():
    spec = make_spec(iterations=5, performance_constraint=1e-6)
    app = Application(spec, seed=1)
    run_app_manually(app)
    assert app.performance_satisfied()


def test_phase_census():
    app = Application(make_spec(num_threads=3), seed=1)
    compute, barrier, sync, done = app.phase_census()
    assert compute == 3 and barrier == sync == done == 0


def test_progress_fraction():
    app = Application(make_spec(iterations=4), seed=1)
    assert app.progress_fraction() == 0.0
    run_app_manually(app)
    assert app.progress_fraction() == 1.0


# ---------------------------------------------------------------------------
# ALPBench factory and datasets
# ---------------------------------------------------------------------------


def test_all_apps_have_three_datasets():
    for app in APP_NAMES:
        assert len(dataset_names_for(app)) == 3


def test_workload_spec_fields():
    spec = workload_spec("tachyon", "set 1")
    assert spec.num_threads == 6
    assert spec.performance_constraint > 0.0
    assert not spec.barrier_sync  # tachyon is a work-queue renderer


def test_mpeg_is_barrier_synced():
    assert workload_spec("mpeg_dec", "clip 1").barrier_sync
    assert workload_spec("mpeg_enc", "seq 1").barrier_sync


def test_mpeg_apps_use_fps_metric():
    assert make_application("mpeg_dec").metric is PerformanceMetric.FRAMES_PER_SECOND
    assert make_application("tachyon").metric is PerformanceMetric.THROUGHPUT


def test_default_dataset_is_first():
    app = make_application("tachyon")
    assert app.spec.dataset == "set 1"


def test_unknown_app_and_dataset():
    with pytest.raises(KeyError):
        workload_spec("doom", "e1m1")
    with pytest.raises(KeyError):
        workload_spec("tachyon", "set 9")
    with pytest.raises(KeyError):
        dataset_overlay("nope", "x")


def test_dataset_names_structure():
    assert set(DATASET_NAMES) == set(APP_NAMES)
    assert DATASET_NAMES["mpeg_dec"] == ("clip 1", "clip 2", "clip 3")


def test_heaviest_dataset_first():
    """set 1 / clip 1 / seq 1 carry the most work, as in the paper."""
    for app in ("tachyon", "mpeg_dec"):
        names = dataset_names_for(app)
        works = [dataset_overlay(app, n).work_cycles for n in names]
        assert works[0] == max(works)


# ---------------------------------------------------------------------------
# Scenarios
# ---------------------------------------------------------------------------


def test_six_scenarios():
    assert len(INTER_APP_SCENARIOS) == 6
    assert sum(1 for s in INTER_APP_SCENARIOS if len(s) == 3) == 2


def test_scenario_name():
    assert scenario_name(("mpeg_dec", "tachyon")) == "mpegdec-tachyon"


def test_scenario_applications():
    apps = scenario_applications(("tachyon", "mpeg_dec"), seed=3)
    assert [a.spec.name for a in apps] == ["tachyon", "mpeg_dec"]


def test_scenario_iteration_scale():
    apps = scenario_applications(("tachyon",), seed=3, iteration_scale=0.5)
    full = make_application("tachyon").spec.iterations
    assert apps[0].spec.iterations == max(10, int(full * 0.5))
