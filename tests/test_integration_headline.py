"""Integration tests for the paper's headline claims.

These run moderately scaled simulations (half-length applications) and
assert the qualitative results of the evaluation section: the proposed
approach lowers temperature and improves both MTTF channels relative to
Linux, and improves thermal cycling relative to the Ge & Qiu baseline.
"""

import pytest

from repro.experiments.runner import run_scenario, run_workload

SCALE = 0.5


@pytest.fixture(scope="module")
def tachyon_runs():
    return {
        policy: run_workload("tachyon", "set 2", policy, iteration_scale=SCALE)
        for policy in ("linux", "ge", "proposed")
    }


@pytest.fixture(scope="module")
def mpeg_runs():
    return {
        policy: run_workload("mpeg_dec", "clip 1", policy, iteration_scale=SCALE)
        for policy in ("linux", "ge", "proposed")
    }


def test_proposed_reduces_average_temperature(tachyon_runs):
    assert (
        tachyon_runs["proposed"].average_temp_c
        < tachyon_runs["linux"].average_temp_c - 2.0
    )


def test_proposed_reduces_peak_temperature(tachyon_runs):
    assert tachyon_runs["proposed"].peak_temp_c <= tachyon_runs["linux"].peak_temp_c


def test_proposed_improves_aging_mttf_over_linux(tachyon_runs):
    assert (
        tachyon_runs["proposed"].aging_mttf_years
        > tachyon_runs["linux"].aging_mttf_years * 1.2
    )


def test_ge_improves_aging_over_linux(tachyon_runs):
    """The baseline's known strength: instantaneous-temperature control."""
    assert (
        tachyon_runs["ge"].aging_mttf_years > tachyon_runs["linux"].aging_mttf_years
    )


def test_proposed_improves_cycling_mttf_over_linux(mpeg_runs):
    assert (
        mpeg_runs["proposed"].cycling_mttf_years
        > mpeg_runs["linux"].cycling_mttf_years * 1.5
    )


def test_proposed_beats_ge_on_cycling(mpeg_runs):
    """The headline differentiator: cycling-aware state/reward."""
    assert (
        mpeg_runs["proposed"].cycling_mttf_years
        > mpeg_runs["ge"].cycling_mttf_years * 1.3
    )


def test_proposed_keeps_mpeg_performance_close_to_linux(mpeg_runs):
    ratio = mpeg_runs["proposed"].execution_time_s / mpeg_runs["linux"].execution_time_s
    assert ratio < 1.30  # the paper accepts bounded slowdowns


def test_proposed_saves_dynamic_energy_vs_ge(tachyon_runs):
    """Section 6.5: ~10% lower energy than the baseline."""
    assert (
        tachyon_runs["proposed"].dynamic_energy_j
        < tachyon_runs["ge"].dynamic_energy_j * 1.1
    )


def test_proposed_reduces_leakage_energy_rate_vs_linux(tachyon_runs):
    """Cooler silicon leaks less per unit time (Section 6.5)."""
    linux = tachyon_runs["linux"]
    proposed = tachyon_runs["proposed"]
    linux_rate = linux.static_energy_j / linux.execution_time_s
    proposed_rate = proposed.static_energy_j / proposed.execution_time_s
    assert proposed_rate < linux_rate


def test_inter_application_ordering():
    """Figure 3's ordering: Linux < modified Ge & Qiu < proposed."""
    runs = {
        policy: run_scenario(
            ("mpeg_dec", "tachyon"), policy, iteration_scale=SCALE
        )
        for policy in ("linux", "ge_modified", "proposed")
    }
    linux = runs["linux"].cycling_mttf_years
    ge = runs["ge_modified"].cycling_mttf_years
    proposed = runs["proposed"].cycling_mttf_years
    assert ge > linux
    assert proposed > ge
