"""Tests for the power models and energy meter."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import PowerConfig, default_platform_config
from repro.power.dynamic import dynamic_power_w
from repro.power.energy import EnergyMeter
from repro.power.leakage import leakage_power_w
from repro.power.opp import OppLadder

POWER = PowerConfig()
LADDER = OppLadder(default_platform_config().opp_table)


# ---------------------------------------------------------------------------
# OPP ladder
# ---------------------------------------------------------------------------


def test_ladder_sorted():
    freqs = LADDER.frequencies()
    assert freqs == sorted(freqs)
    assert LADDER.min_point.frequency_hz == 1.6e9
    assert LADDER.max_point.frequency_hz == 3.4e9


def test_ladder_index_and_at():
    index = LADDER.index_of(2.4e9)
    assert LADDER.at(index).frequency_hz == 2.4e9
    assert LADDER.at(-5).frequency_hz == 1.6e9  # clamped
    assert LADDER.at(99).frequency_hz == 3.4e9  # clamped


def test_ladder_nearest():
    assert LADDER.nearest(2.5e9).frequency_hz == 2.4e9
    assert LADDER.nearest(9e9).frequency_hz == 3.4e9


def test_ladder_ceil():
    assert LADDER.ceil(2.1e9).frequency_hz == 2.4e9
    assert LADDER.ceil(0.1e9).frequency_hz == 1.6e9
    assert LADDER.ceil(9e9).frequency_hz == 3.4e9


def test_ladder_step():
    assert LADDER.step(2.4e9, +1).frequency_hz == 2.8e9
    assert LADDER.step(2.4e9, -1).frequency_hz == 2.0e9
    assert LADDER.step(3.4e9, +1).frequency_hz == 3.4e9  # clamped


def test_ladder_unknown_frequency():
    with pytest.raises(KeyError):
        LADDER.index_of(2.5e9)


def test_ladder_rejects_duplicates():
    from repro.config import OperatingPoint

    with pytest.raises(ValueError):
        OppLadder([OperatingPoint(1e9, 0.8), OperatingPoint(1e9, 0.9)])


# ---------------------------------------------------------------------------
# Dynamic power
# ---------------------------------------------------------------------------


def test_dynamic_power_formula():
    p = dynamic_power_w(1.0, 1.1, 3.4e9, POWER)
    assert p == pytest.approx(POWER.c_eff * 1.1 * 1.1 * 3.4e9)
    # A fully active top-OPP core lands near 8 W, matching the chip's
    # ~30 W full-load budget.
    assert 6.0 < p < 10.0


def test_dynamic_power_zero_activity():
    assert dynamic_power_w(0.0, 1.0, 2e9, POWER) == 0.0


def test_dynamic_power_scales_linearly_with_activity():
    half = dynamic_power_w(0.5, 1.0, 2e9, POWER)
    full = dynamic_power_w(1.0, 1.0, 2e9, POWER)
    assert full == pytest.approx(2 * half)


def test_dynamic_power_quadratic_in_voltage():
    low = dynamic_power_w(1.0, 0.8, 2e9, POWER)
    high = dynamic_power_w(1.0, 1.6, 2e9, POWER)
    assert high == pytest.approx(4 * low)


def test_dynamic_power_validates_inputs():
    with pytest.raises(ValueError):
        dynamic_power_w(1.5, 1.0, 2e9, POWER)
    with pytest.raises(ValueError):
        dynamic_power_w(0.5, -1.0, 2e9, POWER)


def test_dvfs_cuts_power_superlinearly():
    """Dropping from the top to the 2.0 GHz OPP cuts dynamic power by
    much more than the frequency ratio (V^2 effect)."""
    top = dynamic_power_w(1.0, LADDER.voltage_for(3.4e9), 3.4e9, POWER)
    low = dynamic_power_w(1.0, LADDER.voltage_for(2.0e9), 2.0e9, POWER)
    assert low / top < (2.0 / 3.4) * 0.8


# ---------------------------------------------------------------------------
# Leakage
# ---------------------------------------------------------------------------


def test_leakage_grows_exponentially_with_temperature():
    cold = leakage_power_w(35.0, 1.0, POWER)
    hot = leakage_power_w(70.0, 1.0, POWER)
    import math

    assert hot / cold == pytest.approx(math.exp(POWER.t_leak * 35.0))


def test_leakage_linear_in_voltage():
    assert leakage_power_w(40.0, 1.0, POWER) == pytest.approx(
        2 * leakage_power_w(40.0, 0.5, POWER)
    )


def test_leakage_magnitude_is_sub_watt_when_idle():
    idle = leakage_power_w(34.0, 0.8, POWER)
    assert 0.1 < idle < 1.5


def test_leakage_rejects_bad_voltage():
    with pytest.raises(ValueError):
        leakage_power_w(40.0, 0.0, POWER)


@given(
    st.floats(min_value=20.0, max_value=100.0),
    st.floats(min_value=0.5, max_value=1.5),
)
@settings(max_examples=50, deadline=None)
def test_leakage_positive(temp, voltage):
    assert leakage_power_w(temp, voltage, POWER) > 0.0


# ---------------------------------------------------------------------------
# Energy meter
# ---------------------------------------------------------------------------


def test_meter_accumulates():
    meter = EnergyMeter()
    meter.record([2.0, 2.0], [0.5, 0.5], 1.0, dt=2.0)
    assert meter.dynamic_j == pytest.approx((4.0 + 1.0) * 2.0)
    assert meter.static_j == pytest.approx(1.0 * 2.0)
    assert meter.total_j == pytest.approx(12.0)
    assert meter.elapsed_s == pytest.approx(2.0)


def test_meter_average_powers():
    meter = EnergyMeter()
    meter.record([3.0], [1.0], 0.0, dt=10.0)
    assert meter.average_dynamic_power_w == pytest.approx(3.0)
    assert meter.average_static_power_w == pytest.approx(1.0)
    assert meter.average_power_w == pytest.approx(4.0)


def test_meter_empty_averages_are_zero():
    meter = EnergyMeter()
    assert meter.average_power_w == 0.0
    assert meter.average_dynamic_power_w == 0.0


def test_meter_snapshot_and_since():
    meter = EnergyMeter()
    meter.record([1.0], [0.5], 0.0, dt=1.0)
    snap = meter.snapshot()
    meter.record([2.0], [0.5], 0.0, dt=1.0)
    delta = meter.since(snap)
    assert delta.dynamic_j == pytest.approx(2.0)
    assert delta.static_j == pytest.approx(0.5)
    assert delta.elapsed_s == pytest.approx(1.0)


def test_meter_rejects_bad_dt():
    meter = EnergyMeter()
    with pytest.raises(ValueError):
        meter.record([1.0], [0.0], 0.0, dt=0.0)
