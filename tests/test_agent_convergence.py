"""Convergence smoke tests for the Q-learning agent (Algorithm 1).

Drives :class:`~repro.core.agent.QLearningThermalAgent` directly with
synthetic temperature epochs, without a simulator, to pin down the
phase machinery end to end:

* the exploration -> exploration-exploitation -> exploitation
  transition fires and the end-of-exploration Q-table snapshot is
  captured;
* an intra-application variation *restores* the snapshot and resumes
  from ``alpha_intra`` (the dual-Q-table restore path);
* an inter-application variation *resets* the table and restarts alpha
  at 1 (the reset path);

plus direct unit tests of the moving-average
:class:`~repro.core.variation.VariationDetector` branches (pending
same-sign confirmation, opposite-sign rejection, action-stability
gating, MA freezing) that integration runs rarely reach.
"""

import math

import pytest

from repro.config import default_agent_config, default_reliability_config
from repro.core.agent import QLearningThermalAgent
from repro.core.schedule import LearningPhase
from repro.core.state import EpochObservation
from repro.core.variation import (
    IMMEDIATE_JUMP_FACTOR,
    VariationDetector,
    VariationKind,
)

NUM_CORES = 4


def _make_agent():
    return QLearningThermalAgent(
        default_agent_config(), default_reliability_config()
    )


def _run_epoch(agent, temp_c, performance=30.0, constraint=25.0):
    """Feed one flat epoch at ``temp_c`` and run the decision."""
    for _ in range(agent.samples_per_epoch):
        agent.record_sample([temp_c] * NUM_CORES)
    return agent.decide(performance, constraint)


def _aging_norm(agent, temp_c):
    """The aging observation a flat epoch at ``temp_c`` produces."""
    series = [[temp_c] * agent.samples_per_epoch] * NUM_CORES
    return agent.states.observe(
        series, agent.config.sampling_interval_s
    ).aging_norm


def _find_temp(agent, target_low, target_high, reference_norm, start_c):
    """A temperature whose flat-epoch aging deviation from
    ``reference_norm`` lands inside [target_low, target_high)."""
    temp = start_c
    while temp < 120.0:
        dev = _aging_norm(agent, temp) - reference_norm
        if target_low <= dev < target_high:
            return temp
        temp += 0.25
    raise AssertionError(
        f"no flat-epoch temperature gives an aging deviation in "
        f"[{target_low}, {target_high}) from {reference_norm}"
    )


class TestLearningPhaseTransition:
    def test_exploration_to_exploitation(self):
        agent = _make_agent()
        cfg = agent.config
        assert agent.phase is LearningPhase.EXPLORATION
        assert not agent.qtable.has_exploration_snapshot

        round_robin = []
        for _ in range(40):
            round_robin.append(_run_epoch(agent, 42.0))

        # alpha = exp(-epoch/tau) with tau = 8 at the default 72-entry
        # table: exploration ends after ~6 epochs, pure exploitation
        # starts once alpha <= 0.05 (epoch >= 24).
        assert agent.phase is LearningPhase.EXPLOITATION
        assert agent.schedule.alpha <= cfg.alpha_exploit_threshold
        assert agent.stats.exploration_end_epoch is not None
        assert agent.stats.exploitation_entry_epoch is not None
        assert (
            agent.stats.exploration_end_epoch
            < agent.stats.exploitation_entry_epoch
        )
        # The snapshot Q-table was captured on entering exploitation.
        assert agent.qtable.has_exploration_snapshot
        # Early epochs walked the action menu round-robin: the first
        # len(actions) selections are each action exactly once.
        n = len(agent.actions)
        assert round_robin[:n] == list(range(n))
        assert agent.stats.epochs == 40
        assert agent.stats.inter_events == 0

    def test_identical_epochs_converge_to_a_stable_policy(self):
        agent = _make_agent()
        for _ in range(40):
            _run_epoch(agent, 42.0)
        assert agent.stats.convergence_epoch is not None
        # In exploitation epsilon is 0: the action is pinned greedy.
        last = _run_epoch(agent, 42.0)
        for _ in range(5):
            assert _run_epoch(agent, 42.0) == last


class TestIntraRestoreAndInterReset:
    def test_intra_variation_restores_snapshot(self):
        agent = _make_agent()
        cfg = agent.config
        base_c = 42.0
        for _ in range(40):
            _run_epoch(agent, base_c)
        assert agent.stats.intra_events == 0

        # A moderate level shift: deviation between the lower and upper
        # moving-average thresholds classifies as intra-application.
        intra_c = _find_temp(
            agent,
            cfg.aging_ma_lower + 0.005,
            cfg.aging_ma_upper - 0.005,
            _aging_norm(agent, base_c),
            base_c,
        )
        _run_epoch(agent, intra_c)
        assert agent.stats.intra_events == 1
        assert agent.stats.inter_events == 0
        # Alpha resumed from alpha_intra and decayed by the one
        # advance() the decision performed.
        assert agent.schedule.alpha < cfg.alpha_intra
        assert agent.schedule.alpha > cfg.alpha_exploit_threshold
        assert agent.phase is LearningPhase.EXPLORATION_EXPLOITATION
        # The restore path brought back the end-of-exploration snapshot,
        # not a zeroed table, and the snapshot stays available.
        assert agent.qtable.as_array().any()
        assert agent.qtable.has_exploration_snapshot

    def test_inter_variation_resets_learning(self):
        agent = _make_agent()
        cfg = agent.config
        base_c = 42.0
        for _ in range(40):
            _run_epoch(agent, base_c)

        # In exploitation epsilon is 0, so identical epochs hold the
        # greedy action and the action-stability gate is open.
        assert agent._same_action_count >= 3

        # A single huge jump (>= 2.5x the upper threshold) triggers the
        # immediate inter-application path.
        inter_c = _find_temp(
            agent,
            IMMEDIATE_JUMP_FACTOR * cfg.aging_ma_upper + 0.02,
            1.0,
            _aging_norm(agent, base_c),
            base_c,
        )
        _run_epoch(agent, inter_c)
        assert agent.stats.inter_events == 1
        # Full re-learning: alpha restarted at 1 (one advance applied),
        # snapshot discarded, epoch counter rewound.
        assert agent.phase is LearningPhase.EXPLORATION
        assert agent.schedule.alpha == pytest.approx(
            math.exp(-1.0 / agent.schedule.tau)
        )
        assert not agent.qtable.has_exploration_snapshot
        assert agent.schedule.epoch == 1

        # The agent relearns: drive it back to exploitation at the new
        # operating point and the snapshot is recaptured.
        for _ in range(40):
            _run_epoch(agent, inter_c)
        assert agent.phase is LearningPhase.EXPLOITATION
        assert agent.qtable.has_exploration_snapshot

    def test_inter_not_armed_during_early_learning(self):
        agent = _make_agent()
        base_c = 42.0
        # Only a handful of epochs: schedule.epoch < 2 * num_actions, so
        # an inter-sized jump must NOT reset the table.
        for _ in range(4):
            _run_epoch(agent, base_c)
        _run_epoch(agent, 75.0)
        assert agent.stats.inter_events == 0


class TestVariationDetectorBranches:
    def _obs(self, stress=0.0, aging=0.0):
        return EpochObservation(
            stress_norm=stress,
            aging_norm=aging,
            raw_stress_rate=stress,
            raw_aging_rate=aging,
        )

    def _detector(self):
        return VariationDetector(default_agent_config())

    def test_first_observation_is_never_classified(self):
        detector = self._detector()
        report = detector.observe(self._obs(aging=0.9))
        assert report.kind is VariationKind.NONE

    def test_pending_same_sign_confirmation_fires_inter(self):
        cfg = default_agent_config()
        detector = VariationDetector(cfg)
        detector.observe(self._obs(aging=0.1))
        # First deviation beyond upper: opens a pending trigger, reports
        # intra for now.
        dev = cfg.aging_ma_upper + 0.02
        first = detector.observe(self._obs(aging=0.1 + dev))
        assert first.kind is VariationKind.INTRA
        # Second deviation, same sign: confirmed inter-application —
        # even with action_stable False (the agent may already be
        # reacting to the new workload).
        second = detector.observe(
            self._obs(aging=0.1 + dev), action_stable=False
        )
        assert second.kind is VariationKind.INTER

    def test_pending_opposite_sign_does_not_confirm(self):
        cfg = default_agent_config()
        detector = VariationDetector(cfg)
        detector.observe(self._obs(aging=0.5))
        dev = cfg.aging_ma_upper + 0.02
        assert detector.observe(self._obs(aging=0.5 + dev)).kind is (
            VariationKind.INTRA
        )
        # Opposite-sign swing of the same magnitude: an alternating
        # exploration swing, not a level shift.
        report = detector.observe(self._obs(aging=0.5 - dev))
        assert report.kind is not VariationKind.INTER

    def test_ma_frozen_while_pending(self):
        cfg = default_agent_config()
        detector = VariationDetector(cfg)
        detector.observe(self._obs(aging=0.1))
        dev = cfg.aging_ma_upper + 0.02
        # Open a pending trigger: the deviating sample must NOT be
        # absorbed into the moving average...
        detector.observe(self._obs(aging=0.1 + dev))
        assert list(detector._aging) == [0.1]
        # ...so the confirming epoch still measures the full deviation
        # against the frozen pre-shift reference.
        confirm = detector.observe(self._obs(aging=0.1 + dev))
        assert confirm.delta_aging_ma == pytest.approx(dev)
        assert confirm.kind is VariationKind.INTER

    def test_unstable_action_suppresses_inter(self):
        cfg = default_agent_config()
        detector = VariationDetector(cfg)
        detector.observe(self._obs(aging=0.1))
        jump = IMMEDIATE_JUMP_FACTOR * cfg.aging_ma_upper + 0.05
        # The same jump that would fire immediately under a stable
        # action is demoted when the agent just changed its own action.
        report = detector.observe(
            self._obs(aging=0.1 + jump), action_stable=False
        )
        assert report.kind is not VariationKind.INTER
        # And no pending trigger was opened either.
        assert detector._pending_aging_sign is None

    def test_immediate_jump_fires_inter_when_stable(self):
        cfg = default_agent_config()
        detector = VariationDetector(cfg)
        detector.observe(self._obs(aging=0.1))
        jump = IMMEDIATE_JUMP_FACTOR * cfg.aging_ma_upper + 0.05
        report = detector.observe(self._obs(aging=0.1 + jump))
        assert report.kind is VariationKind.INTER

    def test_reset_forgets_history(self):
        detector = self._detector()
        detector.observe(self._obs(aging=0.4))
        detector.observe(self._obs(aging=0.9))
        detector.reset()
        # Post-reset the next observation re-establishes the trend.
        assert detector.observe(self._obs(aging=0.9)).kind is (
            VariationKind.NONE
        )

    def test_small_deviation_is_none(self):
        cfg = default_agent_config()
        detector = VariationDetector(cfg)
        detector.observe(self._obs(aging=0.3))
        report = detector.observe(
            self._obs(aging=0.3 + cfg.aging_ma_lower / 2)
        )
        assert report.kind is VariationKind.NONE

    def test_window_must_be_positive(self):
        from dataclasses import replace

        # Since the CFG001 coverage pass, the config itself rejects a
        # non-positive window at construction time.
        with pytest.raises(ValueError, match="window"):
            replace(default_agent_config(), ma_window=0)
