"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.config import (
    AgentConfig,
    PlatformConfig,
    ReliabilityConfig,
    default_agent_config,
    default_platform_config,
    default_reliability_config,
)
from repro.power.opp import OppLadder
from repro.thermal.floorplan import Floorplan
from repro.workloads.alpbench import make_application


@pytest.fixture
def platform() -> PlatformConfig:
    """Default platform configuration."""
    return default_platform_config()


@pytest.fixture
def reliability() -> ReliabilityConfig:
    """Default reliability configuration."""
    return default_reliability_config()


@pytest.fixture
def agent_config() -> AgentConfig:
    """Default agent configuration."""
    return default_agent_config()


@pytest.fixture
def ladder(platform) -> OppLadder:
    """Default OPP ladder."""
    return OppLadder(platform.opp_table)


@pytest.fixture
def floorplan() -> Floorplan:
    """Default 2x2 floorplan."""
    return Floorplan.grid_2x2()


@pytest.fixture
def small_app():
    """A short mpeg_dec application for fast integration tests."""
    from dataclasses import replace

    from repro.workloads.application import Application

    app = make_application("mpeg_dec", "clip 1", seed=7)
    return Application(replace(app.spec, iterations=12), metric=app.metric, seed=7)
