"""The keystone crash-tolerance guarantee, tested in-process.

A run interrupted at an arbitrary checkpoint and resumed must be
**byte-identical** to an uninterrupted run: same summary (pickle bytes),
same trace events, same everything.  These tests simulate the
interruption by truncating a completed run's checkpoint chain to a
mid-run prefix — content-addressed snapshots make that state
indistinguishable from a process killed right after that checkpoint —
and then resume through the ordinary runner entry points.
"""

import pickle
import shutil

import pytest

from repro.checkpoint import (
    CHECKPOINT_SCHEMA_VERSION,
    CheckpointStore,
    serialize_checkpoint,
)
from repro.checkpoint.store import CHAIN_FILENAME
from repro.config import FaultConfig, SupervisorConfig
from repro.experiments.runner import run_scenario, run_workload
from repro.ioutil import atomic_write_bytes

#: Cheap but representative: the RL policy with faults and supervision
#: exercises every stateful subsystem the snapshot must close over.
WORKLOAD = dict(
    app="tachyon",
    dataset=None,
    policy="proposed",
    seed=5,
    iteration_scale=0.05,
    faults=FaultConfig(enabled=True),
    supervisor=SupervisorConfig(enabled=True),
)

EVERY = 150


def _traced():
    from repro.obs import Instrumentation, TraceEmitter

    tracer = TraceEmitter()
    return Instrumentation(tracer=tracer), tracer


def _truncate_chain(source_dir, target_dir, keep):
    """Clone ``source_dir``'s first ``keep`` checkpoints into
    ``target_dir`` — exactly the on-disk state of a run killed right
    after its ``keep``-th checkpoint."""
    entries = CheckpointStore(source_dir).entries()
    assert len(entries) > keep, "reference run produced too few checkpoints"
    prefix = entries[:keep]
    target_dir.mkdir(parents=True, exist_ok=True)
    for entry in prefix:
        shutil.copy(source_dir / entry.file, target_dir / entry.file)
    atomic_write_bytes(
        target_dir / CHAIN_FILENAME,
        serialize_checkpoint(
            {
                "schema": CHECKPOINT_SCHEMA_VERSION,
                "entries": [entry.as_dict() for entry in prefix],
            }
        ),
    )
    return prefix


@pytest.fixture(scope="module")
def reference(tmp_path_factory):
    """One uninterrupted, checkpointed, traced reference run."""
    ckpt_dir = tmp_path_factory.mktemp("ckpt-ref")
    instrumentation, tracer = _traced()
    summary = run_workload(
        instrumentation=instrumentation,
        checkpoint_every=EVERY,
        checkpoint_dir=ckpt_dir,
        **WORKLOAD,
    )
    return {
        "ckpt_dir": ckpt_dir,
        "summary_bytes": pickle.dumps(summary),
        "events": list(tracer.events),
    }


def _resume_and_compare(reference, ckpt_dir, resume=True):
    instrumentation, tracer = _traced()
    summary = run_workload(
        instrumentation=instrumentation,
        checkpoint_every=EVERY,
        checkpoint_dir=ckpt_dir,
        resume=resume,
        **WORKLOAD,
    )
    assert pickle.dumps(summary) == reference["summary_bytes"], (
        "resumed summary diverged from the uninterrupted run"
    )
    assert list(tracer.events) == reference["events"], (
        "resumed trace diverged from the uninterrupted run"
    )


def test_reference_run_left_a_chain(reference):
    entries = CheckpointStore(reference["ckpt_dir"]).entries()
    assert len(entries) >= 2
    ticks = [entry.tick for entry in entries]
    assert ticks == sorted(ticks)
    assert all(tick % EVERY == 0 for tick in ticks)


def test_resume_mid_chain_is_byte_identical(reference, tmp_path):
    interrupted = tmp_path / "interrupted"
    entries = CheckpointStore(reference["ckpt_dir"]).entries()
    _truncate_chain(reference["ckpt_dir"], interrupted, keep=len(entries) // 2 or 1)
    _resume_and_compare(reference, interrupted)


def test_resume_from_first_checkpoint_is_byte_identical(reference, tmp_path):
    interrupted = tmp_path / "interrupted"
    _truncate_chain(reference["ckpt_dir"], interrupted, keep=1)
    _resume_and_compare(reference, interrupted)


def test_corrupt_newest_falls_back_and_stays_identical(reference, tmp_path):
    """A damaged newest checkpoint degrades to the previous valid one —
    and the resumed run is still byte-identical."""
    interrupted = tmp_path / "interrupted"
    prefix = _truncate_chain(reference["ckpt_dir"], interrupted, keep=2)
    newest = interrupted / prefix[-1].file
    newest.write_bytes(newest.read_bytes()[: len(newest.read_bytes()) // 2])
    assert CheckpointStore(interrupted).latest_valid().tick == prefix[0].tick
    _resume_and_compare(reference, interrupted)


def test_everything_corrupt_restarts_from_scratch(reference, tmp_path):
    """With no valid checkpoint at all the run silently starts over —
    graceful degradation, never a crash — and still matches."""
    interrupted = tmp_path / "interrupted"
    prefix = _truncate_chain(reference["ckpt_dir"], interrupted, keep=2)
    for entry in prefix:
        (interrupted / entry.file).write_bytes(b"garbage")
    _resume_and_compare(reference, interrupted)


def test_resume_false_ignores_existing_checkpoints(reference, tmp_path):
    interrupted = tmp_path / "interrupted"
    _truncate_chain(reference["ckpt_dir"], interrupted, keep=1)
    _resume_and_compare(reference, interrupted, resume=False)


def test_scenario_resume_is_byte_identical(tmp_path):
    """Inter-application scenarios (app switches mid-run) resume too."""
    kwargs = dict(
        apps=("tachyon", "mpeg_dec"),
        policy="ge",
        seed=3,
        iteration_scale=0.05,
    )
    ref_dir = tmp_path / "ref"
    reference = run_scenario(
        checkpoint_every=EVERY, checkpoint_dir=ref_dir, **kwargs
    )
    interrupted = tmp_path / "interrupted"
    entries = CheckpointStore(ref_dir).entries()
    _truncate_chain(ref_dir, interrupted, keep=max(1, len(entries) - 1))
    resumed = run_scenario(
        checkpoint_every=EVERY,
        checkpoint_dir=interrupted,
        resume=True,
        **kwargs,
    )
    assert pickle.dumps(resumed) == pickle.dumps(reference)
