"""Tests for the content-addressed checkpoint store.

Covers the storage-layer half of the crash-tolerance guarantee: the
canonical serialization is stable, every load re-verifies the content
digest, and corruption of any checkpoint — or of the manifest chain
itself — degrades to the previous valid checkpoint instead of crashing.
"""

import json

import pytest

from repro.checkpoint import (
    CHECKPOINT_SCHEMA_VERSION,
    CheckpointError,
    CheckpointStore,
    checkpoint_digest,
    load_checkpoint_file,
    serialize_checkpoint,
)
from repro.checkpoint.store import CHAIN_FILENAME


def _filled_store(root, ticks=(100, 200, 300)):
    store = CheckpointStore(root)
    parent = None
    for tick in ticks:
        record = store.save(
            {"tick_payload": tick, "nested": {"values": [1, 2, tick]}},
            tick=tick,
            now=tick * 0.01,
            parent=parent,
        )
        parent = record.digest
    return store


# ---------------------------------------------------------------------------
# Serialization and single-file loading
# ---------------------------------------------------------------------------


def test_serialization_is_canonical():
    doc = {"b": 2, "a": 1, "nested": {"z": [3, 1], "y": None}}
    shuffled = {"nested": {"y": None, "z": [3, 1]}, "a": 1, "b": 2}
    assert serialize_checkpoint(doc) == serialize_checkpoint(shuffled)
    assert checkpoint_digest(serialize_checkpoint(doc)) == checkpoint_digest(
        serialize_checkpoint(shuffled)
    )


def test_save_load_round_trip(tmp_path):
    store = _filled_store(tmp_path)
    entries = store.entries()
    assert [entry.tick for entry in entries] == [100, 200, 300]
    # Each entry's parent pointer is the previous entry's digest.
    assert entries[0].parent is None
    assert entries[1].parent == entries[0].digest
    assert entries[2].parent == entries[1].digest
    loaded = store.load_record(entries[1])
    assert loaded.tick == 200
    assert loaded.state == {"tick_payload": 200, "nested": {"values": [1, 2, 200]}}


def test_load_rejects_digest_mismatch(tmp_path):
    store = _filled_store(tmp_path)
    record = store.entries()[-1]
    path = tmp_path / record.file
    data = json.loads(path.read_text())
    data["state"]["tick_payload"] = -1
    path.write_text(json.dumps(data))
    with pytest.raises(CheckpointError, match="digest"):
        load_checkpoint_file(path)


def test_load_rejects_truncation_and_schema_mismatch(tmp_path):
    store = _filled_store(tmp_path)
    records = store.entries()
    truncated = tmp_path / records[0].file
    truncated.write_bytes(truncated.read_bytes()[:-20])
    with pytest.raises(CheckpointError):
        load_checkpoint_file(truncated)
    future = {"schema": CHECKPOINT_SCHEMA_VERSION + 1, "tick": 1, "state": {}}
    other = tmp_path / "other.json"
    other.write_bytes(serialize_checkpoint(future))
    with pytest.raises(CheckpointError, match="schema"):
        load_checkpoint_file(other)


# ---------------------------------------------------------------------------
# Graceful degradation
# ---------------------------------------------------------------------------


def test_latest_valid_returns_newest(tmp_path):
    store = _filled_store(tmp_path)
    assert store.latest_valid().tick == 300


def test_corrupt_newest_degrades_to_previous(tmp_path):
    store = _filled_store(tmp_path)
    newest = store.entries()[-1]
    (tmp_path / newest.file).write_bytes(b"garbage")
    assert store.latest_valid().tick == 200


def test_missing_newest_degrades_to_previous(tmp_path):
    store = _filled_store(tmp_path)
    newest = store.entries()[-1]
    (tmp_path / newest.file).unlink()
    assert store.latest_valid().tick == 200


def test_corrupt_chain_falls_back_to_files(tmp_path):
    store = _filled_store(tmp_path)
    (tmp_path / CHAIN_FILENAME).write_text("{not json")
    assert store.entries() == []
    assert store.latest_valid().tick == 300


def test_everything_corrupt_yields_none(tmp_path):
    store = _filled_store(tmp_path)
    for record in store.entries():
        (tmp_path / record.file).write_bytes(b"zap")
    (tmp_path / CHAIN_FILENAME).write_bytes(b"zap")
    assert store.latest_valid() is None


def test_empty_directory_yields_none(tmp_path):
    assert CheckpointStore(tmp_path / "nowhere").latest_valid() is None


def test_resaving_a_tick_replaces_the_chain_entry(tmp_path):
    store = _filled_store(tmp_path)
    store.save({"tick_payload": 300, "resumed": True}, tick=300, now=3.0)
    ticks = [entry.tick for entry in store.entries()]
    assert ticks == [100, 200, 300]
    assert store.latest_valid().state == {"tick_payload": 300, "resumed": True}


# ---------------------------------------------------------------------------
# Auditing and retention
# ---------------------------------------------------------------------------


def test_verify_reports_health_and_orphans(tmp_path):
    store = _filled_store(tmp_path)
    records = store.entries()
    (tmp_path / records[1].file).write_bytes(b"garbage")
    orphan = store.save({"o": 1}, tick=999, now=9.9)
    # Drop the orphan from the chain but keep its file on disk.
    store._write_chain(records)
    reports = {report["file"]: report for report in store.verify()}
    assert reports[records[0].file]["status"] == "ok"
    assert reports[records[0].file]["chain_ok"] is True
    assert reports[records[1].file]["status"] == "corrupt"
    assert reports[records[2].file]["status"] == "ok"
    assert reports[orphan.file]["status"] == "orphan"
    assert reports[orphan.file]["chain_ok"] is False


def test_verify_flags_missing_files(tmp_path):
    store = _filled_store(tmp_path)
    records = store.entries()
    (tmp_path / records[0].file).unlink()
    reports = {report["file"]: report for report in store.verify()}
    assert reports[records[0].file]["status"] == "missing"
    assert reports[records[0].file]["bytes"] is None


def test_prune_keeps_newest_valid(tmp_path):
    store = _filled_store(tmp_path, ticks=(10, 20, 30, 40))
    removed = store.prune(keep=2)
    assert sorted(record.tick for record in removed) == [10, 20]
    assert [entry.tick for entry in store.entries()] == [30, 40]
    assert len(list(tmp_path.glob("ckpt-*.json"))) == 2


def test_prune_drops_invalid_entries_first(tmp_path):
    store = _filled_store(tmp_path)
    newest = store.entries()[-1]
    (tmp_path / newest.file).write_bytes(b"garbage")
    store.prune(keep=2)
    assert [entry.tick for entry in store.entries()] == [100, 200]


def test_prune_rejects_nonpositive_keep(tmp_path):
    with pytest.raises(ValueError):
        _filled_store(tmp_path).prune(keep=0)
