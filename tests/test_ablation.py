"""Tests for the ablation experiment's variant construction."""

import pytest

from repro.config import default_agent_config
from repro.experiments.ablation import (
    ABLATION_VARIANTS,
    AblationResult,
    AblationRow,
    run_ablation,
    variant_config,
)


def test_variant_names_covered():
    for variant in ABLATION_VARIANTS:
        config, space = variant_config(variant)
        assert config is not None


def test_full_variant_is_default():
    config, space = variant_config("full")
    assert config == default_agent_config()
    assert space is None


def test_no_decoupling_collapses_epoch():
    config, _ = variant_config("no_decoupling")
    assert config.decision_epoch_s == config.sampling_interval_s


def test_no_affinity_space_is_dvfs_only():
    config, space = variant_config("no_affinity")
    assert space is not None
    assert all(action.mapping_name == "os_default" for action in space)
    assert len(space) == config.num_actions


def test_no_variation_thresholds_unreachable():
    config, _ = variant_config("no_variation")
    assert config.stress_ma_lower > 1.0
    assert config.aging_ma_upper > 1.0


def test_unknown_variant():
    with pytest.raises(KeyError):
        variant_config("no_learning")


def test_result_lookup():
    from repro.experiments.runner import run_workload

    summary = run_workload("mpeg_dec", "clip 1", "linux", iteration_scale=0.15)
    result = AblationResult(rows=[AblationRow("w", "full", summary)])
    assert result.value("w", "full", "average_temp_c") == summary.average_temp_c
    with pytest.raises(KeyError):
        result.value("w", "missing", "average_temp_c")
    assert result.workloads() == ["w"]


def test_run_ablation_fast_structure():
    result = run_ablation(iteration_scale=0.15)
    # 4 variants x (2 intra workloads + 1 scenario).
    assert len(result.rows) == 4 * 3
    assert "Ablation" in result.format_table()
