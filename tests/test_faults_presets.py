"""Unit tests for the named fault scenarios (`repro.faults.presets`)."""

import pytest

from repro.config import FaultConfig, SupervisorConfig
from repro.faults.presets import (
    FAULT_MODES,
    actuation_fault_config,
    combined_fault_config,
    default_supervisor_config,
    fault_config_for,
    sensor_fault_config,
)


class TestFaultConfigFor:
    def test_none_maps_to_no_fault_model(self):
        # "none" must disable faults entirely so fault-free runs stay
        # bit-identical to a simulation without the robustness layer.
        assert fault_config_for("none") is None

    def test_mode_mapping(self):
        assert fault_config_for("sensor") == sensor_fault_config()
        assert fault_config_for("actuation") == actuation_fault_config()
        assert fault_config_for("both") == combined_fault_config()

    def test_every_advertised_mode_resolves(self):
        for mode in FAULT_MODES:
            config = fault_config_for(mode)
            assert config is None or isinstance(config, FaultConfig)

    def test_unknown_mode_raises(self):
        with pytest.raises(ValueError, match="unknown fault mode"):
            fault_config_for("gamma_rays")
        with pytest.raises(ValueError, match="unknown fault mode"):
            fault_config_for("")


class TestPresetContents:
    def test_sensor_preset_touches_only_the_sensor_path(self):
        config = sensor_fault_config()
        assert config.enabled
        assert config.dropout_prob > 0.0
        assert config.spike_prob > 0.0
        assert config.stuck_prob > 0.0
        assert config.governor_fail_prob == 0.0
        assert config.governor_noop_prob == 0.0
        assert config.mapping_fail_prob == 0.0
        assert config.mapping_noop_prob == 0.0

    def test_actuation_preset_touches_only_the_actuation_path(self):
        config = actuation_fault_config()
        assert config.enabled
        assert config.governor_fail_prob > 0.0
        assert config.mapping_fail_prob > 0.0
        assert config.dropout_prob == 0.0
        assert config.spike_prob == 0.0
        assert config.stuck_prob == 0.0

    def test_combined_preset_is_the_union(self):
        sensor = sensor_fault_config()
        actuation = actuation_fault_config()
        both = combined_fault_config()
        assert both.enabled
        assert both.dropout_prob == sensor.dropout_prob
        assert both.spike_prob == sensor.spike_prob
        assert both.spike_magnitude_c == sensor.spike_magnitude_c
        assert both.stuck_prob == sensor.stuck_prob
        assert both.stuck_duration_s == sensor.stuck_duration_s
        assert both.offset_c == sensor.offset_c
        assert both.governor_fail_prob == actuation.governor_fail_prob
        assert both.governor_noop_prob == actuation.governor_noop_prob
        assert both.mapping_fail_prob == actuation.mapping_fail_prob
        assert both.mapping_noop_prob == actuation.mapping_noop_prob

    def test_presets_are_fresh_instances(self):
        # Callers may mutate/replace fields; presets must not share state.
        assert sensor_fault_config() is not sensor_fault_config()
        assert default_supervisor_config() is not default_supervisor_config()


class TestDefaultSupervisorConfig:
    def test_enabled(self):
        config = default_supervisor_config()
        assert isinstance(config, SupervisorConfig)
        assert config.enabled
