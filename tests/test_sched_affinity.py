"""Tests for affinity masks and the mapping presets."""

import pytest

from repro.sched.affinity import (
    MAPPING_ORDER,
    MAPPING_PRESETS,
    AffinityMapping,
    mapping_by_name,
)


def test_os_default_allows_everything():
    mapping = AffinityMapping.os_default(6)
    assert mapping.num_threads == 6
    assert all(mapping.allows(t, c) for t in range(6) for c in range(4))


def test_from_assignment_pins_each_thread():
    mapping = AffinityMapping.from_assignment("m", [0, 0, 1, 1, 2, 3])
    assert mapping.allows(0, 0)
    assert not mapping.allows(0, 1)
    assert mapping.allows(5, 3)


def test_validate_rejects_out_of_range():
    mapping = AffinityMapping.from_assignment("m", [0, 5])
    with pytest.raises(ValueError):
        mapping.validate(num_cores=4)


def test_validate_rejects_empty_mask():
    mapping = AffinityMapping("m", (frozenset(),))
    with pytest.raises(ValueError):
        mapping.validate(num_cores=4)


def test_all_presets_valid_for_quad_core():
    for name, mapping in MAPPING_PRESETS.items():
        mapping.validate(num_cores=4)
        assert mapping.num_threads == 6, name


def test_paired_2211_shape():
    """The motivational experiment's assignment: 2-2-1-1 threads/core."""
    mapping = MAPPING_PRESETS["paired_2211"]
    counts = {c: 0 for c in range(4)}
    for tid in range(6):
        for core in range(4):
            if mapping.allows(tid, core):
                counts[core] += 1
    assert sorted(counts.values(), reverse=True) == [2, 2, 1, 1]


def test_cluster_2_uses_two_cores():
    mapping = MAPPING_PRESETS["cluster_2"]
    used = {c for tid in range(6) for c in range(4) if mapping.allows(tid, c)}
    assert used == {0, 1}


def test_half_split_masks_are_multicore():
    mapping = MAPPING_PRESETS["half_split"]
    assert mapping.mask_for(0) == frozenset({0, 1})
    assert mapping.mask_for(5) == frozenset({2, 3})


def test_mapping_order_covers_known_presets():
    assert set(MAPPING_ORDER) == set(MAPPING_PRESETS)


def test_mapping_by_name_unknown():
    with pytest.raises(KeyError):
        mapping_by_name("nope")


def test_mapping_by_name_other_thread_count():
    mapping = mapping_by_name("spread_rr", num_threads=8)
    assert mapping.num_threads == 8
    mapping.validate(num_cores=4)
