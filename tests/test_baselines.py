"""Tests for the baseline policies (Linux, Ge & Qiu, static)."""

import pytest

from repro.baselines.ge_qiu import GeQiuThermalManager
from repro.baselines.linux_default import make_linux_simulation
from repro.baselines.static_policy import StaticPolicyManager
from repro.config import GeQiuConfig
from repro.sched.affinity import mapping_by_name
from repro.soc.simulator import Simulation
from repro.workloads.alpbench import make_application


def short_app(name="mpeg_dec", iters=10, seed=5):
    from dataclasses import replace

    from repro.workloads.application import Application

    app = make_application(name, seed=seed)
    return Application(replace(app.spec, iterations=iters), metric=app.metric, seed=seed)


# ---------------------------------------------------------------------------
# Linux default
# ---------------------------------------------------------------------------


def test_linux_simulation_has_no_manager():
    sim = make_linux_simulation([short_app()], max_time_s=2000)
    assert sim.manager is None
    assert sim.governor.name == "ondemand"
    result = sim.run()
    assert result.completed


def test_linux_other_governor():
    sim = make_linux_simulation([short_app()], governor="powersave", max_time_s=2000)
    assert sim.governor.name == "powersave"


# ---------------------------------------------------------------------------
# Static policy
# ---------------------------------------------------------------------------


def test_static_policy_applies_governor_and_mapping():
    manager = StaticPolicyManager(
        "userspace", 2.4e9, mapping=mapping_by_name("cluster_2")
    )
    sim = Simulation([short_app()], manager=manager, seed=1, max_time_s=2000)
    result = sim.run()
    assert result.completed
    assert result.manager_stats["applied"] == 1.0
    assert sim.governor.frequencies() == [2.4e9] * 4


def test_static_policy_keeps_default_governor_when_none():
    manager = StaticPolicyManager(mapping=mapping_by_name("spread_rr"))
    sim = Simulation([short_app()], governor="ondemand", manager=manager, seed=1, max_time_s=2000)
    sim.run()
    assert sim.governor.name == "ondemand"


# ---------------------------------------------------------------------------
# Ge & Qiu
# ---------------------------------------------------------------------------


def test_ge_actuates_userspace_frequencies():
    manager = GeQiuThermalManager()
    sim = Simulation([short_app(iters=20)], manager=manager, seed=1, max_time_s=4000)
    result = sim.run()
    assert result.completed
    assert result.manager_stats["steps"] > 5
    assert sim.governor.name.startswith("userspace")


def test_ge_reward_shape():
    manager = GeQiuThermalManager()
    manager._frequencies = [1.6e9, 3.4e9]
    cfg = manager.config
    # Below threshold: frequency-proportional performance reward.
    low = manager._reward(cfg.temp_threshold_c - 5.0, 1.6e9)
    high = manager._reward(cfg.temp_threshold_c - 5.0, 3.4e9)
    assert high > low > 0.0
    # Above threshold: penalty growing with the excursion.
    mild = manager._reward(cfg.temp_threshold_c + 2.0, 3.4e9)
    severe = manager._reward(cfg.temp_threshold_c + 20.0, 3.4e9)
    assert severe < mild < 0.0


def test_ge_temperature_state_bins():
    manager = GeQiuThermalManager()
    import numpy as np

    low, high = manager.config.temp_range_c
    assert manager._temperature_state(np.array([low] * 4)) == 0
    assert (
        manager._temperature_state(np.array([high + 10] * 4))
        == manager.config.num_temp_bins - 1
    )
    # The hottest core defines the state.
    mid = manager._temperature_state(np.array([low, low, high, low]))
    assert mid == manager.config.num_temp_bins - 1


def test_ge_base_ignores_switch_signal():
    manager = GeQiuThermalManager(react_to_app_switch=False)
    sim = Simulation(
        [short_app(seed=1), short_app(seed=2)], manager=manager, seed=1, max_time_s=4000
    )
    result = sim.run()
    assert result.manager_stats["switch_resets"] == 0.0


def test_ge_modified_resets_on_switch():
    manager = GeQiuThermalManager(react_to_app_switch=True)
    sim = Simulation(
        [short_app(seed=1), short_app(seed=2)], manager=manager, seed=1, max_time_s=4000
    )
    result = sim.run()
    assert result.manager_stats["switch_resets"] == 1.0


def test_ge_learning_persists_across_attach():
    """Re-attaching (a second measurement pass) keeps the Q-table."""
    manager = GeQiuThermalManager()
    sim1 = Simulation([short_app(iters=15, seed=1)], manager=manager, seed=1, max_time_s=4000)
    sim1.run()
    table = manager._qtable
    sim2 = Simulation([short_app(iters=5, seed=2)], manager=manager, seed=2, max_time_s=4000)
    sim2.run()
    assert manager._qtable is table


def test_ge_config_override():
    manager = GeQiuThermalManager(GeQiuConfig(interval_s=6.0))
    assert manager.config.interval_s == 6.0
