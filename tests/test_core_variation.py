"""Tests for the inter/intra workload-variation detector."""

import pytest

from repro.core.state import EpochObservation
from repro.core.variation import VariationDetector, VariationKind


def obs(stress, aging):
    return EpochObservation(stress, aging, 0.0, 1.0)


@pytest.fixture
def detector(agent_config):
    return VariationDetector(agent_config)


def feed(detector, pairs, action_stable=True):
    reports = []
    for stress, aging in pairs:
        reports.append(detector.observe(obs(stress, aging), action_stable=action_stable))
    return reports


def test_first_observation_is_none(detector):
    report = detector.observe(obs(0.5, 0.5))
    assert report.kind is VariationKind.NONE


def test_steady_workload_no_variation(detector):
    reports = feed(detector, [(0.3, 0.3)] * 10)
    assert all(r.kind is VariationKind.NONE for r in reports)


def test_small_noise_no_variation(detector):
    reports = feed(detector, [(0.30, 0.30), (0.33, 0.31), (0.29, 0.32), (0.31, 0.30)])
    assert all(r.kind is VariationKind.NONE for r in reports)


def test_moderate_shift_is_intra(detector, agent_config):
    low = agent_config.aging_ma_lower
    reports = feed(detector, [(0.3, 0.3)] * 3 + [(0.3, 0.3 + low + 0.02)])
    assert reports[-1].kind is VariationKind.INTRA


def test_sustained_level_shift_is_inter(detector):
    """An application switch: a sustained same-sign jump on one axis."""
    reports = feed(detector, [(0.05, 0.35)] * 4 + [(0.05, 0.05), (0.05, 0.05)])
    assert reports[-1].kind is VariationKind.INTER


def test_single_spike_is_not_inter(detector):
    """One deviating epoch that returns to trend must not reset."""
    reports = feed(detector, [(0.3, 0.3)] * 4 + [(0.3, 0.65), (0.3, 0.32), (0.3, 0.3)])
    assert all(r.kind is not VariationKind.INTER for r in reports)


def test_alternating_swings_are_not_inter(detector):
    """Opposite-sign consecutive deviations (the agent's own action
    flip-flop) never count as an application switch."""
    pattern = [(0.3, 0.2), (0.3, 0.6), (0.3, 0.2), (0.3, 0.6), (0.3, 0.2)]
    reports = feed(detector, [(0.3, 0.4)] * 3 + pattern)
    assert all(r.kind is not VariationKind.INTER for r in reports)


def test_action_change_masks_first_deviation(detector):
    """Deviations caused by the agent's own actuation change do not
    open an inter trigger."""
    feed(detector, [(0.05, 0.35)] * 4)
    first = detector.observe(obs(0.05, 0.05), action_stable=False)
    second = detector.observe(obs(0.05, 0.05), action_stable=False)
    assert first.kind is not VariationKind.INTER
    assert second.kind is not VariationKind.INTER


def test_stress_axis_detects_too(detector):
    reports = feed(detector, [(0.05, 0.2)] * 4 + [(0.5, 0.2), (0.5, 0.2)])
    assert reports[-1].kind is VariationKind.INTER


def test_immediate_huge_jump_is_inter(detector, agent_config):
    jump = 2.6 * agent_config.aging_ma_upper
    reports = feed(detector, [(0.1, 0.1)] * 3 + [(0.1, 0.1 + jump)])
    assert reports[-1].kind is VariationKind.INTER


def test_reset_forgets_history(detector):
    feed(detector, [(0.05, 0.35)] * 4)
    detector.reset()
    report = detector.observe(obs(0.05, 0.05))
    assert report.kind is VariationKind.NONE  # first obs after reset


def test_window_validation(agent_config):
    from dataclasses import replace

    with pytest.raises(ValueError):
        VariationDetector(replace(agent_config, ma_window=0))
