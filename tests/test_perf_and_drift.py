"""Tests for perf counters, sensor filtering and ambient drift."""

from dataclasses import replace

import numpy as np
import pytest

from repro.config import PlatformConfig, SensorConfig
from repro.sched.perf import PerfCounters
from repro.soc.chip import Chip
from repro.thermal.sensors import SensorBank


# ---------------------------------------------------------------------------
# Perf counters
# ---------------------------------------------------------------------------


def test_counters_start_at_zero():
    perf = PerfCounters()
    assert perf.cache_misses == 0.0
    assert perf.page_faults == 0.0
    assert perf.migrations == 0
    assert perf.sample_events == 0


def test_sample_event_costs():
    perf = PerfCounters()
    perf.record_sample_event()
    perf.record_sample_event()
    assert perf.sample_events == 2
    assert perf.cache_misses == pytest.approx(2 * perf.misses_per_sample)
    assert perf.page_faults == pytest.approx(2 * perf.faults_per_sample)


def test_migration_costs():
    perf = PerfCounters()
    perf.record_migration()
    assert perf.migrations == 1
    assert perf.cache_misses == pytest.approx(perf.misses_per_migration)


def test_decision_costs():
    perf = PerfCounters()
    perf.record_decision_event()
    assert perf.decision_events == 1
    assert perf.cache_misses == pytest.approx(perf.misses_per_decision)


def test_execution_baseline():
    perf = PerfCounters()
    perf.record_execution(1e12)
    assert perf.executed_cycles == 1e12
    assert perf.cache_misses == pytest.approx(1e12 * perf.misses_per_cycle)
    with pytest.raises(ValueError):
        perf.record_execution(-1.0)


def test_sampling_dominates_overhead_counters():
    """Figure 6's premise: per-sample cost dwarfs the execution baseline
    for realistic run lengths."""
    perf = PerfCounters()
    perf.record_execution(5e12)  # a full tachyon run's cycles
    baseline = perf.cache_misses
    for _ in range(600):  # 600 s at 1 s sampling
        perf.record_sample_event()
    assert perf.cache_misses - baseline > 4 * baseline


# ---------------------------------------------------------------------------
# Sensor EMA filtering
# ---------------------------------------------------------------------------


def quiet_sensor(ema_tau=0.0):
    return SensorConfig(noise_std_c=0.0, quantisation_c=0.0, ema_tau_s=ema_tau)


def test_unfiltered_sensor_tracks_instantly():
    bank = SensorBank(1, quiet_sensor(), seed=0)
    assert bank.read([40.0])[0] == 40.0
    assert bank.read([60.0])[0] == 60.0


def test_filtered_sensor_lags_steps():
    bank = SensorBank(1, quiet_sensor(ema_tau=4.0), seed=0, sample_period_s=1.0)
    bank.read([40.0])  # seeds the filter
    first_after_step = bank.read([60.0])[0]
    assert 40.0 < first_after_step < 60.0
    # Converges to the new level after many samples.
    for _ in range(50):
        reading = bank.read([60.0])[0]
    assert reading == pytest.approx(60.0, abs=0.5)


def test_filtered_sensor_smooths_oscillation():
    fast = SensorBank(1, quiet_sensor(), seed=0)
    slow = SensorBank(1, quiet_sensor(ema_tau=4.0), seed=0, sample_period_s=1.0)
    fast_span, slow_span = [], []
    for i in range(60):
        t = [50.0 + (8.0 if i % 2 else -8.0)]
        fast_span.append(fast.read(t)[0])
        slow_span.append(slow.read(t)[0])
    assert max(slow_span[10:]) - min(slow_span[10:]) < max(fast_span) - min(fast_span)


# ---------------------------------------------------------------------------
# Ambient drift
# ---------------------------------------------------------------------------


def drift_platform(sigma, tau=8.0):
    base = PlatformConfig()
    return PlatformConfig(
        thermal=replace(
            base.thermal, ambient_drift_sigma_c=sigma, ambient_drift_tau_s=tau
        )
    )


def test_no_drift_keeps_ambient_fixed():
    chip = Chip(PlatformConfig(), seed=1)
    for _ in range(100):
        chip.step([0.0] * 4, [1.6e9] * 4, 0.1)
    assert chip.thermal.ambient_c == PlatformConfig().thermal.ambient_c


def test_drift_moves_ambient_but_stays_bounded():
    chip = Chip(drift_platform(sigma=1.0), seed=1)
    values = []
    for _ in range(5000):
        chip.step([0.0] * 4, [1.6e9] * 4, 0.1)
        values.append(chip.thermal.ambient_c)
    values = np.array(values)
    assert values.std() > 0.2  # it actually fluctuates
    assert np.all(np.abs(values - 30.0) < 8.0)  # OU stays near the mean


def test_drift_is_seed_deterministic():
    def run(seed):
        chip = Chip(drift_platform(sigma=1.0), seed=seed)
        for _ in range(50):
            chip.step([0.0] * 4, [1.6e9] * 4, 0.1)
        return chip.thermal.ambient_c

    assert run(3) == run(3)
    assert run(3) != run(4)
