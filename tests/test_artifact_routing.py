"""Artefact routing: reduced-scale output never lands in ``results/``.

``benchmarks.conftest.save_artifact`` historically wrote every artefact
into the committed ``results/`` directory, so a quick
``REPRO_BENCH_SCALE=0.2`` sweep would silently clobber the full-scale
tables.  Scaled output is now routed through the experiment-engine
cache tree instead; only scale 1.0 may touch ``results/``.
"""

from pathlib import Path

import benchmarks.conftest as bench
from repro.experiments.engine import artifact_dir, default_cache_root


def test_artifact_dir_full_scale_is_results_dir(tmp_path):
    assert artifact_dir(1.0, tmp_path) == tmp_path


def test_artifact_dir_scaled_lands_in_cache_tree(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    target = artifact_dir(0.2, Path("results"))
    assert target == tmp_path / "results-scale-0.2"
    assert default_cache_root() == tmp_path


def test_save_artifact_scaled_routes_into_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.setenv("REPRO_BENCH_SCALE", "0.25")
    bench.save_artifact("routing_probe", "scaled table")
    written = tmp_path / "results-scale-0.25" / "routing_probe.txt"
    assert written.read_text() == "scaled table\n"
    assert not (bench.RESULTS_DIR / "routing_probe.txt").exists()


def test_save_artifact_full_scale_writes_results_dir(tmp_path, monkeypatch):
    monkeypatch.setattr(bench, "RESULTS_DIR", tmp_path / "results")
    monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
    bench.save_artifact("routing_probe", "full table")
    assert (tmp_path / "results" / "routing_probe.txt").read_text() == "full table\n"


def test_save_artifact_explicit_scale_overrides_env(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.setenv("REPRO_BENCH_SCALE", "1.0")
    bench.save_artifact("routing_probe", "explicit", scale=0.5)
    assert (tmp_path / "results-scale-0.5" / "routing_probe.txt").exists()
