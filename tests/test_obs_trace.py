"""Unit tests for JSONL tracing and run manifests (`repro.obs`)."""

import io
import json

import pytest

from repro.obs.manifest import (
    MANIFEST_SCHEMA_VERSION,
    ManifestError,
    RunManifest,
    build_manifest,
    config_digest,
    file_digest,
    load_manifest,
    validate_manifest,
    verify_artefacts,
)
from repro.obs.trace import (
    EVENT_FIELDS,
    SCHEMA_VERSION,
    TraceEmitter,
    TraceValidationError,
    format_summary,
    read_events,
    summarize_events,
    validate_event,
    write_events,
)
from repro.reliability.rainflow import count_cycles, total_cycle_count


def _event(etype="tick", **overrides):
    """A minimal valid event of the given type."""
    payloads = {
        "run_start": {"num_cores": 4, "governor": "ondemand", "apps": ["mpeg_dec"], "seed": 1},
        "tick": {"temps_c": [41.0, 42.0]},
        "decision": {
            "epoch": 3, "state": 4, "action": 2, "action_label": "f- m0",
            "phase": "exploration", "alpha": 0.7,
        },
        "q_update": {"state": 4, "action": 2, "reward": -0.2, "alpha": 0.7, "q_value": 1.5},
        "governor_change": {"governor": "userspace", "frequency_hz": 1.2e9, "outcome": "ok"},
        "mapping_change": {"mapping": [[0, 1], None], "outcome": "ok"},
        "variation": {
            "kind": "intra", "delta_stress_ma": 0.1, "delta_aging_ma": 0.2, "applied": True,
        },
        "fault": {"path": "sensor", "kind": "stuck", "count": 2},
        "supervisor": {"intervention": "sensor_median_fallback", "count": 2},
        "app_switch": {"index": 0, "app": "mpeg_dec", "dataset": "default"},
        "run_end": {"total_time_s": 60.0, "completed": True, "ticks": 6000},
    }
    event = {"schema": SCHEMA_VERSION, "seq": 0, "type": etype, "t": 0.0}
    event.update(payloads[etype])
    event.update(overrides)
    return event


class TestValidateEvent:
    @pytest.mark.parametrize("etype", sorted(EVENT_FIELDS))
    def test_every_event_type_has_a_valid_example(self, etype):
        validate_event(_event(etype))

    def test_rejects_non_dict(self):
        with pytest.raises(TraceValidationError, match="must be an object"):
            validate_event([1, 2, 3])

    @pytest.mark.parametrize("key", ["schema", "seq", "type", "t"])
    def test_rejects_missing_envelope_field(self, key):
        event = _event()
        del event[key]
        with pytest.raises(TraceValidationError, match="envelope"):
            validate_event(event)

    def test_rejects_wrong_schema_version(self):
        with pytest.raises(TraceValidationError, match="schema version"):
            validate_event(_event(schema=99))

    def test_rejects_bad_seq(self):
        with pytest.raises(TraceValidationError, match="seq"):
            validate_event(_event(seq=-1))
        with pytest.raises(TraceValidationError, match="seq"):
            validate_event(_event(seq="0"))

    def test_rejects_unknown_type(self):
        with pytest.raises(TraceValidationError, match="unknown event type"):
            validate_event(_event(type="made_up"))

    def test_rejects_non_numeric_time(self):
        with pytest.raises(TraceValidationError, match="t must be a number"):
            validate_event(_event(t="now"))
        with pytest.raises(TraceValidationError, match="t must be a number"):
            validate_event(_event(t=True))

    def test_rejects_missing_payload_field(self):
        event = _event("decision")
        del event["alpha"]
        with pytest.raises(TraceValidationError, match="missing field 'alpha'"):
            validate_event(event)

    def test_rejects_undeclared_extra_field(self):
        with pytest.raises(TraceValidationError, match="undeclared"):
            validate_event(_event("tick", extra_field=1))

    def test_rejects_bool_where_number_expected(self):
        # bool is an int subclass in Python; JSON says they are distinct.
        with pytest.raises(TraceValidationError, match="got bool"):
            validate_event(_event("decision", alpha=True))

    def test_rejects_wrong_payload_type(self):
        with pytest.raises(TraceValidationError, match="temps_c"):
            validate_event(_event("tick", temps_c="hot"))

    @pytest.mark.parametrize("etype", ["governor_change", "mapping_change"])
    def test_rejects_unknown_actuation_outcome(self, etype):
        with pytest.raises(TraceValidationError, match="outcome"):
            validate_event(_event(etype, outcome="exploded"))

    def test_nullable_fields_accept_null(self):
        validate_event(_event("governor_change", frequency_hz=None))
        validate_event(_event("mapping_change", mapping=None))


class TestTraceEmitter:
    def test_seq_monotone_and_events_retained(self):
        emitter = TraceEmitter()
        emitter.emit("tick", 0.01, temps_c=[40.0])
        emitter.emit("tick", 0.02, temps_c=[41.0])
        assert emitter.seq == 2
        assert [e["seq"] for e in emitter.events] == [0, 1]
        for event in emitter.events:
            validate_event(event)

    def test_unknown_type_raises_at_emit(self):
        with pytest.raises(ValueError, match="unknown event type"):
            TraceEmitter().emit("nonsense", 0.0)

    def test_stream_write_is_jsonl(self):
        stream = io.StringIO()
        emitter = TraceEmitter(stream=stream)
        emitter.emit("tick", 0.5, temps_c=[40.0])
        emitter.flush()
        lines = stream.getvalue().splitlines()
        assert len(lines) == 1
        decoded = json.loads(lines[0])
        assert decoded == emitter.events[0]


class TestTraceFileIO:
    def test_write_read_round_trip(self, tmp_path):
        events = [_event("run_start"), _event("tick", seq=1, t=0.01)]
        path = write_events(events, tmp_path / "sub" / "trace.jsonl")
        assert path.exists()
        assert list(read_events(path)) == events

    def test_read_reports_bad_json_with_line_number(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"ok": 1}\nnot json at all\n')
        with pytest.raises(TraceValidationError, match=":2:"):
            list(read_events(path))

    def test_read_skips_blank_lines(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"a": 1}\n\n{"b": 2}\n')
        assert list(read_events(path)) == [{"a": 1}, {"b": 2}]


class TestSummarizeEvents:
    def _trace(self):
        emitter = TraceEmitter()
        emitter.emit("run_start", 0.0, num_cores=2, governor="ondemand",
                     apps=["mpeg_dec"], seed=1)
        temps = [[40.0, 50.0], [45.0, 42.0], [41.0, 55.0], [44.0, 43.0]]
        for i, pair in enumerate(temps):
            emitter.emit("tick", 3.0 * (i + 1), temps_c=pair)
        emitter.emit("decision", 30.0, epoch=0, state=0, action=0,
                     action_label="hold", phase="exploration", alpha=1.0)
        emitter.emit("run_end", 60.0, total_time_s=60.0, completed=True, ticks=6000)
        return emitter.events, temps

    def test_headline_statistics(self):
        events, temps = self._trace()
        summary = summarize_events(events)
        flat = [t for pair in temps for t in pair]
        assert summary.total_events == len(events)
        assert summary.events_by_type["tick"] == 4
        assert summary.decisions == 1
        assert summary.avg_temp_c == pytest.approx(sum(flat) / len(flat))
        assert summary.peak_temp_c == 55.0
        assert summary.total_time_s == 60.0
        # Rainflow count must agree with the reliability module on the
        # same per-core series.
        expected = sum(
            total_cycle_count(count_cycles([pair[core] for pair in temps]))
            for core in range(2)
        )
        assert summary.num_cycles == pytest.approx(expected)

    def test_validation_is_applied_by_default(self):
        events, _ = self._trace()
        events[1]["temps_c"] = "hot"
        with pytest.raises(TraceValidationError):
            summarize_events(events)
        # validate=False trusts the producer (used for freshly built events).
        events[1]["temps_c"] = [40.0, 41.0]
        summarize_events(events, validate=False)

    def test_empty_trace(self):
        summary = summarize_events([])
        assert summary.total_events == 0
        assert summary.avg_temp_c == 0.0
        assert summary.num_cycles == 0.0

    def test_total_time_falls_back_to_last_event(self):
        summary = summarize_events([_event("tick", t=12.5)])
        assert summary.total_time_s == 12.5

    def test_format_summary_mentions_headlines(self):
        events, _ = self._trace()
        text = format_summary(summarize_events(events))
        assert "avg temperature" in text
        assert "rainflow cycles" in text
        assert "decisions" in text
        assert "tick" in text

    def test_as_dict_round_trips_through_json(self):
        events, _ = self._trace()
        dump = summarize_events(events).as_dict()
        assert json.loads(json.dumps(dump)) == dump


class TestConfigDigest:
    def test_deterministic_and_order_insensitive(self):
        a = config_digest({"x": 1, "y": [1, 2]})
        b = config_digest({"y": [1, 2], "x": 1})
        assert a == b
        assert len(a) == 64
        assert config_digest({"x": 2, "y": [1, 2]}) != a


class TestRunManifest:
    def _write_run_dir(self, tmp_path):
        (tmp_path / "trace.jsonl").write_text('{"schema": 1}\n')
        (tmp_path / "metrics.json").write_text("{}\n")
        manifest = build_manifest(
            {"app": "mpeg_dec", "seed": 1},
            run={"app": "mpeg_dec", "policy": "proposed"},
            repo_dir=tmp_path,
        )
        manifest.add_artefact(tmp_path / "trace.jsonl", tmp_path)
        manifest.add_artefact(tmp_path / "metrics.json", tmp_path)
        return manifest.write(tmp_path)

    def test_build_write_load_verify(self, tmp_path):
        path = self._write_run_dir(tmp_path)
        document = load_manifest(path)
        assert document["schema"] == MANIFEST_SCHEMA_VERSION
        assert document["config_hash"] == config_digest({"app": "mpeg_dec", "seed": 1})
        assert document["run"]["policy"] == "proposed"
        assert set(document["artefacts"]) == {"trace.jsonl", "metrics.json"}
        verify_artefacts(document, tmp_path)  # must not raise

    def test_load_accepts_directory(self, tmp_path):
        self._write_run_dir(tmp_path)
        assert load_manifest(tmp_path)["schema"] == MANIFEST_SCHEMA_VERSION

    def test_tampering_detected(self, tmp_path):
        path = self._write_run_dir(tmp_path)
        (tmp_path / "trace.jsonl").write_text('{"schema": 1, "tampered": true}\n')
        with pytest.raises(ManifestError, match="drifted"):
            verify_artefacts(load_manifest(path), tmp_path)

    def test_missing_artefact_detected(self, tmp_path):
        path = self._write_run_dir(tmp_path)
        (tmp_path / "metrics.json").unlink()
        with pytest.raises(ManifestError, match="missing"):
            verify_artefacts(load_manifest(path), tmp_path)

    def test_validate_rejects_malformed_documents(self):
        good = RunManifest(config_hash="0" * 64).as_dict()
        validate_manifest(good)
        for corrupt in (
            {**good, "schema": 99},
            {**good, "config_hash": "short"},
            {**good, "artefacts": []},
            {**good, "git": 12},
            {**good, "artefacts": {"x": {"sha256": "bad", "bytes": 1}}},
            {**good, "artefacts": {"x": {"sha256": "0" * 64, "bytes": -1}}},
        ):
            with pytest.raises(ManifestError):
                validate_manifest(corrupt)

    def test_load_rejects_bad_json(self, tmp_path):
        path = tmp_path / "manifest.json"
        path.write_text("{nope")
        with pytest.raises(ManifestError, match="not valid JSON"):
            load_manifest(path)

    def test_file_digest_matches_content(self, tmp_path):
        path = tmp_path / "blob.bin"
        path.write_bytes(b"abc" * 1000)
        entry = file_digest(path)
        assert entry["bytes"] == 3000
        assert len(entry["sha256"]) == 64
        assert entry == file_digest(path)
