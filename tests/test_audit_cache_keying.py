"""End-to-end tests for behavior-closure-driven cache keying.

The contract under test: a job key covers the spec, the package version
and the behavior-closure digest, so editing simulation *code* cold-misses
stale cache entries automatically while doc-only edits keep the cache
warm.  The end-to-end tests copy the real ``repro`` package into a
temporary tree and point ``$REPRO_CLOSURE_ROOT`` at it, so they can edit
"the simulator" without touching the checkout.
"""

import pickle
import shutil
from pathlib import Path

import pytest

from repro.analysis.audit import clear_closure_cache
from repro.experiments.engine import (
    CLOSURE_DIGEST_ENV,
    CLOSURE_ROOT_ENV,
    ResultCache,
    behavior_digest,
    canonical_json,
    job_key,
    workload_job,
)

SRC_PACKAGE = Path(__file__).resolve().parent.parent / "src" / "repro"


@pytest.fixture
def spec():
    return workload_job("mpeg_dec", policy="proposed", iteration_scale=0.05)


class TestKeyDerivation:
    def test_canonical_document_carries_the_closure(self, spec, monkeypatch):
        monkeypatch.setenv(CLOSURE_DIGEST_ENV, "feedface" * 8)
        document = canonical_json(spec)
        assert '"closure":"' + "feedface" * 8 + '"' in document

    def test_pinned_digest_changes_the_key(self, spec, monkeypatch):
        monkeypatch.setenv(CLOSURE_DIGEST_ENV, "a" * 64)
        first = job_key(spec)
        monkeypatch.setenv(CLOSURE_DIGEST_ENV, "b" * 64)
        assert job_key(spec) != first

    def test_explicit_closure_argument_overrides(self, spec, monkeypatch):
        monkeypatch.setenv(CLOSURE_DIGEST_ENV, "a" * 64)
        assert job_key(spec, closure="c" * 64) == job_key(
            spec, closure="c" * 64
        )
        assert job_key(spec, closure="c" * 64) != job_key(spec)

    def test_behavior_digest_prefers_the_pin(self, monkeypatch):
        monkeypatch.setenv(CLOSURE_DIGEST_ENV, "d" * 64)
        assert behavior_digest() == "d" * 64


class TestEndToEndInvalidation:
    """Edit a copy of the real package; watch the cache react."""

    @pytest.fixture
    def tree(self, tmp_path, monkeypatch):
        package = tmp_path / "repro"
        shutil.copytree(
            SRC_PACKAGE, package, ignore=shutil.ignore_patterns("__pycache__")
        )
        monkeypatch.delenv(CLOSURE_DIGEST_ENV, raising=False)
        monkeypatch.setenv(CLOSURE_ROOT_ENV, str(package))
        clear_closure_cache()
        yield package
        clear_closure_cache()

    def cache_for(self, tmp_path):
        # A fresh instance resolves the closure digest of the (possibly
        # just-edited) tree; the on-disk store is shared across them.
        return ResultCache(root=tmp_path / "cache")

    def test_doc_only_edit_keeps_the_cache_warm(self, tree, tmp_path, spec):
        self.cache_for(tmp_path).put(spec, {"ok": True})

        chip = tree / "soc" / "chip.py"
        source = chip.read_text(encoding="utf-8")
        assert '"""' in source
        chip.write_text(
            "# annotation: doc-only edit for the keying test\n"
            + source.replace('"""', '"""Doc-only tweak. ', 1),
            encoding="utf-8",
        )
        clear_closure_cache()

        warm = self.cache_for(tmp_path)
        assert warm.get(spec) == {"ok": True}
        assert warm.stats.as_dict() == {
            "hits": 1,
            "misses": 0,
            "stores": 0,
            "invalidated": 0,
            "corrupt": 0,
            "mismatched": 0,
        }

    def test_behavior_edit_cold_misses(self, tree, tmp_path, spec):
        before = self.cache_for(tmp_path)
        before.put(spec, {"ok": True})

        chip = tree / "soc" / "chip.py"
        chip.write_text(
            chip.read_text(encoding="utf-8") + "\n_KEYING_PROBE = 1\n",
            encoding="utf-8",
        )
        clear_closure_cache()

        after = self.cache_for(tmp_path)
        assert after.closure != before.closure
        assert after.key_for(spec) != before.key_for(spec)
        assert after.get(spec) is None
        assert after.stats.misses == 1
        # The old entry is still addressable under the old digest.
        assert before.get(spec) == {"ok": True}


class TestEvictionAccounting:
    """Corrupt and mismatched entries are evicted — and counted apart."""

    @pytest.fixture
    def cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CLOSURE_DIGEST_ENV, "e" * 64)
        return ResultCache(root=tmp_path / "cache")

    def entry_path(self, cache, spec):
        path = cache._path_for(cache.key_for(spec))
        path.parent.mkdir(parents=True, exist_ok=True)
        return path

    def test_corrupt_entry_is_counted_as_corrupt(self, cache, spec):
        self.entry_path(cache, spec).write_bytes(b"not a pickle")
        assert cache.get(spec) is None
        stats = cache.stats.as_dict()
        assert stats["corrupt"] == 1
        assert stats["mismatched"] == 0
        assert stats["invalidated"] == 1
        assert stats["misses"] == 1

    def test_stale_closure_is_counted_as_mismatched(self, cache, spec):
        payload = {
            "version": cache.version,
            "closure": "f" * 64,  # keyed under some older tree
            "key": cache.key_for(spec),
            "summary": {"ok": True},
        }
        with self.entry_path(cache, spec).open("wb") as handle:
            pickle.dump(payload, handle)
        assert cache.get(spec) is None
        stats = cache.stats.as_dict()
        assert stats["corrupt"] == 0
        assert stats["mismatched"] == 1
        assert stats["invalidated"] == 1
        assert stats["misses"] == 1

    def test_stale_version_is_counted_as_mismatched(self, cache, spec):
        payload = {
            "version": "0.0.0-ancient",
            "closure": cache.closure,
            "key": cache.key_for(spec),
            "summary": {"ok": True},
        }
        with self.entry_path(cache, spec).open("wb") as handle:
            pickle.dump(payload, handle)
        assert cache.get(spec) is None
        assert cache.stats.mismatched == 1

    def test_both_evictions_clear_the_entry_from_disk(self, cache, spec):
        path = self.entry_path(cache, spec)
        path.write_bytes(b"junk")
        cache.get(spec)
        assert not path.exists()

    def test_round_trip_is_a_hit(self, cache, spec):
        cache.put(spec, {"ok": True})
        assert cache.get(spec) == {"ok": True}
        assert cache.stats.hits == 1
        assert cache.stats.invalidated == 0
