"""End-to-end tests for the fault-injection + supervision wiring.

Covers the acceptance criteria of the robustness layer: a disabled
fault config leaves runs bit-identical to the fault-free engine, every
controller completes on a faulty substrate with sanitised observations,
and the thermal-emergency safe state engages at the critical threshold.
"""

import numpy as np
import pytest

from repro.config import FaultConfig, SupervisorConfig
from repro.experiments.fault_tolerance import run_fault_tolerance
from repro.faults import combined_fault_config, default_supervisor_config
from repro.soc.simulator import Simulation, ThermalManagerBase
from tests.test_soc import short_app


# ---------------------------------------------------------------------------
# Bit-identity of fault-free runs
# ---------------------------------------------------------------------------


def run_profile(**kwargs):
    sim = Simulation([short_app(seed=3)], seed=9, max_time_s=2000, **kwargs)
    return sim.run()


def test_disabled_fault_config_is_bit_identical():
    baseline = run_profile()
    disabled = run_profile(faults=FaultConfig(enabled=False))
    assert np.array_equal(baseline.profile.as_array(), disabled.profile.as_array())
    assert baseline.total_time_s == disabled.total_time_s
    assert baseline.energy.dynamic_j == disabled.energy.dynamic_j
    assert disabled.fault_stats == {}


def test_disabled_supervisor_config_is_bit_identical():
    baseline = run_profile()
    disabled = run_profile(supervisor=SupervisorConfig(enabled=False))
    assert np.array_equal(baseline.profile.as_array(), disabled.profile.as_array())
    assert baseline.total_time_s == disabled.total_time_s
    assert disabled.supervisor_stats == {}


def test_faulty_runs_are_reproducible():
    a = run_profile(faults=combined_fault_config())
    b = run_profile(faults=combined_fault_config())
    assert np.array_equal(a.profile.as_array(), b.profile.as_array())
    assert a.fault_stats == b.fault_stats


# ---------------------------------------------------------------------------
# No NaN reaches a controller when supervised
# ---------------------------------------------------------------------------


class ObservingManager(ThermalManagerBase):
    """Reads the sensors every tick and records what it sees."""

    def __init__(self):
        self.observations = []

    def on_tick(self, sim):
        self.observations.append(sim.read_sensors())


def test_supervised_observations_are_always_sane():
    manager = ObservingManager()
    sim = Simulation(
        [short_app(iters=30)],
        manager=manager,
        seed=1,
        max_time_s=2000,
        faults=combined_fault_config(),
        supervisor=default_supervisor_config(),
    )
    result = sim.run()
    assert result.completed
    assert manager.observations
    sensor = sim.platform.sensor
    observed = np.asarray(manager.observations)
    assert np.all(np.isfinite(observed))
    assert np.all(observed >= sensor.min_c)
    assert np.all(observed <= sensor.max_c)
    # Faults were actually injected and repaired, not absent.
    assert result.fault_stats["dropouts"] > 0
    assert result.supervisor_stats["sensor_median_fallbacks"] > 0


def test_unsupervised_faulty_observations_do_contain_nan():
    """Sanity check on the fixture: without the supervisor the same
    fault schedule really does deliver NaN to the controller."""
    manager = ObservingManager()
    sim = Simulation(
        [short_app(iters=30)],
        manager=manager,
        seed=1,
        max_time_s=2000,
        faults=combined_fault_config(),
    )
    sim.run()
    observed = np.asarray(manager.observations)
    assert np.any(~np.isfinite(observed))


# ---------------------------------------------------------------------------
# Thermal emergency
# ---------------------------------------------------------------------------


def test_emergency_engages_at_critical_threshold():
    """With the critical threshold set below the chip's operating
    temperature the watchdog must clamp the platform immediately."""
    supervisor = SupervisorConfig(
        enabled=True, critical_temp_c=36.0, emergency_release_c=20.0
    )
    sim = Simulation(
        [short_app(iters=30)],
        governor="performance",
        seed=1,
        max_time_s=2000,
        supervisor=supervisor,
    )
    result = sim.run()
    assert result.completed
    assert result.supervisor_stats["emergencies"] >= 1
    assert result.supervisor_stats["emergency_time_s"] > 0.0
    # The clamp forces the minimum operating point.
    assert sim.governor.frequencies() == [sim.platform.min_frequency()] * 4


def test_all_policies_complete_on_faulty_substrate():
    result = run_fault_tolerance(
        iteration_scale=0.02,
        policies=("linux", "ge", "proposed"),
        fault_modes=("sensor",),
    )
    assert len(result.rows) == 6
    for row in result.rows:
        assert row.summary.completed, (row.policy, row.fault_mode, row.supervised)
    table = result.format_table()
    assert "supervisor" in table
    assert "tcMTTF_y" in table
