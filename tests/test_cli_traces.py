"""Tests for the CLI and the ASCII trace renderer."""

import pytest

from repro.analysis.traces import render_profile, render_series
from repro.cli import ARTEFACTS, build_parser, main
from repro.thermal.profile import ThermalProfile


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def test_parser_accepts_every_artefact():
    parser = build_parser()
    for name in ARTEFACTS:
        args = parser.parse_args([name, "--scale", "0.5"])
        assert args.command == name
        assert args.scale == 0.5


def test_parser_run_command():
    parser = build_parser()
    args = parser.parse_args(["run", "tachyon", "--policy", "ge", "--dataset", "set 2"])
    assert args.app == "tachyon"
    assert args.policy == "ge"


def test_parser_rejects_unknown_app():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["run", "doom"])


def test_cli_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "table2" in out and "proposed" in out and "tachyon" in out


def test_cli_run_workload(capsys):
    assert main(["run", "mpeg_dec", "--scale", "0.15", "--policy", "powersave"]) == 0
    out = capsys.readouterr().out
    assert "average temperature" in out
    assert "cycling MTTF" in out


def test_cli_artefact_prints_table(capsys, tmp_path, monkeypatch):
    # Artefact commands cache by default; keep the cache out of the repo.
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    assert main(["fig1", "--scale", "0.15"]) == 0
    out = capsys.readouterr().out
    assert "Figure 1" in out


def test_cli_artefact_no_cache_leaves_no_cache_dir(capsys, tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    assert main(["fig1", "--scale", "0.15", "--no-cache"]) == 0
    assert "Figure 1" in capsys.readouterr().out
    assert not (tmp_path / "cache").exists()


def test_cli_all_subset(capsys, tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    assert main(
        ["all", "--scale", "0.15", "--only", "fig1", "--jobs", "2", "--quiet"]
    ) == 0
    out = capsys.readouterr().out
    assert "jobs executed:" in out
    assert (tmp_path / "results-scale-0.15" / "fig1.txt").exists()


# ---------------------------------------------------------------------------
# ASCII traces
# ---------------------------------------------------------------------------


def test_render_series_shape():
    series = [40.0 + (i % 10) for i in range(200)]
    chart = render_series(series, width=40, height=8, title="trace")
    lines = chart.splitlines()
    assert lines[0] == "trace"
    assert len(lines) == 1 + 8 + 1  # title + rows + axis
    assert "#" in chart


def test_render_series_axis_labels():
    chart = render_series([30.0, 50.0, 30.0], height=5)
    assert "50.0C" in chart
    assert "30.0C" in chart


def test_render_series_fixed_limits():
    a = render_series([40.0, 45.0], t_min=30.0, t_max=80.0)
    assert "80.0C" in a and "30.0C" in a


def test_render_series_rejects_empty():
    with pytest.raises(ValueError):
        render_series([])


def test_render_constant_series():
    chart = render_series([42.0] * 50)
    assert "#" in chart  # drawn at the bottom band


def test_render_profile_envelope_and_core():
    profile = ThermalProfile(2, 1.0)
    for i in range(100):
        profile.append([40.0 + (i % 5), 60.0])
    envelope = render_profile(profile)
    core0 = render_profile(profile, core=0)
    assert "60.0" in envelope  # the hot core dominates the envelope
    assert "#" in core0
