"""Tests for the audit project model: fingerprints, graph, closure.

Fixture trees are written under ``<tmp>/repro/...`` so that
``module_for_path`` derives real dotted module names, exactly as it does
for the installed package.
"""

import textwrap

from repro.analysis.audit import (
    Marker,
    ProjectModel,
    clear_closure_cache,
    closure_digest,
    compute_closure,
    fingerprint_node,
    normalized_dump,
    parse_markers,
    python_tag,
)


def write_tree(root, files):
    """Write ``{relative_path: source}`` under ``root / 'repro'``."""
    package = root / "repro"
    for relative, source in files.items():
        path = package / relative
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
    init = package / "__init__.py"
    if not init.exists():
        init.write_text("", encoding="utf-8")
    return package


def build(root, files):
    return ProjectModel.build(write_tree(root, files))


# ---------------------------------------------------------------------------
# Import / call graph
# ---------------------------------------------------------------------------


class TestGraph:
    def test_plain_and_from_imports_resolve(self, tmp_path):
        model = build(
            tmp_path,
            {
                "a.py": "import repro.b\n",
                "b.py": "from repro.c import helper\n",
                "c.py": "def helper():\n    return 1\n",
            },
        )
        assert "repro.b" in model.modules["repro.a"].imports
        assert "repro.c" in model.modules["repro.b"].imports

    def test_lazy_in_function_import_is_an_edge(self, tmp_path):
        model = build(
            tmp_path,
            {
                "a.py": """
                def run():
                    from repro.b import helper

                    return helper()
                """,
                "b.py": "def helper():\n    return 2\n",
            },
        )
        assert "repro.b" in model.modules["repro.a"].imports

    def test_relative_import_resolves(self, tmp_path):
        model = build(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/a.py": "from . import b\nfrom .b import helper\n",
                "pkg/b.py": "def helper():\n    return 3\n",
            },
        )
        assert "repro.pkg.b" in model.modules["repro.pkg.a"].imports

    def test_importing_a_submodule_pulls_ancestor_inits(self, tmp_path):
        model = build(
            tmp_path,
            {
                "pkg/__init__.py": "SIDE_EFFECT = 1\n",
                "pkg/deep.py": "def f():\n    return 4\n",
                "a.py": "import repro.pkg.deep\n",
            },
        )
        imports = model.modules["repro.a"].imports
        assert "repro.pkg" in imports
        assert "repro.pkg.deep" in imports

    def test_attribute_call_edge_via_longest_module_prefix(self, tmp_path):
        model = build(
            tmp_path,
            {
                "a.py": """
                import repro

                def run():
                    return repro.pkg.deep.f()
                """,
                "pkg/__init__.py": "",
                "pkg/deep.py": "def f():\n    return 5\n",
            },
        )
        assert "repro.pkg.deep" in model.modules["repro.a"].imports

    def test_reachable_follows_transitive_edges(self, tmp_path):
        model = build(
            tmp_path,
            {
                "runner.py": "import repro.mid\n",
                "mid.py": "import repro.leaf\n",
                "leaf.py": "X = 1\n",
                "island.py": "Y = 2\n",
            },
        )
        members = model.reachable(("repro.runner",))
        assert "repro.leaf" in members
        assert "repro.island" not in members

    def test_reachable_prunes_excluded_prefixes(self, tmp_path):
        model = build(
            tmp_path,
            {
                "runner.py": "import repro.tools.probe\n",
                "tools/__init__.py": "",
                "tools/probe.py": "import repro.leaf\n",
                "leaf.py": "X = 1\n",
            },
        )
        members = model.reachable(
            ("repro.runner",), exclude_prefixes=("repro.tools",)
        )
        assert "repro.tools.probe" not in members
        # Traversal is pruned too: the leaf is only reachable through
        # the excluded module, so it must not appear.
        assert "repro.leaf" not in members

    def test_missing_roots_are_ignored(self, tmp_path):
        model = build(tmp_path, {"a.py": "X = 1\n"})
        assert model.reachable(("repro.nope", "repro.a")) == ["repro.a"]


# ---------------------------------------------------------------------------
# Fingerprints
# ---------------------------------------------------------------------------


BEHAVIOR = """
def scale(value):
    return value * 2.0
"""

DOCUMENTED = '''
# an explanatory comment


def scale(value):
    """Twice the value."""
    # inline commentary
    return value * 2.0
'''


class TestFingerprints:
    def fingerprint(self, tmp_path, name, source):
        root = tmp_path / name
        model = build(root, {"m.py": source})
        return model.modules["repro.m"].fingerprint

    def test_docstrings_comments_and_line_shifts_are_invisible(self, tmp_path):
        assert self.fingerprint(tmp_path, "bare", BEHAVIOR) == self.fingerprint(
            tmp_path, "documented", DOCUMENTED
        )

    def test_constant_change_is_visible(self, tmp_path):
        edited = BEHAVIOR.replace("2.0", "3.0")
        assert self.fingerprint(tmp_path, "bare", BEHAVIOR) != self.fingerprint(
            tmp_path, "edited", edited
        )

    def test_symbols_are_fingerprinted_individually(self, tmp_path):
        model = build(
            tmp_path,
            {
                "m.py": """
                def f():
                    return 1


                class C:
                    LIMIT = 4
                """,
            },
        )
        symbols = model.modules["repro.m"].symbols
        assert symbols["f"].kind == "function"
        assert symbols["C"].kind == "class"
        assert symbols["f"].fingerprint != symbols["C"].fingerprint

    def test_normalized_dump_strips_docstrings_without_mutating(self):
        import ast

        tree = ast.parse('def f():\n    """doc"""\n    return 1\n')
        dumped = normalized_dump(tree)
        assert "doc" not in dumped
        # The caller's tree is untouched: the docstring is still there.
        assert ast.get_docstring(tree.body[0]) == "doc"

    def test_fingerprint_node_is_stable_and_short(self):
        import ast

        stmt = ast.parse("def f():\n    return 1\n").body[0]
        assert fingerprint_node(stmt) == fingerprint_node(stmt)
        assert len(fingerprint_node(stmt)) == 16


# ---------------------------------------------------------------------------
# Behavior-irrelevant markers
# ---------------------------------------------------------------------------


class TestMarkers:
    def test_parse_reasoned_marker(self):
        markers = parse_markers(
            ["def label():  # repro: behavior-irrelevant reason=display only"]
        )
        assert markers[1] == Marker(line=1, reason="display only")
        assert markers[1].valid

    def test_reasonless_marker_is_invalid(self):
        markers = parse_markers(["# repro: behavior-irrelevant"])
        assert not markers[1].valid

    def test_marked_definition_is_excluded_from_module_fingerprint(
        self, tmp_path
    ):
        base = """
        def compute(x):
            return x + 1


        # repro: behavior-irrelevant reason=log formatting only
        def label():
            return "v1"
        """
        edited = base.replace('"v1"', '"v2 (renamed)"')
        a = build(tmp_path / "a", {"m.py": base}).modules["repro.m"]
        b = build(tmp_path / "b", {"m.py": edited}).modules["repro.m"]
        assert a.irrelevant == {"label": "log formatting only"}
        assert a.fingerprint == b.fingerprint

    def test_marked_edit_to_compute_still_changes_fingerprint(self, tmp_path):
        base = """
        # repro: behavior-irrelevant reason=log formatting only
        def label():
            return "v1"


        def compute(x):
            return x + 1
        """
        edited = base.replace("x + 1", "x + 2")
        a = build(tmp_path / "a", {"m.py": base}).modules["repro.m"]
        b = build(tmp_path / "b", {"m.py": edited}).modules["repro.m"]
        assert a.fingerprint != b.fingerprint

    def test_reasonless_marker_keeps_definition_and_is_recorded(self, tmp_path):
        source = """
        # repro: behavior-irrelevant
        def label():
            return "v1"
        """
        edited = source.replace('"v1"', '"v2"')
        a = build(tmp_path / "a", {"m.py": source}).modules["repro.m"]
        b = build(tmp_path / "b", {"m.py": edited}).modules["repro.m"]
        assert a.malformed_markers == (2,)
        assert a.irrelevant == {}
        # No opt-out happened: the edit is visible.
        assert a.fingerprint != b.fingerprint


# ---------------------------------------------------------------------------
# Closure digest
# ---------------------------------------------------------------------------


CLOSURE_TREE = {
    "experiments/__init__.py": "",
    "experiments/runner.py": "import repro.soc.chip\n",
    "soc/__init__.py": "",
    "soc/chip.py": "AMBIENT_C = 45.0\n\n\ndef temp():\n    return AMBIENT_C\n",
    "analysis/__init__.py": "",
    "analysis/audit/__init__.py": "TOOLING = True\n",
}


class TestClosure:
    def test_digest_reproducible_and_tagged(self, tmp_path):
        package = write_tree(tmp_path, CLOSURE_TREE)
        first = compute_closure(ProjectModel.build(package))
        second = compute_closure(ProjectModel.build(package))
        assert first.digest == second.digest
        assert first.python == python_tag()
        assert "repro.soc.chip" in first.modules

    def test_tooling_is_excluded_from_the_closure(self, tmp_path):
        package = write_tree(tmp_path, CLOSURE_TREE)
        report = compute_closure(ProjectModel.build(package))
        assert "repro.analysis.audit" not in report.modules

    def test_behavior_edit_moves_digest_doc_edit_does_not(self, tmp_path):
        package = write_tree(tmp_path, CLOSURE_TREE)
        original = compute_closure(ProjectModel.build(package)).digest

        chip = package / "soc" / "chip.py"
        chip.write_text(
            '"""Chip doc."""\n# comment\n' + chip.read_text(), encoding="utf-8"
        )
        documented = compute_closure(ProjectModel.build(package)).digest
        assert documented == original

        chip.write_text(
            chip.read_text().replace("45.0", "46.0"), encoding="utf-8"
        )
        edited = compute_closure(ProjectModel.build(package)).digest
        assert edited != original

    def test_closure_digest_memoised_per_root(self, tmp_path):
        package = write_tree(tmp_path, CLOSURE_TREE)
        clear_closure_cache()
        try:
            first = closure_digest(package)
            # Edit without clearing: the memo must still serve the old
            # digest (this is the documented contract tests rely on).
            chip = package / "soc" / "chip.py"
            chip.write_text(
                chip.read_text().replace("45.0", "46.0"), encoding="utf-8"
            )
            assert closure_digest(package) == first
            clear_closure_cache()
            assert closure_digest(package) != first
        finally:
            clear_closure_cache()
