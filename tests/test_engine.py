"""Tests for the parallel, content-addressed experiment engine.

Covers the three guarantees the engine makes:

* **determinism** — the same job spec produces an identical
  ``RunSummary`` whether it runs inline, in a worker process, or comes
  back from a cache round-trip;
* **addressing** — the content hash is stable for equal specs and
  changes for *any* config-field change (so stale results can never be
  served);
* **ordering** — batch results align index-for-index with submissions,
  independent of worker count, duplicates and cache state.
"""

import dataclasses
import pickle
from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.config import AgentConfig, EngineConfig, FaultConfig, GeQiuConfig
from repro.experiments.engine import (
    ExperimentEngine,
    JobSpec,
    ResultCache,
    canonicalise,
    execute_job,
    job_key,
    scenario_job,
    workload_job,
)

#: Shortest scale at which every app clears the warm-up skip.
FAST = 0.12

#: A cheap job used throughout (tachyon at minimum length trains fast).
CHEAP = dict(seed=5, iteration_scale=0.05)


def summaries_identical(a, b) -> bool:
    """Bit-identity of two run summaries (pickle byte equality).

    The summaries are plain dataclasses of floats/dicts/profile lists
    built the same way on every run, so equal pickles == equal results.
    """
    return pickle.dumps(a) == pickle.dumps(b)


# ---------------------------------------------------------------------------
# Spec validation and hashing
# ---------------------------------------------------------------------------


def test_jobspec_rejects_unknown_kind():
    with pytest.raises(ValueError, match="unknown job kind"):
        JobSpec(kind="magic", app="tachyon")


def test_jobspec_requires_target():
    with pytest.raises(ValueError, match="need an app name"):
        JobSpec(kind="workload")
    with pytest.raises(ValueError, match="application sequence"):
        JobSpec(kind="scenario")


def test_job_key_stable_for_equal_specs():
    a = workload_job("tachyon", "set 1", "proposed", seed=3)
    b = workload_job("tachyon", "set 1", "proposed", seed=3)
    assert a == b
    assert job_key(a) == job_key(b)


def test_job_key_differs_across_kinds_and_params():
    keys = {
        job_key(workload_job("tachyon", None, "linux")),
        job_key(workload_job("tachyon", None, "proposed")),
        job_key(workload_job("mpeg_dec", None, "linux")),
        job_key(workload_job("tachyon", None, "linux", seed=2)),
        job_key(workload_job("tachyon", None, "linux", iteration_scale=0.5)),
        job_key(workload_job("tachyon", None, "linux", train_passes=0)),
        job_key(scenario_job(("tachyon",), "linux")),
    }
    assert len(keys) == 7


def test_job_key_includes_package_version():
    spec = workload_job("tachyon", None, "linux")
    assert job_key(spec, version="1.0.0") != job_key(spec, version="1.0.1")
    assert job_key(spec) == job_key(spec, version=repro.__version__)


@pytest.mark.parametrize(
    "config_cls", [AgentConfig, FaultConfig, GeQiuConfig], ids=lambda c: c.__name__
)
def test_job_key_sensitive_to_every_config_field(config_cls):
    """Perturbing any single numeric config field must change the key."""
    base = config_cls()
    kwarg = {
        AgentConfig: "agent_config",
        FaultConfig: "faults",
        GeQiuConfig: "ge_config",
    }[config_cls]
    reference = job_key(workload_job("tachyon", None, "proposed", **{kwarg: base}))
    perturbed_fields = 0
    for field in dataclasses.fields(config_cls):
        value = getattr(base, field.name)
        if isinstance(value, bool):
            bumped = not value
        elif isinstance(value, int):
            bumped = value + 1
        elif isinstance(value, float):
            bumped = value + 0.001
        else:
            continue  # tuples/None fields are covered by the cases above
        try:
            variant = replace(base, **{field.name: bumped})
        except ValueError:
            continue  # validation rejected the bump; field still hashed
        perturbed_fields += 1
        key = job_key(workload_job("tachyon", None, "proposed", **{kwarg: variant}))
        assert key != reference, f"{config_cls.__name__}.{field.name} not hashed"
    assert perturbed_fields > 3


def test_canonicalise_tags_dataclass_types():
    rendered = canonicalise(AgentConfig())
    assert rendered["__class__"].endswith("AgentConfig")
    assert rendered["fields"]["discount"] == AgentConfig().discount


def test_canonicalise_rejects_unknown_types():
    with pytest.raises(TypeError):
        canonicalise(object())


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    scale=st.floats(min_value=0.01, max_value=2.0, allow_nan=False),
    policy=st.sampled_from(["linux", "ge", "proposed", "powersave"]),
)
def test_job_key_property_equal_specs_equal_keys(seed, scale, policy):
    a = workload_job("tachyon", "set 1", policy, seed=seed, iteration_scale=scale)
    b = workload_job("tachyon", "set 1", policy, seed=seed, iteration_scale=scale)
    assert job_key(a) == job_key(b)
    assert job_key(a) != job_key(
        workload_job("tachyon", "set 1", policy, seed=seed + 1, iteration_scale=scale)
    )


# ---------------------------------------------------------------------------
# Determinism across process boundaries and cache round-trips
# ---------------------------------------------------------------------------


def test_same_spec_identical_across_process_boundary():
    spec = workload_job("tachyon", "set 2", "ge", **CHEAP)
    inline = execute_job(spec)
    pooled = ExperimentEngine(jobs=2).run([spec, spec])
    assert summaries_identical(inline, pooled[0])
    assert summaries_identical(inline, pooled[1])


def test_same_spec_identical_across_cache_round_trip(tmp_path):
    spec = workload_job("tachyon", "set 2", "ge", **CHEAP)
    cache = ResultCache(root=tmp_path)
    fresh = ExperimentEngine(cache=cache).run_one(spec)
    cached = ExperimentEngine(cache=ResultCache(root=tmp_path)).run_one(spec)
    assert summaries_identical(fresh, cached)


def test_parallel_results_keep_submission_order(tmp_path):
    specs = [
        workload_job("tachyon", "set 2", "linux", **CHEAP),
        workload_job("tachyon", "set 2", "powersave", **CHEAP),
        workload_job("mpeg_dec", "clip 1", "linux", **CHEAP),
        workload_job("tachyon", "set 2", "linux", **CHEAP),  # duplicate of [0]
    ]
    engine = ExperimentEngine(jobs=3, cache=ResultCache(root=tmp_path))
    results = engine.run(specs)
    assert [(r.app, r.policy) for r in results] == [
        ("tachyon", "linux"),
        ("tachyon", "powersave"),
        ("mpeg_dec", "linux"),
        ("tachyon", "linux"),
    ]
    assert summaries_identical(results[0], results[3])
    assert engine.stats.deduplicated == 1
    assert engine.stats.executed == 3

    serial = ExperimentEngine().run(specs)
    for parallel_summary, serial_summary in zip(results, serial):
        assert summaries_identical(parallel_summary, serial_summary)


# ---------------------------------------------------------------------------
# Cache behaviour
# ---------------------------------------------------------------------------


def test_cache_miss_then_hit_accounting(tmp_path):
    spec = workload_job("tachyon", "set 2", "linux", **CHEAP)
    cache = ResultCache(root=tmp_path)
    engine = ExperimentEngine(cache=cache)
    engine.run([spec])
    engine.run([spec])
    assert engine.stats.as_dict() == {
        "submitted": 2,
        "executed": 1,
        "cache_hits": 1,
        "cache_misses": 1,
        "deduplicated": 0,
        "retried": 0,
        "failed": 0,
        "timeouts": 0,
        "pool_restarts": 0,
    }
    assert cache.stats.hits == 1
    assert cache.stats.misses == 1
    assert cache.stats.stores == 1
    assert len(cache) == 1


def test_cache_invalidates_on_config_field_change(tmp_path):
    cache = ResultCache(root=tmp_path)
    engine = ExperimentEngine(cache=cache)
    base = workload_job(
        "tachyon", "set 2", "proposed", agent_config=AgentConfig(), **CHEAP
    )
    engine.run([base])
    tweaked = workload_job(
        "tachyon",
        "set 2",
        "proposed",
        agent_config=replace(AgentConfig(), discount=0.51),
        **CHEAP,
    )
    assert cache.get(tweaked) is None  # different content address
    assert cache.get(base) is not None


def test_cache_version_bump_invalidates_everything(tmp_path):
    spec = workload_job("tachyon", "set 2", "linux", **CHEAP)
    old = ResultCache(root=tmp_path, version="0.9")
    old.put(spec, execute_job(spec))
    new = ResultCache(root=tmp_path, version="1.0")
    assert new.get(spec) is None  # keyed under the new version


def test_cache_drops_corrupt_entries(tmp_path):
    spec = workload_job("tachyon", "set 2", "linux", **CHEAP)
    cache = ResultCache(root=tmp_path)
    key = cache.put(spec, execute_job(spec))
    path = tmp_path / "results" / key[:2] / f"{key}.pkl"
    path.write_bytes(b"not a pickle")
    assert cache.get(spec) is None
    assert cache.stats.invalidated == 1
    assert not path.exists()


def test_cache_explicit_invalidation(tmp_path):
    cache = ResultCache(root=tmp_path)
    a = workload_job("tachyon", "set 2", "linux", **CHEAP)
    b = workload_job("tachyon", "set 2", "powersave", **CHEAP)
    result = execute_job(a)
    cache.put(a, result)
    cache.put(b, result)
    assert cache.invalidate(a) == 1
    assert len(cache) == 1
    assert cache.invalidate() == 1
    assert len(cache) == 0


# ---------------------------------------------------------------------------
# Engine construction
# ---------------------------------------------------------------------------


def test_engine_config_validation():
    with pytest.raises(ValueError, match="jobs"):
        EngineConfig(jobs=0)
    with pytest.raises(ValueError, match="jobs"):
        ExperimentEngine(jobs=0)


def test_engine_from_config(tmp_path):
    engine = ExperimentEngine.from_config(
        EngineConfig(jobs=3, use_cache=True, cache_dir=str(tmp_path))
    )
    assert engine.jobs == 3
    assert engine.cache is not None
    assert engine.cache.root == tmp_path
    uncached = ExperimentEngine.from_config(EngineConfig(use_cache=False))
    assert uncached.cache is None
