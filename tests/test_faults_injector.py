"""Tests for the fault injector and the fault/supervisor configs."""

import numpy as np
import pytest

from repro.config import FaultConfig, SupervisorConfig
from repro.faults import (
    FAULT_MODES,
    OUTCOME_FAIL,
    OUTCOME_NOOP,
    OUTCOME_OK,
    FaultInjector,
    actuation_fault_config,
    combined_fault_config,
    fault_config_for,
    sensor_fault_config,
)

CLEAN = [50.0, 51.0, 52.0, 53.0]


def injector(seed=0, **kwargs):
    return FaultInjector(FaultConfig(enabled=True, **kwargs), num_cores=4, seed=seed)


# ---------------------------------------------------------------------------
# Determinism
# ---------------------------------------------------------------------------


def test_same_seed_same_schedule():
    a = injector(seed=3, dropout_prob=0.3, spike_prob=0.3)
    b = injector(seed=3, dropout_prob=0.3, spike_prob=0.3)
    for t in range(50):
        ra = a.perturb_sensors(float(t), CLEAN)
        rb = b.perturb_sensors(float(t), CLEAN)
        assert np.array_equal(ra, rb, equal_nan=True)
    assert [a.governor_outcome() for _ in range(20)] == [
        b.governor_outcome() for _ in range(20)
    ]


def test_run_seed_changes_schedule():
    a = injector(seed=1, dropout_prob=0.3)
    b = injector(seed=2, dropout_prob=0.3)
    results_a = [a.perturb_sensors(float(t), CLEAN) for t in range(30)]
    results_b = [b.perturb_sensors(float(t), CLEAN) for t in range(30)]
    assert any(
        not np.array_equal(x, y, equal_nan=True)
        for x, y in zip(results_a, results_b)
    )


def test_zero_probability_config_perturbs_nothing():
    inj = injector()
    for t in range(20):
        assert np.array_equal(inj.perturb_sensors(float(t), CLEAN), CLEAN)
        assert inj.governor_outcome() == OUTCOME_OK
        assert inj.mapping_outcome() == OUTCOME_OK
    assert inj.stats.dropouts == 0
    assert inj.stats.governor_failures == 0


# ---------------------------------------------------------------------------
# Sensor faults
# ---------------------------------------------------------------------------


def test_offsets_cycle_over_cores():
    inj = injector(offset_c=(1.0, -2.0))
    out = inj.perturb_sensors(0.0, CLEAN)
    assert list(out) == [51.0, 49.0, 53.0, 51.0]


def test_drift_grows_with_time():
    inj = injector(drift_rate_c_per_s=0.1)
    assert np.allclose(inj.perturb_sensors(0.0, CLEAN), CLEAN)
    assert np.allclose(inj.perturb_sensors(100.0, CLEAN), np.asarray(CLEAN) + 10.0)


def test_dropouts_are_nan_and_counted():
    inj = injector(dropout_prob=1.0)
    out = inj.perturb_sensors(0.0, CLEAN)
    assert np.all(np.isnan(out))
    assert inj.stats.dropouts == 4


def test_spikes_have_configured_magnitude():
    inj = injector(spike_prob=1.0, spike_magnitude_c=25.0)
    out = inj.perturb_sensors(0.0, CLEAN)
    assert np.allclose(np.abs(out - CLEAN), 25.0)
    assert inj.stats.spikes == 4


def test_stuck_sensor_latches_then_releases():
    inj = injector(stuck_prob=1.0, stuck_duration_s=10.0)
    first = inj.perturb_sensors(0.0, CLEAN)
    assert np.array_equal(first, CLEAN)  # latches on the current value
    moved = [60.0, 61.0, 62.0, 63.0]
    held = inj.perturb_sensors(5.0, moved)
    assert np.array_equal(held, CLEAN)  # still inside stuck_duration_s
    # Past expiry the sensor re-latches on the *new* value.
    after = inj.perturb_sensors(20.0, moved)
    assert np.array_equal(after, moved)
    assert inj.stats.stuck_events >= 4


def test_wrong_width_rejected():
    with pytest.raises(ValueError):
        injector().perturb_sensors(0.0, [50.0, 51.0])


# ---------------------------------------------------------------------------
# Actuation faults
# ---------------------------------------------------------------------------


def test_actuation_outcomes_certain_fail():
    inj = injector(governor_fail_prob=1.0, mapping_noop_prob=1.0)
    assert inj.governor_outcome() == OUTCOME_FAIL
    assert inj.mapping_outcome() == OUTCOME_NOOP
    assert inj.stats.governor_failures == 1
    assert inj.stats.mapping_noops == 1


def test_actuation_outcome_frequencies_follow_probabilities():
    inj = injector(governor_fail_prob=0.3, governor_noop_prob=0.2)
    outcomes = [inj.governor_outcome() for _ in range(4000)]
    assert outcomes.count(OUTCOME_FAIL) / 4000 == pytest.approx(0.3, abs=0.05)
    assert outcomes.count(OUTCOME_NOOP) / 4000 == pytest.approx(0.2, abs=0.05)


# ---------------------------------------------------------------------------
# Config validation
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "kwargs",
    [
        {"dropout_prob": -0.1},
        {"spike_prob": 1.5},
        {"stuck_prob": 2.0},
        {"governor_fail_prob": -1.0},
        {"governor_fail_prob": 0.7, "governor_noop_prob": 0.7},
        {"mapping_fail_prob": 0.6, "mapping_noop_prob": 0.6},
        {"spike_magnitude_c": -1.0},
        {"stuck_duration_s": -5.0},
        {"offset_c": (1.0, float("nan"))},
    ],
)
def test_fault_config_rejects_invalid(kwargs):
    with pytest.raises(ValueError):
        FaultConfig(enabled=True, **kwargs)


@pytest.mark.parametrize(
    "kwargs",
    [
        {"max_rate_c_per_s": 0.0},
        {"stuck_window": 1},
        {"stuck_delta_c": -1.0},
        {"critical_temp_c": 80.0, "emergency_release_c": 85.0},
        {"watchdog_period_s": 0.0},
        {"max_retries": -1},
        {"retry_backoff_s": -0.1},
        {"fault_deadline_s": 0.0},
    ],
)
def test_supervisor_config_rejects_invalid(kwargs):
    with pytest.raises(ValueError):
        SupervisorConfig(enabled=True, **kwargs)


# ---------------------------------------------------------------------------
# Presets
# ---------------------------------------------------------------------------


def test_preset_modes_resolve():
    assert fault_config_for("none") is None
    assert fault_config_for("sensor") == sensor_fault_config()
    assert fault_config_for("actuation") == actuation_fault_config()
    assert fault_config_for("both") == combined_fault_config()
    assert set(FAULT_MODES) == {"none", "sensor", "actuation", "both"}


def test_preset_unknown_mode_rejected():
    with pytest.raises(ValueError):
        fault_config_for("gamma_rays")
