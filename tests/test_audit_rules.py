"""Tests for the audit ruleset: EQV001, MUT001, RED001, IRR001.

Each rule gets a fixture tree that must fire and one that must stay
silent, plus the engine-level binning (noqa suppression, baselined
findings) and the shipped tree's own cleanliness.
"""

import textwrap
from pathlib import Path

from repro.analysis.audit import (
    AuditBaseline,
    audit_project,
    load_audit_baseline,
    pair_id,
    render_audit_human,
    save_audit_baseline,
)

REPO_ROOT = Path(__file__).resolve().parent.parent


def write_tree(root, files):
    package = root / "repro"
    for relative, source in files.items():
        path = package / relative
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
    init = package / "__init__.py"
    if not init.exists():
        init.write_text("", encoding="utf-8")
    return package


def codes(report):
    return [finding.rule for finding in report.active]


#: A minimal tree containing one registered scalar/ensemble pair.
TWIN_TREE = {
    "sched/__init__.py": "",
    "sched/scheduler.py": """
    def pick(queue):
        return queue[0]
    """,
    "ensemble/__init__.py": "",
    "ensemble/sched.py": """
    def pick_batch(queues):
        return [q[0] for q in queues]
    """,
}


class TestEQV001:
    def baseline_for(self, package, path):
        report = audit_project(package)
        save_audit_baseline(
            path,
            closure_digest=report.closure.digest,
            pairs=report.pairs,
            findings=[],
        )
        return load_audit_baseline(path)

    def test_pairing_table_built_from_present_twins(self, tmp_path):
        package = write_tree(tmp_path, TWIN_TREE)
        report = audit_project(package)
        key = pair_id("repro.sched.scheduler", "repro.ensemble.sched")
        assert key in report.pairs
        assert report.pairs[key].scalar
        assert report.pairs[key].ensemble

    def test_scalar_only_edit_fires(self, tmp_path):
        package = write_tree(tmp_path, TWIN_TREE)
        baseline = self.baseline_for(package, tmp_path / "baseline.json")
        (package / "sched" / "scheduler.py").write_text(
            "def pick(queue):\n    return queue[-1]\n", encoding="utf-8"
        )
        report = audit_project(package, baseline=baseline)
        assert codes(report) == ["EQV001"]
        finding = report.active[0]
        assert finding.module == "repro.sched.scheduler"
        assert "repro.ensemble.sched" in finding.message
        assert "--fix-baseline" in finding.message

    def test_mirrored_edit_is_silent(self, tmp_path):
        package = write_tree(tmp_path, TWIN_TREE)
        baseline = self.baseline_for(package, tmp_path / "baseline.json")
        (package / "sched" / "scheduler.py").write_text(
            "def pick(queue):\n    return queue[-1]\n", encoding="utf-8"
        )
        (package / "ensemble" / "sched.py").write_text(
            "def pick_batch(queues):\n    return [q[-1] for q in queues]\n",
            encoding="utf-8",
        )
        report = audit_project(package, baseline=baseline)
        assert report.clean

    def test_doc_only_scalar_edit_is_silent(self, tmp_path):
        package = write_tree(tmp_path, TWIN_TREE)
        baseline = self.baseline_for(package, tmp_path / "baseline.json")
        scheduler = package / "sched" / "scheduler.py"
        scheduler.write_text(
            '"""Scheduler doc."""\n# comment\n' + scheduler.read_text(),
            encoding="utf-8",
        )
        report = audit_project(package, baseline=baseline)
        assert report.clean

    def test_skipped_without_comparable_baseline(self, tmp_path):
        package = write_tree(tmp_path, TWIN_TREE)
        baseline = self.baseline_for(package, tmp_path / "baseline.json")
        (package / "sched" / "scheduler.py").write_text(
            "def pick(queue):\n    return queue[-1]\n", encoding="utf-8"
        )
        # Same fingerprints, recorded under a fictional interpreter:
        # EQV001 must not diff apples against oranges.
        foreign = AuditBaseline(
            python="0.0",
            closure_digest=baseline.closure_digest,
            pairs=baseline.pairs,
            findings={},
        )
        report = audit_project(package, baseline=foreign)
        assert report.clean
        assert not report.baseline_comparable


#: Worker-reachable tree for MUT001: runner -> util.
MUTABLE_TREE = {
    "experiments/__init__.py": "",
    "experiments/runner.py": "import repro.util\n",
    "util.py": "REGISTRY = {}\n",
}


class TestMUT001:
    def test_fires_on_reachable_module_level_dict(self, tmp_path):
        package = write_tree(tmp_path, MUTABLE_TREE)
        report = audit_project(package, rules=["MUT001"])
        assert codes(report) == ["MUT001"]
        assert "REGISTRY" in report.active[0].message

    def test_fires_on_constructor_calls_and_comprehensions(self, tmp_path):
        files = dict(MUTABLE_TREE)
        files["util.py"] = """
        import collections

        ROWS = list(range(3))
        COUNTS = collections.Counter()
        INDEX = {name: 0 for name in ("a", "b")}
        """
        package = write_tree(tmp_path, files)
        report = audit_project(package, rules=["MUT001"])
        assert codes(report) == ["MUT001", "MUT001", "MUT001"]

    def test_silent_on_immutable_forms(self, tmp_path):
        files = dict(MUTABLE_TREE)
        files["util.py"] = """
        from types import MappingProxyType

        NAMES = ("a", "b")
        LEVELS = frozenset({1, 2})
        TABLE = MappingProxyType({"a": 1})
        """
        package = write_tree(tmp_path, files)
        report = audit_project(package, rules=["MUT001"])
        assert report.clean

    def test_unreachable_module_is_ignored(self, tmp_path):
        files = dict(MUTABLE_TREE)
        files["experiments/runner.py"] = "X = 1\n"
        package = write_tree(tmp_path, files)
        report = audit_project(package, rules=["MUT001"])
        assert report.clean

    def test_dunder_assignments_are_exempt(self, tmp_path):
        files = dict(MUTABLE_TREE)
        files["util.py"] = "__all__ = [\"helper\"]\n\n\ndef helper():\n    return 1\n"
        package = write_tree(tmp_path, files)
        report = audit_project(package, rules=["MUT001"])
        assert report.clean

    def test_noqa_with_reason_suppresses(self, tmp_path):
        files = dict(MUTABLE_TREE)
        files["util.py"] = (
            "REGISTRY = {}  "
            "# repro: noqa[MUT001] reason=populated once at import, then frozen\n"
        )
        package = write_tree(tmp_path, files)
        report = audit_project(package, rules=["MUT001"])
        assert report.clean
        assert [f.rule for f in report.suppressed] == ["MUT001"]


#: repro.sched.scheduler is one of the FP-exact fast-path modules.
REDUCTION_TREE = {
    "sched/__init__.py": "",
    "sched/scheduler.py": """
    def load(per_core):
        return sum(per_core.values())
    """,
}


class TestRED001:
    def test_fires_on_dict_view_and_set_reductions(self, tmp_path):
        files = dict(REDUCTION_TREE)
        files["sched/scheduler.py"] = """
        import math

        def load(per_core):
            a = sum(per_core.values())
            b = max({c for c in per_core})
            c = math.fsum(set(per_core))
            return a + b + c
        """
        package = write_tree(tmp_path, files)
        report = audit_project(package, rules=["RED001"])
        assert codes(report) == ["RED001", "RED001", "RED001"]

    def test_silent_when_sorted_first(self, tmp_path):
        files = dict(REDUCTION_TREE)
        files["sched/scheduler.py"] = """
        def load(per_core):
            return sum(sorted(per_core.values()))
        """
        package = write_tree(tmp_path, files)
        report = audit_project(package, rules=["RED001"])
        assert report.clean

    def test_non_fast_path_module_is_ignored(self, tmp_path):
        package = write_tree(
            tmp_path,
            {"helpers.py": "def load(d):\n    return sum(d.values())\n"},
        )
        report = audit_project(package, rules=["RED001"])
        assert report.clean


class TestIRR001:
    def test_reasonless_marker_is_an_active_finding(self, tmp_path):
        package = write_tree(
            tmp_path,
            {
                "m.py": """
                # repro: behavior-irrelevant
                def label():
                    return "v1"
                """,
            },
        )
        report = audit_project(package)
        assert "IRR001" in codes(report)
        assert "reason=" in report.active[0].message

    def test_reasoned_marker_is_clean(self, tmp_path):
        package = write_tree(
            tmp_path,
            {
                "m.py": """
                # repro: behavior-irrelevant reason=display label only
                def label():
                    return "v1"
                """,
            },
        )
        report = audit_project(package)
        assert report.clean


class TestEngineBinning:
    def test_baselined_findings_do_not_fail(self, tmp_path):
        package = write_tree(tmp_path, MUTABLE_TREE)
        report = audit_project(package, rules=["MUT001"])
        baseline_path = tmp_path / "baseline.json"
        save_audit_baseline(
            baseline_path,
            closure_digest=report.closure.digest,
            pairs=report.pairs,
            findings=report.active,
        )
        rerun = audit_project(
            package,
            rules=["MUT001"],
            baseline=load_audit_baseline(baseline_path),
        )
        assert rerun.clean
        assert [f.rule for f in rerun.baselined] == ["MUT001"]

    def test_drift_detection_against_recorded_digest(self, tmp_path):
        package = write_tree(tmp_path, MUTABLE_TREE)
        report = audit_project(package)
        baseline_path = tmp_path / "baseline.json"
        save_audit_baseline(
            baseline_path,
            closure_digest=report.closure.digest,
            pairs=report.pairs,
            findings=report.active,
        )
        baseline = load_audit_baseline(baseline_path)
        assert not audit_project(package, baseline=baseline).drift
        (package / "util.py").write_text("REGISTRY = ()\n", encoding="utf-8")
        drifted = audit_project(package, baseline=baseline)
        assert drifted.drift
        assert drifted.exit_code(check_drift=True) == 1
        assert drifted.exit_code() == 0


class TestShippedTree:
    def test_committed_tree_audits_clean_against_its_baseline(self):
        # The acceptance criterion: `repro audit` exits 0 on the
        # committed tree.  On the interpreter the baseline was recorded
        # under there must be no drift either.
        baseline = load_audit_baseline(REPO_ROOT / ".repro-audit-baseline.json")
        report = audit_project(baseline=baseline)
        assert report.clean, render_audit_human(report)
        if baseline.comparable:
            assert not report.drift, (
                "closure digest drifted from the committed baseline; "
                "refresh with `repro audit --fix-baseline`"
            )
