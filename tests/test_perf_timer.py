"""Unit tests for the tick-loop section timer (`repro.perf.timer`)."""

import pytest

from repro.perf.timer import SectionTimer


class TestAccumulation:
    def test_add_accumulates_per_section(self):
        timer = SectionTimer()
        timer.add("thermal", 1.0)
        timer.add("thermal", 0.5)
        timer.add("power", 0.25)
        totals = timer.totals()
        assert totals["thermal"] == pytest.approx(1.5)
        assert totals["power"] == pytest.approx(0.25)

    def test_totals_sorted_by_cost_descending(self):
        timer = SectionTimer()
        timer.add("small", 0.1)
        timer.add("big", 2.0)
        timer.add("medium", 1.0)
        assert list(timer.totals()) == ["big", "medium", "small"]

    def test_lap_chains_from_now(self):
        timer = SectionTimer()
        mark = SectionTimer.now()
        mark = timer.lap("first", mark)
        timer.lap("second", mark)
        totals = timer.totals()
        assert set(totals) == {"first", "second"}
        assert all(seconds >= 0.0 for seconds in totals.values())

    def test_fractions_sum_to_one(self):
        timer = SectionTimer()
        timer.add("a", 3.0)
        timer.add("b", 1.0)
        fractions = timer.fractions()
        assert fractions["a"] == pytest.approx(0.75)
        assert fractions["b"] == pytest.approx(0.25)
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_fractions_of_empty_timer(self):
        assert SectionTimer().fractions() == {}

    def test_tick_counting_and_reset(self):
        timer = SectionTimer()
        timer.count_tick()
        timer.count_tick()
        timer.add("a", 1.0)
        assert timer.ticks == 2
        timer.reset()
        assert timer.ticks == 0
        assert timer.totals() == {}


class TestMisuseRaisesInsteadOfCorrupting:
    def test_lap_rejects_future_mark(self):
        # A mark from the future means the now()/lap() call sites are
        # nested or out of order; charging a negative duration would
        # silently corrupt the totals.
        timer = SectionTimer()
        future = SectionTimer.now() + 100.0
        with pytest.raises(ValueError, match="finite past timestamp"):
            timer.lap("section", future)
        assert timer.totals() == {}

    def test_lap_rejects_non_finite_mark(self):
        timer = SectionTimer()
        for bad in (float("nan"), float("inf"), float("-inf")):
            with pytest.raises(ValueError):
                timer.lap("section", bad)
        assert timer.totals() == {}

    def test_lap_rejects_empty_section(self):
        timer = SectionTimer()
        with pytest.raises(ValueError, match="non-empty"):
            timer.lap("", SectionTimer.now())

    def test_add_rejects_negative_duration(self):
        timer = SectionTimer()
        with pytest.raises(ValueError, match="non-negative"):
            timer.add("section", -0.1)
        assert timer.totals() == {}

    def test_add_rejects_non_finite_duration(self):
        timer = SectionTimer()
        for bad in (float("nan"), float("inf")):
            with pytest.raises(ValueError):
                timer.add("section", bad)
        assert timer.totals() == {}

    def test_add_rejects_empty_section(self):
        timer = SectionTimer()
        with pytest.raises(ValueError, match="non-empty"):
            timer.add("", 1.0)

    def test_totals_survive_a_rejected_call(self):
        timer = SectionTimer()
        timer.add("good", 1.0)
        with pytest.raises(ValueError):
            timer.add("good", -1.0)
        assert timer.totals()["good"] == pytest.approx(1.0)
