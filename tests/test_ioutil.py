"""Tests for the shared atomic-write helpers.

The one property every artefact writer (result cache, ``BENCH_*.json``,
manifests, checkpoints) leans on: readers observe either the old content
or the new content, never a prefix — and a failed write leaves neither a
damaged target nor temp-file litter behind.
"""

import pytest

from repro.ioutil import atomic_write, atomic_write_bytes, atomic_write_text


def test_writes_content(tmp_path):
    target = tmp_path / "out.bin"
    atomic_write_bytes(target, b"\x00\x01payload")
    assert target.read_bytes() == b"\x00\x01payload"


def test_replaces_existing_file(tmp_path):
    target = tmp_path / "out.txt"
    target.write_text("old")
    atomic_write_text(target, "new")
    assert target.read_text() == "new"


def test_creates_parent_directories(tmp_path):
    target = tmp_path / "a" / "b" / "out.txt"
    atomic_write_text(target, "deep")
    assert target.read_text() == "deep"


def test_failed_write_leaves_target_untouched(tmp_path):
    target = tmp_path / "out.txt"
    target.write_text("precious")

    def explode(handle):
        handle.write(b"partial")
        raise RuntimeError("disk on fire")

    with pytest.raises(RuntimeError):
        atomic_write(target, explode)
    assert target.read_text() == "precious"


def test_failed_write_leaves_no_temp_litter(tmp_path):
    target = tmp_path / "out.txt"

    def explode(handle):
        raise RuntimeError("nope")

    with pytest.raises(RuntimeError):
        atomic_write(target, explode)
    assert list(tmp_path.iterdir()) == []


def test_successful_write_leaves_only_the_target(tmp_path):
    target = tmp_path / "out.txt"
    atomic_write_text(target, "only me")
    assert [path.name for path in tmp_path.iterdir()] == ["out.txt"]


def test_text_encoding(tmp_path):
    target = tmp_path / "out.txt"
    atomic_write_text(target, "héllo", encoding="latin-1")
    assert target.read_bytes() == "héllo".encode("latin-1")
