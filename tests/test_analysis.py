"""Tests for the analysis helpers."""

import math

import pytest

from repro.analysis.autocorrelation import autocorrelation, decimate
from repro.analysis.metrics import geometric_mean, mean, normalise_to
from repro.analysis.tables import format_table


def test_autocorrelation_of_smooth_series():
    series = [math.sin(i / 50.0) for i in range(500)]
    assert autocorrelation(series) > 0.99


def test_autocorrelation_of_alternating_series():
    series = [1.0, -1.0] * 100
    assert autocorrelation(series) < -0.9


def test_autocorrelation_of_constant_series():
    assert autocorrelation([5.0] * 50) == 0.0


def test_autocorrelation_lag():
    series = [float(i % 4) for i in range(100)]
    assert autocorrelation(series, lag=4) > 0.99


def test_autocorrelation_validation():
    with pytest.raises(ValueError):
        autocorrelation([1.0, 2.0], lag=1)
    with pytest.raises(ValueError):
        autocorrelation([1.0] * 10, lag=0)


def test_decimate():
    assert decimate(list(range(10)), 3) == [0, 3, 6, 9]
    assert decimate(list(range(5)), 1) == list(range(5))
    with pytest.raises(ValueError):
        decimate([1], 0)


def test_normalise_to():
    normalised = normalise_to({"a": 2.0, "b": 4.0}, "a")
    assert normalised == {"a": 1.0, "b": 2.0}
    with pytest.raises(KeyError):
        normalise_to({"a": 1.0}, "z")
    with pytest.raises(ValueError):
        normalise_to({"a": 0.0}, "a")


def test_geometric_mean():
    assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
    with pytest.raises(ValueError):
        geometric_mean([])
    with pytest.raises(ValueError):
        geometric_mean([1.0, -1.0])


def test_mean():
    assert mean([1.0, 2.0, 3.0]) == 2.0
    with pytest.raises(ValueError):
        mean([])


def test_format_table_alignment():
    text = format_table(["name", "value"], [["a", 1.5], ["long-name", 2.25]], title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "name" in lines[1] and "value" in lines[1]
    assert all(len(line) == len(lines[1]) for line in lines[3:])


def test_format_table_validates_width():
    with pytest.raises(ValueError):
        format_table(["a", "b"], [["only-one"]])


def test_format_table_float_format():
    text = format_table(["x"], [[1.23456]], float_format="{:.1f}")
    assert "1.2" in text and "1.23" not in text
