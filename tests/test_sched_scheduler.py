"""Tests for the load-balancing scheduler."""

import numpy as np
import pytest

from repro.sched.affinity import AffinityMapping, mapping_by_name
from repro.sched.perf import PerfCounters
from repro.sched.scheduler import Scheduler
from repro.workloads.thread_model import SimThread, ThreadPhase, WorkloadSpec


def make_spec(**overrides):
    defaults = dict(
        name="t",
        dataset="d",
        num_threads=6,
        work_cycles=1e9,
        work_jitter_sigma=0.0,
        activity_high=0.8,
        activity_low=0.05,
        sync_time_s=1.0,
        iterations=100,
        performance_constraint=0.1,
    )
    defaults.update(overrides)
    return WorkloadSpec(**defaults)


def make_threads(num=6, **overrides):
    spec = make_spec(num_threads=num, **overrides)
    rng = np.random.default_rng(0)
    return [SimThread(spec, tid, rng) for tid in range(num)]


FREQS = [2.0e9] * 4


def test_initial_placement_balances():
    sched = Scheduler(4)
    sched.set_threads(make_threads(6))
    sched.tick(FREQS, 0.1)
    counts = sched.runnable_counts()
    assert sum(counts) == 6
    assert max(counts) - min(counts) <= 1


def test_affinity_always_honoured():
    sched = Scheduler(4)
    threads = make_threads(6)
    mapping = mapping_by_name("cluster_2")
    sched.set_threads(threads, mapping=mapping)
    for _ in range(50):
        sched.tick(FREQS, 0.1)
        for thread in threads:
            core = sched.core_of(thread)
            assert core is not None
            assert mapping.allows(thread.thread_id, core)


def test_set_mapping_migrates_violators():
    sched = Scheduler(4, perf=PerfCounters())
    threads = make_threads(6)
    sched.set_threads(threads)
    sched.tick(FREQS, 0.1)
    sched.set_mapping(mapping_by_name("cluster_2"))
    for thread in threads:
        assert sched.core_of(thread) in (0, 1)
    assert sched.perf.migrations > 0


def test_mapping_too_small_rejected():
    sched = Scheduler(4)
    sched.set_threads(make_threads(6))
    small = AffinityMapping.from_assignment("m", [0, 1])
    with pytest.raises(ValueError):
        sched.set_mapping(small)


def test_execution_progresses_threads():
    sched = Scheduler(4)
    threads = make_threads(4, work_cycles=1e8)
    sched.set_threads(threads)
    sched.tick([2.0e9] * 4, 0.1)
    # 2e9 Hz * 0.1 s = 2e8 cycles > 1e8: every solo thread finished.
    assert all(t.phase is ThreadPhase.BARRIER for t in threads)


def test_timesharing_splits_cycles():
    sched = Scheduler(4)
    threads = make_threads(2, work_cycles=1e9)
    mapping = AffinityMapping.from_assignment("same", [0, 0])
    sched.set_threads(threads, mapping=mapping)
    sched.tick(FREQS, 0.1)
    executed = 1e9 - threads[0].remaining_cycles
    assert executed == pytest.approx(2.0e9 * 0.1 / 2)


def test_core_load_fields():
    sched = Scheduler(4)
    sched.set_threads(make_threads(6))
    loads = sched.tick(FREQS, 0.1)
    assert len(loads) == 4
    for load in loads:
        assert 0.0 <= load.utilisation <= 1.0
        assert 0.0 <= load.activity <= 1.0
    busy = [l for l in loads if l.num_runnable > 0]
    assert busy and all(l.activity > 0.5 for l in busy)


def test_idle_cores_have_low_activity():
    sched = Scheduler(4)
    sched.set_threads(make_threads(1))
    loads = sched.tick(FREQS, 0.1)
    idle = [l for l in loads if l.num_runnable == 0]
    assert len(idle) == 3
    assert all(l.activity <= 0.1 for l in idle)


def test_stall_consumes_cpu_time():
    sched = Scheduler(4)
    threads = make_threads(4, work_cycles=1e12)
    sched.set_threads(threads)
    sched.tick(FREQS, 0.1)
    before = threads[0].remaining_cycles
    sched.stall_all(0.05)
    sched.tick(FREQS, 0.1)
    executed = before - threads[0].remaining_cycles
    assert executed == pytest.approx(2.0e9 * 0.05, rel=0.01)


def test_stall_rejects_negative():
    sched = Scheduler(4)
    with pytest.raises(ValueError):
        sched.stall_all(-1.0)


def test_idle_pull_fills_idle_core():
    """After the pull delay an idle core steals from a loaded core."""
    sched = Scheduler(4, idle_pull_delay_s=0.3)
    threads = make_threads(6, work_cycles=1e13)
    # Start everything clustered so two cores are idle.
    sched.set_threads(threads, mapping=mapping_by_name("cluster_2"))
    sched.tick(FREQS, 0.1)
    sched.set_mapping(None)  # release the pin; threads stay put initially
    for _ in range(10):
        sched.tick(FREQS, 0.1)
    counts = sched.runnable_counts()
    assert max(counts) - min(counts) <= 1


def test_rebalance_periodic():
    sched = Scheduler(4, rebalance_period_s=0.5)
    threads = make_threads(6, work_cycles=1e13)
    sched.set_threads(threads, mapping=mapping_by_name("cluster_2"))
    sched.set_mapping(None)
    for _ in range(20):
        sched.tick(FREQS, 0.1)
    assert max(sched.runnable_counts()) <= 2


def test_migration_counted():
    perf = PerfCounters()
    sched = Scheduler(4, perf=perf)
    threads = make_threads(6, work_cycles=1e13)
    sched.set_threads(threads, mapping=mapping_by_name("cluster_2"))
    sched.tick(FREQS, 0.1)
    sched.set_mapping(mapping_by_name("spread_rr"))
    assert perf.migrations >= 2


def test_done_threads_release_cores():
    sched = Scheduler(4)
    threads = make_threads(4, work_cycles=1e6, iterations=1, sync_time_s=0.0)
    sched.set_threads(threads)
    from repro.workloads.application import Application

    # Drive threads to completion manually.
    for thread in threads:
        thread.execute(1e7)
        thread.release_barrier()
        thread.finish_sync()
    assert all(t.done for t in threads)
    loads = sched.tick(FREQS, 0.1)
    assert all(l.num_runnable == 0 for l in loads)


def test_validates_inputs():
    sched = Scheduler(4)
    sched.set_threads(make_threads(2))
    with pytest.raises(ValueError):
        sched.tick([1e9, 1e9], 0.1)  # wrong width
    with pytest.raises(ValueError):
        sched.tick(FREQS, 0.0)
    with pytest.raises(ValueError):
        Scheduler(0)
