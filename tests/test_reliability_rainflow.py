"""Tests for the Downing-Socie rainflow counter, incl. property tests."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.reliability.rainflow import (
    ThermalCycle,
    count_cycles,
    extract_reversals,
    max_amplitude,
    total_cycle_count,
)


# ---------------------------------------------------------------------------
# Reversal extraction
# ---------------------------------------------------------------------------


def test_reversals_of_monotone_series():
    assert extract_reversals([1, 2, 3, 4]) == [1, 4]


def test_reversals_of_triangle():
    assert extract_reversals([0, 5, 0]) == [0, 5, 0]


def test_reversals_collapse_plateaus():
    assert extract_reversals([0, 5, 5, 5, 0]) == [0, 5, 0]


def test_reversals_empty_and_constant():
    assert extract_reversals([]) == []
    assert extract_reversals([3, 3, 3]) == []


def test_reversals_keep_endpoints():
    revs = extract_reversals([2, 8, 4, 9, 1])
    assert revs[0] == 2
    assert revs[-1] == 1


# ---------------------------------------------------------------------------
# Cycle counting — hand-checked cases
# ---------------------------------------------------------------------------


def test_single_triangle_counts_half_cycles():
    cycles = count_cycles([0.0, 10.0, 0.0])
    assert total_cycle_count(cycles) == pytest.approx(1.0)  # two halves
    assert max_amplitude(cycles) == pytest.approx(10.0)


def test_repeated_triangles_count_full_cycles():
    series = [0.0, 10.0] * 6 + [0.0]
    cycles = count_cycles(series)
    assert total_cycle_count(cycles) == pytest.approx(6.0)
    assert all(c.amplitude_k == pytest.approx(10.0) for c in cycles)


def test_astm_reference_history():
    """The classic ASTM E1049 example history.

    Series -2, 1, -3, 5, -1, 3, -4, 4, -2 counts ranges
    {3: 0.5, 4: 1.5, 6: 0.5, 8: 1.0, 9: 0.5} (full equivalents).
    """
    series = [-2, 1, -3, 5, -1, 3, -4, 4, -2]
    cycles = count_cycles(series)
    by_range = {}
    for c in cycles:
        by_range[c.amplitude_k] = by_range.get(c.amplitude_k, 0.0) + c.count
    assert by_range[3.0] == pytest.approx(0.5)
    assert by_range[4.0] == pytest.approx(1.5)
    assert by_range[6.0] == pytest.approx(0.5)
    assert by_range[8.0] == pytest.approx(1.0)
    assert by_range[9.0] == pytest.approx(0.5)
    assert total_cycle_count(cycles) == pytest.approx(4.0)


def test_nested_cycle_extracted():
    # A small cycle riding on a large one: 0 -> 10 with a 6/4 dip inside.
    series = [0.0, 6.0, 4.0, 10.0, 0.0]
    cycles = count_cycles(series)
    amplitudes = sorted(c.amplitude_k for c in cycles)
    assert amplitudes[0] == pytest.approx(2.0)  # the nested 6->4 cycle
    assert amplitudes[-1] == pytest.approx(10.0)


def test_cycle_records_max_and_mean():
    cycles = count_cycles([20.0, 50.0, 20.0])
    assert all(c.max_c == pytest.approx(50.0) for c in cycles)
    assert all(c.mean_c == pytest.approx(35.0) for c in cycles)
    assert all(c.min_c == pytest.approx(20.0) for c in cycles)


def test_empty_and_trivial_series():
    assert count_cycles([]) == []
    assert count_cycles([5.0]) == []
    assert count_cycles([5.0, 5.0, 5.0]) == []


# ---------------------------------------------------------------------------
# Property-based invariants
# ---------------------------------------------------------------------------


temperature_series = st.lists(
    st.floats(min_value=-20.0, max_value=120.0, allow_nan=False), min_size=0, max_size=120
)


@given(temperature_series)
@settings(max_examples=200, deadline=None)
def test_cycle_count_bounded_by_reversals(series):
    reversals = extract_reversals(series)
    cycles = count_cycles(series)
    # Each counted (full or half) cycle consumes reversal ranges; the
    # full-cycle-equivalent count can never exceed half the reversals.
    assert total_cycle_count(cycles) <= max(0, len(reversals)) / 2 + 1e-9


@given(temperature_series)
@settings(max_examples=200, deadline=None)
def test_amplitudes_bounded_by_series_range(series):
    cycles = count_cycles(series)
    if not cycles:
        return
    span = max(series) - min(series)
    assert max_amplitude(cycles) <= span + 1e-9


@given(temperature_series)
@settings(max_examples=200, deadline=None)
def test_cycle_extremes_within_series(series):
    cycles = count_cycles(series)
    if not cycles:
        return
    low, high = min(series), max(series)
    for cycle in cycles:
        assert low - 1e-9 <= cycle.min_c
        assert cycle.max_c <= high + 1e-9


@given(temperature_series)
@settings(max_examples=200, deadline=None)
def test_counts_are_half_or_full(series):
    for cycle in count_cycles(series):
        assert cycle.count in (0.5, 1.0)
        assert cycle.amplitude_k > 0.0


coarse_series = st.lists(
    st.floats(min_value=-20.0, max_value=120.0, allow_nan=False).map(
        lambda x: round(x, 3)
    ),
    min_size=0,
    max_size=120,
)


@given(coarse_series, st.floats(min_value=-50.0, max_value=50.0, allow_nan=False).map(lambda x: round(x, 3)))
@settings(max_examples=100, deadline=None)
def test_counting_is_shift_invariant(series, offset):
    # Values are rounded to milli-kelvin so the shift cannot absorb
    # sub-epsilon differences between samples (a float artefact, not a
    # property of the algorithm).
    base = count_cycles(series)
    shifted = count_cycles([x + offset for x in series])
    assert total_cycle_count(base) == pytest.approx(total_cycle_count(shifted))
    assert max_amplitude(base) == pytest.approx(max_amplitude(shifted), abs=1e-6)


def test_thermal_cycle_is_frozen():
    cycle = ThermalCycle(5.0, 40.0, 42.5, 1.0)
    with pytest.raises(Exception):
        cycle.amplitude_k = 9.0  # type: ignore[misc]
