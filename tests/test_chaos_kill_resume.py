"""Chaos test: SIGKILL a real ``repro run`` and resume it.

The strongest form of the crash-tolerance guarantee: an actual child
process, killed with an uncatchable signal at a (randomly chosen)
checkpoint boundary, then resumed with ``--resume`` — and every artefact
it writes (``trace.jsonl``, ``result.json``) is byte-identical to an
uninterrupted reference run.
"""

import json
import os
import random
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

SRC = str(Path(__file__).resolve().parents[1] / "src")

#: Arguments shared by the victim and the reference run.
RUN_ARGS = [
    "run",
    "tachyon",
    "--scale",
    "0.05",
    "--seed",
    "5",
    "--policy",
    "proposed",
    "--faults",
    "both",
    "--supervised",
    "--trace",
    "--checkpoint-every",
    "150",
]

#: The randomness of "a random checkpoint boundary" — seeded so a
#: failure reproduces, per the repo's determinism policy.
KILL_AFTER_CHECKPOINTS = random.Random(0xC0FFEE).randint(1, 2)


def _repro(extra, cwd, wait=True):
    env = dict(os.environ, PYTHONPATH=SRC)
    command = [sys.executable, "-m", "repro.cli"] + RUN_ARGS + extra
    if wait:
        return subprocess.run(
            command, cwd=cwd, env=env, capture_output=True, text=True
        )
    return subprocess.Popen(
        command,
        cwd=cwd,
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def _wait_for_checkpoints(ckpt_dir: Path, count: int, process, deadline_s=120.0):
    start = time.monotonic()
    while time.monotonic() - start < deadline_s:
        if len(list(ckpt_dir.glob("ckpt-*.json"))) >= count:
            return True
        if process.poll() is not None:
            return False
        time.sleep(0.005)
    return False


def test_sigkill_then_resume_is_byte_identical(tmp_path):
    # 1. Uninterrupted reference run.
    ref_dir = tmp_path / "ref"
    ref_dir.mkdir()
    done = _repro(
        ["--checkpoint-dir", "ck", "--obs-dir", "obs"], cwd=ref_dir
    )
    assert done.returncode == 0, done.stderr

    # 2. Victim run: SIGKILL it once enough checkpoints exist.
    victim_dir = tmp_path / "victim"
    victim_dir.mkdir()
    victim = _repro(
        ["--checkpoint-dir", "ck", "--obs-dir", "obs"], cwd=victim_dir, wait=False
    )
    try:
        reached = _wait_for_checkpoints(
            victim_dir / "ck", KILL_AFTER_CHECKPOINTS, victim
        )
        assert reached, "victim finished before it could be killed"
        os.kill(victim.pid, signal.SIGKILL)
    finally:
        victim.wait(timeout=60)
    assert victim.returncode == -signal.SIGKILL

    # The kill left no observability artefacts behind (it died mid-run)
    # but did leave a usable checkpoint chain.
    assert list((victim_dir / "ck").glob("ckpt-*.json"))

    # 3. Resume the victim to completion.
    resumed = _repro(
        ["--checkpoint-dir", "ck", "--obs-dir", "obs", "--resume"],
        cwd=victim_dir,
    )
    assert resumed.returncode == 0, resumed.stderr

    # 4. Byte-identity of every run artefact.
    for name in ("trace.jsonl", "result.json"):
        ref_bytes = (ref_dir / "obs" / name).read_bytes()
        victim_bytes = (victim_dir / "obs" / name).read_bytes()
        assert victim_bytes == ref_bytes, (
            f"{name} of the killed+resumed run differs from the reference"
        )

    # The headline summary printed to stdout matches too.
    assert resumed.stdout.splitlines()[:8] == done.stdout.splitlines()[:8]


def test_resume_with_empty_store_runs_from_scratch(tmp_path):
    """``--resume`` against an empty checkpoint directory is a plain
    run, not an error — graceful degradation all the way down."""
    run_dir = tmp_path / "fresh"
    run_dir.mkdir()
    done = _repro(
        ["--checkpoint-dir", "ck", "--obs-dir", "obs", "--resume"],
        cwd=run_dir,
    )
    assert done.returncode == 0, done.stderr
    assert json.loads((run_dir / "obs" / "result.json").read_text())["summary"][
        "completed"
    ]
