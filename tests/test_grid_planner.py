"""The ensemble grid planner: partition properties, cache discipline,
failure granularity, and the experiments' declared batching axes.

Four layers of guarantees over :mod:`repro.experiments.engine.planner`
and the engine's ``ensemble=True`` execution path:

* **Partition properties** (Hypothesis) — for arbitrary mixed batches
  (workload/scenario kinds, platforms, supervisors), ``plan_grid``
  yields a deterministic partition: every index exactly once, groups
  platform-uniform and ensemble-valid, ineligible cells scalar, groups
  in first-appearance order.
* **Cache discipline** (Hypothesis) — routing a batch through
  ``ExperimentEngine(ensemble=True)`` never executes a member that the
  cache (or deduplication) already resolved, and never executes any
  member twice.
* **Failure granularity** (regression) — a failed shard inside a real
  sweep grid degrades exactly its members' cells; a re-run against the
  same cache re-executes only the members that actually failed.
* **Declared axes** — every experiment that advertises
  ``ENSEMBLE_AXES`` produces grids whose planned groups vary only along
  those axes.
"""

import dataclasses
import tempfile
from collections import Counter
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.experiments.engine.scheduler as scheduler_module
from repro.config import PlatformConfig, SupervisorConfig
from repro.experiments import (
    fault_tolerance,
    fig6_sampling,
    fig8_convergence,
    montecarlo,
    table2_intra,
)
from repro.experiments.engine import ExperimentEngine, ResultCache
from repro.experiments.engine.planner import (
    MIN_GROUP,
    ensemble_eligible,
    plan_grid,
    varying_fields,
)
from repro.experiments.engine.scheduler import EngineJobError
from repro.experiments.engine.spec import (
    EnsembleJobSpec,
    ensemble_job,
    job_key,
    scenario_job,
    workload_job,
)

#: Smallest scale at which every app clears the 60 s warm-up skip.
SCALE = 0.12

_DEFAULT_PLATFORM = PlatformConfig()
_EMA_PLATFORM = dataclasses.replace(
    _DEFAULT_PLATFORM,
    sensor=dataclasses.replace(_DEFAULT_PLATFORM.sensor, ema_tau_s=0.25),
)

# ----------------------------------------------------------------------
# Strategies: mixed batches exercising every eligibility rule
# ----------------------------------------------------------------------

_workload_specs = st.builds(
    workload_job,
    st.sampled_from(("tachyon", "mpeg_dec")),
    policy=st.sampled_from(("linux", "proposed")),
    seed=st.integers(min_value=1, max_value=5),
    platform=st.sampled_from((None, _DEFAULT_PLATFORM, _EMA_PLATFORM)),
    supervisor=st.sampled_from(
        (None, SupervisorConfig(enabled=False), SupervisorConfig(enabled=True))
    ),
)

_scenario_specs = st.builds(
    scenario_job,
    st.just(("tachyon", "mpeg_dec")),
    st.sampled_from(("linux", "proposed")),
    seed=st.integers(min_value=1, max_value=3),
)

_grids = st.lists(st.one_of(_workload_specs, _scenario_specs), max_size=24)
_min_groups = st.integers(min_value=1, max_value=4)


class TestPlanGridProperties:
    @given(specs=_grids, min_group=_min_groups)
    @settings(deadline=None)
    def test_partition_covers_every_index_exactly_once(self, specs, min_group):
        plan = plan_grid(specs, min_group=min_group)
        assert plan.indices() == list(range(len(specs)))
        assert plan.batched_members + len(plan.scalar) == len(specs)

    @given(specs=_grids, min_group=_min_groups)
    @settings(deadline=None)
    def test_groups_are_valid_uniform_ensembles(self, specs, min_group):
        plan = plan_grid(specs, min_group=min_group)
        for group in plan.groups:
            assert len(group) >= min_group
            assert list(group) == sorted(group)
            members = [specs[index] for index in group]
            assert all(ensemble_eligible(member) for member in members)
            platforms = {member.platform for member in members}
            assert len(platforms) == 1
            # The group materialises into a valid EnsembleJobSpec.
            ensemble_job(members)

    @given(specs=_grids, min_group=_min_groups)
    @settings(deadline=None)
    def test_ineligible_specs_always_stay_scalar(self, specs, min_group):
        plan = plan_grid(specs, min_group=min_group)
        batched = {index for group in plan.groups for index in group}
        for index, spec in enumerate(specs):
            if not ensemble_eligible(spec):
                assert index not in batched
        assert list(plan.scalar) == sorted(plan.scalar)

    @given(specs=_grids, min_group=_min_groups)
    @settings(deadline=None)
    def test_platform_cells_batch_all_or_none(self, specs, min_group):
        """Every eligible cell of a platform is batched iff the platform
        mustered ``min_group`` cells — no partial groups."""
        plan = plan_grid(specs, min_group=min_group)
        eligible_by_platform = Counter(
            spec.platform for spec in specs if ensemble_eligible(spec)
        )
        for group in plan.groups:
            platform = specs[group[0]].platform
            assert len(group) == eligible_by_platform[platform]
        for index in plan.scalar:
            spec = specs[index]
            if ensemble_eligible(spec):
                assert eligible_by_platform[spec.platform] < min_group

    @given(specs=_grids, min_group=_min_groups)
    @settings(deadline=None)
    def test_deterministic_and_first_appearance_ordered(self, specs, min_group):
        plan = plan_grid(specs, min_group=min_group)
        assert plan == plan_grid(list(specs), min_group=min_group)
        # Groups appear in order of their platform's first eligible cell.
        first_indices = [group[0] for group in plan.groups]
        assert first_indices == sorted(first_indices)

    def test_min_group_validation(self):
        with pytest.raises(ValueError):
            plan_grid([], min_group=0)
        assert plan_grid([]) == plan_grid([])

    def test_varying_fields(self):
        a = workload_job("tachyon", policy="linux", seed=1)
        b = workload_job("tachyon", policy="proposed", seed=2)
        assert varying_fields([]) == frozenset()
        assert varying_fields([a]) == frozenset()
        assert varying_fields([a, b]) == frozenset({"policy", "seed"})


# ----------------------------------------------------------------------
# Cache discipline: no member executes twice
# ----------------------------------------------------------------------


@dataclasses.dataclass
class _FakeSummary:
    """Picklable stand-in carrying its member's identity."""

    key: str


class TestNoDoubleExecution:
    @given(
        seeds=st.lists(st.integers(min_value=1, max_value=4), min_size=2, max_size=12),
        warm_mask=st.lists(st.booleans(), min_size=4, max_size=4),
    )
    @settings(deadline=None, max_examples=30)
    def test_cache_and_dedup_resolved_members_never_rerun(self, seeds, warm_mask):
        """Submit a grid with duplicates and a partially warm cache
        through the ensemble-routed engine: every unique cold member
        executes exactly once, everything else executes zero times."""
        specs = [
            workload_job("tachyon", policy="linux", seed=seed, iteration_scale=SCALE)
            for seed in seeds
        ]
        unique = sorted({spec for spec in specs}, key=lambda spec: spec.seed)
        warm = {
            spec
            for index, spec in enumerate(unique)
            if warm_mask[index % len(warm_mask)]
        }
        executions = Counter()

        def counting_execute(spec, *args, **kwargs):
            if isinstance(spec, EnsembleJobSpec):
                for member in spec.members:
                    executions[job_key(member)] += 1
                return [_FakeSummary(job_key(member)) for member in spec.members]
            executions[job_key(spec)] += 1
            return _FakeSummary(job_key(spec))

        with tempfile.TemporaryDirectory() as tmp:
            cache = ResultCache(root=Path(tmp) / "cache")
            for spec in warm:
                cache.put(spec, _FakeSummary(job_key(spec)))
            with pytest.MonkeyPatch.context() as mp:
                mp.setattr(scheduler_module, "execute_job", counting_execute)
                engine = ExperimentEngine(jobs=1, cache=cache, ensemble=True)
                results = engine.run(specs)

            # Results align with the submission, warm or cold.
            assert [result.key for result in results] == [
                job_key(spec) for spec in specs
            ]
            for spec in unique:
                expected = 0 if spec in warm else 1
                assert executions[job_key(spec)] == expected, spec.seed
            # Warm members stay cached; cold members that formed an
            # ensemble group (>= MIN_GROUP of them — all these specs
            # share one platform) are cached by the shard layer.  (A
            # lone scalar leftover is only cached for real RunSummary
            # results, which this counting stub does not produce.)
            cold = [spec for spec in unique if spec not in warm]
            cached_after = warm if len(cold) < MIN_GROUP else unique
            for spec in cached_after:
                assert cache.get(spec) is not None


# ----------------------------------------------------------------------
# Partial-shard failure inside a sweep grid
# ----------------------------------------------------------------------

_REAL_EXECUTE = scheduler_module.execute_job


def _fail_proposed_shards(spec, *args, **kwargs):
    """Module-level (hence picklable) fault: any shard containing a
    ``proposed`` member dies; everything else executes for real."""
    if isinstance(spec, EnsembleJobSpec) and any(
        member.policy == "proposed" for member in spec.members
    ):
        raise RuntimeError("injected shard failure")
    return _REAL_EXECUTE(spec, *args, **kwargs)


class TestPartialShardFailureInSweep:
    def test_failed_shard_degrades_only_its_members(self, tmp_path, monkeypatch):
        """A Monte Carlo grid (1 app x 2 policies x 4 seeds) at jobs=2
        splits its single ensemble group into two shards — linux seeds
        and proposed seeds.  Killing the proposed shard must surface one
        failure per proposed member, leave the linux members cached, and
        let a re-run against the same cache execute only the four
        members that actually failed."""
        cache = ResultCache(root=tmp_path / "cache")
        monkeypatch.setattr(scheduler_module, "execute_job", _fail_proposed_shards)
        engine = ExperimentEngine(
            jobs=2, cache=cache, ensemble=True, max_job_attempts=1
        )
        with pytest.raises(EngineJobError) as excinfo:
            montecarlo.run_montecarlo(
                iteration_scale=SCALE, seeds=4, apps=("tachyon",), engine=engine
            )
        members = [
            workload_job(
                "tachyon", None, policy, seed=seed, iteration_scale=SCALE
            )
            for policy in ("linux", "proposed")
            for seed in (1, 2, 3, 4)
        ]
        linux, proposed = members[:4], members[4:]
        failures = excinfo.value.failures
        assert [failure.key for failure in failures] == [
            job_key(member) for member in proposed
        ]
        assert all(failure.label == "tachyon/proposed" for failure in failures)
        assert engine.stats.failed == 4
        # The healthy shard's members landed in the cache; the failed
        # shard's members did not.
        assert all(cache.get(member) is not None for member in linux)
        assert all(cache.get(member) is None for member in proposed)

        monkeypatch.undo()
        retry = ExperimentEngine(jobs=2, cache=cache, ensemble=True)
        result = montecarlo.run_montecarlo(
            iteration_scale=SCALE, seeds=4, apps=("tachyon",), engine=retry
        )
        assert retry.stats.cache_hits == 4
        assert retry.stats.executed == 4
        assert {row.policy for row in result.rows} == {"linux", "proposed"}


# ----------------------------------------------------------------------
# Declared ensemble axes
# ----------------------------------------------------------------------


class _Captured(Exception):
    """Sentinel unwinding an experiment after its batch is recorded."""


class _RecordingEngine(ExperimentEngine):
    def run(self, specs):
        self.captured = list(specs)
        raise _Captured


_AXED_EXPERIMENTS = {
    "table2": (table2_intra.run_table2, table2_intra.ENSEMBLE_AXES),
    "fig6": (fig6_sampling.run_fig6, fig6_sampling.ENSEMBLE_AXES),
    "fig8": (fig8_convergence.run_fig8, fig8_convergence.ENSEMBLE_AXES),
    "fault_tolerance": (
        fault_tolerance.run_fault_tolerance,
        fault_tolerance.ENSEMBLE_AXES,
    ),
    "montecarlo": (montecarlo.run_montecarlo, montecarlo.ENSEMBLE_AXES),
}


@pytest.mark.parametrize("name", list(_AXED_EXPERIMENTS), ids=list(_AXED_EXPERIMENTS))
def test_planned_groups_vary_only_along_declared_axes(name):
    """Each experiment's full default grid partitions into groups that
    vary only along its declared ``ENSEMBLE_AXES`` — capturing the
    submitted batch costs no simulation time."""
    run, axes = _AXED_EXPERIMENTS[name]
    engine = _RecordingEngine(jobs=1)
    with pytest.raises(_Captured):
        run(iteration_scale=SCALE, seed=1, engine=engine)
    specs = engine.captured
    plan = plan_grid(specs)
    assert plan.groups, f"{name} declared axes but plans no ensemble groups"
    for group in plan.groups:
        members = [specs[index] for index in group]
        undeclared = varying_fields(members) - set(axes)
        assert not undeclared, (
            f"{name}: group varies along undeclared axes {sorted(undeclared)}"
        )
