"""End-to-end subprocess tests of the ``repro`` command-line interface.

Every test here launches ``python -m repro`` exactly as a user would,
in a temporary working directory, and asserts on exit codes and the
artefacts left on disk — exercising argument parsing, the observability
wiring and the manifest/trace validation path that unit tests cannot
reach.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_DIR = REPO_ROOT / "src"


def _repro(args, cwd, env_extra=None, timeout=600):
    """Run ``python -m repro <args>`` in ``cwd`` and capture output."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC_DIR)
    if env_extra:
        env.update(env_extra)
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        cwd=str(cwd),
        env=env,
        capture_output=True,
        text=True,
        timeout=timeout,
    )


RUN_ARGS = [
    "run", "mpeg_dec", "--policy", "proposed", "--scale", "0.02",
    "--trace", "--metrics",
]


@pytest.fixture(scope="module")
def traced_run(tmp_path_factory):
    """One traced+metered ``repro run`` shared by the assertions below."""
    workdir = tmp_path_factory.mktemp("traced_run")
    proc = _repro(RUN_ARGS, cwd=workdir)
    assert proc.returncode == 0, proc.stderr
    return workdir, proc


class TestReproRunObservability:
    def test_writes_all_observability_artefacts(self, traced_run):
        workdir, _ = traced_run
        obs = workdir / "obs"
        for name in ("trace.jsonl", "metrics.json", "metrics.prom",
                     "result.json", "manifest.json"):
            path = obs / name
            assert path.is_file(), f"missing artefact {name}"
            assert path.stat().st_size > 0, f"empty artefact {name}"

    def test_every_trace_line_validates(self, traced_run):
        from repro.obs.trace import read_events, validate_event

        workdir, _ = traced_run
        events = list(read_events(workdir / "obs" / "trace.jsonl"))
        assert events
        for event in events:
            validate_event(event)
        types = {e["type"] for e in events}
        assert {"run_start", "tick", "decision", "run_end"} <= types

    def test_manifest_validates_and_artefacts_verify(self, traced_run):
        from repro.obs.manifest import load_manifest, verify_artefacts

        workdir, _ = traced_run
        obs = workdir / "obs"
        document = load_manifest(obs)
        verify_artefacts(document, obs)
        assert set(document["artefacts"]) >= {
            "trace.jsonl", "metrics.json", "metrics.prom", "result.json"
        }
        assert document["run"]["app"] == "mpeg_dec"

    def test_result_json_embeds_trace_headlines(self, traced_run):
        workdir, _ = traced_run
        result = json.loads((workdir / "obs" / "result.json").read_text())
        assert result["run"]["app"] == "mpeg_dec"
        assert result["summary"]["average_temp_c"] > 0.0
        trace = result["trace"]
        assert trace["total_events"] > 0
        assert trace["decisions"] >= 1
        assert trace["avg_temp_c"] > 0.0

    def test_metrics_exports_agree(self, traced_run):
        workdir, _ = traced_run
        obs = workdir / "obs"
        metrics = json.loads((obs / "metrics.json").read_text())
        prom = (obs / "metrics.prom").read_text()
        assert metrics["repro_runs_total"]["value"] == 1.0
        assert metrics["repro_eval_samples_total"]["value"] > 0
        assert "# TYPE repro_runs_total counter" in prom
        assert "repro_core_temp_c_bucket" in prom

    def test_trace_summarize_matches_result(self, traced_run):
        workdir, _ = traced_run
        proc = _repro(
            ["trace", "summarize", "obs/trace.jsonl",
             "--check-result", "obs/result.json"],
            cwd=workdir,
        )
        assert proc.returncode == 0, proc.stderr
        assert "trace matches" in proc.stdout
        assert "avg temperature" in proc.stdout

    def test_trace_summarize_detects_tampering(self, traced_run, tmp_path):
        workdir, _ = traced_run
        source = (workdir / "obs" / "trace.jsonl").read_text()
        lines = source.splitlines()
        # Drop every tick event: the recomputed headline statistics can
        # no longer match the recorded result document.
        kept = [line for line in lines if '"type": "tick"' not in line]
        assert len(kept) < len(lines)
        tampered = tmp_path / "tampered.jsonl"
        tampered.write_text("\n".join(kept) + "\n")
        result_path = workdir / "obs" / "result.json"
        proc = _repro(
            ["trace", "summarize", str(tampered),
             "--check-result", str(result_path)],
            cwd=tmp_path,
        )
        assert proc.returncode == 1
        assert "MISMATCH" in proc.stdout

    def test_trace_summarize_rejects_invalid_events(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"schema": 1, "seq": 0, "type": "nonsense", "t": 0.0}\n')
        proc = _repro(["trace", "summarize", str(bad)], cwd=tmp_path)
        assert proc.returncode == 1

    def test_plain_run_writes_no_observability(self, tmp_path):
        proc = _repro(
            ["run", "mpeg_dec", "--policy", "proposed", "--scale", "0.02"],
            cwd=tmp_path,
        )
        assert proc.returncode == 0, proc.stderr
        assert not (tmp_path / "obs").exists()


class TestReproAllParallel:
    def test_all_jobs2_with_metrics(self, tmp_path):
        metrics_path = tmp_path / "sweep_metrics.json"
        proc = _repro(
            ["all", "--jobs", "2", "--scale", "0.12", "--only", "fig1",
             "--metrics", str(metrics_path)],
            cwd=tmp_path,
            env_extra={"REPRO_CACHE_DIR": str(tmp_path / "cache")},
        )
        assert proc.returncode == 0, proc.stderr
        assert metrics_path.is_file()
        metrics = json.loads(metrics_path.read_text())
        assert metrics["repro_artefacts_regenerated_total"]["value"] == 1.0
        assert metrics["repro_engine_jobs_submitted_total"]["value"] > 0
        assert "metrics written to" in proc.stdout

    def test_all_rejects_unknown_artefact(self, tmp_path):
        proc = _repro(
            ["all", "--only", "not_an_artefact", "--scale", "0.12"],
            cwd=tmp_path,
            env_extra={"REPRO_CACHE_DIR": str(tmp_path / "cache")},
        )
        assert proc.returncode != 0


class TestReproBench:
    def test_bench_quick(self, tmp_path):
        output = tmp_path / "bench.json"
        proc = _repro(
            ["bench", "--quick", "--ticks", "200", "--repeats", "1",
             "--output", str(output)],
            cwd=tmp_path,
        )
        assert proc.returncode == 0, proc.stderr
        report = json.loads(output.read_text())
        assert report["mode"] == "quick"
        assert report["workloads"]
        for entry in report["workloads"].values():
            assert entry["ticks_per_s"] > 0


ENS_RUN_ARGS = [
    "ensemble", "run", "tachyon", "--members", "4",
    "--scale", "0.05", "--seed", "7",
]

ENS_BENCH_TINY = [
    "ensemble", "bench", "--quick", "--members", "2", "--ticks", "20",
    "--scalar-ticks", "50", "--repeats", "1",
]


class TestReproEnsembleRun:
    def test_sharded_output_is_identical_to_serial(self, tmp_path):
        """--jobs 2 must print the exact per-seed table --jobs 1 does;
        only the execution-summary line may differ."""
        serial = _repro([*ENS_RUN_ARGS, "--no-cache", "--jobs", "1"],
                        cwd=tmp_path)
        sharded = _repro([*ENS_RUN_ARGS, "--no-cache", "--jobs", "2"],
                         cwd=tmp_path)
        assert serial.returncode == 0, serial.stderr
        assert sharded.returncode == 0, sharded.stderr
        # header + 4 member rows + ensemble mean line
        head = serial.stdout.splitlines()[:6]
        assert head == sharded.stdout.splitlines()[:6]
        assert "executed across 2 shard(s)" in sharded.stdout

    def test_sharded_run_populates_the_member_cache(self, tmp_path):
        env = {"REPRO_CACHE_DIR": str(tmp_path / "cache")}
        cold = _repro([*ENS_RUN_ARGS, "--jobs", "2"], cwd=tmp_path,
                      env_extra=env)
        assert cold.returncode == 0, cold.stderr
        assert "4 executed across 2 shard(s)" in cold.stdout
        warm = _repro([*ENS_RUN_ARGS, "--jobs", "2"], cwd=tmp_path,
                      env_extra=env)
        assert warm.returncode == 0, warm.stderr
        assert "4 member(s) from cache, 0 executed" in warm.stdout
        assert (warm.stdout.splitlines()[:6]
                == cold.stdout.splitlines()[:6])

    def test_shard_timeout_surfaces_failure_and_exits_nonzero(self, tmp_path):
        proc = _repro(
            [*ENS_RUN_ARGS, "--no-cache", "--jobs", "2",
             "--job-timeout", "0.05", "--max-job-attempts", "1"],
            cwd=tmp_path,
        )
        assert proc.returncode == 1
        assert "-- shard failed; see below --" in proc.stdout
        assert "FAILED" in proc.stdout
        assert "timed out" in proc.stdout

    def test_rejects_invalid_member_and_job_counts(self, tmp_path):
        bad_members = _repro(
            ["ensemble", "run", "tachyon", "--members", "0"], cwd=tmp_path)
        assert bad_members.returncode == 2
        bad_jobs = _repro(
            ["ensemble", "run", "tachyon", "--jobs", "0"], cwd=tmp_path)
        assert bad_jobs.returncode == 2


class TestReproEnsembleBench:
    @pytest.fixture(scope="class")
    def tiny_bench(self, tmp_path_factory):
        workdir = tmp_path_factory.mktemp("ens_bench")
        output = workdir / "report.json"
        proc = _repro([*ENS_BENCH_TINY, "--output", str(output)],
                      cwd=workdir)
        assert proc.returncode == 0, proc.stderr
        return workdir, proc, json.loads(output.read_text())

    def test_report_shape(self, tiny_bench):
        _, proc, report = tiny_bench
        assert report["label"] == "BENCH_PR8"
        assert report["mode"] == "quick"
        assert report["members"] == 2
        for entry in report["workloads"].values():
            assert entry["traj_ticks_per_s"] > 0
            assert 0.99 < sum(entry["phase_fractions"].values()) < 1.01
        scaling = report["shard_scaling"]
        assert scaling["cpu_count"] >= 1
        assert [run["jobs"] for run in scaling["runs"]] == [1, 2]
        assert "phase split:" in proc.stdout
        assert "shard scaling" in proc.stdout

    def test_compare_passes_against_a_slower_baseline(self, tiny_bench, tmp_path):
        workdir, _, report = tiny_bench
        baseline = dict(report)
        baseline["workloads"] = {
            key: {**entry, "traj_ticks_per_s": entry["traj_ticks_per_s"] * 0.01}
            for key, entry in report["workloads"].items()
        }
        baseline_path = tmp_path / "slower.json"
        baseline_path.write_text(json.dumps(baseline))
        proc = _repro(
            [*ENS_BENCH_TINY, "--output", str(tmp_path / "out.json"),
             "--compare", str(baseline_path)],
            cwd=workdir,
        )
        assert proc.returncode == 0, proc.stderr
        assert "comparison vs" in proc.stdout
        assert "no regression vs" in proc.stdout

    def test_compare_fails_against_a_faster_baseline(self, tiny_bench, tmp_path):
        workdir, _, report = tiny_bench
        baseline = dict(report)
        baseline["workloads"] = {
            key: {**entry, "traj_ticks_per_s": entry["traj_ticks_per_s"] * 100}
            for key, entry in report["workloads"].items()
        }
        baseline_path = tmp_path / "faster.json"
        baseline_path.write_text(json.dumps(baseline))
        proc = _repro(
            [*ENS_BENCH_TINY, "--output", str(tmp_path / "out.json"),
             "--compare", str(baseline_path)],
            cwd=workdir,
        )
        assert proc.returncode == 1
        assert "REGRESSION vs" in proc.stdout

    def test_compare_fails_fast_on_a_missing_baseline(self, tmp_path):
        proc = _repro(
            [*ENS_BENCH_TINY, "--compare", str(tmp_path / "absent.json")],
            cwd=tmp_path,
        )
        assert proc.returncode != 0


class TestCliErrors:
    def test_unknown_app_exits_nonzero(self, tmp_path):
        proc = _repro(["run", "not_an_app"], cwd=tmp_path)
        assert proc.returncode != 0

    def test_trace_requires_subcommand(self, tmp_path):
        proc = _repro(["trace"], cwd=tmp_path)
        assert proc.returncode != 0
