"""Tests for the `repro lint` static-analysis framework.

Covers the engine (registry, suppression parsing, baseline round-trip,
JSON reporter schema) and, for every rule of the opening ruleset, one
fixture that must fire and one that must stay silent.
"""

import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis.lint import (
    BaselineError,
    MALFORMED_SUPPRESSION_CODE,
    Severity,
    all_rule_classes,
    build_rules,
    lint_paths,
    lint_source,
    load_baseline,
    module_for_path,
    parse_suppressions,
    render_human,
    render_json,
    save_baseline,
)
from repro.cli import main

RULE_CODES = ("API001", "CFG001", "DET001", "DET002", "FP001", "OBS001")


def codes(report):
    return [finding.rule for finding in report.active]


def lint_fixture(source, module, rules=None):
    return lint_source(textwrap.dedent(source), module=module, rules=rules)


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------


class TestRegistry:
    def test_opening_ruleset_registered(self):
        assert tuple(all_rule_classes()) == RULE_CODES

    def test_build_rules_filters(self):
        rules = build_rules(["DET001", "FP001"])
        assert [rule.meta.code for rule in rules] == ["DET001", "FP001"]

    def test_build_rules_rejects_unknown_code(self):
        with pytest.raises(KeyError, match="NOPE999"):
            build_rules(["NOPE999"])

    def test_every_rule_documents_its_invariant(self):
        for cls in all_rule_classes().values():
            assert cls.meta.rationale
            assert cls.meta.severity in (Severity.ERROR, Severity.WARNING)


# ---------------------------------------------------------------------------
# Suppression parsing
# ---------------------------------------------------------------------------


class TestSuppression:
    def test_parse_reasoned_noqa(self):
        lines = ["x = 1  # repro: noqa[DET001] reason=fixture clock"]
        parsed = parse_suppressions(lines)
        assert parsed[1].codes == ("DET001",)
        assert parsed[1].reason == "fixture clock"
        assert parsed[1].valid

    def test_parse_multiple_codes(self):
        lines = ["y = 2  # repro: noqa[DET001, FP001] reason=both apply"]
        assert parsed_codes(lines) == ("DET001", "FP001")

    def test_reasonless_noqa_is_invalid(self):
        lines = ["z = 3  # repro: noqa[DET001]"]
        assert not parse_suppressions(lines)[1].valid

    def test_reasoned_noqa_suppresses_finding(self):
        report = lint_fixture(
            """
            import time

            def tick():  # repro: noqa[DET001] reason=unit-test fixture
                return time.time()  # repro: noqa[DET001] reason=unit-test fixture
            """,
            module="repro.soc.fixture",
        )
        assert report.clean
        assert [f.rule for f in report.suppressed] == ["DET001"]

    def test_reasonless_noqa_reports_noqa001_and_keeps_finding(self):
        report = lint_fixture(
            """
            import time

            def tick():
                return time.time()  # repro: noqa[DET001]
            """,
            module="repro.soc.fixture",
        )
        assert MALFORMED_SUPPRESSION_CODE in codes(report)
        assert "DET001" in codes(report)


def parsed_codes(lines):
    return parse_suppressions(lines)[1].codes


# ---------------------------------------------------------------------------
# Baseline
# ---------------------------------------------------------------------------


class TestBaseline:
    FIXTURE = """
    import time

    def tick():
        return time.time()
    """

    def findings(self):
        return lint_fixture(self.FIXTURE, module="repro.soc.fixture").active

    def test_round_trip(self, tmp_path):
        path = tmp_path / "baseline.json"
        count = save_baseline(path, self.findings())
        assert count == len(self.findings()) > 0
        baseline = load_baseline(path)
        assert set(baseline) == {f.fingerprint() for f in self.findings()}

    def test_baselined_findings_do_not_fail(self, tmp_path):
        path = tmp_path / "baseline.json"
        save_baseline(path, self.findings())
        report = lint_source(
            textwrap.dedent(self.FIXTURE),
            module="repro.soc.fixture",
            baseline=load_baseline(path),
        )
        assert report.clean
        assert len(report.baselined) == len(self.findings())

    def test_fingerprint_survives_line_shift(self):
        shifted = "# a new leading comment\n" + textwrap.dedent(self.FIXTURE)
        original = {f.fingerprint() for f in self.findings()}
        moved = {
            f.fingerprint()
            for f in lint_source(shifted, module="repro.soc.fixture").active
        }
        assert original == moved

    def test_malformed_baseline_raises(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text("[]")
        with pytest.raises(BaselineError):
            load_baseline(path)
        path.write_text('{"schema": 99, "findings": {}}')
        with pytest.raises(BaselineError, match="schema"):
            load_baseline(path)


# ---------------------------------------------------------------------------
# Reporters
# ---------------------------------------------------------------------------


class TestReporters:
    def report(self):
        return lint_fixture(
            """
            import time

            def tick():
                return time.time()
            """,
            module="repro.soc.fixture",
        )

    def test_json_schema(self):
        document = json.loads(render_json(self.report()))
        assert document["schema"] == 1
        assert document["tool"] == "repro-lint"
        assert {r["code"] for r in document["rules"]} == set(RULE_CODES)
        for finding in document["findings"]:
            assert set(finding) == {
                "rule",
                "severity",
                "path",
                "module",
                "line",
                "col",
                "message",
                "fingerprint",
            }
        summary = document["summary"]
        assert set(summary) == {
            "files",
            "findings",
            "errors",
            "warnings",
            "suppressed",
            "baselined",
        }
        assert summary["findings"] == len(document["findings"])

    def test_human_report_lists_location_and_code(self):
        text = render_human(self.report())
        assert "DET001" in text
        assert "checked 1 file" in text


# ---------------------------------------------------------------------------
# DET001 — no nondeterminism sources in the decision loop
# ---------------------------------------------------------------------------


class TestDET001:
    def test_fires_on_wall_clock_and_entropy(self):
        report = lint_fixture(
            """
            import time
            import os
            import numpy as np

            def decide():
                start = time.perf_counter()
                rng = np.random.default_rng()
                mode = os.environ["REPRO_MODE"]
                return start, rng, mode, os.urandom(4)
            """,
            module="repro.core.fixture",
            rules=["DET001"],
        )
        assert codes(report).count("DET001") == 4

    def test_fires_on_stdlib_random_import(self):
        report = lint_fixture(
            "import random\n",
            module="repro.reliability.fixture",
            rules=["DET001"],
        )
        assert codes(report) == ["DET001"]

    def test_silent_on_seeded_generator(self):
        report = lint_fixture(
            """
            import numpy as np

            def make_rng(seed):
                return np.random.default_rng(seed)
            """,
            module="repro.sched.fixture",
            rules=["DET001"],
        )
        assert report.clean

    def test_out_of_scope_module_is_ignored(self):
        report = lint_fixture(
            "import time\nNOW = time.time()\n",
            module="repro.perf.fixture",
            rules=["DET001"],
        )
        assert report.clean

    def test_planner_and_audit_are_in_scope(self):
        from repro.analysis.lint.rules.determinism import DETERMINISTIC_PACKAGES

        assert "repro.experiments.engine.planner" in DETERMINISTIC_PACKAGES
        assert "repro.analysis.audit" in DETERMINISTIC_PACKAGES
        for module in (
            "repro.experiments.engine.planner",
            "repro.analysis.audit.fixture",
        ):
            report = lint_fixture(
                "import time\nNOW = time.time()\n",
                module=module,
                rules=["DET001"],
            )
            assert codes(report) == ["DET001"], module


# ---------------------------------------------------------------------------
# DET002 — no unordered iteration on hashing/caching paths
# ---------------------------------------------------------------------------


class TestDET002:
    def test_fires_on_unsorted_dict_views_and_sets(self):
        report = lint_fixture(
            """
            def fold(entries):
                for key in entries.keys():
                    yield key
                return [v for v in entries.values()] + [x for x in set(entries)]
            """,
            module="repro.experiments.engine.fixture",
            rules=["DET002"],
        )
        assert codes(report).count("DET002") == 3

    def test_fires_in_obs_manifest(self):
        report = lint_fixture(
            """
            def digest_all(artefacts):
                for name, entry in artefacts.items():
                    yield name, entry
            """,
            module="repro.obs.manifest",
            rules=["DET002"],
        )
        assert codes(report) == ["DET002"]

    def test_silent_when_sorted(self):
        report = lint_fixture(
            """
            def fold(entries):
                for key, value in sorted(entries.items()):
                    yield key, value
            """,
            module="repro.experiments.engine.fixture",
            rules=["DET002"],
        )
        assert report.clean

    def test_out_of_scope_module_is_ignored(self):
        report = lint_fixture(
            """
            def fold(entries):
                return list(entries.keys())[0] if entries.keys() else None

            def loop(entries):
                for key in entries.keys():
                    yield key
            """,
            module="repro.workloads.fixture",
            rules=["DET002"],
        )
        assert report.clean

    def test_audit_package_is_in_scope(self):
        from repro.analysis.lint.rules.determinism import ORDER_SENSITIVE_MODULES

        assert "repro.analysis.audit" in ORDER_SENSITIVE_MODULES
        report = lint_fixture(
            """
            def fold(entries):
                for key in entries.keys():
                    yield key
            """,
            module="repro.analysis.audit.fixture",
            rules=["DET002"],
        )
        assert codes(report) == ["DET002"]


# ---------------------------------------------------------------------------
# OBS001 — observation-only obs layer
# ---------------------------------------------------------------------------


class TestOBS001:
    def test_fires_on_attribute_assignment_to_observed_object(self):
        report = lint_fixture(
            """
            def watch(simulation):
                simulation.paused = True
            """,
            module="repro.obs.fixture",
            rules=["OBS001"],
        )
        assert codes(report) == ["OBS001"]

    def test_fires_on_mutating_api_call(self):
        report = lint_fixture(
            """
            def watch(simulation):
                simulation.chip.set_governor(0, "powersave")
                simulation.agent.reset()
            """,
            module="repro.obs.fixture",
            rules=["OBS001"],
        )
        assert codes(report).count("OBS001") == 2

    def test_silent_on_reads_and_self_mutation(self):
        report = lint_fixture(
            """
            class Collector:
                def __init__(self):
                    self.samples = []

                def watch(self, simulation):
                    self.samples.append(simulation.time_s)
                    return simulation.chip.temperatures()
            """,
            module="repro.obs.fixture",
            rules=["OBS001"],
        )
        assert report.clean

    def test_out_of_scope_module_is_ignored(self):
        report = lint_fixture(
            """
            def drive(simulation):
                simulation.chip.set_governor(0, "performance")
            """,
            module="repro.sched.fixture",
            rules=["OBS001"],
        )
        assert report.clean


# ---------------------------------------------------------------------------
# FP001 — exact FP op order on the fast path
# ---------------------------------------------------------------------------


class TestFP001:
    def test_fires_on_generator_sum_and_fsum(self):
        report = lint_fixture(
            """
            import math

            def fold(powers):
                a = sum(p * 2.0 for p in powers)
                b = math.fsum(powers)
                return a + b
            """,
            module="repro.soc.chip",
            rules=["FP001"],
        )
        assert codes(report).count("FP001") == 2
        assert all(f.severity is Severity.WARNING for f in report.active)

    def test_silent_on_materialised_sum(self):
        report = lint_fixture(
            """
            def fold(powers):
                return sum(powers)
            """,
            module="repro.soc.chip",
            rules=["FP001"],
        )
        assert report.clean

    def test_out_of_scope_module_is_ignored(self):
        report = lint_fixture(
            """
            import math

            def fold(values):
                return math.fsum(v * 2.0 for v in values)
            """,
            module="repro.reliability.fixture",
            rules=["FP001"],
        )
        assert report.clean


# ---------------------------------------------------------------------------
# CFG001 — every config dataclass field has a validation branch
# ---------------------------------------------------------------------------


class TestCFG001:
    def test_fires_on_uncovered_field(self):
        report = lint_fixture(
            """
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class DemoConfig:
                covered: float = 1.0
                uncovered: float = 2.0

                def __post_init__(self):
                    if self.covered <= 0:
                        raise ValueError("covered must be positive")
            """,
            module="repro.config",
            rules=["CFG001"],
        )
        assert codes(report) == ["CFG001"]
        assert "uncovered" in report.active[0].message

    def test_fires_on_missing_post_init(self):
        report = lint_fixture(
            """
            from dataclasses import dataclass

            @dataclass
            class DemoConfig:
                alpha: float = 0.5
                beta: float = 0.25
            """,
            module="repro.config",
            rules=["CFG001"],
        )
        assert codes(report) == ["CFG001", "CFG001"]

    def test_getattr_loop_counts_as_coverage(self):
        report = lint_fixture(
            """
            from dataclasses import dataclass

            def _check(name, value):
                if value < 0:
                    raise ValueError(name)

            @dataclass
            class DemoConfig:
                alpha: float = 0.5
                beta: float = 0.25

                def __post_init__(self):
                    for name in ("alpha", "beta"):
                        _check(name, getattr(self, name))
            """,
            module="repro.config",
            rules=["CFG001"],
        )
        assert report.clean

    def test_out_of_scope_module_is_ignored(self):
        report = lint_fixture(
            """
            from dataclasses import dataclass

            @dataclass
            class Row:
                value: float = 0.0
            """,
            module="repro.experiments.fixture",
            rules=["CFG001"],
        )
        assert report.clean

    def test_repo_config_is_fully_covered(self):
        import repro.config

        report = lint_paths([Path(repro.config.__file__)], rules=["CFG001"])
        assert report.clean


# ---------------------------------------------------------------------------
# API001 — no mutable defaults, no bare excepts
# ---------------------------------------------------------------------------


class TestAPI001:
    def test_fires_on_mutable_default(self):
        report = lint_fixture(
            """
            def collect(values=[]):
                return values
            """,
            module="repro.workloads.fixture",
            rules=["API001"],
        )
        assert codes(report) == ["API001"]

    def test_fires_on_bare_except(self):
        report = lint_fixture(
            """
            def load(path):
                try:
                    return open(path).read()
                except:
                    return None
            """,
            module="repro.experiments.fixture",
            rules=["API001"],
        )
        assert codes(report) == ["API001"]

    def test_silent_on_none_default_and_typed_except(self):
        report = lint_fixture(
            """
            def collect(values=None):
                if values is None:
                    values = []
                try:
                    return list(values)
                except TypeError:
                    return []
            """,
            module="repro.workloads.fixture",
            rules=["API001"],
        )
        assert report.clean


# ---------------------------------------------------------------------------
# Engine / CLI
# ---------------------------------------------------------------------------


class TestEngine:
    def test_module_name_derivation(self):
        assert (
            module_for_path(Path("/x/src/repro/soc/chip.py")) == "repro.soc.chip"
        )
        assert module_for_path(Path("/x/src/repro/obs/__init__.py")) == "repro.obs"
        assert module_for_path(Path("/tmp/scratch.py")) == "scratch"

    def test_unparseable_file_reports_parse_error(self, tmp_path):
        bad = tmp_path / "repro" / "soc" / "broken.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("def broken(:\n")
        report = lint_paths([bad])
        assert codes(report) == ["PARSE"]

    def test_whole_package_is_clean(self):
        # The acceptance criterion: the shipped tree has zero active
        # findings against an empty baseline.
        report = lint_paths()
        assert report.clean, render_human(report)
        # The one reasoned exemption in the tree is visible as suppressed.
        assert any(f.rule == "FP001" for f in report.suppressed)


class TestCli:
    def violation_tree(self, tmp_path):
        root = tmp_path / "repro" / "soc"
        root.mkdir(parents=True)
        (root / "bad.py").write_text("import time\nNOW = time.time()\n")
        return tmp_path / "repro"

    def test_lint_subcommand_flags_and_exit_codes(self, tmp_path, capsys):
        target = self.violation_tree(tmp_path)
        assert main(["lint", str(target)]) == 1
        assert "DET001" in capsys.readouterr().out
        assert main(["lint", str(target), "--rule", "OBS001"]) == 0
        assert main(["lint", str(target), "--rule", "NOPE999"]) == 2

    def test_lint_json_output(self, tmp_path, capsys):
        target = self.violation_tree(tmp_path)
        assert main(["lint", str(target), "--json"]) == 1
        document = json.loads(capsys.readouterr().out)
        assert document["summary"]["errors"] >= 1

    def test_fix_baseline_round_trip(self, tmp_path, capsys):
        target = self.violation_tree(tmp_path)
        baseline = tmp_path / "baseline.json"
        assert (
            main(
                ["lint", str(target), "--baseline", str(baseline), "--fix-baseline"]
            )
            == 0
        )
        capsys.readouterr()
        # With the violations recorded, the same tree now lints clean.
        assert main(["lint", str(target), "--baseline", str(baseline)]) == 0
        assert "baselined" in capsys.readouterr().out

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in RULE_CODES:
            assert code in out
