"""Fast-path building blocks: power table, thermal buffers, profile
storage, the SectionTimer/bench harness and the satellite APIs.

Everything here guards the PR's core claim — the optimized tick loop is
*bit-identical* to the seed arithmetic — plus the new perf tooling.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import PlatformConfig
from repro.perf import SectionTimer, bench
from repro.power.dynamic import dynamic_power_w
from repro.power.leakage import leakage_power_w
from repro.power.opp import OppLadder
from repro.power.table import PowerTable
from repro.sched.affinity import AffinityMapping, mapping_by_name
from repro.sched.governors import make_governor
from repro.soc.simulator import Simulation
from repro.thermal.floorplan import Floorplan
from repro.thermal.profile import ThermalProfile
from repro.thermal.rc_model import RCThermalModel
from repro.workloads.alpbench import make_application

PLATFORM = PlatformConfig()
LADDER = OppLadder(PLATFORM.opp_table)


# ----------------------------------------------------------------------
# Power table
# ----------------------------------------------------------------------


class TestPowerTable:
    def test_matches_free_functions_across_ladder_and_temperatures(self):
        """Exact (bitwise) agreement with the seed's free functions."""
        table = PowerTable(LADDER, PLATFORM.power)
        for point in LADDER.points:
            for activity in (0.0, 0.03, 0.25, 0.5, 0.85, 1.0):
                expected = dynamic_power_w(
                    activity, point.voltage_v, point.frequency_hz, PLATFORM.power
                )
                got = table.dynamic_power_w(point.frequency_hz, activity)
                assert got == expected  # exact, not approx
            for temp_c in np.linspace(20.0, 110.0, 19):
                expected = leakage_power_w(
                    float(temp_c), point.voltage_v, PLATFORM.power
                )
                got = table.leakage_power_w(point.frequency_hz, float(temp_c))
                assert got == expected

    def test_cached_coefficients_are_exact_identities(self):
        table = PowerTable(LADDER, PLATFORM.power)
        for entry in table.entries:
            # dynamic_coeff_w is the a=1 dynamic chain, exactly.
            assert entry.dynamic_coeff_w == dynamic_power_w(
                1.0, entry.voltage_v, entry.frequency_hz, PLATFORM.power
            )
            # leakage_scale_w is leakage at T where exp(t_leak*T) == 1.
            assert entry.leakage_scale_w == leakage_power_w(
                0.0, entry.voltage_v, PLATFORM.power
            )

    def test_uses_caller_frequency_like_the_seed_chip(self):
        """Tolerant (±1 Hz) lookups keep the caller's frequency in the chain."""
        table = PowerTable(LADDER, PLATFORM.power)
        point = LADDER.points[1]
        off_hz = point.frequency_hz + 0.5  # matches the same rung
        expected = dynamic_power_w(0.7, point.voltage_v, off_hz, PLATFORM.power)
        assert table.dynamic_power_w(off_hz, 0.7) == expected

    def test_unknown_frequency_raises_keyerror(self):
        table = PowerTable(LADDER, PLATFORM.power)
        with pytest.raises(KeyError):
            table.entry_for_hz(123.0)

    def test_activity_range_validated(self):
        table = PowerTable(LADDER, PLATFORM.power)
        with pytest.raises(ValueError):
            table.dynamic_power_w(LADDER.max_point.frequency_hz, 1.5)


# ----------------------------------------------------------------------
# Thermal fast path
# ----------------------------------------------------------------------


class TestThermalFastPath:
    def test_step_into_identical_to_checked_step(self):
        plan = Floorplan(
            num_cores=PLATFORM.num_cores, adjacency=PLATFORM.core_adjacency
        )
        checked = RCThermalModel(plan, PLATFORM.thermal, PLATFORM.dt)
        unchecked = RCThermalModel(plan, PLATFORM.thermal, PLATFORM.dt)
        rng = np.random.default_rng(5)
        for _ in range(500):
            powers = [float(p) for p in rng.uniform(0.0, 30.0, PLATFORM.num_cores)]
            spreader = float(rng.uniform(0.0, 5.0))
            checked.step(powers, spreader_power_w=spreader)
            unchecked._step_into(powers, spreader)
        assert np.array_equal(checked._temps, unchecked._temps)  # bitwise

    def test_step_still_validates(self):
        plan = Floorplan(
            num_cores=PLATFORM.num_cores, adjacency=PLATFORM.core_adjacency
        )
        model = RCThermalModel(plan, PLATFORM.thermal, PLATFORM.dt)
        with pytest.raises(ValueError):
            model.step([1.0])  # wrong length


class TestThermalProfile:
    def test_growth_past_initial_capacity(self):
        profile = ThermalProfile(2, 1.0)
        samples = [[float(i), float(i) * 0.5] for i in range(300)]
        for sample in samples:
            profile.append(sample)
        assert len(profile) == 300
        assert profile.core_series(0) == [s[0] for s in samples]
        assert profile.core_series(1) == [s[1] for s in samples]

    def test_as_array_layout_matches_seed(self):
        """(n_samples, n_cores), same as np.array(series_lists).T."""
        profile = ThermalProfile(3, 1.0)
        for i in range(70):  # crosses the initial 64-column capacity
            profile.append([i + 0.1, i + 0.2, i + 0.3])
        array = profile.as_array()
        expected = np.array(
            [profile.core_series(c) for c in range(3)]
        ).T
        assert array.shape == (70, 3)
        assert np.array_equal(array, expected)

    def test_extend_tail_window_on_grown_storage(self):
        profile = ThermalProfile(2, 0.5)
        other = ThermalProfile(2, 0.5)
        for i in range(150):
            other.append([float(i), 100.0 - i])
        profile.extend(other)
        profile.extend(other)  # forces growth past the copied capacity
        assert len(profile) == 300
        tail = profile.tail(10)
        assert len(tail) == 10
        assert tail.core_series(0) == [float(i) for i in range(140, 150)]
        window = profile.window(5.0, 10.0)  # samples 10..19 at 0.5 s
        assert len(window) == 10
        assert window.core_series(0)[0] == 10.0
        # The seed's `lst[-0:]` quirk: num_samples=0 means "everything".
        assert len(profile.tail(0)) == 300


# ----------------------------------------------------------------------
# SectionTimer + bench harness
# ----------------------------------------------------------------------


class TestSectionTimer:
    def test_lap_accumulates_and_orders_sections(self):
        timer = SectionTimer()
        mark = timer.now()
        timer.add("slow", 0.5)
        timer.add("fast", 0.1)
        mark = timer.lap("fast", mark)
        timer.count_tick()
        totals = timer.totals()
        assert list(totals)[0] == "slow"  # sorted descending by cost
        assert totals["fast"] >= 0.1
        assert timer.ticks == 1

    def test_fractions_sum_to_one(self):
        timer = SectionTimer()
        timer.add("a", 3.0)
        timer.add("b", 1.0)
        fractions = timer.fractions()
        assert fractions["a"] == pytest.approx(0.75)
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_reset(self):
        timer = SectionTimer()
        timer.add("a", 1.0)
        timer.count_tick()
        timer.reset()
        assert timer.totals() == {}
        assert timer.ticks == 0


class TestBenchHarness:
    def test_run_bench_report_shape(self):
        report = bench.run_bench(quick=True, ticks=40, repeats=1)
        assert report["label"] == "BENCH_PR3"
        assert set(report["workloads"]) == {w.key for w in bench.WORKLOADS}
        for entry in report["workloads"].values():
            assert entry["ticks_per_s"] > 0
            assert entry["speedup_vs_seed"] is not None
            assert "schedule" in entry["phase_seconds"]
        assert report["geomean_speedup_vs_seed"] is not None
        assert bench.format_report(report)  # renders without error

    def test_write_and_load_roundtrip(self, tmp_path):
        report = {"label": "BENCH_PR3", "workloads": {}}
        path = tmp_path / "bench.json"
        bench.write_report(report, str(path))
        assert bench.load_report(str(path)) == report

    def test_check_regression(self):
        baseline = {"workloads": {"a": {"ticks_per_s": 1000.0}}}
        fine = {"workloads": {"a": {"ticks_per_s": 800.0}}}
        slow = {"workloads": {"a": {"ticks_per_s": 600.0}}}
        missing = {"workloads": {"b": {"ticks_per_s": 1.0}}}
        assert bench.check_regression(fine, baseline) == []
        assert len(bench.check_regression(slow, baseline)) == 1
        # Benchmark-set drift is not a regression.
        assert bench.check_regression(missing, baseline) == []
        with pytest.raises(ValueError):
            bench.check_regression(fine, baseline, max_regression=1.0)

    def test_cli_flags_parse(self):
        from repro.cli import build_parser

        parser = build_parser()
        args = parser.parse_args(["bench", "--quick", "--check-against", "x.json"])
        assert args.quick and args.check_against == "x.json"
        args = parser.parse_args(["run", "tachyon", "--profile"])
        assert args.profile


# ----------------------------------------------------------------------
# Timed vs untimed trajectory identity
# ----------------------------------------------------------------------


def _quick_sim(seed: int) -> Simulation:
    app = make_application("mpeg_dec", seed=seed)
    sim = Simulation([app], governor="ondemand", seed=seed, max_time_s=None)
    sim.prepare()
    return sim


def test_attached_timer_does_not_change_the_trajectory():
    """Instrumentation must be observation-only: bitwise-equal outcomes."""
    untimed = _quick_sim(9)
    timed = _quick_sim(9)
    timer = SectionTimer()
    timed.attach_timer(timer)
    for _ in range(300):
        untimed.step()
        timed.step()
    assert np.array_equal(
        untimed.chip.core_temps_c(), timed.chip.core_temps_c()
    )
    assert untimed.chip.energy.dynamic_j == timed.chip.energy.dynamic_j
    assert untimed.chip.energy.static_j == timed.chip.energy.static_j
    assert timer.ticks == 300
    assert {"schedule", "app", "governor", "power", "thermal"} <= set(
        timer.totals()
    )


# ----------------------------------------------------------------------
# Satellite APIs: governor inheritance, mapping equality
# ----------------------------------------------------------------------


class TestGovernorInheritance:
    def test_adaptive_flags(self):
        assert make_governor("ondemand", LADDER, 4).adaptive
        assert make_governor("conservative", LADDER, 4).adaptive
        assert not make_governor("performance", LADDER, 4).adaptive
        assert not make_governor("powersave", LADDER, 4).adaptive
        assert not make_governor("userspace", LADDER, 4, 2.0e9).adaptive

    def test_inherit_frequencies(self):
        governor = make_governor("conservative", LADDER, 4)
        handover = [2.4e9, 2.0e9, 3.4e9, 1.6e9]
        governor.inherit_frequencies(handover)
        assert governor.frequencies() == handover
        with pytest.raises(ValueError):
            governor.inherit_frequencies([2.4e9])  # wrong length

    def test_governor_switch_inherits_running_clocks(self):
        sim = _quick_sim(2)
        for _ in range(50):
            sim.step()
        before = sim.governor.frequencies()
        sim.set_governor("conservative")
        assert sim.governor.name == "conservative"
        assert sim.governor.frequencies() == before


class TestMappingEquality:
    def test_equal_masks_equal_mappings(self):
        a = mapping_by_name("paired_2211")
        b = AffinityMapping("rebuilt elsewhere", a.masks)
        assert a == b  # the name is a label, not a constraint
        assert hash(a) == hash(b)
        assert a != mapping_by_name("spread_rr")
        assert a.__eq__(42) is NotImplemented

    def test_mapping_in_force_by_value(self):
        sim = _quick_sim(3)
        preset = mapping_by_name("cluster_2")
        sim.set_mapping(preset)
        rebuilt = AffinityMapping("supervisor retry", preset.masks)
        assert sim.mapping_in_force(rebuilt)
        assert not sim.mapping_in_force(mapping_by_name("spread_rr"))
        assert not sim.mapping_in_force(None)
        sim.set_mapping(None)
        assert sim.mapping_in_force(None)
        assert not sim.mapping_in_force(preset)
