"""CLI tests for ``repro audit`` plus the JSON report schema goldens.

The schema goldens freeze the *shape* (keys and value types, not
values) of the ``repro lint --json`` and ``repro audit --json``
documents, so accidental contract changes fail loudly.  Regenerate them
after an intentional schema change with::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_audit_cli.py

and commit the refreshed files together with the change.
"""

import difflib
import json
import os
import textwrap
from pathlib import Path

import pytest

from repro.cli import main
from repro.experiments.engine import (
    CLOSURE_DIGEST_ENV,
    ResultCache,
    workload_job,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
GOLDEN_DIR = Path(__file__).resolve().parent / "golden"

AUDIT_RULE_CODES = ("EQV001", "MUT001", "RED001", "IRR001")

#: One registered twin pair plus one MUT001 violation reachable from the
#: job executors — enough to exercise every CLI surface.
AUDIT_FIXTURE = {
    "sched/__init__.py": "",
    "sched/scheduler.py": """
    def pick(queue):
        return queue[0]
    """,
    "ensemble/__init__.py": "",
    "ensemble/sched.py": """
    def pick_batch(queues):
        return [q[0] for q in queues]
    """,
    "experiments/__init__.py": "",
    "experiments/runner.py": "import repro.util\n",
    "util.py": "REGISTRY = {}\n",
}


def write_fixture(root, files=AUDIT_FIXTURE):
    package = root / "repro"
    for relative, source in files.items():
        path = package / relative
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
    (package / "__init__.py").write_text("", encoding="utf-8")
    return package


class TestAuditCommand:
    def test_exits_zero_on_the_committed_tree(self, capsys, monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        assert main(["audit"]) == 0
        out = capsys.readouterr().out
        assert "closure:" in out
        assert "0 findings" in out

    def test_check_drift_passes_on_the_committed_tree(self, monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        assert main(["audit", "--check-drift"]) == 0

    def test_list_rules(self, capsys):
        assert main(["audit", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in AUDIT_RULE_CODES:
            assert code in out

    def test_unknown_rule_exits_2(self, tmp_path, capsys):
        package = write_fixture(tmp_path)
        assert main(["audit", "--root", str(package), "--rule", "NOPE999"]) == 2
        assert "NOPE999" in capsys.readouterr().out

    def test_findings_fail_then_fix_baseline_round_trip(self, tmp_path, capsys):
        package = write_fixture(tmp_path)
        baseline = tmp_path / "baseline.json"
        argv = ["audit", "--root", str(package), "--baseline", str(baseline)]
        assert main(argv) == 1
        assert "MUT001" in capsys.readouterr().out
        assert main(argv + ["--fix-baseline"]) == 0
        assert "rewritten" in capsys.readouterr().out
        # With the finding recorded, the same tree now audits clean.
        assert main(argv) == 0
        assert main(argv + ["--verbose"]) == 0
        assert "baselined" in capsys.readouterr().out

    def test_scalar_only_edit_is_caught_end_to_end(self, tmp_path, capsys):
        package = write_fixture(tmp_path)
        baseline = tmp_path / "baseline.json"
        argv = ["audit", "--root", str(package), "--baseline", str(baseline)]
        assert main(argv + ["--fix-baseline"]) == 0
        capsys.readouterr()
        (package / "sched" / "scheduler.py").write_text(
            "def pick(queue):\n    return queue[-1]\n", encoding="utf-8"
        )
        assert main(argv) == 1
        out = capsys.readouterr().out
        assert "EQV001" in out
        assert "repro.ensemble.sched" in out

    def test_check_drift_fails_after_behavior_edit(self, tmp_path, capsys):
        package = write_fixture(tmp_path)
        baseline = tmp_path / "baseline.json"
        argv = ["audit", "--root", str(package), "--baseline", str(baseline)]
        assert main(argv + ["--fix-baseline"]) == 0
        capsys.readouterr()
        # An immutable rewrite: the MUT001 finding disappears, but the
        # closure digest moves — only --check-drift turns that into a
        # failure.
        (package / "util.py").write_text("REGISTRY = ()\n", encoding="utf-8")
        assert main(argv) == 0
        assert main(argv + ["--check-drift"]) == 1
        assert "drifted" in capsys.readouterr().out

    def test_show_closure_prints_the_fingerprint_table(self, tmp_path, capsys):
        package = write_fixture(tmp_path)
        baseline = tmp_path / "baseline.json"
        assert (
            main(
                [
                    "audit",
                    "--root",
                    str(package),
                    "--baseline",
                    str(baseline),
                    "--show-closure",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "repro.util" in out
        assert "digest:" in out


class TestExplain:
    @pytest.fixture
    def cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        monkeypatch.setenv(CLOSURE_DIGEST_ENV, "a" * 64)
        return ResultCache()

    @pytest.fixture
    def spec(self):
        return workload_job("mpeg_dec", policy="proposed")

    def test_fresh_entry(self, cache, spec, capsys):
        cache.put(spec, {"ok": True})
        key = cache.key_for(spec)
        assert main(["audit", "--explain", key[:12]]) == 0
        out = capsys.readouterr().out
        assert "FRESH" in out
        assert key in out

    def test_stale_after_closure_change(self, cache, spec, capsys, monkeypatch):
        cache.put(spec, {"ok": True})
        key = cache.key_for(spec)
        monkeypatch.setenv(CLOSURE_DIGEST_ENV, "b" * 64)
        assert main(["audit", "--explain", key[:12]]) == 0
        out = capsys.readouterr().out
        assert "STALE" in out
        assert "behavior closure changed" in out

    def test_stale_after_version_change(self, tmp_path, spec, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        monkeypatch.setenv(CLOSURE_DIGEST_ENV, "a" * 64)
        old = ResultCache(version="0.0.0-ancient")
        old.put(spec, {"ok": True})
        assert main(["audit", "--explain", old.key_for(spec)[:12]]) == 0
        out = capsys.readouterr().out
        assert "STALE" in out
        assert "version changed" in out

    def test_short_prefix_and_no_match(self, cache, spec, capsys):
        assert main(["audit", "--explain", "abc"]) == 0
        assert "too short" in capsys.readouterr().out
        assert main(["audit", "--explain", "0" * 16]) == 0
        assert "no cache entry" in capsys.readouterr().out


# ---------------------------------------------------------------------------
# JSON report schema goldens
# ---------------------------------------------------------------------------


def schema_skeleton(value):
    """Reduce a JSON document to its shape: keys kept, values -> type names.

    Lists keep one skeleton per distinct element shape, so a list of
    uniform finding objects collapses to a single entry.
    """
    if isinstance(value, dict):
        return {key: schema_skeleton(value[key]) for key in sorted(value)}
    if isinstance(value, list):
        shapes = []
        for element in value:
            shape = schema_skeleton(element)
            if shape not in shapes:
                shapes.append(shape)
        return shapes
    if value is None:
        return "null"
    if isinstance(value, bool):
        return "bool"
    if isinstance(value, int):
        return "int"
    if isinstance(value, float):
        return "float"
    return "str"


def check_schema_golden(name, document):
    text = json.dumps(schema_skeleton(document), indent=2, sort_keys=True) + "\n"
    golden_path = GOLDEN_DIR / name

    if os.environ.get("REPRO_REGEN_GOLDEN"):
        GOLDEN_DIR.mkdir(exist_ok=True)
        golden_path.write_text(text)
        pytest.skip(f"regenerated {golden_path}")

    assert golden_path.exists(), (
        f"missing golden file {golden_path}; generate it with "
        "REPRO_REGEN_GOLDEN=1 pytest tests/test_audit_cli.py"
    )
    golden = golden_path.read_text()
    if text != golden:
        diff = "".join(
            difflib.unified_diff(
                golden.splitlines(keepends=True),
                text.splitlines(keepends=True),
                fromfile=f"golden/{name}",
                tofile=f"current {name}",
            )
        )
        pytest.fail(
            f"JSON report schema drifted from golden/{name}:\n{diff}\n"
            "If the change is intentional, regenerate the goldens with "
            "REPRO_REGEN_GOLDEN=1 and bump the report schema version."
        )


class TestJsonSchemas:
    def test_lint_json_schema(self, tmp_path, capsys):
        # A tree with a real finding, so the per-finding shape is frozen
        # too (an empty findings list would freeze nothing).
        root = tmp_path / "repro" / "soc"
        root.mkdir(parents=True)
        (root / "bad.py").write_text("import time\nNOW = time.time()\n")
        assert main(["lint", str(tmp_path / "repro"), "--json"]) == 1
        document = json.loads(capsys.readouterr().out)
        assert document["findings"]
        check_schema_golden("lint_json_schema.json", document)

    def test_audit_json_schema(self, tmp_path, capsys):
        package = write_fixture(tmp_path)
        assert (
            main(
                [
                    "audit",
                    "--root",
                    str(package),
                    "--baseline",
                    str(tmp_path / "absent.json"),
                    "--json",
                ]
            )
            == 1
        )
        document = json.loads(capsys.readouterr().out)
        assert document["findings"]
        assert document["pairs"]
        check_schema_golden("audit_json_schema.json", document)
