"""Tests for stress (Eq. 6), aging (Eq. 1), Coffin-Manson (Eq. 3) and
Miner's rule (Eqs. 4-5)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import default_reliability_config
from repro.reliability.aging import aging_rate, mean_aging_rate, thermal_aging
from repro.reliability.coffin_manson import cycles_to_failure
from repro.reliability.miner import effective_cycles_to_failure, miner_mttf_seconds
from repro.reliability.rainflow import ThermalCycle, count_cycles
from repro.reliability.stress import cycle_stress, thermal_stress

REL = default_reliability_config()


def make_cycle(amplitude, max_c=55.0, count=1.0):
    return ThermalCycle(amplitude_k=amplitude, mean_c=max_c - amplitude / 2, max_c=max_c, count=count)


# ---------------------------------------------------------------------------
# Stress (Eq. 6)
# ---------------------------------------------------------------------------


def test_elastic_cycle_has_zero_stress():
    cycle = make_cycle(REL.elastic_threshold_k * 0.9)
    assert cycle_stress(cycle, REL) == 0.0


def test_stress_grows_with_amplitude():
    small = cycle_stress(make_cycle(5.0), REL)
    large = cycle_stress(make_cycle(10.0), REL)
    assert large > small > 0.0


def test_stress_grows_with_max_temperature():
    cold = cycle_stress(make_cycle(10.0, max_c=40.0), REL)
    hot = cycle_stress(make_cycle(10.0, max_c=80.0), REL)
    assert hot > cold


def test_half_cycle_counts_half_stress():
    full = cycle_stress(make_cycle(10.0, count=1.0), REL)
    half = cycle_stress(make_cycle(10.0, count=0.5), REL)
    assert half == pytest.approx(full / 2)


def test_thermal_stress_accepts_series_or_cycles():
    series = [40.0, 50.0] * 10 + [40.0]
    from_series = thermal_stress(series, REL)
    from_cycles = thermal_stress(count_cycles(series), REL)
    assert from_series == pytest.approx(from_cycles)
    assert from_series > 0.0


def test_thermal_stress_of_constant_series_is_zero():
    assert thermal_stress([45.0] * 50, REL) == 0.0


@given(st.floats(min_value=0.0, max_value=60.0), st.floats(min_value=30.0, max_value=100.0))
@settings(max_examples=100, deadline=None)
def test_stress_nonnegative(amplitude, max_c):
    assert cycle_stress(make_cycle(amplitude, max_c=max_c), REL) >= 0.0


# ---------------------------------------------------------------------------
# Aging (Eq. 1)
# ---------------------------------------------------------------------------


def test_aging_rate_is_one_at_reference():
    assert aging_rate(REL.reference_temp_c, REL) == pytest.approx(1.0)


def test_aging_rate_monotone_in_temperature():
    rates = [aging_rate(t, REL) for t in (30.0, 40.0, 50.0, 60.0, 70.0)]
    assert all(b > a for a, b in zip(rates, rates[1:]))


def test_aging_rate_arrhenius_magnitude():
    # With Ea = 0.7 eV the rate roughly doubles every ~8-10 K near 40 C.
    ratio = aging_rate(44.0, REL) / aging_rate(35.0, REL)
    assert 1.5 < ratio < 3.5


def test_mean_aging_rate_weights_hot_samples():
    steady = mean_aging_rate([50.0] * 10, REL)
    spiky = mean_aging_rate([40.0] * 9 + [80.0], REL)
    assert spiky > mean_aging_rate([44.0] * 10, REL)
    assert steady > 1.0


def test_mean_aging_rate_of_empty_profile():
    assert mean_aging_rate([], REL) == 1.0


def test_thermal_aging_scales_with_anchor():
    a1 = thermal_aging([50.0] * 10, REL, alpha_ref_seconds=1e8)
    a2 = thermal_aging([50.0] * 10, REL, alpha_ref_seconds=2e8)
    assert a1 == pytest.approx(2 * a2)


# ---------------------------------------------------------------------------
# Coffin-Manson (Eq. 3) and Miner (Eqs. 4-5)
# ---------------------------------------------------------------------------


def test_cycles_to_failure_infinite_for_elastic():
    assert math.isinf(cycles_to_failure(make_cycle(0.5), REL))


def test_cycles_to_failure_decreases_with_amplitude():
    n_small = cycles_to_failure(make_cycle(5.0), REL)
    n_large = cycles_to_failure(make_cycle(15.0), REL)
    assert n_large < n_small


def test_cycles_to_failure_decreases_with_temperature():
    n_cold = cycles_to_failure(make_cycle(10.0, max_c=40.0), REL)
    n_hot = cycles_to_failure(make_cycle(10.0, max_c=80.0), REL)
    assert n_hot < n_cold


def test_miner_harmonic_mean_between_extremes():
    cycles = [make_cycle(5.0), make_cycle(15.0)]
    n_eff = effective_cycles_to_failure(cycles, REL)
    n_vals = [cycles_to_failure(c, REL) for c in cycles]
    assert min(n_vals) <= n_eff <= max(n_vals)
    # The harmonic mean leans toward the damaging cycle.
    assert n_eff < sum(n_vals) / 2


def test_miner_all_elastic_is_infinite():
    cycles = [make_cycle(0.5), make_cycle(0.8)]
    assert math.isinf(effective_cycles_to_failure(cycles, REL))
    assert math.isinf(miner_mttf_seconds(cycles, 100.0, REL))


def test_miner_mttf_scales_with_observation_time():
    cycles = [make_cycle(10.0) for _ in range(10)]
    short = miner_mttf_seconds(cycles, 100.0, REL)
    long = miner_mttf_seconds(cycles, 200.0, REL)
    assert long == pytest.approx(2 * short)


def test_miner_equals_collapsed_form():
    """Eqs. 3-5 collapse to MTTF = ATC * time / stress (Section 4.2)."""
    from repro.reliability.mttf import resolved_atc

    cycles = [make_cycle(8.0), make_cycle(12.0, max_c=70.0), make_cycle(4.0, count=0.5)]
    total_time = 300.0
    mttf = miner_mttf_seconds(cycles, total_time, REL)
    stress = thermal_stress(cycles, REL)
    assert mttf == pytest.approx(resolved_atc(REL) * total_time / stress)


@given(
    st.lists(
        st.tuples(
            st.floats(min_value=3.0, max_value=40.0),
            st.floats(min_value=35.0, max_value=95.0),
        ),
        min_size=1,
        max_size=30,
    )
)
@settings(max_examples=100, deadline=None)
def test_miner_identity_property(cycle_specs):
    """The Miner/collapsed-form identity holds for arbitrary cycles."""
    from repro.reliability.mttf import resolved_atc

    cycles = [make_cycle(a, max_c=t) for a, t in cycle_specs]
    mttf = miner_mttf_seconds(cycles, 500.0, REL)
    stress = thermal_stress(cycles, REL)
    assert mttf == pytest.approx(resolved_atc(REL) * 500.0 / stress, rel=1e-9)
