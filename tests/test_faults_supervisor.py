"""Tests for sensor sanitisation and supervised actuation.

The property-style tests pin down the supervisor's contract: whatever
fault schedule hits the sensor path, the filtered output is finite and
inside the sensor's ``[min_c, max_c]`` range, and a failed actuation is
retried at most ``max_retries`` times before the deadline forces the
thermal-emergency safe state.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import SensorConfig, SupervisorConfig
from repro.faults import ActuationSupervisor, SensorSupervisor

SENSOR = SensorConfig()


def supervisor(**kwargs):
    config = SupervisorConfig(enabled=True, **kwargs)
    return SensorSupervisor(config, SENSOR, num_cores=4)


# ---------------------------------------------------------------------------
# SensorSupervisor — property: output always finite and in range
# ---------------------------------------------------------------------------


@given(
    st.lists(
        st.lists(
            st.floats(allow_nan=True, allow_infinity=True, width=32),
            min_size=4,
            max_size=4,
        ),
        min_size=1,
        max_size=30,
    )
)
@settings(max_examples=60, deadline=None)
def test_filter_output_always_finite_and_in_range(schedule):
    sup = supervisor()
    for step, readings in enumerate(schedule):
        out = sup.filter(float(step), readings)
        assert np.all(np.isfinite(out))
        assert np.all(out >= SENSOR.min_c)
        assert np.all(out <= SENSOR.max_c)


def test_all_nan_from_first_sample_fails_hot():
    sup = supervisor()
    out = sup.filter(0.0, [np.nan] * 4)
    assert np.all(out == SENSOR.max_c)
    assert sup.stats()["sensor_failsafe_fallbacks"] == 4.0


# ---------------------------------------------------------------------------
# SensorSupervisor — individual checks and fallbacks
# ---------------------------------------------------------------------------


def test_clean_readings_pass_through():
    sup = supervisor()
    clean = [50.0, 51.0, 52.0, 53.0]
    assert np.array_equal(sup.filter(0.0, clean), clean)
    stats = sup.stats()
    assert stats["sensor_median_fallbacks"] == 0.0
    assert stats["sensor_hold_fallbacks"] == 0.0


def test_dropout_replaced_by_healthy_median():
    sup = supervisor()
    out = sup.filter(0.0, [50.0, 51.0, 52.0, np.nan])
    assert out[3] == pytest.approx(51.0)
    assert sup.stats()["sensor_median_fallbacks"] == 1.0


def test_out_of_range_reading_blocked():
    sup = supervisor()
    out = sup.filter(0.0, [50.0, 51.0, 52.0, 300.0])
    assert out[3] == pytest.approx(51.0)
    assert sup.stats()["sensor_range_blocked"] == 1.0


def test_all_bad_holds_last_good_vector():
    sup = supervisor()
    good = sup.filter(0.0, [50.0, 51.0, 52.0, 53.0])
    held = sup.filter(1.0, [np.nan] * 4)
    assert np.array_equal(held, good)
    assert sup.stats()["sensor_hold_fallbacks"] == 4.0


def test_rate_of_change_spike_blocked():
    sup = supervisor(max_rate_c_per_s=25.0)
    sup.filter(0.0, [50.0, 50.0, 50.0, 50.0])
    out = sup.filter(1.0, [90.0, 51.0, 51.0, 51.0])  # +40 degC in 1 s
    assert out[0] == pytest.approx(51.0)
    assert sup.stats()["sensor_rate_blocked"] == 1.0


def test_stuck_sensor_detected_and_replaced():
    sup = supervisor(stuck_window=3, stuck_delta_c=3.0)
    blocked = 0
    for step in range(8):
        moving = 50.0 + 4.0 * step
        out = sup.filter(float(step), [moving, moving, moving, 50.0])
        if sup.stats()["sensor_stuck_blocked"] > blocked:
            blocked = sup.stats()["sensor_stuck_blocked"]
            assert out[3] == pytest.approx(moving)
    assert blocked > 0


def test_steady_chip_not_flagged_as_stuck():
    """Genuinely steady quantised readings repeat on every core; the
    cross-core confirmation must keep them from being rejected."""
    sup = supervisor(stuck_window=3)
    for step in range(10):
        out = sup.filter(float(step), [50.0, 50.0, 50.0, 50.0])
        assert np.array_equal(out, [50.0] * 4)
    assert sup.stats()["sensor_stuck_blocked"] == 0.0


def test_reset_forgets_filter_state():
    sup = supervisor()
    sup.filter(0.0, [50.0] * 4)
    sup.reset()
    # With no last-good vector the all-bad case fails hot again.
    assert np.all(sup.filter(0.0, [np.nan] * 4) == SENSOR.max_c)
    assert sup.stats()["sensor_reads"] == 1.0


def test_filter_wrong_width_rejected():
    with pytest.raises(ValueError):
        supervisor().filter(0.0, [50.0, 51.0])


# ---------------------------------------------------------------------------
# ActuationSupervisor — bounded retry, deadline, emergency
# ---------------------------------------------------------------------------


class FakeSim:
    """Actuation endpoint whose transitions fail until told otherwise."""

    def __init__(self, failing=True):
        self.now = 0.0
        self.obs = None
        self.failing = failing
        self.governor_calls = 0
        self.mapping_calls = 0
        self.engaged = 0
        self.released = 0
        self._governor_state = None

    def _actuate_governor(self, name, hz):
        self.governor_calls += 1
        if self.failing:
            return False
        self._governor_state = (name, hz)
        return True

    def governor_in_force(self, name, hz=None):
        return self._governor_state == (name, hz)

    def _actuate_mapping(self, mapping):
        self.mapping_calls += 1
        return not self.failing

    def mapping_in_force(self, mapping):
        return not self.failing

    def _engage_thermal_emergency(self):
        self.engaged += 1

    def _release_thermal_emergency(self):
        self.released += 1


def actuation(sim_failing=True, **kwargs):
    config = SupervisorConfig(enabled=True, **kwargs)
    sensors = SensorSupervisor(config, SENSOR, num_cores=4)
    return ActuationSupervisor(config, sensors), FakeSim(failing=sim_failing)


def test_successful_request_needs_one_attempt():
    sup, sim = actuation(sim_failing=False)
    sup.request_governor(sim, "powersave", None)
    assert sim.governor_calls == 1
    assert sup.stats(sim.now)["actuation_failures_detected"] == 0.0


@given(st.floats(min_value=0.01, max_value=0.5), st.integers(min_value=0, max_value=5))
@settings(max_examples=25, deadline=None)
def test_retry_terminates_within_bound(backoff, max_retries):
    """However the clock advances, a permanently failing actuation is
    attempted exactly ``1 + max_retries`` times, then abandoned."""
    sup, sim = actuation(
        retry_backoff_s=backoff, max_retries=max_retries, fault_deadline_s=1e9
    )
    sup.request_governor(sim, "powersave", None)
    for _ in range(200):
        sim.now += backoff
        sup.on_tick(sim)
    assert sim.governor_calls == 1 + max_retries
    stats = sup.stats(sim.now)
    assert stats["actuation_abandoned"] == 1.0
    assert stats["emergencies"] == 0.0  # deadline far away


def test_backoff_doubles_between_retries():
    sup, sim = actuation(retry_backoff_s=1.0, max_retries=3, fault_deadline_s=1e9)
    sup.request_governor(sim, "powersave", None)
    attempt_times = []
    calls = sim.governor_calls
    for _ in range(200):
        sim.now += 0.25
        sup.on_tick(sim)
        if sim.governor_calls > calls:
            calls = sim.governor_calls
            attempt_times.append(sim.now)
    # First retry after ~1 s, then ~2 s, then ~4 s gaps.
    gaps = np.diff([0.0] + attempt_times)
    assert len(attempt_times) == 3
    assert np.all(np.diff(gaps) > 0)  # strictly growing backoff


def test_deadline_forces_emergency():
    sup, sim = actuation(fault_deadline_s=2.0, max_retries=50, retry_backoff_s=0.5)
    sup.request_governor(sim, "powersave", None)
    for _ in range(40):
        sim.now += 0.25
        sup.on_tick(sim)
    assert sim.engaged == 1
    assert sup.stats(sim.now)["emergencies"] == 1.0
    assert sup.stats(sim.now)["emergency_active"] == 1.0


def test_critical_temperature_engages_and_release_restores():
    sup, sim = actuation(
        sim_failing=False, critical_temp_c=90.0, emergency_release_c=70.0
    )
    sup.request_governor(sim, "userspace", 3.4e9)
    assert sim.governor_calls == 1

    sup.sensors.filter(0.0, [95.0] * 4)  # above critical
    sup.on_tick(sim)
    assert sim.engaged == 1

    # Requests during the emergency are deferred, not actuated.
    sup.request_governor(sim, "userspace", 2.0e9)
    assert sim.governor_calls == 1
    assert sup.stats(sim.now)["actuation_deferred"] == 1.0

    # Cool down within the plausible slew rate (25 degC/s) so the
    # readings themselves pass sanitisation.
    sup.sensors.filter(1.0, [75.0] * 4)
    sim.now = 1.0
    sup.on_tick(sim)
    assert sim.released == 0  # still above the release threshold

    sup.sensors.filter(2.0, [60.0] * 4)  # below release
    sim.now = 2.0
    sup.on_tick(sim)
    assert sim.released == 1
    # The deferred request is re-applied through the normal path.
    assert sim.governor_calls == 2
    assert sim.governor_in_force("userspace", 2.0e9)
    assert sup.stats(sim.now)["emergency_time_s"] == pytest.approx(2.0)
