"""Tests for the configuration dataclasses."""

import dataclasses

import pytest

from repro.config import (
    FaultConfig,
    OperatingPoint,
    PlatformConfig,
    SensorConfig,
    SupervisorConfig,
    default_agent_config,
    default_opp_table,
    default_platform_config,
    default_reliability_config,
)


def test_opp_table_sorted_and_positive():
    table = default_opp_table()
    frequencies = [p.frequency_hz for p in table]
    assert frequencies == sorted(frequencies)
    assert all(p.voltage_v > 0 for p in table)


def test_opp_voltage_monotone_in_frequency():
    table = default_opp_table()
    voltages = [p.voltage_v for p in table]
    assert voltages == sorted(voltages)


def test_platform_min_max_frequency():
    platform = default_platform_config()
    assert platform.min_frequency() == 1.6e9
    assert platform.max_frequency() == 3.4e9


def test_platform_frequencies_ascending():
    platform = default_platform_config()
    freqs = platform.frequencies()
    assert freqs == sorted(freqs)
    assert len(freqs) == 6


def test_voltage_for_known_point():
    platform = default_platform_config()
    assert platform.voltage_for(3.4e9) == pytest.approx(1.100)


def test_voltage_for_unknown_point_raises():
    platform = default_platform_config()
    with pytest.raises(KeyError):
        platform.voltage_for(9.9e9)


def test_configs_are_frozen():
    platform = default_platform_config()
    with pytest.raises(dataclasses.FrozenInstanceError):
        platform.num_cores = 8  # type: ignore[misc]


def test_agent_config_defaults_match_paper_design_point():
    config = default_agent_config()
    assert config.sampling_interval_s == pytest.approx(3.0)
    assert config.decision_epoch_s == pytest.approx(30.0)
    # The decision epoch is a multiple of the sampling interval.
    ratio = config.decision_epoch_s / config.sampling_interval_s
    assert ratio == pytest.approx(round(ratio))


def test_reliability_anchor_is_ten_years():
    reliability = default_reliability_config()
    assert reliability.baseline_mttf_years == pytest.approx(10.0)


def test_reliability_auto_calibrated_atc():
    reliability = default_reliability_config()
    assert reliability.cycling_scale_atc is None  # auto-calibrate


def test_platform_adjacency_within_range():
    platform = default_platform_config()
    for a, b in platform.core_adjacency:
        assert 0 <= a < platform.num_cores
        assert 0 <= b < platform.num_cores


def test_custom_opp_table():
    config = PlatformConfig(opp_table=(OperatingPoint(1e9, 0.8), OperatingPoint(2e9, 1.0)))
    assert config.max_frequency() == 2e9


@pytest.mark.parametrize(
    "kwargs, fragment",
    [
        ({"min_c": 100.0, "max_c": 50.0}, "sensor range is empty"),
        ({"quantisation_c": -1.0}, "quantisation_c"),
        ({"noise_std_c": -0.5}, "noise_std_c"),
        ({"ema_tau_s": -2.0}, "ema_tau_s"),
    ],
)
def test_sensor_config_rejects_invalid(kwargs, fragment):
    with pytest.raises(ValueError, match=fragment):
        SensorConfig(**kwargs)


def test_fault_config_disabled_by_default():
    config = FaultConfig()
    assert not config.enabled
    assert config.dropout_prob == 0.0


def test_fault_config_rejects_bad_probability():
    with pytest.raises(ValueError, match="dropout_prob"):
        FaultConfig(dropout_prob=1.5)
    with pytest.raises(ValueError, match="fail\\+noop"):
        FaultConfig(governor_fail_prob=0.8, governor_noop_prob=0.8)


def test_supervisor_config_disabled_by_default():
    config = SupervisorConfig()
    assert not config.enabled
    assert config.emergency_release_c < config.critical_temp_c


def test_supervisor_config_rejects_inverted_thresholds():
    with pytest.raises(ValueError, match="emergency_release_c"):
        SupervisorConfig(critical_temp_c=70.0, emergency_release_c=80.0)
