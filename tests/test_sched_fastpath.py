"""Randomized equivalence: fast-path scheduler vs the preserved seed one.

The production :class:`~repro.sched.scheduler.Scheduler` was rewritten
for throughput (incremental runnable counts, per-tick phase/core
snapshots, inlined execution); its contract is that every observable —
placements, migrations, CoreLoad values, runnable counts, the packing
EWMA and the thread states it mutates — is *identical* (exact float
equality, not approximate) to the seed implementation preserved in
``tests/_reference_scheduler.py``.  These tests drive both schedulers
with mirrored workloads through randomized scenarios: mapping changes,
frequency changes, stalls, barrier and work-queue applications.
"""

from __future__ import annotations

import random

import pytest

from tests._reference_scheduler import ReferenceScheduler
from repro.sched.affinity import MAPPING_ORDER, mapping_by_name
from repro.sched.scheduler import Scheduler
from repro.workloads.application import Application
from repro.workloads.thread_model import WorkloadSpec

FREQUENCIES_HZ = [1.6e9, 2.0e9, 2.4e9, 2.8e9, 3.4e9]
DT = 0.1
NUM_CORES = 4


def _make_spec(rng: random.Random) -> WorkloadSpec:
    """A randomized but well-formed workload description."""
    return WorkloadSpec(
        name="prop",
        dataset="prop",
        num_threads=rng.choice([1, 2, 4, 6, 7]),
        work_cycles=rng.choice([2e8, 8e8, 2e9]),
        work_jitter_sigma=rng.choice([0.0, 0.2, 0.5]),
        activity_high=rng.choice([0.6, 0.85, 1.0]),
        activity_low=rng.choice([0.05, 0.1]),
        sync_time_s=rng.choice([0.0, 0.2, 0.7]),
        iterations=rng.choice([3, 5, 8]),
        performance_constraint=1.0,
        barrier_sync=rng.random() < 0.5,
    )


def _mirrored_pair(spec: WorkloadSpec, seed: int):
    """Two independent (application, scheduler) stacks with equal RNGs."""
    stacks = []
    for scheduler_cls in (ReferenceScheduler, Scheduler):
        app = Application(spec, seed=seed)
        sched = scheduler_cls(NUM_CORES)
        sched.set_threads(app.threads)
        stacks.append((app, sched))
    return stacks


def _observables(app: Application, sched) -> dict:
    """Everything the scheduler is allowed to influence, exactly."""
    return {
        "cores": {t.thread_id: sched.core_of(t) for t in app.threads},
        "last_cores": {t.thread_id: t.last_core for t in app.threads},
        "phases": {t.thread_id: t.phase for t in app.threads},
        "remaining": {t.thread_id: t.remaining_cycles for t in app.threads},
        "iterations": {t.thread_id: t.iteration for t in app.threads},
        "runnable_counts": sched.runnable_counts(),
        "migrations": sched.perf.migrations,
        "executed_cycles": sched.perf.executed_cycles,
        "busy_ewma": sched.busy_ewma,
        "app_iterations": app.completed_iterations,
    }


@pytest.mark.parametrize("scenario_seed", range(12))
def test_fast_scheduler_matches_reference(scenario_seed: int) -> None:
    """Bit-identical trajectories through randomized scenarios."""
    rng = random.Random(1000 + scenario_seed)
    spec = _make_spec(rng)
    (ref_app, ref_sched), (fast_app, fast_sched) = _mirrored_pair(
        spec, seed=scenario_seed
    )

    frequencies = [rng.choice(FREQUENCIES_HZ) for _ in range(NUM_CORES)]
    for tick in range(400):
        if rng.random() < 0.04:
            frequencies = [rng.choice(FREQUENCIES_HZ) for _ in range(NUM_CORES)]
        if rng.random() < 0.03:
            name = rng.choice(MAPPING_ORDER)
            mapping = (
                None
                if name == "os_default" and rng.random() < 0.5
                else mapping_by_name(name, spec.num_threads)
            )
            ref_sched.set_mapping(mapping)
            fast_sched.set_mapping(mapping)
        if rng.random() < 0.05:
            stall = rng.choice([0.005, 0.025])
            ref_sched.stall_all(stall)
            fast_sched.stall_all(stall)

        ref_loads = ref_sched.tick(frequencies, DT)
        fast_loads = fast_sched.tick(frequencies, DT)
        ref_app.tick(DT)
        fast_app.tick(DT)

        # CoreLoad is a tuple subclass: == is exact element equality.
        assert fast_loads == ref_loads, f"loads diverged at tick {tick}"
        assert _observables(fast_app, fast_sched) == _observables(
            ref_app, ref_sched
        ), f"state diverged at tick {tick}"
        if ref_app.done and fast_app.done:
            break


def test_fast_scheduler_matches_reference_with_initial_mapping() -> None:
    """set_threads with a mapping places identically on both paths."""
    spec = _make_spec(random.Random(7))
    mapping = mapping_by_name("paired_2211", spec.num_threads)
    ref_app = Application(spec, seed=3)
    fast_app = Application(spec, seed=3)
    ref_sched = ReferenceScheduler(NUM_CORES)
    fast_sched = Scheduler(NUM_CORES)
    ref_sched.set_threads(ref_app.threads, mapping=mapping)
    fast_sched.set_threads(fast_app.threads, mapping=mapping)
    for _ in range(120):
        ref_loads = ref_sched.tick([2.4e9] * NUM_CORES, DT)
        fast_loads = fast_sched.tick([2.4e9] * NUM_CORES, DT)
        ref_app.tick(DT)
        fast_app.tick(DT)
        assert fast_loads == ref_loads
        assert _observables(fast_app, fast_sched) == _observables(
            ref_app, ref_sched
        )


def test_core_load_fields_and_type() -> None:
    """The fast path's CoreLoad construction preserves the public shape."""
    spec = WorkloadSpec(
        name="t", dataset="d", num_threads=2, work_cycles=1e8,
        work_jitter_sigma=0.0, activity_high=0.9, activity_low=0.1,
        sync_time_s=0.1, iterations=2, performance_constraint=1.0,
    )
    app = Application(spec, seed=0)
    sched = Scheduler(NUM_CORES)
    sched.set_threads(app.threads)
    loads = sched.tick([2.0e9] * NUM_CORES, DT)
    assert len(loads) == NUM_CORES
    for load in loads:
        assert type(load).__name__ == "CoreLoad"
        assert load.utilisation == load[0]
        assert load.activity == load[1]
        assert load.num_runnable == load[2]
        assert load.executed_cycles == load[3]
        assert 0.0 <= load.utilisation <= 1.0
        assert 0.0 <= load.activity <= 1.0
