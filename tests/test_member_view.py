"""Scalar-facade parity of :class:`repro.ensemble.member_view.MemberView`.

A manager driven by the ensemble engine sees a ``MemberView`` instead
of the real :class:`Simulation`.  These tests run a scalar simulation
and a single-member ensemble in lockstep and assert that everything the
manager (and, through it, a checkpoint capture) reads off the facade —
clock, current application, mapping, chip ladder, sensor readings — is
equal to the scalar object's, tick after tick; and that the facade's
actuation methods mutate the batched state exactly like the scalar
calls (verified bitwise through the final results).
"""

import numpy as np
import pytest

from repro.ensemble.engine import EnsembleSimulation
from repro.sched.affinity import AffinityMapping
from repro.soc.simulator import KNOWN_GOVERNORS

from tests.test_ensemble_equivalence import HALF, build_sim


def _lockstep_pair(app="mpeg_dec", policy="proposed", seed=21, **kwargs):
    """A scalar sim and an adopted single-member ensemble, both fresh."""
    scalar = build_sim(app, policy, seed, **kwargs)
    scalar.prepare()
    ensemble = EnsembleSimulation([build_sim(app, policy, seed, **kwargs)])
    ensemble.prepare()
    return scalar, ensemble


def _step_both(scalar, ensemble, ticks):
    for _ in range(ticks):
        scalar.step()
        ensemble.step()
        ensemble.advance()


class TestObservationParity:
    def test_static_surface_matches(self):
        scalar, ensemble = _lockstep_pair()
        view = ensemble.views[0]
        # Built from twin specs, not shared objects: compare by value.
        assert view.chip.ladder.points == scalar.chip.ladder.points
        assert view.obs is None
        assert view.mapping == scalar.mapping

    def test_clock_and_app_surface_track_the_scalar_run(self):
        scalar, ensemble = _lockstep_pair()
        view = ensemble.views[0]
        for _ in range(5):
            _step_both(scalar, ensemble, 37)
            assert view.now == scalar.now
            app = view.current_app
            assert app.name == scalar.current_app.name
            assert app.spec == scalar.current_app.spec
            assert (
                app.completed_iterations
                == scalar.current_app.completed_iterations
            )
            for window in (None, 1.0, 5.0):
                assert app.throughput(window) == scalar.current_app.throughput(
                    window
                )
                assert app.performance_satisfied(
                    window
                ) == scalar.current_app.performance_satisfied(window)

    def test_read_sensors_matches_bitwise_and_charges_the_same_cost(self):
        # Fault-free first: readings equal the clean scalar samples.
        scalar, ensemble = _lockstep_pair(app="tachyon", policy="linux")
        view = ensemble.views[0]
        _step_both(scalar, ensemble, 50)
        a = scalar.read_sensors()
        b = view.read_sensors()
        assert np.asarray(a).tobytes() == np.asarray(b).tobytes()
        assert scalar.perf.sample_events == int(
            ensemble.perf.sample_events[0]
        )
        # Both sides charged SAMPLE_OVERHEAD_S: stepping on stays equal.
        _step_both(scalar, ensemble, 50)
        assert view.now == scalar.now

    def test_read_sensors_matches_under_faults(self):
        from tests.test_ensemble_equivalence import FAULTS

        scalar, ensemble = _lockstep_pair(
            app="tachyon", policy="linux", faults=FAULTS
        )
        view = ensemble.views[0]
        _step_both(scalar, ensemble, 40)
        for _ in range(5):
            a = np.asarray(scalar.read_sensors())
            b = np.asarray(view.read_sensors())
            # NaN dropouts compare unequal; compare the raw bytes.
            assert a.tobytes() == b.tobytes()


class TestActuationParity:
    def test_set_governor_rejects_what_the_scalar_rejects(self):
        _, ensemble = _lockstep_pair()
        view = ensemble.views[0]
        with pytest.raises(ValueError, match="unknown governor"):
            view.set_governor("warp-speed")
        with pytest.raises(ValueError, match="explicit frequency"):
            view.set_governor("userspace")
        assert "ondemand" in KNOWN_GOVERNORS

    def test_set_mapping_validates_against_the_platform(self):
        _, ensemble = _lockstep_pair()
        view = ensemble.views[0]
        bad = AffinityMapping("wide", (frozenset({99}),))
        with pytest.raises(ValueError):
            view.set_mapping(bad)

    def test_identical_actuation_scripts_stay_bit_identical(self):
        """Drive the same actuation sequence through both facades; the
        thermal/energy/perf state they produce stays bitwise equal."""
        scalar, ensemble = _lockstep_pair(app="mpeg_enc", policy="linux")
        view = ensemble.views[0]
        script = [
            (40, lambda s: s.set_governor("powersave")),
            (40, lambda s: s.set_mapping(HALF)),
            (40, lambda s: s.charge_decision_overhead()),
            (40, lambda s: s.set_governor("userspace", 1.2e9)),
            (40, lambda s: s.set_mapping(None)),
            (40, lambda s: s.set_governor("ondemand")),
        ]
        for ticks, act in script:
            _step_both(scalar, ensemble, ticks)
            act(scalar)
            act(view)
            assert view.mapping == scalar.mapping
        # The actuation history feeds power, temperature and energy; if
        # any facade call diverged, these comparisons break bitwise.
        _step_both(scalar, ensemble, 120)
        assert view.now == scalar.now
        a = np.asarray(scalar.read_sensors())
        b = np.asarray(view.read_sensors())
        assert a.tobytes() == b.tobytes()
        assert float(ensemble.chip.dynamic_j[0]) == scalar.chip.energy.dynamic_j
        assert float(ensemble.chip.static_j[0]) == scalar.chip.energy.static_j
        app = view.current_app
        assert app.completed_iterations == scalar.current_app.completed_iterations
        assert app.throughput(None) == scalar.current_app.throughput(None)
