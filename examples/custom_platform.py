"""Run the thermal manager on a custom platform.

The library is not tied to the paper's quad-core: this example builds a
hotter, poorly-cooled variant of the platform (smaller heat spreader and
weaker heatsink — think a fanless mini-PC), gives the agent a custom
action space, and shows that the learned policy adapts to the different
thermal envelope.

Run with::

    python examples/custom_platform.py
"""

from dataclasses import replace

from repro.config import (
    PlatformConfig,
    ThermalConfig,
    default_agent_config,
    default_reliability_config,
)
from repro.core.actions import Action, ActionSpace
from repro.core.manager import ProposedThermalManager
from repro.soc.simulator import Simulation
from repro.units import ghz
from repro.workloads.alpbench import make_application


def fanless_platform() -> PlatformConfig:
    """A thermally constrained variant of the default quad-core."""
    return PlatformConfig(
        thermal=ThermalConfig(
            ambient_c=35.0,  # enclosed case
            spreader_to_ambient=0.7,  # weak passive heatsink
            spreader_capacitance=30.0,  # small spreader
        )
    )


def small_action_space() -> ActionSpace:
    """A minimal DVFS+mapping menu for the constrained platform."""
    return ActionSpace(
        [
            Action("os_default", "powersave"),
            Action("spread_rr", "userspace", ghz(2.0)),
            Action("spread_rr", "userspace", ghz(2.4)),
            Action("cluster_2", "userspace", ghz(1.6)),
        ]
    )


def main() -> None:
    platform = fanless_platform()
    reliability = default_reliability_config()
    app = make_application("tachyon", "set 2", seed=1)

    print("fanless platform, tachyon set 2\n")
    for label, manager in (
        ("linux ondemand", None),
        (
            "proposed (custom 4-action space)",
            ProposedThermalManager(
                default_agent_config(), reliability, small_action_space()
            ),
        ),
    ):
        sim = Simulation(
            [make_application("tachyon", "set 2", seed=1)],
            platform=platform,
            governor="ondemand",
            manager=manager,
            seed=1,
            max_time_s=20_000,
        )
        result = sim.run()
        report = result.reliability(reliability)
        print(
            f"{label:34s} avg={report['average_temp_c']:5.1f}C "
            f"peak={report['peak_temp_c']:5.1f}C "
            f"ageMTTF={report['aging_mttf_years']:5.2f}y "
            f"tcMTTF={report['cycling_mttf_years']:5.2f}y "
            f"exec={result.total_time_s:7.1f}s"
        )
    print(
        "\nOn the constrained platform the agent settles on lower"
        "\noperating points than it would on the desktop part — the same"
        "\nlibrary, a different learned policy."
    )


if __name__ == "__main__":
    main()
