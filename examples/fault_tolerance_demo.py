"""Fault tolerance: the RL manager on a glitchy platform.

Runs the mpeg_dec workload under the paper's Q-learning thermal manager
three times — on a healthy platform, on a platform with sensor and
actuation faults, and on the same faulty platform with the supervision
layer enabled — and compares lifetime, execution time and the
supervisor's repair counters.

Run with::

    python examples/fault_tolerance_demo.py
"""

from repro.config import default_agent_config, default_reliability_config
from repro.core.manager import ProposedThermalManager
from repro.faults import combined_fault_config, default_supervisor_config
from repro.soc.simulator import Simulation
from repro.workloads.alpbench import make_application


def run_once(faulty: bool, supervised: bool) -> dict:
    """Execute mpeg_dec to completion on one platform variant."""
    reliability = default_reliability_config()
    manager = ProposedThermalManager(default_agent_config(), reliability)
    sim = Simulation(
        [make_application("mpeg_dec", "clip 1", seed=1)],
        governor="ondemand",
        manager=manager,
        seed=1,
        max_time_s=10_000,
        faults=combined_fault_config() if faulty else None,
        supervisor=default_supervisor_config() if supervised else None,
    )
    result = sim.run()
    report = result.reliability(reliability)
    fixups = sum(
        result.supervisor_stats.get(key, 0.0)
        for key in (
            "sensor_median_fallbacks",
            "sensor_hold_fallbacks",
            "sensor_failsafe_fallbacks",
        )
    )
    return {
        "platform": (
            "faulty + supervisor"
            if faulty and supervised
            else "faulty, unsupervised"
            if faulty
            else "healthy"
        ),
        "execution_s": result.total_time_s,
        "peak_temp_c": report["peak_temp_c"],
        "cycling_mttf_y": report["cycling_mttf_years"],
        "aging_mttf_y": report["aging_mttf_years"],
        "injected_dropouts": result.fault_stats.get("dropouts", 0.0),
        "sensor_fixups": fixups,
        "emergencies": result.supervisor_stats.get("emergencies", 0.0),
    }


def main() -> None:
    rows = [
        run_once(faulty=False, supervised=False),
        run_once(faulty=True, supervised=False),
        run_once(faulty=True, supervised=True),
    ]
    for row in rows:
        print(f"{row['platform']}:")
        for key, value in row.items():
            if key == "platform":
                continue
            print(f"  {key:18s}: {value:10.2f}")
        print()


if __name__ == "__main__":
    main()
