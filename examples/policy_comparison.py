"""Compare every thermal-management policy on one workload.

Sweeps the full policy set of the paper's evaluation — Linux governors,
fixed userspace frequencies, the Ge & Qiu learning baseline, and the
proposed approach — on the tachyon renderer, and prints a Table 2/3/9
style comparison (temperature, MTTF, execution time, power/energy).

Run with::

    python examples/policy_comparison.py [app] [dataset]
"""

import sys

from repro.analysis.tables import format_table
from repro.experiments.runner import POLICIES, run_workload


def main() -> None:
    app = sys.argv[1] if len(sys.argv) > 1 else "tachyon"
    dataset = sys.argv[2] if len(sys.argv) > 2 else None

    rows = []
    for policy in POLICIES:
        print(f"running {app} under {policy} ...")
        summary = run_workload(app, dataset, policy, seed=1)
        rows.append(
            [
                policy,
                summary.average_temp_c,
                summary.peak_temp_c,
                summary.cycling_mttf_years,
                summary.aging_mttf_years,
                summary.execution_time_s,
                summary.average_dynamic_power_w,
                summary.dynamic_energy_j / 1e3,
            ]
        )
    print()
    print(
        format_table(
            [
                "policy",
                "avgT_C",
                "peakT_C",
                "tcMTTF_y",
                "ageMTTF_y",
                "exec_s",
                "Pdyn_W",
                "Edyn_kJ",
            ],
            rows,
            title=f"Policy comparison — {app}",
        )
    )


if __name__ == "__main__":
    main()
