"""Future-work extension: concurrent applications under one manager.

The paper's conclusion names concurrent applications as future work.
This example co-runs the mpeg decoder and encoder *simultaneously* (12
threads on 4 cores) under Linux and under the proposed manager, using
:class:`repro.extensions.concurrent.CompositeApplication`.

Run with::

    python examples/concurrent_applications.py
"""

from dataclasses import replace

from repro.config import default_agent_config, default_reliability_config
from repro.core.manager import ProposedThermalManager
from repro.extensions.concurrent import CompositeApplication
from repro.soc.simulator import Simulation
from repro.workloads.alpbench import make_application
from repro.workloads.application import Application


def make_pair(seed: int) -> CompositeApplication:
    """A decoder and an encoder sharing the chip."""
    apps = []
    for name, app_seed in (("mpeg_dec", seed), ("mpeg_enc", seed + 1)):
        app = make_application(name, seed=app_seed)
        apps.append(
            Application(
                replace(app.spec, iterations=app.spec.iterations // 2),
                metric=app.metric,
                seed=app_seed,
            )
        )
    return CompositeApplication(apps)


def main() -> None:
    reliability = default_reliability_config()
    print("co-running mpeg_dec + mpeg_enc (12 threads on 4 cores)\n")
    for label, manager in (
        ("linux ondemand", None),
        (
            "proposed manager",
            ProposedThermalManager(default_agent_config(), reliability),
        ),
    ):
        composite = make_pair(seed=1)
        sim = Simulation(
            [composite],
            governor="ondemand",
            manager=manager,
            seed=1,
            max_time_s=30_000,
        )
        result = sim.run()
        report = result.reliability(reliability)
        per_app = ", ".join(
            f"{name}: {iters} iters" for name, iters, _ in composite.per_app_records()
        )
        print(
            f"{label:18s} avg={report['average_temp_c']:5.1f}C "
            f"tcMTTF={report['cycling_mttf_years']:5.2f}y "
            f"ageMTTF={report['aging_mttf_years']:5.2f}y "
            f"exec={result.total_time_s:7.1f}s  ({per_app})"
        )
    print(
        "\nThe manager treats the multi-programmed mix as one workload:"
        "\nits affinity actions partition the co-runners across the die"
        "\nand its reward sees the constraint-normalised joint throughput."
    )


if __name__ == "__main__":
    main()
