"""Quickstart: run one workload under Linux and under the RL manager.

This is the smallest end-to-end use of the library: build the simulated
quad-core platform, execute the mpeg_dec workload under Linux's
``ondemand`` governor and under the paper's Q-learning thermal manager,
and compare temperature, lifetime and energy.

Run with::

    python examples/quickstart.py
"""

from repro.config import default_agent_config, default_reliability_config
from repro.core.manager import ProposedThermalManager
from repro.soc.simulator import Simulation
from repro.workloads.alpbench import make_application


def run_once(use_manager: bool) -> dict:
    """Execute mpeg_dec to completion and summarise the run."""
    reliability = default_reliability_config()
    manager = (
        ProposedThermalManager(default_agent_config(), reliability)
        if use_manager
        else None
    )
    sim = Simulation(
        [make_application("mpeg_dec", "clip 1", seed=1)],
        governor="ondemand",
        manager=manager,
        seed=1,
        max_time_s=10_000,
    )
    result = sim.run()
    report = result.reliability(reliability)
    return {
        "policy": "proposed RL manager" if use_manager else "linux ondemand",
        "execution_s": result.total_time_s,
        "avg_temp_c": report["average_temp_c"],
        "peak_temp_c": report["peak_temp_c"],
        "cycling_mttf_y": report["cycling_mttf_years"],
        "aging_mttf_y": report["aging_mttf_years"],
        "dynamic_energy_kj": result.energy.dynamic_j / 1e3,
    }


def main() -> None:
    print("Running mpeg_dec (clip 1) on the simulated quad-core platform...\n")
    rows = [run_once(use_manager=False), run_once(use_manager=True)]
    keys = list(rows[0].keys())
    width = max(len(k) for k in keys)
    for key in keys:
        cells = []
        for row in rows:
            value = row[key]
            cells.append(f"{value:12.2f}" if isinstance(value, float) else f"{value:>20}")
        print(f"{key:<{width}} : " + " | ".join(cells))
    print(
        "\nThe managed run trades a little execution time for a visibly"
        "\ncooler, less-cycling profile and a longer MTTF."
    )


if __name__ == "__main__":
    main()
