"""Watch the agent detect an application switch autonomously.

Runs the ``mpegdec-tachyon`` inter-application scenario of Figure 3
under the proposed manager and logs every decision epoch: the normalised
stress/aging observation, the learning phase, and any intra/inter
variation events.  The interesting moment is the switch from the cool,
cycling mpeg decoder to the hot tachyon renderer — the moving-average
detector classifies it as an inter-application variation and the agent
re-learns, with no signal from the application layer.

Run with::

    python examples/inter_application_switching.py
"""

from repro.config import default_agent_config, default_reliability_config
from repro.core.manager import ProposedThermalManager
from repro.soc.simulator import Simulation
from repro.workloads.scenarios import scenario_applications


def main() -> None:
    reliability = default_reliability_config()
    manager = ProposedThermalManager(default_agent_config(), reliability)
    applications = scenario_applications(("mpeg_dec", "tachyon"), seed=1)
    sim = Simulation(
        applications,
        governor="ondemand",
        manager=manager,
        seed=1,
        max_time_s=30_000,
    )

    # Wrap the agent's decide() to narrate each decision epoch.
    agent = manager.agent
    original_decide = agent.decide
    last_events = {"inter": 0, "intra": 0}

    def narrated_decide(performance, constraint):
        index = original_decide(performance, constraint)
        obs = agent.last_observation
        marker = ""
        if agent.stats.inter_events > last_events["inter"]:
            marker = "  <<< INTER-APPLICATION VARIATION: re-learning"
            last_events["inter"] = agent.stats.inter_events
        elif agent.stats.intra_events > last_events["intra"]:
            marker = "  <<< intra-application variation: snapshot restored"
            last_events["intra"] = agent.stats.intra_events
        print(
            f"t={sim.now:7.1f}s app={sim.current_app.name:9s} "
            f"phase={agent.phase.value:26s} "
            f"stress={obs.stress_norm:4.2f} aging={obs.aging_norm:4.2f} "
            f"action={agent.actions[index].label}{marker}"
        )
        return index

    agent.decide = narrated_decide
    result = sim.run()

    print("\nscenario finished:")
    for record in result.app_records:
        print(
            f"  {record.name:9s} executed in {record.execution_time_s:7.1f}s "
            f"({record.completed_iterations} iterations)"
        )
    report = result.reliability(reliability)
    print(
        f"\nwhole-scenario thermal profile: avg {report['average_temp_c']:.1f} C, "
        f"cycling MTTF {report['cycling_mttf_years']:.2f} y, "
        f"aging MTTF {report['aging_mttf_years']:.2f} y"
    )
    print(
        f"agent events: {agent.stats.inter_events:.0f} inter, "
        f"{agent.stats.intra_events:.0f} intra, {agent.stats.epochs} epochs"
    )


if __name__ == "__main__":
    main()
