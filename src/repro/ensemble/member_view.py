"""Per-member control-plane views.

Thermal managers (the learning agents and baselines) stay *scalar*
objects in the ensemble engine: each member keeps its own real manager,
fault injector and management-path :class:`~repro.thermal.sensors.SensorBank`.
When a member's manager fires, it is handed a :class:`MemberView` — an
adapter with the same observation/actuation surface as
:class:`repro.soc.simulator.Simulation` — whose methods read and write
that member's rows of the batched arrays.

Because the manager code runs unchanged against this view, every
Q-table update, exploration draw and governor/mapping decision is
bit-identical to the scalar engine *by construction*; only the data
plane underneath is vectorized.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.sched.affinity import AffinityMapping
from repro.soc.simulator import (
    DECISION_OVERHEAD_S,
    KNOWN_GOVERNORS,
    SAMPLE_OVERHEAD_S,
)
from repro.faults.injector import OUTCOME_OK

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.ensemble.engine import EnsembleSimulation


class LadderView:
    """Just enough of :class:`Chip`'s ladder surface for managers."""


class ChipView:
    """Read-only chip facade (managers query the OPP ladder)."""

    def __init__(self, engine: "EnsembleSimulation") -> None:
        self.ladder = engine.chip_template.ladder


class AppView:
    """One member's current application, backed by the batched arrays."""

    def __init__(self, engine: "EnsembleSimulation", member: int) -> None:
        self._engine = engine
        self._member = member

    @property
    def _app(self):
        engine = self._engine
        return engine.members[self._member].applications[
            engine.app_index[self._member]
        ]

    @property
    def spec(self):
        return self._app.spec

    @property
    def name(self) -> str:
        return self._app.spec.name

    @property
    def completed_iterations(self) -> int:
        return len(self._engine.workloads.completions[self._member])

    def throughput(self, window_s: Optional[float] = None) -> float:
        return self._engine.workloads.throughput(self._member, window_s)

    def performance_satisfied(self, window_s: Optional[float] = None) -> bool:
        return self.throughput(window_s) >= self.spec.performance_constraint


class MemberView:
    """The ``Simulation``-shaped handle one member's manager drives."""

    def __init__(self, engine: "EnsembleSimulation", member: int) -> None:
        self._engine = engine
        self._member = member
        self.chip = ChipView(engine)
        self.obs = None
        self._app_view = AppView(engine, member)

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        return self._engine.now

    @property
    def current_app(self) -> AppView:
        return self._app_view

    @property
    def mapping(self) -> Optional[AffinityMapping]:
        return self._engine.members[self._member].mapping

    def read_sensors(self) -> np.ndarray:
        """Mirror of ``Simulation.read_sensors`` for one member."""
        engine = self._engine
        member = self._member
        engine.perf.record_sample_event_row(member)
        engine.scheduler.stall_all_row(member, SAMPLE_OVERHEAD_S)
        state = engine.members[member]
        readings = state.manager_sensors.read(engine.chip.core_temps()[member])
        if state.fault_injector is not None:
            readings = state.fault_injector.perturb_sensors(
                engine.now, readings
            )
        return readings

    # ------------------------------------------------------------------
    # Actuation
    # ------------------------------------------------------------------
    def set_governor(
        self, name: str, userspace_frequency_hz: Optional[float] = None
    ) -> None:
        """Mirror of ``Simulation.set_governor`` (fault-model aware)."""
        if name not in KNOWN_GOVERNORS:
            raise ValueError(
                f"unknown governor {name!r}; expected one of {KNOWN_GOVERNORS}"
            )
        if name == "userspace" and userspace_frequency_hz is None:
            raise ValueError("userspace governor needs an explicit frequency")
        engine = self._engine
        member = self._member
        injector = engine.members[member].fault_injector
        if injector is not None and injector.governor_outcome() != OUTCOME_OK:
            return
        engine.governors.switch_row(member, name, userspace_frequency_hz)

    def set_mapping(self, mapping: Optional[AffinityMapping]) -> None:
        """Mirror of ``Simulation.set_mapping`` (fault-model aware)."""
        engine = self._engine
        member = self._member
        if mapping is not None:
            mapping.validate(engine.num_cores)
        injector = engine.members[member].fault_injector
        if injector is not None and injector.mapping_outcome() != OUTCOME_OK:
            return
        engine.members[member].mapping = mapping
        if mapping is None:
            engine.scheduler.clear_mapping_row(member)
        else:
            engine.scheduler.set_mapping_row(member, mapping)

    def charge_decision_overhead(self) -> None:
        """Mirror of ``Simulation.charge_decision_overhead``."""
        engine = self._engine
        member = self._member
        engine.perf.record_decision_event_row(member)
        engine.scheduler.stall_all_row(member, DECISION_OVERHEAD_S)
