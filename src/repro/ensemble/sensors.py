"""Batched evaluation-path sensor bank.

Mirrors :class:`repro.thermal.sensors.SensorBank` for the *evaluation*
sensors (the per-second thermal-profile readings).  The management-path
banks stay scalar objects — they are only read when a member's manager
fires, through the :class:`~repro.ensemble.member_view.MemberView` — but the
evaluation read happens for every member every evaluation tick, so it is
worth batching.

Noise draws reuse each member's own eval-sensor Generator through a
chunked ``(chunk, cores)`` buffer: a ``size=(k, cores)`` draw is
bit-identical to ``k`` successive ``size=cores`` draws.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.config import SensorConfig

#: Eval reads buffered per refill.
_CHUNK = 64


class BatchedEvalSensors:
    """All members' evaluation sensors, read in one vectorized call."""

    def __init__(
        self, config: SensorConfig, num_members: int, num_cores: int
    ) -> None:
        self.config = config
        self.num_members = num_members
        self.num_cores = num_cores
        m, c = num_members, num_cores
        if config.ema_tau_s > 0.0:
            # Eval sensors sample once per evaluation period; the scalar
            # bank computes alpha from its construction-time period.
            raise ValueError(
                "ensemble eval sensors do not support EMA filtering "
                "(ema_tau_s > 0); the default platform disables it"
            )
        self._rngs: List[np.random.Generator] = []
        self._chunk = np.zeros((m, _CHUNK, c), dtype=np.float64)
        self._cursor = _CHUNK

    def adopt_rng(self, rng: np.random.Generator) -> None:
        self._rngs.append(rng)

    def read(self, true_temps: np.ndarray) -> np.ndarray:
        """One reading per member per core; ``true_temps`` is (m, c)."""
        config = self.config
        readings = true_temps.copy()
        if config.noise_std_c > 0.0:
            if self._cursor >= _CHUNK:
                for m, rng in enumerate(self._rngs):
                    self._chunk[m] = rng.normal(
                        0.0, config.noise_std_c, size=(_CHUNK, self.num_cores)
                    )
                self._cursor = 0
            readings += self._chunk[:, self._cursor, :]
            self._cursor += 1
        if config.quantisation_c > 0.0:
            step = config.quantisation_c
            readings /= step
            np.round(readings, out=readings)
            readings *= step
        return np.clip(readings, config.min_c, config.max_c, out=readings)

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def capture(self) -> dict:
        return {
            "chunk": self._chunk.copy(),
            "cursor": self._cursor,
            "rng_states": [rng.bit_generator.state for rng in self._rngs],
        }

    def restore(self, state: dict) -> None:
        self._chunk[...] = state["chunk"]
        self._cursor = state["cursor"]
        for rng, rng_state in zip(self._rngs, state["rng_states"]):
            rng.bit_generator.state = rng_state
