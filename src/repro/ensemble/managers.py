"""Batched control plane for the proposed thermal manager.

PR 7 vectorized the data plane but left the control plane scalar: when
many members' managers fire on the same tick (the common case — all
members share the paper's 3 s sampling interval and start together),
the engine ran one full Python ``on_tick`` per member.  This module
batches that path for every member driven by a plain
:class:`~repro.core.manager.ProposedThermalManager`:

* the **sample tick** (every firing) becomes one batched perf event,
  one batched stall, one batched sensor read (noise draws stay
  per-member, in the exact scalar RNG order) and one fancy-indexed
  TRec store;
* the **decision epoch** (every ``samples_per_epoch``-th firing) is
  harvested across members and handed to
  :class:`~repro.ensemble.agents.BatchedAgents` as one masked kernel;
  actuation (:meth:`ProposedThermalManager._apply`) still runs scalar
  per member through the :class:`~repro.ensemble.member_view.MemberView`
  facade, so fault-outcome draws and governor/mapping switches are
  bit-identical by construction.

Members whose manager is *not* batchable — the GE baselines, static
policies, subclassed managers, agents with instrumentation, or sensor
banks with an EMA filter — keep the scalar per-member path; the two
paths coexist in one ensemble.

The epoch-harvest invariant: the engine's ``mgr_next`` gate and the
manager's own ``_next_sample_s`` gate are the same condition, so a
member is handed to the batch exactly when its scalar ``on_tick`` would
have passed its sampling gate, and its ``_next_sample_s`` attribute is
advanced in lockstep (the scalar facade stays live at all times —
checkpoint capture reads it directly).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

import numpy as np

from repro.core.agent import QLearningThermalAgent
from repro.core.manager import ProposedThermalManager
from repro.ensemble.agents import BatchedAgents
from repro.soc.simulator import DECISION_OVERHEAD_S, SAMPLE_OVERHEAD_S

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.ensemble.engine import EnsembleSimulation


class BatchedControlPlane:
    """Routes due managers to the batched or the scalar path.

    Membership in the batched group is decided once, at construction:
    the group must be homogeneous where the batch kernels assume it —
    exact manager/agent types (a subclass may override any step), one
    state-space and action-menu size, one sampling/decision cadence and
    one sensor configuration without an EMA filter (the filter keeps
    per-read state the batch does not model).  Everything else (RNG
    seeds, fault injectors, learning hyper-parameters, mappings) may
    differ freely per member.
    """

    def __init__(self, engine: "EnsembleSimulation") -> None:
        self._engine = engine
        m = engine.num_members
        self._is_batched = np.zeros(m, dtype=bool)
        self._slot_of = np.full(m, -1, dtype=np.int64)
        self.agents: Optional[BatchedAgents] = None

        reference = None
        reference_bank = None
        members: List[int] = []
        for member, state in enumerate(engine.members):
            manager = state.manager
            if type(manager) is not ProposedThermalManager:
                continue
            agent = manager.agent
            if type(agent) is not QLearningThermalAgent or agent.obs is not None:
                continue
            bank = state.manager_sensors
            if bank.config.ema_tau_s > 0.0:
                continue
            if reference is None:
                reference, reference_bank = manager, bank
            else:
                ref_agent = reference.agent
                if not (
                    agent.states.num_states == ref_agent.states.num_states
                    and len(agent.actions) == len(ref_agent.actions)
                    and agent.samples_per_epoch == ref_agent.samples_per_epoch
                    and agent.config.sampling_interval_s
                    == ref_agent.config.sampling_interval_s
                    and agent.config.decision_epoch_s
                    == ref_agent.config.decision_epoch_s
                    and bank.config == reference_bank.config
                ):
                    continue
            members.append(member)

        if not members:
            return
        self._members = np.asarray(members, dtype=np.int64)
        self._is_batched[self._members] = True
        self._slot_of[self._members] = np.arange(len(members))
        self._sensor_config = reference_bank.config
        self._sampling_interval_s = float(
            reference.config.sampling_interval_s
        )
        self._decision_epoch_s = float(reference.config.decision_epoch_s)
        self.agents = BatchedAgents(
            [engine.members[member].manager.agent for member in members],
            engine.num_cores,
        )

    # ------------------------------------------------------------------
    # Scalar-facade synchronisation (checkpoint interop)
    # ------------------------------------------------------------------
    def sync_out(self) -> None:
        """Make every scalar facade attribute current (before capture)."""
        if self.agents is not None:
            self.agents.sync_out()

    def sync_in(self) -> None:
        """Re-adopt the scalar objects' state (after restore)."""
        if self.agents is not None:
            self.agents.sync_in()

    # ------------------------------------------------------------------
    # The fire tick
    # ------------------------------------------------------------------
    def on_tick(self, due: np.ndarray) -> np.ndarray:
        """Run the batched path for its members; return the rest.

        ``due`` holds the members whose ``mgr_next`` gate passed this
        tick.  Batched members get the vectorized sample/decide path;
        the returned subset still needs the scalar ``on_tick`` loop.
        """
        if self.agents is None:
            return due
        mask = self._is_batched[due]
        if not mask.any():
            return due
        engine = self._engine
        members = due[mask]
        slots = self._slot_of[members]

        # --- Sample: Simulation.read_sensors, batched ----------------
        engine.perf.record_sample_event_rows(members)
        engine.scheduler.stall_all_rows(members, SAMPLE_OVERHEAD_S)
        readings = engine.chip.core_temps()[members]  # fancy copy per row
        config = self._sensor_config
        if config.noise_std_c > 0.0:
            num_cores = engine.num_cores
            for i, member in enumerate(members.tolist()):
                bank = engine.members[member].manager_sensors
                readings[i] += bank._rng.normal(
                    0.0, config.noise_std_c, size=num_cores
                )
        if config.quantisation_c > 0.0:
            step = config.quantisation_c
            readings /= step
            np.round(readings, out=readings)
            readings *= step
        np.clip(readings, config.min_c, config.max_c, out=readings)
        now = engine.now
        interval = self._sampling_interval_s
        for i, member in enumerate(members.tolist()):
            state = engine.members[member]
            if state.fault_injector is not None:
                readings[i] = state.fault_injector.perturb_sensors(
                    now, readings[i]
                )
            # Keep the scalar facade's sampling schedule live (checkpoint
            # capture and _manager_next_fire read it directly).
            state.manager._next_sample_s += interval
        self.agents.record_samples(slots, readings)
        engine.mgr_next[members] = engine.mgr_next[members] + interval

        # --- Decide: the harvested epoch -----------------------------
        ready = self.agents.epoch_ready(slots)
        if ready.size:
            ready_members = self._members[ready]
            performance: List[float] = []
            constraint: List[float] = []
            window = self._decision_epoch_s
            ready_list = ready_members.tolist()
            for member in ready_list:
                spec = engine.members[member].applications[
                    int(engine.app_index[member])
                ].spec
                performance.append(
                    engine.workloads.throughput(member, window_s=window)
                )
                constraint.append(spec.performance_constraint)
            actions = self.agents.decide_batch(
                ready.tolist(), performance, constraint, now
            )
            for member, action_index in zip(ready_list, actions):
                manager = engine.members[member].manager
                action = manager.agent.actions[action_index]
                view = engine.views[member]
                manager._apply(view, action, view.current_app)
            engine.perf.record_decision_event_rows(ready_members)
            engine.scheduler.stall_all_rows(ready_members, DECISION_OVERHEAD_S)
        return due[~mask]
