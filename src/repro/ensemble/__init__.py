"""Vectorized ensemble engine: many simulations per NumPy tick.

The scalar :class:`repro.soc.simulator.Simulation` steps one trajectory
per tick; this package steps an entire *ensemble* of member simulations
(seeds x configs x apps) per vectorized tick using structure-of-arrays
state, while remaining **bit-identical** to running each member through
the scalar engine on its own.

The scalar loop stays untouched as the reference (the same pattern as
``tests/_reference_scheduler.py``); the equivalence contract is enforced
by ``tests/test_ensemble_equivalence.py``.
"""

from repro.ensemble.engine import EnsembleSimulation
from repro.ensemble.runner import run_ensemble_job, run_ensemble_workloads

__all__ = [
    "EnsembleSimulation",
    "run_ensemble_job",
    "run_ensemble_workloads",
]
