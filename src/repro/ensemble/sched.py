"""Batched load-balancing scheduler.

Mirrors :class:`repro.sched.scheduler.Scheduler` over the ensemble axis.
The vectorization strategy is dictated by the bit-identity contract:

* Loops over *thread slots* and *cores* stay as Python loops (6 and 4
  iterations) with each body doing ``(members,)``-wide vector ops — this
  preserves the scalar loop's intra-member operation order exactly.
* First-max / first-min selections map onto ``np.argmax`` / ``np.argmin``,
  which are documented to return the first occurrence.
* Executed-cycle accumulation uses an iterative masked loop instead of
  ``cycles * n`` because n repeated additions are not the same FP
  operation as one multiplication for n >= 4.
* Rare row-level operations (placing a fresh thread set, applying a new
  affinity mapping) run as per-member scalar code transcribed from the
  reference — they happen once per app switch or manager decision, not
  per tick.

Padded thread slots (``j >= num_threads[m]``) are parked in DONE, so
every mask already ignores them.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.ensemble.workloads import (
    PH_BARRIER,
    PH_COMPUTE,
    PH_DONE,
    BatchedWorkloads,
)
from repro.sched.affinity import AffinityMapping

#: Sentinel for "no core assigned" in the core / last_core arrays.
NO_CORE = -1

#: Placement actions per slot at or below which the per-member scalar
#: transcription beats the members-wide vector pass (both implement the
#: same selection, so the cutover is a pure speed choice).
_PLACE_SCALAR_MAX = 16

#: Per-event perf costs mirrored from repro.sched.perf.PerfCounters.
_MISSES_PER_MIGRATION = 2.0e4
_FAULTS_PER_MIGRATION = 1.5e2
_MISSES_PER_SAMPLE = 5.0e4
_FAULTS_PER_SAMPLE = 1.0e3
_MISSES_PER_DECISION = 1.0e4
_MISSES_PER_CYCLE = 1.0e-9


class BatchedPerf:
    """Structure-of-arrays twin of ``repro.sched.perf.PerfCounters``.

    Event costs are added as ``x + 0.0`` on non-participating members —
    a bitwise no-op on the non-negative accumulators, matching the
    scalar counters that simply are not called.
    """

    def __init__(self, num_members: int) -> None:
        self.executed_cycles = np.zeros(num_members, dtype=np.float64)
        self.cache_misses = np.zeros(num_members, dtype=np.float64)
        self.page_faults = np.zeros(num_members, dtype=np.float64)
        self.migrations = np.zeros(num_members, dtype=np.int64)
        self.sample_events = np.zeros(num_members, dtype=np.int64)
        self.decision_events = np.zeros(num_members, dtype=np.int64)

    def record_migration_rows(self, rows: np.ndarray) -> None:
        self.migrations[rows] += 1
        self.cache_misses[rows] = self.cache_misses[rows] + _MISSES_PER_MIGRATION
        self.page_faults[rows] = self.page_faults[rows] + _FAULTS_PER_MIGRATION

    def record_migration_row(self, member: int) -> None:
        """Scalar twin of :meth:`record_migration_rows` (same arithmetic)."""
        self.migrations[member] += 1
        self.cache_misses[member] = (
            self.cache_misses[member] + _MISSES_PER_MIGRATION
        )
        self.page_faults[member] = (
            self.page_faults[member] + _FAULTS_PER_MIGRATION
        )

    def record_sample_event_row(self, member: int) -> None:
        self.sample_events[member] += 1
        self.cache_misses[member] = self.cache_misses[member] + _MISSES_PER_SAMPLE
        self.page_faults[member] = self.page_faults[member] + _FAULTS_PER_SAMPLE

    def record_sample_event_rows(self, rows: np.ndarray) -> None:
        """Batched twin of :meth:`record_sample_event_row` (same ops)."""
        self.sample_events[rows] += 1
        self.cache_misses[rows] = self.cache_misses[rows] + _MISSES_PER_SAMPLE
        self.page_faults[rows] = self.page_faults[rows] + _FAULTS_PER_SAMPLE

    def record_decision_event_row(self, member: int) -> None:
        self.decision_events[member] += 1
        self.cache_misses[member] = (
            self.cache_misses[member] + _MISSES_PER_DECISION
        )

    def record_decision_event_rows(self, rows: np.ndarray) -> None:
        """Batched twin of :meth:`record_decision_event_row` (same ops)."""
        self.decision_events[rows] += 1
        self.cache_misses[rows] = self.cache_misses[rows] + _MISSES_PER_DECISION

    def capture(self) -> dict:
        return {
            name: getattr(self, name).copy()
            for name in (
                "executed_cycles",
                "cache_misses",
                "page_faults",
                "migrations",
                "sample_events",
                "decision_events",
            )
        }

    def restore(self, state: dict) -> None:
        for name, value in state.items():
            getattr(self, name)[...] = value


class BatchedScheduler:
    """All members' scheduler state, stepped in one vectorized tick."""

    def __init__(
        self,
        workloads: BatchedWorkloads,
        perf: BatchedPerf,
        num_cores: int,
        rebalance_period_s: np.ndarray,
        idle_pull_delay_s: np.ndarray,
        packing_threshold: np.ndarray,
        pack_cap: np.ndarray,
        idle_activity: np.ndarray,
    ) -> None:
        m = workloads.num_members
        t = workloads.max_slots
        c = num_cores
        self.w = workloads
        self.perf = perf
        self.num_members = m
        self.num_cores = c
        # Per-member tuning knobs (uniform in practice, arrays for
        # generality — they come from each member's scalar Scheduler).
        self.rebalance_period_s = rebalance_period_s.astype(np.float64)
        self.idle_pull_delay_s = idle_pull_delay_s.astype(np.float64)
        self.packing_threshold = packing_threshold.astype(np.float64)
        self.pack_cap = pack_cap.astype(np.int64)
        self.idle_activity = idle_activity.astype(np.float64)
        # Placement state.
        self.core = np.full((m, t), NO_CORE, dtype=np.int64)
        self.last_core = np.full((m, t), NO_CORE, dtype=np.int64)
        self.prev_runnable = np.zeros((m, t), dtype=bool)
        self.stalled = np.zeros((m, t), dtype=bool)
        self.counts = np.zeros((m, c), dtype=np.int64)
        # Affinity state: allowed[m, j, c] is True when thread slot j may
        # run on core c (all-True rows when the member has no mapping).
        self.allowed = np.ones((m, t, c), dtype=bool)
        self.num_allowed = np.full((m, t), c, dtype=np.int64)
        # pull_ok[m, c]: some slot of member m may run on core c.  When
        # False, an idle-pull toward c can never find a movable slot
        # (``allowed`` appears conjunctively in the movability test), so
        # the scan is skipped — the scalar scheduler scans and fails.
        # Maintained wherever ``allowed`` is written.
        self.pull_ok = np.ones((m, c), dtype=bool)
        self.has_mapping = np.zeros(m, dtype=bool)
        # Ensemble-wide shortcut: when no member has a mapping the tick
        # skips the affinity-mask pipeline entirely (it is a no-op then).
        self._any_mapping = False
        self.mapping_objs: List[Optional[AffinityMapping]] = [None] * m
        # Timers and EWMA.
        self.stall_s = np.zeros((m, c), dtype=np.float64)
        self.idle_for_s = np.zeros((m, c), dtype=np.float64)
        self.busy_ewma = np.zeros(m, dtype=np.float64)
        self.since_rebalance_s = np.zeros(m, dtype=np.float64)
        self._core_range = np.arange(c, dtype=np.int64)
        self._member_range = np.arange(m, dtype=np.int64)
        self._member_col = self._member_range[:, None]
        self._slot_range = np.arange(t, dtype=np.int64)
        self._all_cores = list(range(c))
        # Scalar placement beats the members-wide vector pass until the
        # needy count approaches a fraction of the ensemble width.
        self._place_scalar_max = max(_PLACE_SCALAR_MAX, m // 6)
        # Python-list mirrors of per-member scalars so the hot scalar
        # placement path never pays a NumPy scalar-read per member.  The
        # knobs are set once here; busy/mapping mirrors are maintained
        # at their (rare) write sites.
        self._packing_list = self.packing_threshold.tolist()
        self._pack_cap_list = [int(x) for x in self.pack_cap.tolist()]
        self._busy_list = self.busy_ewma.tolist()
        self._has_mapping_list = [False] * m
        # True when an out-of-tick entry point (app load, mapping
        # change, manual placement) touched placement state; the next
        # tick then runs the full phase-1 pass instead of the no-wake
        # shortcut.  Starts dirty so the first tick does the full pass.
        self._extern_dirty = True
        # True while any idle_for_s entry is nonzero (so the all-busy
        # shortcut knows whether the timers still need a reset write).
        self._idle_nonzero = True
        # A zero/negative pull delay makes cores ripe at 0.0; the
        # all-busy shortcut is only valid when every delay is positive.
        self._zero_delay = bool((self.idle_pull_delay_s <= 0.0).any())
        # False only while ``stalled`` is provably all-False: every site
        # that sets a stall bit raises the flag, and the end-of-tick
        # clear drops it.  Lets quiescent ticks skip both the stall scan
        # and the clearing fill.
        self._stall_dirty = False
        # Countdown to the earliest possible rebalance among members; a
        # positive value (with margin for float drift) proves no member
        # is due, so the per-tick due-scan is skipped.  Zero forces the
        # first tick (and post-restore ticks) to do the exact scan.
        self._rebal_slack = 0.0

    # ------------------------------------------------------------------
    # Row-level operations (per-member, transcribed from the reference)
    # ------------------------------------------------------------------
    def _allowed_row(self, member: int, slot: int) -> List[int]:
        """Cores the slot may use, ascending (the scalar allowed list)."""
        return [
            int(c) for c in range(self.num_cores) if self.allowed[member, slot, c]
        ]

    def _pick_core_row(
        self,
        member: int,
        slot: int,
        wake: bool,
        counts: Optional[list] = None,
        last: Optional[int] = None,
    ) -> int:
        has_mapping = self._has_mapping_list[member]
        if has_mapping:
            allowed = self._allowed_row(member, slot)
            if len(allowed) == 1:
                return allowed[0]
        else:
            allowed = self._all_cores
        if counts is None:
            # One bulk read; the comparisons below run on Python ints.
            counts = self.counts[member].tolist()
        if wake and self._busy_list[member] < self._packing_list[member]:
            cap = self._pack_cap_list[member]
            best = -1
            busiest = -1
            for c in allowed:
                count = counts[c]
                if count < cap and count > best:
                    best = count
                    busiest = c
            if busiest >= 0:
                return busiest
        if has_mapping:
            least = min(counts[c] for c in allowed)
        else:
            least = min(counts)
        if last is None:
            last = int(self.last_core[member, slot])
        if (
            last != NO_CORE
            and counts[last] == least
            and (not has_mapping or last in allowed)
        ):
            return last
        if not has_mapping:
            return counts.index(least)
        for c in allowed:
            if counts[c] == least:
                return c
        raise AssertionError("unreachable: some allowed core holds the minimum")

    def _place_row(
        self, member: int, slot: int, *, initial: bool = False, wake: bool = False
    ) -> None:
        self._extern_dirty = True
        core = self._pick_core_row(member, slot, wake)
        previous = int(self.core[member, slot])
        self.core[member, slot] = core
        if previous != core and self.w.phase[member, slot] == PH_COMPUTE:
            if previous != NO_CORE:
                self.counts[member, previous] -= 1
            self.counts[member, core] += 1
        if previous != NO_CORE and previous != core:
            self.last_core[member, slot] = previous
            self.perf.record_migration_row(member)
            self.stalled[member, slot] = True
            self._stall_dirty = True
        elif initial:
            self.last_core[member, slot] = core

    def _place_col_scalar(
        self,
        slot: int,
        rows: np.ndarray,
        wake_k: list,
        init_k: list,
        comp_k: list,
        counts_mirror: list,
    ) -> None:
        """Per-member scalar placement for one slot column, batched I/O.

        Runs the exact ``_place_row`` sequence per member (ascending,
        like the reference), but reads the column's prev/last cores with
        two gathers up front and writes the results back with a few
        fancy-index stores at the end — members are independent, so
        deferring the array writes to the column boundary cannot change
        any pick.  ``wake_k``/``init_k``/``comp_k`` are row-aligned (one
        entry per ``rows`` element, not per member).  ``counts_mirror``
        carries the live counts between columns (a member placing
        threads in two columns sees its first placement, exactly as the
        scalar slot loop does).
        """
        row_list = rows.tolist()
        prev_list = self.core[rows, slot].tolist()
        last_list = self.last_core[rows, slot].tolist()
        new_cores: list = []
        upd_pos: list = []
        upd_last: list = []
        migrations: list = []
        for k, member in enumerate(row_list):
            counts = counts_mirror[member]
            core = self._pick_core_row(
                member, slot, wake_k[k], counts, last_list[k]
            )
            previous = prev_list[k]
            new_cores.append(core)
            if previous != core and comp_k[k]:
                if previous != NO_CORE:
                    counts[previous] -= 1
                counts[core] += 1
            if previous != NO_CORE and previous != core:
                upd_pos.append(k)
                upd_last.append(previous)
                migrations.append(member)
            elif init_k[k]:
                upd_pos.append(k)
                upd_last.append(core)
        self.core[rows, slot] = new_cores
        if upd_pos:
            self.last_core[rows[upd_pos], slot] = upd_last
        if migrations:
            marr = np.asarray(migrations, dtype=np.int64)
            self.stalled[marr, slot] = True
            self._stall_dirty = True
            self.perf.record_migration_rows(marr)

    def _refresh_counts_row(self, member: int) -> None:
        counts = np.zeros(self.num_cores, dtype=np.int64)
        for j in range(int(self.w.num_threads[member])):
            core = int(self.core[member, j])
            if self.w.phase[member, j] == PH_COMPUTE and core != NO_CORE:
                counts[core] += 1
        self.counts[member] = counts

    def set_threads_row(
        self, member: int, mapping: Optional[AffinityMapping]
    ) -> None:
        """``Scheduler.set_threads`` for one member's freshly loaded app.

        Call after :meth:`BatchedWorkloads.load_app_row`; reads the
        thread arrays.  ``mapping`` is the member's *simulation-level*
        mapping (the scalar engine passes ``sim._mapping``, which can
        differ from the scheduler's saved one on the first app).
        """
        t = int(self.w.num_threads[member])
        self.core[member, :] = NO_CORE
        self.last_core[member, :] = NO_CORE
        self.prev_runnable[member, :] = False
        self.prev_runnable[member, :t] = self.w.phase[member, :t] == PH_COMPUTE
        self.stalled[member, :] = False
        # set_threads drops any previous mapping before re-applying.
        self.clear_mapping_row(member)
        if mapping is not None:
            self.set_mapping_row(member, mapping)
        for j in range(t):
            self._place_row(member, j, initial=True)

    def set_mapping_row(self, member: int, mapping: AffinityMapping) -> None:
        """``Scheduler.set_mapping`` for one member."""
        mapping.validate(self.num_cores)
        t = int(self.w.num_threads[member])
        if t and mapping.num_threads < t:
            raise ValueError(
                f"mapping covers {mapping.num_threads} threads, have {t}"
            )
        self.mapping_objs[member] = mapping
        self.has_mapping[member] = True
        self._has_mapping_list[member] = True
        self._any_mapping = True
        self._extern_dirty = True
        for j in range(self.w.max_slots):
            if j < t:
                mask = mapping.mask_for(j)
                if mask is None:
                    row = np.ones(self.num_cores, dtype=bool)
                else:
                    row = np.zeros(self.num_cores, dtype=bool)
                    for c in mask:
                        row[c] = True
            else:
                row = np.ones(self.num_cores, dtype=bool)
            self.allowed[member, j] = row
            self.num_allowed[member, j] = int(row.sum())
        self.pull_ok[member] = self.allowed[member].any(axis=0)
        self._refresh_counts_row(member)
        for j in range(t):
            core = int(self.core[member, j])
            if core != NO_CORE and not self.allowed[member, j, core]:
                self._place_row(member, j)

    def clear_mapping_row(self, member: int) -> None:
        """Mapping set to ``None``: every slot may use every core."""
        self._extern_dirty = True
        self.mapping_objs[member] = None
        self.has_mapping[member] = False
        self._has_mapping_list[member] = False
        self.allowed[member, :, :] = True
        self.num_allowed[member, :] = self.num_cores
        self.pull_ok[member] = True
        if self._any_mapping:
            self._any_mapping = bool(self.has_mapping.any())
        self._refresh_counts_row(member)

    def stall_all_row(self, member: int, seconds: float) -> None:
        if seconds < 0.0:
            raise ValueError("stall cannot be negative")
        self.stall_s[member] = self.stall_s[member] + seconds

    def stall_all_rows(self, rows: np.ndarray, seconds: float) -> None:
        """Batched twin of :meth:`stall_all_row` (same arithmetic)."""
        if seconds < 0.0:
            raise ValueError("stall cannot be negative")
        self.stall_s[rows] = self.stall_s[rows] + seconds

    # ------------------------------------------------------------------
    # Vectorized helpers
    # ------------------------------------------------------------------
    def _allowed_at_core(self) -> np.ndarray:
        """(members, slots) bool: is each thread's core still allowed."""
        # core never exceeds num_cores - 1, so clamping the NO_CORE
        # sentinel up to 0 is a full clip.
        gather = self.allowed[
            self._member_col, self._slot_range[None, :], np.maximum(self.core, 0)
        ]
        return gather | (self.core == NO_CORE)

    def _pick_cores_vec(self, slot: int, wake: np.ndarray) -> np.ndarray:
        """Vectorized ``_pick_core`` for one slot across members.

        Replicates the scalar selection order: single-allowed shortcut,
        then packing (first strict-max under the cap), then least-loaded
        with a sticky last-core tiebreak, else first core at the minimum.
        """
        allowed = self.allowed[:, slot, :]  # (m, c)
        counts = self.counts
        mrange = self._member_range
        single = np.argmax(allowed, axis=1)
        # Packing: first core maximising counts among those under the cap.
        packing = wake & (self.busy_ewma < self.packing_threshold)
        cand = allowed & (counts < self.pack_cap[:, None])
        cand_counts = np.where(cand, counts, -1)
        pack_core = np.argmax(cand_counts, axis=1)
        pack_ok = packing & (np.max(cand_counts, axis=1) >= 0)
        # Least-loaded among allowed; BIG parks disallowed cores.
        big = self.w.max_slots + 1
        masked = np.where(allowed, counts, big)
        least = np.min(masked, axis=1)
        first_min = np.argmin(masked, axis=1)
        last = self.last_core[:, slot]
        last_clipped = np.maximum(last, 0)
        last_ok = (
            (last != NO_CORE)
            & (counts[mrange, last_clipped] == least)
            & (~self.has_mapping | allowed[mrange, last_clipped])
        )
        choice = np.where(last_ok, last, first_min)
        picked = np.where(pack_ok, pack_core, choice)
        return np.where(self.num_allowed[:, slot] == 1, single, picked)

    def _place_vec(
        self, slot: int, need: np.ndarray, wake: np.ndarray, initial: np.ndarray
    ) -> None:
        """Vectorized ``_place`` for one slot; ``need`` selects members."""
        new_core = self._pick_cores_vec(slot, wake)
        prev = self.core[:, slot].copy()
        self.core[:, slot] = np.where(need, new_core, prev)
        changed = need & (prev != new_core)
        is_compute = self.w.phase[:, slot] == PH_COMPUTE
        dec = changed & is_compute & (prev != NO_CORE)
        rows = np.nonzero(dec)[0]
        if rows.size:
            self.counts[rows, prev[rows]] -= 1
        rows = np.nonzero(changed & is_compute)[0]
        if rows.size:
            self.counts[rows, new_core[rows]] += 1
        moved = changed & (prev != NO_CORE)
        rows = np.nonzero(moved)[0]
        if rows.size:
            self.last_core[rows, slot] = prev[rows]
            self.perf.record_migration_rows(rows)
            self.stalled[rows, slot] = True
            self._stall_dirty = True
        rows = np.nonzero(need & initial & ~moved)[0]
        if rows.size:
            self.last_core[rows, slot] = new_core[rows]

    def _first_movable_vec(
        self, members: np.ndarray, source: np.ndarray, target: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """First movable slot per member (adoption order), or found=False.

        Movable = COMPUTE, on ``source``, allowed on ``target``, not
        stalled this tick — the scalar ``_first_movable``.
        """
        phase = self.w.phase[members]
        core = self.core[members]
        allowed_t = self.allowed[
            members[:, None], self._slot_range[None, :], target[:, None]
        ]
        movable = (
            (phase == PH_COMPUTE)
            & (core == source[:, None])
            & allowed_t
            & ~self.stalled[members]
        )
        return movable.any(axis=1), np.argmax(movable, axis=1)

    def _move_rows(
        self,
        members: np.ndarray,
        slots: np.ndarray,
        source: np.ndarray,
        target: np.ndarray,
    ) -> None:
        self.last_core[members, slots] = source
        self.core[members, slots] = target
        self.counts[members, source] -= 1
        self.counts[members, target] += 1
        self.perf.record_migration_rows(members)
        self.stalled[members, slots] = True
        self._stall_dirty = True

    def _rebalance_vec(self, members: np.ndarray) -> None:
        """Two passes of busiest->idlest moves for ``members``."""
        for _ in range(2):
            if not members.size:
                return
            counts = self.counts[members]
            busiest = np.argmax(counts, axis=1)
            idlest = np.argmin(counts, axis=1)
            mrange = np.arange(members.size)
            cand = counts[mrange, busiest] - counts[mrange, idlest] >= 2
            if not cand.any():
                return
            sub = members[cand]
            src = busiest[cand]
            dst = idlest[cand]
            found, slots = self._first_movable_vec(sub, src, dst)
            if found.any():
                self._move_rows(sub[found], slots[found], src[found], dst[found])
            members = sub[found]

    # ------------------------------------------------------------------
    # The tick
    # ------------------------------------------------------------------
    def tick(self, freqs: np.ndarray, dt: float) -> Tuple[np.ndarray, np.ndarray]:
        """One scheduler tick for every member.

        ``freqs`` is the (members, cores) frequency array captured at
        the top of the engine tick (the scalar loop reads governor
        frequencies once, before the governor updates).

        Returns ``(utilisation, activity)`` arrays of shape
        (members, cores) — the CoreLoad fields the engine consumes.
        """
        w = self.w
        m, t, c = self.num_members, w.max_slots, self.num_cores
        # Refresh runnable counts from current state (the scalar tick
        # begins with a refresh pass: phases changed since last tick).
        # bincount over the flat (member, core) codes produces the same
        # int64 tallies as a one-hot sum, without the (m, t, c) temp.
        on_core = self.core != NO_CORE
        is_compute = w.phase == PH_COMPUTE
        compute_on_core = is_compute & on_core
        vm, vj = compute_on_core.nonzero()
        v_cores = self.core[vm, vj]
        v_flat = vm * c + v_cores
        self.counts = np.bincount(v_flat, minlength=m * c).reshape(m, c)
        # True once anything changes cores or stalls this tick; phase 3
        # then recomputes the queue view instead of reusing the arrays
        # above.  Seeded from the stall flag: between-tick actions (app
        # loads, manager mappings) place threads and stall them outside
        # this method, and those stalls must reach ``in_queue``.  (The
        # flag may be conservatively True with no stall set; phase 3
        # then just recomputes the identical arrays.)
        moved = self._stall_dirty
        # --- Phase 1: placement / wake / affinity migration ------------
        # The masks are precomputed: a thread's own phase/core cannot be
        # changed by other threads' placements, so lazy evaluation and
        # precomputation agree (the scalar loop snapshots them too).
        # The whole pass runs only when a thread may have turned
        # runnable (the workloads flag) or an out-of-tick entry point
        # touched placement state: otherwise every wake/initial/migrate
        # mask is provably all-False and placement is a no-op.
        w.refresh_live()
        live = w.live_slots
        if self._extern_dirty or w.compute_dirty:
            self._extern_dirty = False
            w.compute_dirty = False
            needs_initial = live & ~on_core
            woke = is_compute & ~self.prev_runnable
            if self._any_mapping:
                allowed_here = self._allowed_at_core()
                needs_migrate = (
                    live & on_core & self.has_mapping[:, None] & ~allowed_here
                )
                free_slot = self.num_allowed > 1
                wake_ok = np.where(self.has_mapping[:, None], free_slot, True)
                needs_wake = live & woke & on_core & ~needs_migrate & wake_ok
                any_action = needs_initial | needs_migrate | needs_wake
            else:
                # No mappings anywhere: every core is allowed, so the
                # migration and wake gates collapse (bit-identical).
                needs_wake = woke & on_core
                any_action = needs_initial | needs_wake
            if any_action.any():
                moved = True
                # Sparse columns run the per-member scalar transcription
                # against a Python counts mirror (cheaper than a members-
                # wide vector pass, identical selection); dense columns
                # take the vector pass.  The NumPy counts array is synced
                # at every transition so both paths read live tallies.
                counts_mirror: Optional[list] = None
                for j in any_action.any(axis=0).nonzero()[0]:
                    rows = any_action[:, j].nonzero()[0]
                    if rows.size <= self._place_scalar_max:
                        if counts_mirror is None:
                            counts_mirror = self.counts.tolist()
                        self._place_col_scalar(
                            j,
                            rows,
                            needs_wake[rows, j].tolist(),
                            needs_initial[rows, j].tolist(),
                            is_compute[rows, j].tolist(),
                            counts_mirror,
                        )
                    else:
                        if counts_mirror is not None:
                            self.counts = np.asarray(
                                counts_mirror, dtype=np.int64
                            )
                            counts_mirror = None
                        self._place_vec(
                            j,
                            any_action[:, j],
                            needs_wake[:, j],
                            needs_initial[:, j],
                        )
                if counts_mirror is not None:
                    self.counts = np.asarray(counts_mirror, dtype=np.int64)
        # --- Phase 2a: idle-pull ---------------------------------------
        idle = self.counts == 0
        if not self._zero_delay and not idle.any():
            # Every core busy: all timers reset to 0.0, and with every
            # pull delay positive nothing can be ripe — skip the pass.
            if self._idle_nonzero:
                self.idle_for_s.fill(0.0)
                self._idle_nonzero = False
            ripe = None
        else:
            self._idle_nonzero = True
            self.idle_for_s = np.where(idle, self.idle_for_s + dt, 0.0)
            ripe = self.idle_for_s >= self.idle_pull_delay_s[:, None]
        if ripe is not None and ripe.any():
            # Only members with a core holding >= 2 runnable threads can
            # donate; pre-filtering cannot change a pull decision (the
            # per-core ``heavy`` gate would reject the rest anyway) and
            # skips the whole scan during sync windows when counts is 0.
            donors = self.counts.max(axis=1) >= 2
            ripe = ripe & donors[:, None] & self.pull_ok
            # The sequential per-core walk only couples *within* a
            # member (an earlier core's successful pull stalls the moved
            # thread and shifts counts; members never read each other's
            # state), and a *failed* attempt writes nothing.  So every
            # ripe (member, core) pair is scanned in one batch against
            # the pre-pull state, and per member the first hit in core
            # order is exactly the walk's first pull.  Only the rare
            # member that pulled *and* has later ripe cores re-walks
            # those cores against its updated state.  The donor
            # prefilter above doubles as the walk's live ``heavy`` gate
            # for the batch: before a member's first move its counts are
            # untouched, and argmax over an unchanged row picks the same
            # busiest core.
            pair_m, pair_c = ripe.nonzero()  # member-major, cores ascending
            src = np.argmax(self.counts[pair_m], axis=1)
            found, slots = self._first_movable_vec(pair_m, src, pair_c)
            if found.any():
                moved = True
                hits = found.nonzero()[0]
                hit_m = pair_m[hits]
                first = np.ones(hit_m.size, dtype=bool)
                first[1:] = hit_m[1:] != hit_m[:-1]
                hits = hits[first]
                pull_m = pair_m[hits]
                pull_c = pair_c[hits]
                self._move_rows(pull_m, slots[hits], src[hits], pull_c)
                self.idle_for_s[pull_m, pull_c] = 0.0
                for i, member in enumerate(pull_m.tolist()):
                    later = ripe[member].nonzero()[0]
                    later = later[later > pull_c[i]]
                    for core_id in later.tolist():
                        row = np.array([member], dtype=np.int64)
                        busiest = int(np.argmax(self.counts[member]))
                        if self.counts[member, busiest] < 2:
                            continue
                        f1, s1 = self._first_movable_vec(
                            row,
                            np.array([busiest], dtype=np.int64),
                            np.array([core_id], dtype=np.int64),
                        )
                        if f1[0]:
                            self._move_rows(
                                row,
                                s1,
                                np.array([busiest], dtype=np.int64),
                                np.array([core_id], dtype=np.int64),
                            )
                            self.idle_for_s[member, core_id] = 0.0
        # --- Phase 2b: periodic rebalance ------------------------------
        self.since_rebalance_s = self.since_rebalance_s + dt
        # The slack countdown mirrors min(period - since) to within a
        # few ulp of float drift; the 1e-6 margin (orders of magnitude
        # above that drift, well under any dt) makes the skip safe, and
        # the due-scan itself always uses the exact arrays.
        self._rebal_slack -= dt
        if self._rebal_slack <= 1e-6:
            due = self.since_rebalance_s >= self.rebalance_period_s
            if due.any():
                moved = True
                self.since_rebalance_s[due] = 0.0
                self._rebalance_vec(due.nonzero()[0])
            self._rebal_slack = float(
                np.min(self.rebalance_period_s - self.since_rebalance_s)
            )
        # --- Phase 3: execution ----------------------------------------
        # Phases have not changed since the top of the tick (placements
        # move cores, not phases), so ``is_compute`` and ``live`` are
        # still current.  When nothing above moved a thread or raised a
        # stall, the top-of-tick mask, indices and tallies are reused
        # verbatim — recomputing them would reproduce the same arrays.
        if moved:
            on_core = self.core != NO_CORE
            in_queue = is_compute & on_core & ~self.stalled
            q_members, q_slots = in_queue.nonzero()
            q_cores = self.core[q_members, q_slots]
            q_flat = q_members * c + q_cores
            run_count = np.bincount(q_flat, minlength=m * c).reshape(m, c)
        else:
            in_queue = compute_on_core
            q_members, q_slots = vm, vj
            q_cores = v_cores
            q_flat = v_flat
            run_count = self.counts
        waiting = ~is_compute & live & on_core
        if waiting.any():
            wm, wj = waiting.nonzero()
            wait_count = np.bincount(
                wm * c + self.core[wm, wj], minlength=m * c
            ).reshape(m, c)
        else:
            # All-zero wait tallies: `x + 0 * k` and `x + 0.0` are
            # bitwise no-ops on the non-negative operands below, so the
            # wait terms are skipped outright.
            wait_count = None
        ran = run_count > 0
        # Stall-free ticks skip the stall pipeline: with zero stall the
        # effective dt is exactly dt and ``scale`` is exactly 1.0, and
        # x * 1.0 / x + 0.0 are bitwise no-ops on the non-negative
        # operands involved, so the shortcut is bit-identical.
        have_stall = bool(self.stall_s.any())
        if have_stall:
            stall = np.minimum(self.stall_s, dt)
            self.stall_s = self.stall_s - stall
            effective_dt = dt - stall
            share = effective_dt / np.where(ran, run_count, 1)
        else:
            share = dt / np.where(ran, run_count, 1)
        cycles_core = freqs * share
        # Queue members burn their share; scatter writes touch exactly
        # the in-queue slots the masked ``where`` rewrite updated, with
        # the same subtraction, so values and phases match bitwise.
        rem_q = w.remaining[q_members, q_slots] - cycles_core[q_members, q_cores]
        w.remaining[q_members, q_slots] = rem_q
        hit = rem_q <= 0.0
        any_hit = bool(hit.any())
        if any_hit:
            hit_m = q_members[hit]
            hit_j = q_slots[hit]
            w.phase[hit_m, hit_j] = PH_BARRIER
        # Executed cycles: iterative accumulation so n queue members stay
        # n additions (cycles * n is a different FP value for n >= 4).
        # k = 0 unrolled: 0.0 + cycles is bitwise cycles (both >= 0).
        max_run = int(run_count.max()) if m else 0
        executed = (
            np.where(ran, cycles_core, 0.0)
            if max_run
            else np.zeros((m, c), dtype=np.float64)
        )
        for k in range(1, max_run):
            executed = np.where(run_count > k, executed + cycles_core, executed)
        # record_execution per core in core order.  ``executed`` is
        # exactly 0.0 on idle cores (the k = 0 where seeds them so, and
        # the k-loop never touches them), and adding 0.0 is a bitwise
        # no-op on the non-negative accumulators, so no re-mask needed.
        executed_misses = executed * _MISSES_PER_CYCLE
        for core_id in range(c):
            self.perf.executed_cycles = (
                self.perf.executed_cycles + executed[:, core_id]
            )
            self.perf.cache_misses = (
                self.perf.cache_misses + executed_misses[:, core_id]
            )
        # Utilisation (computed for every core, idle ones included).
        busy_load = run_count * 1.0
        if wait_count is not None:
            busy_load = busy_load + wait_count * 0.03
        if have_stall:
            scale = effective_dt / dt
            util = np.minimum(busy_load * scale + stall / dt, 1.0)
        else:
            util = np.minimum(busy_load, 1.0)
        # Activity: per-slot contributions in adoption order; the slot's
        # post-execution phase decides high vs low (threads whose burst
        # just ended contribute activity_low, like the scalar queue walk).
        # bincount walks its input sequentially, adding each weight to
        # its bin in order of appearance, and the row-major nonzero
        # lists each member's slots ascending — so every (member, core)
        # accumulator sums the same contributions in the same order as
        # the scalar slot loop, from the same 0.0 start.
        if q_members.size:
            # A queue member is COMPUTE after execution iff its burst
            # did not just end, i.e. ``~hit`` — no phase re-read needed.
            contrib = np.where(hit, w.act_low[q_members], w.act_high[q_members])
            total = np.bincount(
                q_flat, weights=contrib, minlength=m * c
            ).reshape(m, c)
        else:
            total = np.zeros((m, c), dtype=np.float64)
        # The scalar pass leaves prev_runnable == the post-execution
        # COMPUTE flag for every thread (the phase-3 walk sets the
        # pre-execution flag, then corrects executed queue members).
        # ``is_compute`` has served every pre-execution read by now, so
        # flipping the just-ended bursts in place yields that flag.
        if any_hit:
            is_compute[hit_m, hit_j] = False
        self.prev_runnable = is_compute
        if have_stall:
            activity = np.where(
                ran, (total / np.where(ran, run_count, 1)) * scale, 0.0
            )
        else:
            activity = np.where(ran, total / np.where(ran, run_count, 1), 0.0)
        if wait_count is not None:
            activity = activity + self.idle_activity[:, None] * wait_count
        activity = np.minimum(activity, 1.0)
        # --- Phase 4: busy EWMA + stall clear --------------------------
        busy_fraction = ran.sum(axis=1) / c
        weight = min(1.0, dt / 2.0)
        self.busy_ewma = self.busy_ewma + weight * (busy_fraction - self.busy_ewma)
        self._busy_list = self.busy_ewma.tolist()
        if self._stall_dirty:
            self.stalled[:, :] = False
            self._stall_dirty = False
        return util, activity

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def capture(self) -> dict:
        state = {
            name: getattr(self, name).copy()
            for name in (
                "core",
                "last_core",
                "prev_runnable",
                "stalled",
                "counts",
                "allowed",
                "num_allowed",
                "has_mapping",
                "stall_s",
                "idle_for_s",
                "busy_ewma",
                "since_rebalance_s",
            )
        }
        state["mapping_objs"] = list(self.mapping_objs)
        return state

    def restore(self, state: dict) -> None:
        for name, value in state.items():
            if name == "mapping_objs":
                continue
            getattr(self, name)[...] = value
        self.mapping_objs = list(state["mapping_objs"])
        self.pull_ok = self.allowed.any(axis=1)
        self._any_mapping = bool(self.has_mapping.any())
        self._has_mapping_list = [bool(x) for x in self.has_mapping.tolist()]
        self._busy_list = self.busy_ewma.tolist()
        self._stall_dirty = True  # restored stalls must reach the next tick
        self._rebal_slack = 0.0  # force an exact due-scan next tick
        self._extern_dirty = True
        self._idle_nonzero = True
