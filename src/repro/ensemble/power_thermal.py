"""Batched chip: power model + RC thermal network + energy meter.

Mirrors :class:`repro.soc.chip.Chip` over the ensemble axis.  All
members share one platform (validated at adoption), so the propagator
and input matrices are shared ``(nodes, nodes)`` arrays while the node
temperatures, ambient injection and energy accumulators are batched.

Two FP-faithfulness constraints shape the implementation:

* The thermal step uses a *broadcast stacked matmul*
  (``P[None] @ T[:, :, None]``), which NumPy evaluates as one GEMV per
  member — bit-identical to the scalar path.  A GEMM/einsum over a
  ``(members, nodes)`` matrix would reassociate the dot products.
* Leakage uses ``math.exp`` per element (via ``map`` over the raveled
  exponents): ``np.exp`` is allowed to differ from libm in the last ulp.
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

from repro.soc.chip import Chip

#: Ambient-drift noise draws buffered per refill (chunked draws from a
#: Generator are bit-identical to repeated scalar draws).
_DRIFT_CHUNK = 256


class BatchedChip:
    """All members' die state, stepped in one vectorized tick."""

    def __init__(self, template: Chip, num_members: int) -> None:
        config = template.config
        self.num_members = num_members
        self.num_cores = config.num_cores
        self.num_nodes = self.num_cores + 1
        m, n = num_members, self.num_nodes
        thermal = template.thermal
        # Shared, read-only matrices (uniform platform).
        self.propagator = thermal._propagator
        self.input_matrix = thermal._input_matrix
        self.ambient_unit = thermal._ambient_unit
        # Power-table constants, indexed by OPP ladder position.
        table = template.power_table
        self.c_eff = float(table.c_eff)
        self.t_leak = float(table.t_leak)
        ladder = template.ladder
        self.freqs_asc = np.asarray(ladder.frequencies(), dtype=np.float64)
        self.voltage_by_idx = np.asarray(
            [p.voltage_v for p in ladder.points], dtype=np.float64
        )
        self.leak_scale_by_idx = np.asarray(
            [
                table._by_frequency[p.frequency_hz].leakage_scale_w
                for p in ladder.points
            ],
            dtype=np.float64,
        )
        self.idle_package_power_w = float(config.power.idle_package_power)
        self.uncore_per_active_w = float(config.power.uncore_power_per_active_core)
        # Batched state.
        self.node_temps = np.zeros((m, n), dtype=np.float64)
        self.ambient_c = np.full(m, config.thermal.ambient_c, dtype=np.float64)
        self.ambient_injection = np.zeros((m, n), dtype=np.float64)
        self.dynamic_j = np.zeros(m, dtype=np.float64)
        self.static_j = np.zeros(m, dtype=np.float64)
        self.energy_elapsed_s = np.zeros(m, dtype=np.float64)
        # Ornstein-Uhlenbeck ambient drift (chunked per-member draws).
        self.drift_enabled = template._drift_enabled
        self.ambient_target_c = float(config.thermal.ambient_c)
        self.drift_tau_s = float(config.thermal.ambient_drift_tau_s)
        self.drift_sigma_c = float(config.thermal.ambient_drift_sigma_c)
        self._drift_rngs: List[np.random.Generator] = []
        self._drift_chunk = np.zeros((m, _DRIFT_CHUNK), dtype=np.float64)
        self._drift_cursor = _DRIFT_CHUNK
        # Scratch buffers for the per-tick thermal step.
        self._injection = np.empty((m, n), dtype=np.float64)
        self._mv_state = np.empty((m, n, 1), dtype=np.float64)
        self._mv_input = np.empty((m, n, 1), dtype=np.float64)

    def adopt_row(self, member: int, chip: Chip) -> None:
        """Import one member's live chip state (post warm start)."""
        thermal = chip.thermal
        self.node_temps[member] = thermal._temps
        self.ambient_c[member] = thermal.ambient_c
        self.ambient_injection[member] = thermal._ambient_injection
        meter = chip.energy
        self.dynamic_j[member] = meter.dynamic_j
        self.static_j[member] = meter.static_j
        self.energy_elapsed_s[member] = meter.elapsed_s
        self._drift_rngs.append(chip._drift_rng)

    def core_temps(self) -> np.ndarray:
        """(members, cores) view of the true core temperatures."""
        return self.node_temps[:, : self.num_cores]

    def _drift_normals(self) -> np.ndarray:
        """One standard-normal draw per member from the chunked buffers."""
        if self._drift_cursor >= _DRIFT_CHUNK:
            for m, rng in enumerate(self._drift_rngs):
                self._drift_chunk[m] = rng.normal(size=_DRIFT_CHUNK)
            self._drift_cursor = 0
        draws = self._drift_chunk[:, self._drift_cursor]
        self._drift_cursor += 1
        return draws

    def step(self, activity: np.ndarray, freq: np.ndarray, dt: float) -> None:
        """Advance every member's die one tick.

        ``activity`` and ``freq`` are (members, cores); ``freq`` holds
        exact OPP frequencies (the engine passes the pre-update governor
        copy, as the scalar loop does).
        """
        m, c = self.num_members, self.num_cores
        if self.drift_enabled:
            pull_gain = dt / self.drift_tau_s
            kick_scale = self.drift_sigma_c * np.sqrt(2.0 * dt / self.drift_tau_s)
            pull = (self.ambient_target_c - self.ambient_c) * pull_gain
            kick = kick_scale * self._drift_normals()
            self.ambient_c = self.ambient_c + pull + kick
            self.ambient_injection = (
                self.ambient_unit[None, :] * self.ambient_c[:, None]
            )
        # Per-core power; the OPP dict lookup becomes an index gather
        # (frequencies are exact ladder values by construction).
        freq_idx = self.freqs_asc.searchsorted(freq)
        voltage = self.voltage_by_idx[freq_idx]
        dynamic = activity * self.c_eff * voltage * voltage * freq
        exponent = self.t_leak * self.core_temps()
        exp_vals = np.fromiter(
            map(math.exp, exponent.ravel().tolist()),
            dtype=np.float64,
            count=m * c,
        ).reshape(m, c)
        static = self.leak_scale_by_idx[freq_idx] * exp_vals
        # Ordered per-core reductions mirror the scalar sum() calls.
        act_sum = np.zeros(m, dtype=np.float64)
        for core in range(c):
            act_sum = act_sum + activity[:, core]
        uncore = self.idle_package_power_w + self.uncore_per_active_w * act_sum
        dyn_sum = np.zeros(m, dtype=np.float64)
        stat_sum = np.zeros(m, dtype=np.float64)
        for core in range(c):
            dyn_sum = dyn_sum + dynamic[:, core]
            stat_sum = stat_sum + static[:, core]
        self.dynamic_j = self.dynamic_j + (dyn_sum + uncore) * dt
        self.static_j = self.static_j + stat_sum * dt
        self.energy_elapsed_s = self.energy_elapsed_s + dt
        # Thermal step: one GEMV per member via broadcast stacked matmul.
        injection = self._injection
        injection[:, :c] = dynamic + static
        injection[:, c] = uncore
        injection += self.ambient_injection
        np.matmul(
            self.propagator[None, :, :],
            self.node_temps[:, :, None],
            out=self._mv_state,
        )
        np.matmul(
            self.input_matrix[None, :, :], injection[:, :, None], out=self._mv_input
        )
        np.add(
            self._mv_state[:, :, 0], self._mv_input[:, :, 0], out=self.node_temps
        )

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def capture(self) -> dict:
        state = {
            name: getattr(self, name).copy()
            for name in (
                "node_temps",
                "ambient_c",
                "ambient_injection",
                "dynamic_j",
                "static_j",
                "energy_elapsed_s",
                "_drift_chunk",
            )
        }
        state["_drift_cursor"] = self._drift_cursor
        state["drift_rng_states"] = [
            rng.bit_generator.state for rng in self._drift_rngs
        ]
        return state

    def restore(self, state: dict) -> None:
        for name, value in state.items():
            if name in ("drift_rng_states", "_drift_cursor"):
                continue
            getattr(self, name)[...] = value
        self._drift_cursor = state["_drift_cursor"]
        for rng, rng_state in zip(self._drift_rngs, state["drift_rng_states"]):
            rng.bit_generator.state = rng_state
