"""Vectorized ensemble engine.

:class:`EnsembleSimulation` adopts N constructed-but-unrun scalar
:class:`~repro.soc.simulator.Simulation` objects and steps all of them
together, one vectorized NumPy tick for the whole ensemble.  The
contract is **bit-faithfulness**: every member's results (thermal
profile, energy, perf counters, app records, manager statistics) are
bit-for-bit identical to what its scalar ``Simulation.run()`` would have
produced — verified member-by-member in
``tests/test_ensemble_equivalence.py``.

The engine splits the system into two planes:

* **data plane** (every member, every tick) — scheduler, thread state
  machine, governors, power/thermal, evaluation sensors — batched into
  structure-of-arrays form (:mod:`repro.ensemble.sched`,
  :mod:`~repro.ensemble.workloads`, :mod:`~repro.ensemble.governors`,
  :mod:`~repro.ensemble.power_thermal`, :mod:`~repro.ensemble.sensors`);
* **control plane** (one member, occasionally) — thermal managers, fault
  injectors and management-path sensor banks stay *real scalar objects*.
  When a member's manager is due it runs unchanged against a
  :class:`~repro.ensemble.member_view.MemberView`, so every Q-table update
  and exploration draw is bit-identical by construction.

Managers are gated by a per-member next-fire time harvested from their
``_next_sample_s`` attribute, so the quiescent per-tick cost of the
control plane is one vectorized comparison, not N Python calls.

Members that finish (all applications done, or their ``max_time_s``
reached) have their results frozen at exactly the point the scalar run
loop would have broken; the remaining members keep stepping.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

# Reuses the checkpoint layer's per-object capture/restore helpers so a
# manager/sensor/injector snapshot has exactly one implementation.
from repro.checkpoint.state import (
    _capture_manager,
    _capture_sensor_bank,
    _restore_manager,
    _restore_sensor_bank,
    capture_fault_injector,
    restore_fault_injector,
)
from repro.ensemble.governors import BatchedGovernors
from repro.ensemble.managers import BatchedControlPlane
from repro.ensemble.member_view import MemberView
from repro.ensemble.power_thermal import BatchedChip
from repro.ensemble.sched import BatchedPerf, BatchedScheduler
from repro.ensemble.sensors import BatchedEvalSensors
from repro.ensemble.workloads import BatchedWorkloads
from repro.faults.injector import FaultInjector
from repro.perf.timer import SectionTimer
from repro.power.energy import EnergyMeter
from repro.sched.affinity import AffinityMapping
from repro.sched.perf import PerfCounters
from repro.soc.simulator import (
    AppRecord,
    Simulation,
    SimulationResult,
    ThermalManagerBase,
)
from repro.thermal.profile import ThermalProfile
from repro.thermal.sensors import SensorBank
from repro.workloads.application import Application

#: Initial eval-sample capacity of the batched profile buffer.
_INITIAL_PROFILE_CAPACITY = 64

#: Perf-counter channels snapshotted when a member's run freezes.
_PERF_CHANNELS = (
    "executed_cycles",
    "cache_misses",
    "page_faults",
    "migrations",
    "sample_events",
    "decision_events",
)


def _manager_next_fire(manager: Optional[ThermalManagerBase]) -> float:
    """When the manager next needs an ``on_tick`` call.

    Managers that do not override ``on_tick`` (the static policies)
    never fire.  Managers that do but expose no ``_next_sample_s``
    schedule fire every tick (the scalar engine calls ``on_tick``
    unconditionally, so that is the conservative fallback).
    """
    if manager is None:
        return math.inf
    if type(manager).on_tick is ThermalManagerBase.on_tick:
        return math.inf
    return float(getattr(manager, "_next_sample_s", -math.inf))


@dataclass
class MemberState:
    """The scalar (control-plane) objects one member keeps."""

    applications: List[Application]
    manager: Optional[ThermalManagerBase]
    manager_sensors: SensorBank
    fault_injector: Optional[FaultInjector]
    mapping: Optional[AffinityMapping]
    max_time_s: Optional[float]
    seed: int


class EnsembleSimulation:
    """N scalar simulations, stepped as one vectorized system.

    Parameters
    ----------
    members:
        Constructed-but-unrun :class:`Simulation` objects.  All must
        share one platform configuration and evaluation period.  The
        ensemble *adopts* their state (thermal arrays, governors, RNGs,
        managers); the adopted simulations must not be used afterwards.
    """

    def __init__(self, members: Sequence[Simulation]) -> None:
        if not members:
            raise ValueError("ensemble needs at least one member simulation")
        reference = members[0]
        platform = reference.platform
        eval_period = reference.eval_sample_period_s
        for index, sim in enumerate(members):
            if sim.platform != platform:
                raise ValueError(
                    f"member {index} has a different platform configuration; "
                    "ensembles require a uniform platform"
                )
            if sim.eval_sample_period_s != eval_period:
                raise ValueError(
                    f"member {index} has a different eval sample period"
                )
            if sim.now != 0.0 or sim._app_index != -1:
                raise ValueError(
                    f"member {index} has already run; ensembles adopt "
                    "freshly constructed simulations only"
                )
            if sim.obs is not None:
                raise ValueError(
                    f"member {index} has instrumentation attached; "
                    "not supported in ensembles"
                )
            if sim._sensor_supervisor is not None:
                raise ValueError(
                    f"member {index} has a supervisor; not supported "
                    "in ensembles"
                )
            if sim._checkpointer is not None:
                raise ValueError(
                    f"member {index} has a checkpointer attached; use "
                    "EnsembleSimulation.capture/restore instead"
                )

        self.platform = platform
        self.num_members = len(members)
        self.num_cores = platform.num_cores
        self.dt = platform.dt
        self.eval_sample_period_s = eval_period
        self.chip_template = reference.chip
        m, c = self.num_members, self.num_cores

        max_slots = max(
            app.spec.num_threads
            for sim in members
            for app in sim.applications
        )
        self.workloads = BatchedWorkloads(m, max_slots)
        self.perf = BatchedPerf(m)
        self.scheduler = BatchedScheduler(
            self.workloads,
            self.perf,
            c,
            rebalance_period_s=np.asarray(
                [sim.scheduler.rebalance_period_s for sim in members]
            ),
            idle_pull_delay_s=np.asarray(
                [sim.scheduler.idle_pull_delay_s for sim in members]
            ),
            packing_threshold=np.asarray(
                [sim.scheduler.packing_threshold for sim in members]
            ),
            pack_cap=np.asarray([sim.scheduler.pack_cap for sim in members]),
            idle_activity=np.asarray(
                [sim.scheduler.idle_activity for sim in members]
            ),
        )
        self.governors = BatchedGovernors(reference.chip.ladder, m, c)
        self.chip = BatchedChip(reference.chip, m)
        self.eval_sensors = BatchedEvalSensors(platform.sensor, m, c)

        self.members: List[MemberState] = []
        for member, sim in enumerate(members):
            self.chip.adopt_row(member, sim.chip)
            self.governors.adopt_row(member, sim._governor)
            self.eval_sensors.adopt_rng(sim._eval_sensors._rng)
            self.members.append(
                MemberState(
                    applications=list(sim.applications),
                    manager=sim.manager,
                    manager_sensors=sim._manager_sensors,
                    fault_injector=sim._fault_injector,
                    mapping=sim._mapping,
                    max_time_s=sim.max_time_s,
                    seed=sim._seed,
                )
            )
        self.views = [MemberView(self, member) for member in range(m)]

        # Engine clock and eval schedule (shared: members start together).
        self.now = 0.0
        self._next_eval_s = eval_period
        self._eval_count = 0
        self._profile_buf = np.empty(
            (m, c, _INITIAL_PROFILE_CAPACITY), dtype=np.float64
        )
        # Per-member run bookkeeping.
        self.active = np.ones(m, dtype=bool)
        self.run_completed = np.ones(m, dtype=bool)
        self.app_index = np.full(m, -1, dtype=np.int64)
        self.app_start_s = np.zeros(m, dtype=np.float64)
        self._snap_dynamic_j = np.zeros(m, dtype=np.float64)
        self._snap_static_j = np.zeros(m, dtype=np.float64)
        self.mgr_next = np.full(m, math.inf, dtype=np.float64)
        # Lower bound on min(mgr_next[active]); -inf forces the first
        # tick (and any tick after a restore) to recompute it.
        self._mgr_min = -math.inf
        self.records: List[List[AppRecord]] = [[] for _ in range(m)]
        self.total_time_s = np.zeros(m, dtype=np.float64)
        self.profile_len = np.zeros(m, dtype=np.int64)
        self._final_perf: List[Optional[Dict[str, float]]] = [None] * m
        self._final_energy: List[Optional[tuple]] = [None] * m
        # Vector form of each member's max_time_s (inf = no limit) so
        # the per-tick run-loop bookkeeping is one comparison, not a
        # Python loop over every member.
        self._max_time_vec = np.asarray(
            [
                math.inf if s.max_time_s is None else float(s.max_time_s)
                for s in self.members
            ],
            dtype=np.float64,
        )
        # Lower bound on min(max_time over active members), used with
        # the workloads ``done_dirty`` flag to skip run-loop bookkeeping
        # on ticks where nothing can possibly have finished.
        self._min_max_time = float(np.min(self._max_time_vec))
        self._prepared = False
        # Built in prepare() (after managers attach): the vectorized
        # control plane for proposed-manager members.
        self._control: Optional[BatchedControlPlane] = None
        self._timer: Optional[SectionTimer] = None

    def attach_timer(self, timer: Optional[SectionTimer]) -> None:
        """Attach (or detach, with None) per-phase tick-loop accounting.

        Section names mirror the scalar loop's (schedule/app/governor/
        sensors/manager) plus ``chip`` (the batched power+thermal step)
        and ``advance`` (run-loop bookkeeping), so a report reads the
        same either way: ``manager`` is the control plane, everything
        else the data plane.  With no timer attached each phase pays one
        ``is not None`` check.
        """
        self._timer = timer

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def prepare(self) -> None:
        """Mirror of ``Simulation.prepare`` for every member."""
        for member, state in enumerate(self.members):
            state.manager_sensors.reset()
            # (Eval sensors hold no filter state here: EMA is rejected
            # at construction, and reset never touches the RNG.)
            if state.manager is not None:
                state.manager.attach(self.views[member])
                self.mgr_next[member] = _manager_next_fire(state.manager)
        for member in range(self.num_members):
            self._start_next_app(member)
        self._control = BatchedControlPlane(self)
        self._prepared = True

    def _start_next_app(self, member: int) -> bool:
        """Mirror of ``Simulation._start_next_app`` for one member."""
        state = self.members[member]
        self.app_index[member] += 1
        index = int(self.app_index[member])
        if index >= len(state.applications):
            return False
        app = state.applications[index]
        self.workloads.load_app_row(member, app)
        self.scheduler.set_threads_row(member, state.mapping)
        self.app_start_s[member] = self.now
        self._snap_dynamic_j[member] = self.chip.dynamic_j[member]
        self._snap_static_j[member] = self.chip.static_j[member]
        if state.manager is not None and index > 0:
            state.manager.on_app_switch(self.views[member], app)
            self.mgr_next[member] = _manager_next_fire(state.manager)
            self._mgr_min = -math.inf  # fire time may have moved earlier
        return True

    def _finish_app(self, member: int, completed: bool) -> None:
        """Mirror of ``Simulation._finish_app`` for one member."""
        state = self.members[member]
        app = state.applications[int(self.app_index[member])]
        self.records[member].append(
            AppRecord(
                name=app.spec.name,
                dataset=app.spec.dataset,
                start_s=float(self.app_start_s[member]),
                end_s=self.now,
                completed_iterations=len(self.workloads.completions[member]),
                completed=completed,
                dynamic_energy_j=float(
                    self.chip.dynamic_j[member] - self._snap_dynamic_j[member]
                ),
                static_energy_j=float(
                    self.chip.static_j[member] - self._snap_static_j[member]
                ),
            )
        )

    def _freeze(self, member: int, completed: bool) -> None:
        """Snapshot a member's results where its scalar loop would break."""
        self.active[member] = False
        self.run_completed[member] = completed
        self.total_time_s[member] = self.now
        self.profile_len[member] = self._eval_count
        self._final_perf[member] = {
            name: getattr(self.perf, name)[member].item()
            for name in _PERF_CHANNELS
        }
        self._final_energy[member] = (
            float(self.chip.dynamic_j[member]),
            float(self.chip.static_j[member]),
            float(self.chip.energy_elapsed_s[member]),
        )

    # ------------------------------------------------------------------
    # The tick
    # ------------------------------------------------------------------
    def step(self) -> None:
        """Mirror of ``Simulation.step`` across the whole ensemble."""
        timer = self._timer
        dt = self.dt
        if timer is not None:
            mark = timer.now()
        # The scalar loop snapshots governor frequencies at the top of
        # the tick; the governor update below must not feed back into
        # this tick's chip step.  ``update`` always rebinds ``freq`` to
        # a fresh array (the in-place writers — adopt/switch/restore —
        # all run after the chip consumed this snapshot), so holding the
        # current array IS the snapshot; no defensive copy needed.
        freq_used = self.governors.freq
        util, activity = self.scheduler.tick(freq_used, dt)
        if timer is not None:
            mark = timer.lap("schedule", mark)
        self.workloads.tick(dt)
        if timer is not None:
            mark = timer.lap("app", mark)
        self.governors.update(util)
        if timer is not None:
            mark = timer.lap("governor", mark)
        self.chip.step(activity, freq_used, dt)
        self.now += dt
        if timer is not None:
            mark = timer.lap("chip", mark)

        if self.now + 1e-9 >= self._next_eval_s:
            reading = self.eval_sensors.read(self.chip.core_temps())
            self._append_eval(reading)
            self._next_eval_s += self.eval_sample_period_s
        if timer is not None:
            mark = timer.lap("sensors", mark)

        # ``_mgr_min`` is a monotone lower bound on the earliest active
        # manager fire time (stale values are only ever too low, which
        # just costs a recompute), so most ticks skip the member scan.
        if self.now + 1e-9 >= self._mgr_min:
            due = np.nonzero(self.active & (self.now + 1e-9 >= self.mgr_next))[0]
            if due.size:
                # Batched members take the vectorized sample/decide
                # path; whatever remains runs the scalar loop.
                due = self._control.on_tick(due)
            for member in due:
                manager = self.members[member].manager
                manager.on_tick(self.views[member])
                self.mgr_next[member] = _manager_next_fire(manager)
            self._mgr_min = float(
                np.min(np.where(self.active, self.mgr_next, math.inf))
            )
        if timer is not None:
            timer.lap("manager", mark)
            timer.count_tick()

    def _append_eval(self, reading: np.ndarray) -> None:
        capacity = self._profile_buf.shape[2]
        if self._eval_count == capacity:
            grown = np.empty(
                (self.num_members, self.num_cores, capacity * 2),
                dtype=np.float64,
            )
            grown[:, :, :capacity] = self._profile_buf
            self._profile_buf = grown
        self._profile_buf[:, :, self._eval_count] = reading
        self._eval_count += 1

    def advance(self) -> None:
        """Mirror of the scalar run loop's bookkeeping after one step."""
        timer = self._timer
        if timer is None:
            self._advance()
            return
        mark = timer.now()
        self._advance()
        timer.lap("advance", mark)

    def _advance(self) -> None:
        w = self.workloads
        # ``done_dirty`` is conservative: it is set whenever any thread
        # may have entered DONE, so a clear flag plus a clock short of
        # every member's time limit proves no trigger can fire.
        if not w.done_dirty and self.now < self._min_max_time:
            return
        done = w.done_mask()
        w.done_dirty = False
        trigger = self.active & (done | (self.now >= self._max_time_vec))
        if not trigger.any():
            return
        for member in np.nonzero(trigger)[0]:
            if done[member]:
                self._finish_app(member, completed=True)
                if not self._start_next_app(member):
                    self._freeze(member, completed=True)
            else:
                # max_time_s reached (the scalar loop's elif branch:
                # checked only when the app is not done).
                self._finish_app(member, completed=False)
                self._freeze(member, completed=False)
        # Frozen members drop out of the time-limit watch; keep the
        # lower bound over the still-active ones.
        self._min_max_time = float(
            np.min(np.where(self.active, self._max_time_vec, math.inf))
        )

    def run(self, max_ticks: Optional[int] = None):
        """Step until every member finishes; return per-member results.

        Returns ``None`` when stopped early by ``max_ticks`` with
        members still active (the benchmark harness does this).
        """
        if not self._prepared:
            self.prepare()
        ticks = 0
        while bool(self.active.any()):
            self.step()
            self.advance()
            ticks += 1
            if max_ticks is not None and ticks >= max_ticks:
                break
        if bool(self.active.any()):
            return None
        return self.results()

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def results(self) -> List[SimulationResult]:
        """Per-member :class:`SimulationResult`, scalar-identical."""
        if bool(self.active.any()):
            raise RuntimeError(
                "ensemble still has active members; run() to completion "
                "before collecting results"
            )
        if self._control is not None:
            self._control.sync_out()
        out: List[SimulationResult] = []
        for member in range(self.num_members):
            state = self.members[member]
            profile = ThermalProfile(self.num_cores, self.eval_sample_period_s)
            length = int(self.profile_len[member])
            profile._adopt(self._profile_buf[member, :, :length])
            dynamic_j, static_j, elapsed_s = self._final_energy[member]
            perf = PerfCounters()
            final_perf = self._final_perf[member]
            perf.executed_cycles = final_perf["executed_cycles"]
            perf.cache_misses = final_perf["cache_misses"]
            perf.page_faults = final_perf["page_faults"]
            perf.migrations = int(final_perf["migrations"])
            perf.sample_events = int(final_perf["sample_events"])
            perf.decision_events = int(final_perf["decision_events"])
            out.append(
                SimulationResult(
                    profile=profile,
                    energy=EnergyMeter(dynamic_j, static_j, elapsed_s),
                    perf=perf,
                    app_records=list(self.records[member]),
                    total_time_s=float(self.total_time_s[member]),
                    completed=bool(self.run_completed[member]),
                    manager_stats=(
                        state.manager.stats()
                        if state.manager is not None
                        else {}
                    ),
                    fault_stats=(
                        state.fault_injector.stats.as_dict()
                        if state.fault_injector is not None
                        else {}
                    ),
                    supervisor_stats={},
                )
            )
        return out

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def capture(self) -> dict:
        """In-memory snapshot of the whole ensemble at a tick boundary."""
        if self._control is not None:
            # Flush the stacked control-plane state onto the scalar
            # facade the checkpoint helpers read.
            self._control.sync_out()
        return {
            "now": self.now,
            "next_eval_s": self._next_eval_s,
            "eval_count": self._eval_count,
            "active": self.active.copy(),
            "run_completed": self.run_completed.copy(),
            "app_index": self.app_index.copy(),
            "app_start_s": self.app_start_s.copy(),
            "snap_dynamic_j": self._snap_dynamic_j.copy(),
            "snap_static_j": self._snap_static_j.copy(),
            "mgr_next": self.mgr_next.copy(),
            "total_time_s": self.total_time_s.copy(),
            "profile_len": self.profile_len.copy(),
            "profile_buf": self._profile_buf[:, :, : self._eval_count].copy(),
            "records": [list(r) for r in self.records],
            "final_perf": [
                dict(d) if d is not None else None for d in self._final_perf
            ],
            "final_energy": list(self._final_energy),
            "workloads": self.workloads.capture(),
            "scheduler": self.scheduler.capture(),
            "governors": self.governors.capture(),
            "chip": self.chip.capture(),
            "eval_sensors": self.eval_sensors.capture(),
            "perf": self.perf.capture(),
            "member_states": [
                {
                    "manager": (
                        _capture_manager(state.manager)
                        if state.manager is not None
                        else None
                    ),
                    "manager_sensors": _capture_sensor_bank(
                        state.manager_sensors
                    ),
                    "fault_injector": (
                        capture_fault_injector(state.fault_injector)
                        if state.fault_injector is not None
                        else None
                    ),
                    "mapping": state.mapping,
                }
                for state in self.members
            ],
        }

    def restore(self, state: dict) -> None:
        """Load a :meth:`capture` snapshot into this (fresh) ensemble.

        Mirrors the scalar checkpoint contract: the ensemble is prepared
        first (attaching managers, which may draw), then every piece of
        adopted state is overwritten with the snapshot, so the net
        effect is exactly the captured trajectory.
        """
        if not self._prepared:
            self.prepare()
        self.now = state["now"]
        self._next_eval_s = state["next_eval_s"]
        self._eval_count = state["eval_count"]
        self.active[...] = state["active"]
        self.run_completed[...] = state["run_completed"]
        self.app_index[...] = state["app_index"]
        self.app_start_s[...] = state["app_start_s"]
        self._snap_dynamic_j[...] = state["snap_dynamic_j"]
        self._snap_static_j[...] = state["snap_static_j"]
        self.total_time_s[...] = state["total_time_s"]
        self.profile_len[...] = state["profile_len"]
        while self._profile_buf.shape[2] < self._eval_count:
            self._append_capacity()
        self._profile_buf[:, :, : self._eval_count] = state["profile_buf"]
        self.records = [list(r) for r in state["records"]]
        self._final_perf = [
            dict(d) if d is not None else None for d in state["final_perf"]
        ]
        self._final_energy = list(state["final_energy"])
        for member, mstate in enumerate(state["member_states"]):
            mem = self.members[member]
            if mstate["manager"] is not None:
                _restore_manager(mem.manager, mstate["manager"])
            _restore_sensor_bank(mem.manager_sensors, mstate["manager_sensors"])
            if mstate["fault_injector"] is not None:
                restore_fault_injector(
                    mem.fault_injector, mstate["fault_injector"]
                )
            mem.mapping = mstate["mapping"]
            # The workload RNG list must point at the app the snapshot
            # had in flight before its bit state is overwritten below.
            index = min(
                int(self.app_index[member]), len(mem.applications) - 1
            )
            self.workloads._rngs[member] = mem.applications[index]._rng
        if self._control is not None:
            # Re-adopt the restored scalar agents into the stacked arrays.
            self._control.sync_in()
        self.workloads.restore(state["workloads"])
        self.scheduler.restore(state["scheduler"])
        self.governors.restore(state["governors"])
        self.chip.restore(state["chip"])
        self.eval_sensors.restore(state["eval_sensors"])
        self.perf.restore(state["perf"])
        self.mgr_next[...] = state["mgr_next"]
        self._mgr_min = -math.inf  # restored fire times: recompute lazily

    def _append_capacity(self) -> None:
        capacity = self._profile_buf.shape[2]
        grown = np.empty(
            (self.num_members, self.num_cores, capacity * 2), dtype=np.float64
        )
        grown[:, :, :capacity] = self._profile_buf
        self._profile_buf = grown
