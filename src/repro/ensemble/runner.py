"""Ensemble execution of experiment-engine job specs.

Builds one scalar :class:`~repro.soc.simulator.Simulation` per member
through the *same* setup helper the scalar runner uses
(:func:`repro.experiments.runner._build_workload_setup`), adopts them
into an :class:`~repro.ensemble.engine.EnsembleSimulation`, and reduces
each member's result through the same summary helper — so a member's
:class:`~repro.experiments.runner.RunSummary` is bit-identical to what
``run_workload`` would have produced, and can therefore share the
content-addressed result cache with scalar runs.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.config import default_reliability_config
from repro.ensemble.engine import EnsembleSimulation
from repro.experiments.engine.spec import EnsembleJobSpec, JobSpec
from repro.experiments.runner import (
    RunSummary,
    _build_workload_setup,
    _summarise_workload,
    _validate_policy,
)
from repro.soc.simulator import Simulation

#: ``run_workload``'s default safety limit, applied when a member spec
#: leaves ``max_time_s`` unset (mirrors the worker's kwarg elision).
_DEFAULT_MAX_TIME_S = 20000.0


def _member_simulation(spec: JobSpec) -> Simulation:
    """One member's simulation, built exactly like the scalar runner's."""
    if spec.kind != "workload":
        raise ValueError(
            f"ensembles run workload jobs only, got kind {spec.kind!r}"
        )
    _validate_policy(spec.policy)
    return _build_workload_setup(
        spec.app,
        spec.dataset,
        spec.policy,
        seed=spec.seed,
        train_passes=spec.train_passes,
        agent_config=spec.agent_config,
        reliability=spec.reliability,
        platform=spec.platform,
        action_space=spec.action_space(),
        ge_config=spec.ge_config,
        mapping=spec.mapping,
        iteration_scale=spec.iteration_scale,
        max_time_s=(
            spec.max_time_s
            if spec.max_time_s is not None
            else _DEFAULT_MAX_TIME_S
        ),
        faults=spec.faults,
        supervisor=spec.supervisor,
    )


def run_ensemble_workloads(specs: Sequence[JobSpec]) -> List[RunSummary]:
    """Run workload job specs as one ensemble; one summary per spec.

    Member results do not depend on which other members share the
    ensemble (cross-member isolation), so any subset of a job list can
    be batched together without changing anyone's summary.
    """
    specs = list(specs)
    simulations = [_member_simulation(spec) for spec in specs]
    ensemble = EnsembleSimulation(simulations)
    results = ensemble.run()
    summaries: List[RunSummary] = []
    for spec, sim, result in zip(specs, simulations, results):
        reliability = (
            spec.reliability
            if spec.reliability is not None
            else default_reliability_config()
        )
        dataset = (
            spec.dataset
            if spec.dataset is not None
            else sim.applications[-1].spec.dataset
        )
        summaries.append(
            _summarise_workload(
                result,
                spec.app,
                dataset,
                spec.policy,
                spec.train_passes,
                reliability,
            )
        )
    return summaries


def run_ensemble_job(
    spec: EnsembleJobSpec, cache=None
) -> List[RunSummary]:
    """Execute an ensemble job, sharing the per-member result cache.

    Each member is cached under its *own* scalar
    :func:`~repro.experiments.engine.spec.job_key` — bit-faithfulness
    makes the vectorized and scalar paths interchangeable cache
    producers.  Cached members are skipped; the remainder run as one
    (smaller) ensemble.

    Parameters
    ----------
    spec:
        The ensemble job.
    cache:
        Optional :class:`~repro.experiments.engine.cache.ResultCache`.
    """
    members = list(spec.members)
    summaries: List[Optional[RunSummary]] = [None] * len(members)
    pending: List[int] = []
    if cache is not None:
        for index, member in enumerate(members):
            hit = cache.get(member)
            if hit is not None:
                summaries[index] = hit
            else:
                pending.append(index)
    else:
        pending = list(range(len(members)))
    if pending:
        fresh = run_ensemble_workloads([members[i] for i in pending])
        for index, summary in zip(pending, fresh):
            summaries[index] = summary
            if cache is not None:
                cache.put(members[index], summary)
    return summaries
