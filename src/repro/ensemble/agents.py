"""Batched dual-Q learning agents.

Stacks the dual Q-tables of a uniform group of
:class:`~repro.core.agent.QLearningThermalAgent` members into
``(members, states, actions)`` arrays so that an epoch harvest — all
members whose decision epoch completes on the same tick — runs the
Eq. 7 TD update, the ``max_a Q`` lookahead and the greedy-policy
convergence scan as masked vector kernels instead of per-member Python.

Bit-faithfulness contract (the same one the data plane obeys):

* The TD kernel gathers ``Q[m, s_prev, a_prev]`` with fancy indexing and
  applies exactly the scalar sequence ``delta = r + gamma * max_a
  Q[m, s'] - Q[m, s, a]; Q[m, s, a] += alpha * delta`` — elementwise
  ufuncs on the gathered vectors perform the identical IEEE operations
  per member, and ``np.max`` over a Q row is exact regardless of
  batching (a comparison reduction does not round).
* Everything stateful-but-cheap stays on the *real scalar objects*:
  the per-member :class:`~repro.core.schedule.AlphaSchedule` (``math.exp``
  per epoch), :class:`~repro.core.variation.VariationDetector`,
  :class:`~repro.core.reward.RewardFunction` evaluation,
  :class:`~repro.core.state.StateSpace` observation, agent statistics
  and the exploration RNG.  Per-member RNG draws happen in the exact
  scalar draw order (each member owns an independent generator, so only
  the within-member sequence matters).
* ``np.argmax`` (first-occurrence ties) mirrors the scalar tie-break in
  both the greedy action and the convergence policy scan.

The scalar ``agent.qtable`` / ``agent._trec`` attributes go stale while
the stacked arrays are live; :meth:`BatchedAgents.sync_out` writes them
back (and :meth:`sync_in` re-adopts them) so the checkpoint helpers in
:mod:`repro.checkpoint.state` keep reading the scalar facade unchanged.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.core.agent import (
    ACTION_HYSTERESIS,
    CONVERGENCE_WINDOW,
    EXPLOITATION_ALPHA_FLOOR,
    INTER_COOLDOWN_EPOCHS,
    QLearningThermalAgent,
)
from repro.core.schedule import LearningPhase
from repro.core.variation import VariationKind, VariationReport


class BatchedAgents:
    """Stacked dual Q-tables for a uniform group of learning agents.

    Parameters
    ----------
    agents:
        The scalar agents, one per batched member.  All must share the
        same state-space size, action-menu size and samples-per-epoch
        (validated by the caller); everything else may differ.
    num_cores:
        Width of a sensor sample (the TRec buffer's last axis).
    """

    def __init__(
        self, agents: Sequence[QLearningThermalAgent], num_cores: int
    ) -> None:
        self.agents: List[QLearningThermalAgent] = list(agents)
        reference = self.agents[0]
        self.num_states = reference.states.num_states
        self.num_actions = len(reference.actions)
        self.samples_per_epoch = reference.samples_per_epoch
        b, s, a = len(self.agents), self.num_states, self.num_actions
        self.q3 = np.zeros((b, s, a), dtype=np.float64)
        self.visits3 = np.zeros((b, s, a), dtype=np.int64)
        self.snap3 = np.zeros((b, s, a), dtype=np.float64)
        self.has_snap = np.zeros(b, dtype=bool)
        self.trec = np.zeros(
            (b, self.samples_per_epoch, num_cores), dtype=np.float64
        )
        self.trec_len = np.zeros(b, dtype=np.int64)
        self.gamma = np.asarray(
            [agent.config.discount for agent in self.agents], dtype=np.float64
        )
        self.sync_in()

    # ------------------------------------------------------------------
    # Scalar-facade synchronisation
    # ------------------------------------------------------------------
    def sync_in(self) -> None:
        """Adopt the scalar agents' live state into the stacked arrays."""
        for slot, agent in enumerate(self.agents):
            table = agent.qtable
            self.q3[slot] = table._q
            self.visits3[slot] = table._visits
            snapshot = table._exploration_snapshot
            self.has_snap[slot] = snapshot is not None
            if snapshot is not None:
                self.snap3[slot] = snapshot
            self.trec_len[slot] = len(agent._trec)
            for index, sample in enumerate(agent._trec):
                self.trec[slot, index] = sample

    def sync_out(self) -> None:
        """Write the stacked state back onto the scalar agents.

        After this call every attribute the checkpoint layer's
        ``capture_agent`` reads agrees with what the member's scalar
        twin would hold at the same tick.
        """
        for slot, agent in enumerate(self.agents):
            table = agent.qtable
            table._q = self.q3[slot].copy()
            table._visits = self.visits3[slot].copy()
            table._exploration_snapshot = (
                self.snap3[slot].copy() if self.has_snap[slot] else None
            )
            agent._trec = [
                self.trec[slot, index].copy()
                for index in range(int(self.trec_len[slot]))
            ]

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def record_samples(self, slots: np.ndarray, readings: np.ndarray) -> None:
        """Push one sensor sample per slot into the TRec buffers."""
        self.trec[slots, self.trec_len[slots]] = readings
        self.trec_len[slots] += 1

    def epoch_ready(self, slots: np.ndarray) -> np.ndarray:
        """The subset of ``slots`` whose decision epoch just filled."""
        return slots[self.trec_len[slots] >= self.samples_per_epoch]

    # ------------------------------------------------------------------
    # Q-table row helpers (scalar semantics on stacked rows)
    # ------------------------------------------------------------------
    def _best_action(self, slot: int, state: int) -> int:
        """``QTable.best_action`` on a stacked row (same tie-breaks)."""
        if self.visits3[slot, state].sum() == 0:
            return self._global_best_action(slot)
        return int(np.argmax(self.q3[slot, state]))

    def _global_best_action(self, slot: int) -> int:
        """``QTable.global_best_action`` on a stacked row."""
        visits = self.visits3[slot]
        visited = visits > 0
        if not visited.any():
            return 0
        sums = np.where(visited, self.q3[slot], 0.0).sum(axis=0)
        counts = visited.sum(axis=0)
        means = np.where(counts > 0, sums / np.maximum(counts, 1), -np.inf)
        return int(np.argmax(means))

    # ------------------------------------------------------------------
    # The harvested decision epoch
    # ------------------------------------------------------------------
    def decide_batch(
        self,
        slots: Sequence[int],
        performance: Sequence[float],
        constraint: Sequence[float],
        now_s: float,
    ) -> List[int]:
        """Algorithm 1 for every harvested member; returns action indices.

        The scalar ``decide()`` runs its five steps member-by-member;
        here each *step* runs across the harvest, with the expensive
        table operations (TD update, lookahead, convergence argmax)
        batched.  Members are independent (no shared state, independent
        RNGs), so reordering across members preserves bit-identity as
        long as each member's own step order is unchanged.
        """
        agents = self.agents
        num_actions = self.num_actions
        count = len(slots)
        observations = [None] * count
        states = np.empty(count, dtype=np.int64)

        # Steps 1-2: variation handling and state identification (the
        # detector, schedule and state space stay scalar per member; the
        # dual-table responses become stacked row operations).
        for i, slot in enumerate(slots):
            agent = agents[slot]
            stacked = self.trec[slot]
            epoch_series = [
                list(stacked[:, core]) for core in range(stacked.shape[1])
            ]
            observation = agent.states.observe(
                epoch_series,
                agent.config.sampling_interval_s,
                context_samples=agent._prev_epoch_series,
            )
            agent._prev_epoch_series = epoch_series
            agent.last_observation = observation
            observations[i] = observation

            action_stable = agent._same_action_count >= 3
            report = agent.detector.observe(
                observation, action_stable=action_stable
            )
            inter_armed = (
                agent.schedule.epoch >= 2 * num_actions
                and agent.stats.epochs - agent._last_inter_epoch
                >= INTER_COOLDOWN_EPOCHS
            )
            if report.kind is VariationKind.INTER and not inter_armed:
                report = VariationReport(
                    VariationKind.INTRA,
                    report.delta_stress_ma,
                    report.delta_aging_ma,
                )
            if report.kind is VariationKind.INTER:
                # QTable.reset() on the stacked row.
                self.q3[slot].fill(0.0)
                self.visits3[slot].fill(0)
                self.has_snap[slot] = False
                agent.schedule.restart_inter()
                agent.detector.reset()
                agent._prev_state = None
                agent._prev_action = None
                agent._prev_prev_action = None
                agent._same_action_count = 0
                agent._policy_stable_for = 0
                agent._last_policy = None
                agent._last_inter_epoch = agent.stats.epochs
                agent.stats.inter_events += 1
            elif report.kind is VariationKind.INTRA:
                settled = agent.schedule.alpha < agent.config.alpha_intra
                cooled_down = (
                    agent.stats.epochs - agent._last_intra_epoch
                    >= agent.config.ma_window
                )
                if settled and cooled_down and self.has_snap[slot]:
                    # QTable.restore_exploration() on the stacked row.
                    self.q3[slot] = self.snap3[slot]
                    agent.schedule.restart_intra()
                    agent._last_intra_epoch = agent.stats.epochs
                    agent.stats.intra_events += 1
            states[i] = agent.states.state_of(observation)

        # Step 3: reward the previous action and update the Q-tables —
        # the masked, epoch-aligned TD kernel (Eq. 7).  Rewards and the
        # learning-rate floor are evaluated scalar per member (they use
        # ``math.exp``); the table arithmetic is one fancy-indexed pass.
        upd: List[int] = []
        rewards: List[float] = []
        alphas: List[float] = []
        for i, slot in enumerate(slots):
            agent = agents[slot]
            if agent._prev_state is None or agent._prev_action is None:
                continue
            breakdown = agent.reward_fn.evaluate(
                observations[i], performance[i], constraint[i]
            )
            if breakdown.unsafe:
                agent.stats.unsafe_epochs += 1
            agent.stats.reward_sum += breakdown.total
            upd.append(i)
            rewards.append(breakdown.total)
            alphas.append(
                max(agent.schedule.alpha, EXPLOITATION_ALPHA_FLOOR)
            )
        if upd:
            rows = np.asarray([slots[i] for i in upd], dtype=np.int64)
            prev_s = np.asarray(
                [agents[slots[i]]._prev_state for i in upd], dtype=np.int64
            )
            prev_a = np.asarray(
                [agents[slots[i]]._prev_action for i in upd], dtype=np.int64
            )
            next_s = states[upd]
            reward_vec = np.asarray(rewards, dtype=np.float64)
            alpha_vec = np.asarray(alphas, dtype=np.float64)
            best_next = np.max(self.q3[rows, next_s], axis=1)
            gathered = self.q3[rows, prev_s, prev_a]
            delta = reward_vec + self.gamma[rows] * best_next - gathered
            self.q3[rows, prev_s, prev_a] = gathered + alpha_vec * delta
            self.visits3[rows, prev_s, prev_a] = (
                self.visits3[rows, prev_s, prev_a] + 1
            )

        # Step 4-5: phase bookkeeping, action selection (exact scalar
        # RNG draw order per member), schedule advance and statistics.
        chosen: List[int] = []
        for i, slot in enumerate(slots):
            agent = agents[slot]
            schedule = agent.schedule
            state = int(states[i])
            if schedule.exploration_just_ended():
                agent.stats.exploration_end_epoch = agent.stats.epochs
            if (
                not self.has_snap[slot]
                and schedule.phase is LearningPhase.EXPLOITATION
            ):
                self.snap3[slot] = self.q3[slot]
                self.has_snap[slot] = True
                if agent.stats.exploitation_entry_epoch is None:
                    agent.stats.exploitation_entry_epoch = agent.stats.epochs

            if (
                schedule.phase is LearningPhase.EXPLORATION
                or schedule.epoch < num_actions
            ):
                action = schedule.epoch % num_actions
            elif agent._rng.random() < schedule.epsilon:
                action = int(agent._rng.integers(num_actions))
            else:
                action = self._best_action(slot, state)
                if (
                    agent._prev_action is not None
                    and self.q3[slot, state, agent._prev_action]
                    >= self.q3[slot, state, action] - ACTION_HYSTERESIS
                ):
                    action = agent._prev_action

            schedule.advance()
            agent._prev_state = state
            if agent._prev_action is not None and action == agent._prev_action:
                agent._same_action_count += 1
            else:
                agent._same_action_count = 1
            agent._prev_prev_action = agent._prev_action
            agent._prev_action = action
            self.trec_len[slot] = 0
            agent.stats.epochs += 1
            label = agent.actions[action].label
            agent.stats.last_action_label = label
            agent.stats.action_counts[label] = (
                agent.stats.action_counts.get(label, 0) + 1
            )
            chosen.append(action)

        # Convergence tracking: one batched argmax over the harvested
        # tables (axis-2 argmax keeps the scalar first-occurrence
        # tie-break per row), then scalar per-member comparison.
        slot_vec = np.asarray(slots, dtype=np.int64)
        policies = np.argmax(self.q3[slot_vec], axis=2)
        for i, slot in enumerate(slots):
            agent = agents[slot]
            policy = policies[i]
            if agent._last_policy is not None and np.array_equal(
                policy, agent._last_policy
            ):
                agent._policy_stable_for += 1
            else:
                agent._policy_stable_for = 0
                agent.stats.last_policy_change_epoch = agent.stats.epochs
            agent._last_policy = policy.copy()
            if (
                agent.stats.convergence_epoch is None
                and agent._policy_stable_for >= CONVERGENCE_WINDOW
            ):
                agent.stats.convergence_epoch = (
                    agent.stats.epochs - CONVERGENCE_WINDOW
                )
        return chosen
