"""Batched cpufreq governors.

Mirrors :mod:`repro.sched.governors` over the ensemble axis.  Each
member's governor becomes a *kind code* plus a row in a
``(members, cores)`` frequency array; the per-kind update rules run as
masked vector ops.  Frequencies are always exact OPP ladder values
(validated at adoption), so the conservative governor's exact-hit rung
lookup maps onto ``np.searchsorted`` against the ascending ladder.

Governor switches replicate ``Simulation._actuate_governor``: a fresh
scalar governor starts at the ladder minimum (or its userspace target),
and only *adaptive* kinds (ondemand/conservative) inherit the previous
frequencies.
"""

from __future__ import annotations

from types import MappingProxyType

import numpy as np

from repro.power.opp import OppLadder
from repro.sched.governors import (
    ConservativeGovernor,
    Governor,
    OndemandGovernor,
    PerformanceGovernor,
    PowersaveGovernor,
    UserspaceGovernor,
)

KIND_ONDEMAND = 0
KIND_CONSERVATIVE = 1
KIND_PERFORMANCE = 2
KIND_POWERSAVE = 3
KIND_USERSPACE = 4

_ADAPTIVE_KINDS = (KIND_ONDEMAND, KIND_CONSERVATIVE)

_NAME_TO_KIND = MappingProxyType(
    {
        "ondemand": KIND_ONDEMAND,
        "conservative": KIND_CONSERVATIVE,
        "performance": KIND_PERFORMANCE,
        "powersave": KIND_POWERSAVE,
        "userspace": KIND_USERSPACE,
    }
)


def _kind_of(governor: Governor) -> int:
    if isinstance(governor, OndemandGovernor):
        return KIND_ONDEMAND
    if isinstance(governor, ConservativeGovernor):
        return KIND_CONSERVATIVE
    if isinstance(governor, PerformanceGovernor):
        return KIND_PERFORMANCE
    if isinstance(governor, PowersaveGovernor):
        return KIND_POWERSAVE
    if isinstance(governor, UserspaceGovernor):
        return KIND_USERSPACE
    raise ValueError(
        f"unsupported governor type for ensembles: {type(governor).__name__}"
    )


class BatchedGovernors:
    """All members' governor state as kind codes + a frequency matrix."""

    def __init__(self, ladder: OppLadder, num_members: int, num_cores: int) -> None:
        self.ladder = ladder
        self.num_members = num_members
        self.num_cores = num_cores
        self.ascending = np.asarray(ladder.frequencies(), dtype=np.float64)
        self.f_min = float(ladder.min_point.frequency_hz)
        self.f_max = float(ladder.max_point.frequency_hz)
        m, c = num_members, num_cores
        self.kinds = np.zeros(m, dtype=np.int64)
        self.freq = np.full((m, c), self.f_min, dtype=np.float64)
        self.user_target = np.zeros(m, dtype=np.float64)
        self.up_threshold = np.full(m, 0.80, dtype=np.float64)
        self.down_threshold = np.full(m, 0.30, dtype=np.float64)
        # Column views over the threshold arrays (all writers mutate the
        # bases in place, so the views track them for free).
        self._up_col = self.up_threshold[:, None]
        self._down_col = self.down_threshold[:, None]
        # Uniform-kind shortcut: -1 = mixed, else the shared kind code.
        # Recomputed lazily after any adopt/switch/restore.
        self._uniform_kind = KIND_ONDEMAND
        self._kinds_dirty = True

    # ------------------------------------------------------------------
    # Adoption / switching
    # ------------------------------------------------------------------
    def freq_index(self, freq: np.ndarray) -> np.ndarray:
        """Ladder index of each (exact) frequency; raises when off-ladder."""
        idx = np.searchsorted(self.ascending, freq)
        idx = np.clip(idx, 0, self.ascending.size - 1)
        if not np.array_equal(self.ascending[idx], freq):
            raise ValueError("frequency off the OPP ladder")
        return idx

    def adopt_row(self, member: int, governor: Governor) -> None:
        """Import one member's live scalar governor."""
        kind = _kind_of(governor)
        self.kinds[member] = kind
        row = np.asarray(governor.frequencies(), dtype=np.float64)
        self.freq_index(row)  # validate: exact ladder values only
        self.freq[member] = row
        if isinstance(governor, UserspaceGovernor):
            self.user_target[member] = governor.target_frequency_hz
        self.up_threshold[member] = getattr(governor, "up_threshold", 0.80)
        self.down_threshold[member] = getattr(governor, "down_threshold", 0.30)
        self._kinds_dirty = True

    def switch_row(
        self, member: int, name: str, userspace_frequency_hz: float | None
    ) -> None:
        """``_actuate_governor`` for one member (post fault-outcome)."""
        kind = _NAME_TO_KIND[name]
        previous = self.freq[member].copy()
        # A fresh scalar governor starts at the ladder minimum; only the
        # adaptive kinds then inherit the running clocks.
        self.freq[member] = self.f_min
        self.up_threshold[member] = 0.80
        self.down_threshold[member] = 0.30
        if kind == KIND_USERSPACE:
            assert userspace_frequency_hz is not None
            target = self.ladder.nearest(userspace_frequency_hz).frequency_hz
            self.user_target[member] = target
            self.freq[member] = target
        elif kind in _ADAPTIVE_KINDS:
            self.freq[member] = previous
        self.kinds[member] = kind
        self._kinds_dirty = True

    # ------------------------------------------------------------------
    # The per-tick update
    # ------------------------------------------------------------------
    def update(self, util: np.ndarray) -> None:
        """Governor.update for every member (util is (members, cores))."""
        kinds = self.kinds
        freq = self.freq
        asc = self.ascending
        if self._kinds_dirty:
            first = int(kinds[0]) if kinds.size else -1
            self._uniform_kind = (
                first if bool(np.all(kinds == first)) else -1
            )
            self._kinds_dirty = False
        uniform = self._uniform_kind
        if uniform >= 0:
            # Homogeneous ensemble: run the one kind's rule directly —
            # merging through an all-True where() selects the same
            # values, so the shortcut is bit-identical.
            if uniform == KIND_ONDEMAND:
                up = self._up_col
                bound = util * freq / up - 1.0
                # searchsorted never returns a negative index, so only
                # the upper bound needs clamping (same values as clip).
                idx = asc.searchsorted(bound, side="left")
                scaled = asc[np.minimum(idx, asc.size - 1)]
                self.freq = np.where(util >= up, self.f_max, scaled)
            elif uniform == KIND_CONSERVATIVE:
                cur_idx = asc.searchsorted(freq)
                cur_idx = np.clip(cur_idx, 0, asc.size - 1)
                delta = np.where(
                    util >= self._up_col,
                    1,
                    np.where(util <= self._down_col, -1, 0),
                )
                self.freq = asc[np.clip(cur_idx + delta, 0, asc.size - 1)]
            elif uniform == KIND_PERFORMANCE:
                self.freq = np.full_like(freq, self.f_max)
            elif uniform == KIND_POWERSAVE:
                self.freq = np.full_like(freq, self.f_min)
            else:  # KIND_USERSPACE
                self.freq = np.broadcast_to(
                    self.user_target[:, None], freq.shape
                ).copy()
            return
        new_freq = freq
        od = kinds == KIND_ONDEMAND
        if od.any():
            up = self.up_threshold[:, None]
            bound = util * freq / up - 1.0
            idx = np.searchsorted(asc, bound, side="left")
            # Overflow (bound above the ladder) falls back to f_max,
            # which clipping to the last rung also yields.
            scaled = asc[np.clip(idx, 0, asc.size - 1)]
            od_freq = np.where(util >= up, self.f_max, scaled)
            new_freq = np.where(od[:, None], od_freq, new_freq)
        cons = kinds == KIND_CONSERVATIVE
        if cons.any():
            cur_idx = np.searchsorted(asc, freq)
            cur_idx = np.clip(cur_idx, 0, asc.size - 1)
            delta = np.where(
                util >= self.up_threshold[:, None],
                1,
                np.where(util <= self.down_threshold[:, None], -1, 0),
            )
            stepped = asc[np.clip(cur_idx + delta, 0, asc.size - 1)]
            new_freq = np.where(cons[:, None], stepped, new_freq)
        perf = kinds == KIND_PERFORMANCE
        if perf.any():
            new_freq = np.where(perf[:, None], self.f_max, new_freq)
        save = kinds == KIND_POWERSAVE
        if save.any():
            new_freq = np.where(save[:, None], self.f_min, new_freq)
        user = kinds == KIND_USERSPACE
        if user.any():
            new_freq = np.where(user[:, None], self.user_target[:, None], new_freq)
        self.freq = new_freq

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def capture(self) -> dict:
        return {
            name: getattr(self, name).copy()
            for name in (
                "kinds",
                "freq",
                "user_target",
                "up_threshold",
                "down_threshold",
            )
        }

    def restore(self, state: dict) -> None:
        for name, value in state.items():
            getattr(self, name)[...] = value
        self._kinds_dirty = True
