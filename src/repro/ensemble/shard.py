"""Process sharding of ensemble jobs.

Splits one :class:`~repro.experiments.engine.spec.EnsembleJobSpec` into
per-process member shards and runs each shard — itself a smaller
ensemble job — under the hardened experiment engine, so sharded
execution inherits the engine's per-job timeouts, bounded retries and
worker-pool recovery.

Correctness rests on two already-established invariants:

* **Cross-member isolation** — a member's results never depend on which
  other members share its ensemble (see
  :func:`repro.ensemble.runner.run_ensemble_workloads`), so *any*
  partition of the member list reproduces the unsharded results
  bit-for-bit.  This module still fixes one canonical partition
  (contiguous, balanced, order-preserving) so shard job specs — and
  hence their content hashes and failure records — are deterministic
  for a given ``(spec, shards)`` pair.
* **Scalar/vector cache equivalence** — every member summary is
  bit-identical to what the scalar runner would produce, so members are
  cached under their own scalar
  :func:`~repro.experiments.engine.spec.job_key`, exactly like
  :func:`~repro.ensemble.runner.run_ensemble_job`.  Shards therefore
  expand to the same per-seed cache keys as serial and unsharded runs,
  and all three populate one shared cache.

Checkpointing note: ensemble state snapshots live in process memory
(:meth:`~repro.ensemble.engine.EnsembleSimulation.capture`), so the
engine's *disk* checkpoint settings do not apply to ensemble shards;
crash recovery for sharded runs comes from member-level caching (a
re-run only re-simulates members whose summaries were never stored) and
from the engine's retry machinery re-running a failed shard whole.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.experiments.engine.scheduler import ExperimentEngine, JobFailure
from repro.experiments.engine.spec import EnsembleJobSpec, ensemble_job
from repro.experiments.runner import RunSummary


def shard_members(count: int, shards: int) -> List[range]:
    """Deterministic contiguous member->shard partition.

    Members keep their order; the first ``count % shards`` shards get
    one extra member (``np.array_split`` semantics).  Requesting more
    shards than members yields one single-member shard per member.
    """
    if count < 0:
        raise ValueError(f"member count must be >= 0, got {count}")
    if shards < 1:
        raise ValueError(f"shard count must be >= 1, got {shards}")
    shards = min(shards, count)
    ranges: List[range] = []
    if shards == 0:
        return ranges
    base, extra = divmod(count, shards)
    start = 0
    for index in range(shards):
        size = base + (1 if index < extra else 0)
        ranges.append(range(start, start + size))
        start += size
    return ranges


@dataclass
class ShardedRunReport:
    """Outcome of one sharded ensemble job.

    ``summaries`` aligns index-for-index with the job's members; a
    member of a shard that exhausted its retries is ``None`` and one
    structured :class:`JobFailure` per member of the failed shard —
    keyed by the member's scalar job key — appears in ``failures``, so
    failures degrade exactly the cells that were actually lost.
    """

    summaries: List[Optional[RunSummary]] = field(default_factory=list)
    failures: List[JobFailure] = field(default_factory=list)
    shards: int = 0
    cache_hits: int = 0
    executed_members: int = 0

    @property
    def ok(self) -> bool:
        """Whether every member produced a summary."""
        return not self.failures and all(
            summary is not None for summary in self.summaries
        )


def run_sharded_ensemble_job(
    spec: EnsembleJobSpec,
    engine: ExperimentEngine,
    cache=None,
    resolve_cache: bool = True,
    charge_stats: bool = True,
) -> ShardedRunReport:
    """Execute an ensemble job as ``engine.jobs`` member shards.

    Cache hits are resolved per member *before* sharding (so shard
    boundaries depend only on the pending set, and a warm cache runs
    nothing at all); fresh member summaries are stored per member as
    shards complete.  With ``engine.jobs == 1`` the single shard runs
    inline through the engine's serial path — still with bounded
    retries — and is call-for-call identical to
    :func:`~repro.ensemble.runner.run_ensemble_job` on a cold cache.

    Parameters
    ----------
    spec:
        The ensemble job to execute.
    engine:
        Hardened engine supplying parallelism (``jobs``), per-shard
        timeouts and bounded retries.  The engine's own result cache is
        not consulted — composite shard results are never cached as
        such; pass the member-level cache separately.
    cache:
        Optional :class:`~repro.experiments.engine.cache.ResultCache`
        holding per-member scalar summaries.
    resolve_cache:
        Look members up in ``cache`` before sharding.  The engine's
        grid planner passes ``False`` because it only ever plans over
        specs that already missed the cache; fresh results are still
        stored per member either way.
    charge_stats:
        Forwarded to :meth:`ExperimentEngine.run_collect`; ``False`` is
        the planner's reentrant mode where the outer ``run()`` already
        accounted the members and records the failures itself.
    """
    members = list(spec.members)
    report = ShardedRunReport(summaries=[None] * len(members))
    pending: List[int] = []
    if cache is not None and resolve_cache:
        for index, member in enumerate(members):
            hit = cache.get(member)
            if hit is not None:
                report.summaries[index] = hit
                report.cache_hits += 1
            else:
                pending.append(index)
    else:
        pending = list(range(len(members)))
    if not pending:
        return report

    pending_specs = [members[index] for index in pending]
    parts = shard_members(len(pending), max(1, engine.jobs))
    shard_specs: Sequence[EnsembleJobSpec] = [
        ensemble_job([pending_specs[local] for local in part])
        for part in parts
    ]
    report.shards = len(shard_specs)
    outcomes, failures = engine.run_collect(shard_specs, charge_stats=charge_stats)
    report.failures.extend(failures)
    for shard_index, part in enumerate(parts):
        shard_summaries = outcomes.get(shard_index)
        if shard_summaries is None:
            continue
        for offset, local in enumerate(part):
            index = pending[local]
            summary = shard_summaries[offset]
            report.summaries[index] = summary
            report.executed_members += 1
            if cache is not None:
                cache.put(members[index], summary)
    return report
