"""Batched application/thread state machine.

Mirrors :mod:`repro.workloads.application` and
:mod:`repro.workloads.thread_model` over an ensemble axis.  Every
per-thread scalar (phase, remaining cycles, iteration counter) becomes a
``(members, slots)`` array where ``slots`` is the widest thread count in
the ensemble; slots beyond a member's ``num_threads`` are parked in the
DONE phase so every mask derived from phases ignores them, exactly as
the scalar loop skips finished threads.

Work-unit draws reuse each member's *own* ``Application`` RNG through a
chunked buffer: ``Generator.lognormal(size=k)`` produces bit-for-bit the
same stream as ``k`` scalar draws, so pre-drawing a chunk and consuming
it one value at a time preserves the scalar draw sequence exactly.
"""

from __future__ import annotations

from types import MappingProxyType
from typing import List, Optional

import numpy as np

from repro.workloads.application import Application
from repro.workloads.thread_model import ThreadPhase

#: Integer phase codes for the ``(members, slots)`` phase array.
PH_COMPUTE = 0
PH_BARRIER = 1
PH_SYNC = 2
PH_DONE = 3

_PHASE_TO_CODE = MappingProxyType(
    {
        ThreadPhase.COMPUTE: PH_COMPUTE,
        ThreadPhase.BARRIER: PH_BARRIER,
        ThreadPhase.SYNC: PH_SYNC,
        ThreadPhase.DONE: PH_DONE,
    }
)

#: Work-unit draws buffered per refill; any size works (batch draws are
#: bit-identical to repeated scalar draws), larger just amortises the
#: per-call Generator overhead.
_CHUNK = 128


class BatchedWorkloads:
    """Structure-of-arrays state for every member's *current* app."""

    def __init__(self, num_members: int, max_slots: int) -> None:
        m, t = num_members, max_slots
        self.num_members = m
        self.max_slots = t
        # Per-thread state (padded slots stay DONE).
        self.phase = np.full((m, t), PH_DONE, dtype=np.int64)
        self.remaining = np.zeros((m, t), dtype=np.float64)
        self.iteration = np.zeros((m, t), dtype=np.int64)
        self.in_sync = np.zeros((m, t), dtype=bool)
        self.sync_s = np.zeros((m, t), dtype=np.float64)
        # Per-member app constants and progress.
        self.num_threads = np.zeros(m, dtype=np.int64)
        self.iterations = np.zeros(m, dtype=np.int64)
        self.work_cycles = np.zeros(m, dtype=np.float64)
        self.sigma = np.zeros(m, dtype=np.float64)
        self.sync_time = np.zeros(m, dtype=np.float64)
        self.barrier = np.zeros(m, dtype=bool)
        self.act_high = np.zeros(m, dtype=np.float64)
        self.act_low = np.zeros(m, dtype=np.float64)
        self.elapsed = np.zeros(m, dtype=np.float64)
        self.barrier_sync_active = np.zeros(m, dtype=bool)
        self.barrier_sync_s = np.zeros(m, dtype=np.float64)
        self.queue_remaining = np.zeros(m, dtype=np.int64)
        self.thread_completions = np.zeros(m, dtype=np.int64)
        self.completions: List[List[float]] = [[] for _ in range(m)]
        # Each member's current-app Generator plus its chunked buffer.
        self._rngs: List[Optional[np.random.Generator]] = [None] * m
        self._chunk = np.ones((m, _CHUNK), dtype=np.float64)
        self._cursor = np.full(m, _CHUNK, dtype=np.int64)
        self._all_rows = np.arange(m, dtype=np.int64)
        # Python-bool shortcuts over rarely-changing member flags; they
        # only gate recomputation (conservative values are safe) and are
        # refreshed at every site that writes the underlying arrays.
        self._any_barrier = False
        self._any_queue = False
        self._sync_window_open = False
        # Set whenever a thread may have turned COMPUTE (the scheduler
        # clears it after running its wake/placement pass) or DONE (the
        # engine clears it after its run-loop bookkeeping).  Both start
        # True so the first tick takes the full paths.
        self.compute_dirty = True
        self.done_dirty = True
        # Cached liveness masks (slot-level ``phase != DONE`` and its
        # per-member any()), refreshed lazily: threads only cross the
        # DONE boundary at the sites that raise ``_live_dirty``, so
        # between those sites the masks are bit-stable.
        self.live_slots = np.zeros((m, t), dtype=bool)
        self.live_members = np.zeros(m, dtype=bool)
        self._live_dirty = True

    # ------------------------------------------------------------------
    # App lifecycle
    # ------------------------------------------------------------------
    def load_app_row(self, member: int, app: Application) -> None:
        """Adopt ``app``'s live state into row ``member``.

        Reads the thread objects' actual state rather than assuming a
        fresh app, so a mid-profile switch adopts whatever the
        Application currently holds (for freshly built apps that is the
        constructor state: COMPUTE threads with pre-drawn work).
        """
        spec = app.spec
        t = spec.num_threads
        if t > self.max_slots:
            raise ValueError(
                f"application {spec.name!r} has {t} threads but the "
                f"ensemble was sized for {self.max_slots}"
            )
        self.phase[member, :] = PH_DONE
        self.remaining[member, :] = 0.0
        self.iteration[member, :] = 0
        self.in_sync[member, :] = False
        self.sync_s[member, :] = 0.0
        for j, thread in enumerate(app.threads):
            self.phase[member, j] = _PHASE_TO_CODE[thread.phase]
            self.remaining[member, j] = thread.remaining_cycles
            self.iteration[member, j] = thread.iteration
            tid = thread.thread_id
            if tid in app._thread_sync_s:
                self.in_sync[member, j] = True
                self.sync_s[member, j] = app._thread_sync_s[tid]
        self.num_threads[member] = t
        self.iterations[member] = spec.iterations
        self.work_cycles[member] = spec.work_cycles
        self.sigma[member] = spec.work_jitter_sigma
        self.sync_time[member] = spec.sync_time_s
        self.barrier[member] = spec.barrier_sync
        self.act_high[member] = spec.activity_high
        self.act_low[member] = spec.activity_low
        self.elapsed[member] = app._elapsed_s
        self.barrier_sync_active[member] = app._sync_remaining_s is not None
        self.barrier_sync_s[member] = (
            app._sync_remaining_s if app._sync_remaining_s is not None else 0.0
        )
        self.queue_remaining[member] = app._queue_remaining
        self.thread_completions[member] = app._thread_completions
        self.completions[member] = list(app._completion_times_s)
        self._rngs[member] = app._rng
        self._cursor[member] = _CHUNK  # force a refill on first draw
        self._any_barrier = bool(self.barrier.any())
        self._any_queue = bool((~self.barrier).any())
        self._sync_window_open = bool(self.barrier_sync_active.any())
        self.compute_dirty = True
        self.done_dirty = True
        self._live_dirty = True

    def refresh_live(self) -> None:
        """Recompute the liveness caches if a DONE transition occurred."""
        if self._live_dirty:
            self.live_slots = self.phase != PH_DONE
            self.live_members = self.live_slots.any(axis=1)
            self._live_dirty = False

    def done_mask(self) -> np.ndarray:
        """Members whose current app has every (real) thread DONE."""
        self.refresh_live()
        return ~self.live_members

    # ------------------------------------------------------------------
    # Work-unit draws (chunked, stream-identical to scalar draws)
    # ------------------------------------------------------------------
    def draw_work(self, members: np.ndarray) -> np.ndarray:
        """Next work-unit size per member, matching ``_draw_work``.

        ``members`` is an integer index array with at most one entry per
        member (one thread slot is processed per call site), so the
        fancy-indexed cursor update cannot collide.
        """
        sigma = self.sigma[members]
        out = self.work_cycles[members].copy()
        drawing = members[sigma > 0.0]
        if drawing.size:
            exhausted = drawing[self._cursor[drawing] >= _CHUNK]
            for m in exhausted:
                s = float(self.sigma[m])
                rng = self._rngs[m]
                assert rng is not None
                self._chunk[m] = rng.lognormal(
                    mean=-0.5 * s * s, sigma=s, size=_CHUNK
                )
                self._cursor[m] = 0
            cur = self._cursor[drawing]
            factors = self._chunk[drawing, cur]
            self._cursor[drawing] = cur + 1
            out[sigma > 0.0] = self.work_cycles[drawing] * factors
        return out

    # ------------------------------------------------------------------
    # Tick (Application.tick over all members)
    # ------------------------------------------------------------------
    def tick(self, dt: float) -> None:
        self.elapsed = self.elapsed + dt
        self.refresh_live()
        live = self.live_members
        if self._any_barrier and self._any_queue:
            m_barrier = live & self.barrier
            m_queue = live & ~self.barrier
            if m_barrier.any():
                self._tick_barrier(m_barrier, dt)
            if m_queue.any():
                self._tick_independent(m_queue, dt)
        elif self._any_barrier:
            # Homogeneous ensemble: live & barrier == live, and the
            # other branch's mask is empty, so the splits fall away.
            if live.any():
                self._tick_barrier(live, dt)
        elif self._any_queue:
            if live.any():
                self._tick_independent(live, dt)

    def _finish_sync_rows(self, members: np.ndarray) -> None:
        """``finish_sync()`` on every thread, in thread order.

        The scalar call is a no-op unless the thread is IN_SYNC, so one
        helper serves both barrier paths (post-release threads are all
        IN_SYNC; DONE threads fall through the mask).  The iteration
        bumps and phase flips are computed as one block (per-thread
        transitions are independent); only the work draws stay in the
        slot loop, preserving each member's ascending-slot RNG order.
        """
        self.compute_dirty = True
        self.done_dirty = True
        self._live_dirty = True
        ph = self.phase[members]
        sync = ph == PH_SYNC
        if not sync.any():
            return
        it_block = self.iteration[members] + sync
        finished = sync & (it_block >= self.iterations[members][:, None])
        self.iteration[members] = it_block
        self.phase[members] = np.where(
            finished, PH_DONE, np.where(sync, PH_COMPUTE, ph)
        )
        refill_mask = sync & ~finished
        for j in refill_mask.any(axis=0).nonzero()[0]:
            refill = members[refill_mask[:, j]]
            self.remaining[refill, j] = self.draw_work(refill)

    def _tick_barrier(self, live: np.ndarray, dt: float) -> None:
        # Members mid-sync: count the window down; at zero, release.
        # The Python flag mirrors ``barrier_sync_active.any()`` so the
        # (usually empty) countdown pass costs nothing when closed.
        if self._sync_window_open:
            in_sync = live & self.barrier_sync_active
            if in_sync.any():
                self.barrier_sync_s = np.where(
                    in_sync, self.barrier_sync_s - dt, self.barrier_sync_s
                )
                fired = in_sync & (self.barrier_sync_s <= 0.0)
                if fired.any():
                    self.barrier_sync_active[fired] = False
                    self._sync_window_open = bool(self.barrier_sync_active.any())
                    self._finish_sync_rows(fired.nonzero()[0])
            checking = live & ~in_sync
        else:
            checking = live
        # Members not mid-sync: fire the barrier when every live thread
        # has reached it (the scalar checks active == all_at_barrier).
        # No thread at the barrier anywhere means no member can fire.
        if checking.any():
            bar = self.phase == PH_BARRIER
            if not bar.any():
                return
            active = self.phase != PH_DONE
            at_barrier = (~active | bar).all(axis=1) & active.any(axis=1)
            fire = checking & at_barrier
            if fire.any():
                rows = fire.nonzero()[0]
                for m in rows:
                    self.completions[m].append(float(self.elapsed[m]))
                # release_barrier flips AT_BARRIER -> IN_SYNC.
                row_bar = bar[rows, :]
                self.phase[rows, :] = np.where(
                    row_bar, PH_SYNC, self.phase[rows, :]
                )
                self.barrier_sync_s[rows] = self.sync_time[rows]
                immediate = rows[self.sync_time[rows] <= 0.0]
                self.barrier_sync_active[rows] = True
                if immediate.size:
                    self.barrier_sync_active[immediate] = False
                self._sync_window_open = bool(self.barrier_sync_active.any())
                if immediate.size:
                    self._finish_sync_rows(immediate)

    def _tick_independent(self, live: np.ndarray, dt: float) -> None:
        # The per-slot transitions below are mutually independent — a
        # slot's countdown never reads another slot's state — so the
        # whole (rows, slots) block is computed in one 2D pass.  Only
        # the *finish* handling (queue pops, RNG draws) is sequential
        # across slots within a member and stays a per-slot loop.
        # When every member is in this path (the common homogeneous
        # ensemble), skip the row gather/scatter: the whole-array ops
        # below never mutate their inputs, so views are safe sources.
        full = bool(live.all())
        if full:
            rows = self._all_rows
            phase = self.phase
            in_sync = self.in_sync
            sync_s = self.sync_s
            sync_time_col = self.sync_time[:, None]
        else:
            rows = np.nonzero(live)[0]
            phase = self.phase[rows]
            in_sync = self.in_sync[rows]
            sync_s = self.sync_s[rows]
            sync_time_col = self.sync_time[rows][:, None]
        # DONE: drop any stale sync entry (matches the dict .pop).
        is_done = phase == PH_DONE
        in_sync = in_sync & ~is_done
        sync_s = np.where(is_done, 0.0, sync_s)
        # AT_BARRIER in a work-queue app: enter the sync window.
        at_bar = phase == PH_BARRIER
        phase = np.where(at_bar, PH_SYNC, phase)
        in_sync = in_sync | at_bar
        sync_s = np.where(at_bar, sync_time_col, sync_s)
        syncing = phase == PH_SYNC
        # dict .get(tid, 0.0): not-tracked threads read 0.0.
        rem = sync_s * in_sync - dt
        finished = syncing & (rem <= 0.0)
        keep = syncing & ~finished
        new_sync_s = np.where(keep, rem, np.where(finished, 0.0, sync_s))
        if full:
            self.phase[...] = phase
            self.in_sync[...] = (in_sync | keep) & ~finished
            self.sync_s[...] = new_sync_s
        else:
            self.phase[rows] = phase
            self.in_sync[rows] = (in_sync | keep) & ~finished
            self.sync_s[rows] = new_sync_s
        if not finished.any():
            return
        self.compute_dirty = True
        self.done_dirty = True
        self._live_dirty = True
        for j in finished.any(axis=0).nonzero()[0]:
            f = rows[finished[:, j]]
            has_work = self.queue_remaining[f] > 0
            self.queue_remaining[f] = np.where(
                has_work,
                self.queue_remaining[f] - 1,
                self.queue_remaining[f],
            )
            # continue_from_queue: iteration += 1 then COMPUTE with a
            # fresh draw if the queue had work, else DONE.
            self.iteration[f, j] = self.iteration[f, j] + 1
            self.phase[f, j] = np.where(has_work, PH_COMPUTE, PH_DONE)
            refill = f[has_work]
            if refill.size:
                self.remaining[refill, j] = self.draw_work(refill)
            tc = self.thread_completions[f] + 1
            self.thread_completions[f] = tc
            wave = tc % self.num_threads[f] == 0
            for m in f[wave]:
                self.completions[m].append(float(self.elapsed[m]))

    # ------------------------------------------------------------------
    # Throughput (Application.throughput for the manager's decide step)
    # ------------------------------------------------------------------
    def throughput(self, member: int, window_s: Optional[float] = None) -> float:
        elapsed = float(self.elapsed[member])
        if elapsed <= 0.0:
            return 0.0
        if window_s is None:
            return len(self.completions[member]) / elapsed
        window = min(window_s, elapsed)
        if window <= 0.0:
            return 0.0
        threshold = elapsed - window
        recent = 0
        for stamp in self.completions[member]:
            if stamp > threshold:
                recent += 1
        return recent / window

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def capture(self) -> dict:
        state = {
            name: getattr(self, name).copy()
            for name in (
                "phase",
                "remaining",
                "iteration",
                "in_sync",
                "sync_s",
                "num_threads",
                "iterations",
                "work_cycles",
                "sigma",
                "sync_time",
                "barrier",
                "act_high",
                "act_low",
                "elapsed",
                "barrier_sync_active",
                "barrier_sync_s",
                "queue_remaining",
                "thread_completions",
                "_chunk",
                "_cursor",
            )
        }
        state["completions"] = [list(c) for c in self.completions]
        state["rng_states"] = [
            rng.bit_generator.state if rng is not None else None
            for rng in self._rngs
        ]
        return state

    def restore(self, state: dict) -> None:
        for name, value in state.items():
            if name in ("completions", "rng_states"):
                continue
            getattr(self, name)[...] = value
        self.completions = [list(c) for c in state["completions"]]
        for rng, rng_state in zip(self._rngs, state["rng_states"]):
            if rng is not None and rng_state is not None:
                rng.bit_generator.state = rng_state
        self._any_barrier = bool(self.barrier.any())
        self._any_queue = bool((~self.barrier).any())
        self._sync_window_open = bool(self.barrier_sync_active.any())
        self.compute_dirty = True
        self.done_dirty = True
        self._live_dirty = True
