"""Q-table with the dual-table mechanism of Section 5.4.

The agent "maintains two Q-Tables — one with static Q values from the end
of the exploration phase and the other with Q values that are updated at
each decision epoch".  :class:`QTable` holds the live table, can snapshot
itself when the exploration phase ends (``capture_exploration``), restore
that snapshot on intra-application variation, and reset to zero on
inter-application variation.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


class QTable:
    """Dense Q-value table over ``num_states x num_actions``.

    Parameters
    ----------
    num_states:
        Number of discrete environment states.
    num_actions:
        Number of actions.
    """

    def __init__(self, num_states: int, num_actions: int) -> None:
        if num_states <= 0 or num_actions <= 0:
            raise ValueError("table dimensions must be positive")
        self.num_states = num_states
        self.num_actions = num_actions
        self._q = np.zeros((num_states, num_actions))
        self._exploration_snapshot: Optional[np.ndarray] = None
        self._visits = np.zeros((num_states, num_actions), dtype=int)

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------

    def value(self, state: int, action: int) -> float:
        """Q(state, action)."""
        return float(self._q[state, action])

    def values_for(self, state: int) -> np.ndarray:
        """The Q row of a state (a copy)."""
        return self._q[state].copy()

    def best_action(self, state: int) -> int:
        """The greedy action of a state (lowest index wins ties).

        For a state that has never been updated the row is all zeros
        and carries no information; instead of defaulting to action 0
        (which can lock the agent into a hot action and induce a policy
        oscillation), the agent generalises: it picks the action with
        the best visit-weighted value across all states.
        """
        if self._visits[state].sum() == 0:
            return self.global_best_action()
        return int(np.argmax(self._q[state]))

    def global_best_action(self) -> int:
        """Action with the best visit-weighted mean value table-wide."""
        visited = self._visits > 0
        if not visited.any():
            return 0
        sums = np.where(visited, self._q, 0.0).sum(axis=0)
        counts = visited.sum(axis=0)
        means = np.where(counts > 0, sums / np.maximum(counts, 1), -np.inf)
        return int(np.argmax(means))

    def best_value(self, state: int) -> float:
        """max_a Q(state, a)."""
        return float(np.max(self._q[state]))

    def greedy_policy(self) -> np.ndarray:
        """The greedy action per state (for convergence tracking)."""
        return np.argmax(self._q, axis=1)

    def visits(self, state: int, action: int) -> int:
        """How many updates the (state, action) entry has received."""
        return int(self._visits[state, action])

    @property
    def total_visits(self) -> int:
        """Total update count across the table."""
        return int(self._visits.sum())

    # ------------------------------------------------------------------
    # Updates (Eq. 7)
    # ------------------------------------------------------------------

    def update(
        self,
        state: int,
        action: int,
        reward: float,
        next_state: int,
        alpha: float,
        gamma: float,
    ) -> float:
        """Apply the Q-learning update of Eq. 7 and return the new value.

        ``Q(E_i, a_i) += alpha * (R + gamma * max_a Q(E_{i+1}, a) -
        Q(E_i, a_i))``.
        """
        if not 0.0 <= alpha <= 1.0:
            raise ValueError("alpha must be in [0, 1]")
        if not 0.0 <= gamma <= 1.0:
            raise ValueError("gamma must be in [0, 1]")
        delta = reward + gamma * self.best_value(next_state) - self._q[state, action]
        self._q[state, action] += alpha * delta
        self._visits[state, action] += 1
        return float(self._q[state, action])

    # ------------------------------------------------------------------
    # Dual-table mechanism (Section 5.4)
    # ------------------------------------------------------------------

    def capture_exploration(self) -> None:
        """Snapshot the live table as the end-of-exploration table."""
        self._exploration_snapshot = self._q.copy()

    @property
    def has_exploration_snapshot(self) -> bool:
        """Whether an end-of-exploration snapshot exists."""
        return self._exploration_snapshot is not None

    def restore_exploration(self) -> bool:
        """Restore the exploration snapshot (intra-application variation).

        Returns
        -------
        bool
            True if a snapshot existed and was restored.
        """
        if self._exploration_snapshot is None:
            return False
        self._q = self._exploration_snapshot.copy()
        return True

    def reset(self) -> None:
        """Zero the table and forget the snapshot (inter-application)."""
        self._q = np.zeros((self.num_states, self.num_actions))
        self._visits = np.zeros((self.num_states, self.num_actions), dtype=int)
        self._exploration_snapshot = None

    def as_array(self) -> np.ndarray:
        """The full table (a copy) for inspection and tests."""
        return self._q.copy()
