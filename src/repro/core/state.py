"""State space of the learning agent (Section 5.1).

The environment is ``E = A x S``: the per-epoch *aging* and *stress* of
the worst core, each discretised into ``Na`` / ``Ns`` disjoint intervals.
Both quantities are first normalised into [0, 1]:

* **stress** — the Eq. 6 stress accumulated over the decision epoch,
  divided by the epoch length, relative to a documented reference rate
  (the rate at which the cycling-MTTF calibration profile accrues
  stress);
* **aging** — the mean Arrhenius aging rate of the epoch (1.0 = idle
  core), mapped linearly so that a rate of ``aging_rate_unsafe`` (the
  ~70 degC sustained-operation rate) reaches 1.0.

The last interval of each axis is the *unsafe zone* whose visits are
penalised by the reward function.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.config import ReliabilityConfig
from repro.units import BOLTZMANN_EV, celsius_to_kelvin

#: Cap on the per-StateSpace memo tables.  Sensor quantisation keeps the
#: distinct temperature population small in practice; the cap only guards
#: unquantised configurations against unbounded growth.
_CACHE_LIMIT = 65536

#: Stress rate (per second) that normalises to 1.0: several times the
#: accrual rate of the calibration reference profile, i.e. sustained
#: heavy cycling.
STRESS_RATE_FULL_SCALE = 1.5e-3

#: Aging rate (relative to idle) that normalises to 1.0: sustained
#: operation in the mid-60s degC on the default platform.
AGING_RATE_FULL_SCALE = 14.0


@dataclass(frozen=True)
class EpochObservation:
    """Normalised stress/aging observed over one decision epoch.

    Attributes
    ----------
    stress_norm:
        Normalised stress in [0, 1].
    aging_norm:
        Normalised aging in [0, 1].
    raw_stress_rate:
        Eq. 6 stress per second of epoch (before normalisation).
    raw_aging_rate:
        Mean relative aging rate of the epoch (1.0 = idle).
    """

    stress_norm: float
    aging_norm: float
    raw_stress_rate: float
    raw_aging_rate: float


class StateSpace:
    """Discretisation of (aging, stress) into Q-table states.

    Parameters
    ----------
    num_stress_bins:
        ``Ns`` of Section 5.1.
    num_aging_bins:
        ``Na`` of Section 5.1.
    reliability:
        Device parameters used to evaluate Eqs. 1 and 6 on the epoch's
        sensor samples.
    """

    def __init__(
        self,
        num_stress_bins: int,
        num_aging_bins: int,
        reliability: ReliabilityConfig,
    ) -> None:
        if num_stress_bins < 2 or num_aging_bins < 2:
            raise ValueError("need at least two bins per axis")
        self.num_stress_bins = num_stress_bins
        self.num_aging_bins = num_aging_bins
        self.reliability = reliability
        # Memo tables for the Arrhenius evaluations of Eqs. 1 and 6.
        # Sensor readings are quantised, so the same temperatures recur
        # every epoch; memoising the *unchanged* expressions keeps the
        # results bit-identical while skipping most math.exp calls.
        self._aging_rate_cache: Dict[float, float] = {}
        self._cycle_stress_cache: Dict[Tuple[float, float, float], float] = {}

    @property
    def num_states(self) -> int:
        """Total number of discrete states ``Na * Ns``."""
        return self.num_stress_bins * self.num_aging_bins

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------

    def _aging_rate(self, temp_c: float) -> float:
        """Memoised :func:`repro.reliability.aging.aging_rate`."""
        cached = self._aging_rate_cache.get(temp_c)
        if cached is None:
            config = self.reliability
            t_ref_k = celsius_to_kelvin(config.reference_temp_c)
            t_k = celsius_to_kelvin(temp_c)
            exponent = (config.aging_activation_energy_ev / BOLTZMANN_EV) * (
                1.0 / t_ref_k - 1.0 / t_k
            )
            cached = math.exp(exponent)
            if len(self._aging_rate_cache) >= _CACHE_LIMIT:
                self._aging_rate_cache.clear()
            self._aging_rate_cache[temp_c] = cached
        return cached

    def _mean_aging_rate(self, series_c: Sequence[float]) -> float:
        """Memoised :func:`repro.reliability.aging.mean_aging_rate`."""
        if not len(series_c):
            return 1.0
        return sum(self._aging_rate(t) for t in series_c) / len(series_c)

    def _pair_stress(self, first: float, second: float, count: float) -> float:
        """Memoised Eq. 6 contribution of one counted reversal pair.

        Equivalent to ``cycle_stress(_make_cycle(first, second, count))``
        from :mod:`repro.reliability`; the expression is unchanged, only
        memoised on the cycle's ``(amplitude, max, count)`` signature.
        """
        high = max(first, second)
        low = min(first, second)
        key = (high - low, high, count)
        cached = self._cycle_stress_cache.get(key)
        if cached is None:
            config = self.reliability
            effective_amplitude = key[0] - config.elastic_threshold_k
            if effective_amplitude <= 0.0:
                cached = 0.0
            else:
                t_max_k = celsius_to_kelvin(high)
                arrhenius = math.exp(
                    -config.cycling_activation_energy_ev
                    / (BOLTZMANN_EV * t_max_k)
                )
                cached = (
                    count
                    * effective_amplitude**config.coffin_manson_exponent
                    * arrhenius
                )
            if len(self._cycle_stress_cache) >= _CACHE_LIMIT:
                self._cycle_stress_cache.clear()
            self._cycle_stress_cache[key] = cached
        return cached

    def _series_stress(self, series: Sequence[float]):
        """``thermal_stress(count_cycles(series), ...)`` fused.

        Runs the same Downing-Socie pass as
        :func:`repro.reliability.rainflow.count_cycles` but folds every
        counted cycle straight into the memoised Eq. 6 sum instead of
        materialising :class:`ThermalCycle` objects.  Contribution order
        and float arithmetic are identical to the unfused composition.
        """
        collapsed = []
        for value in series:
            if not collapsed or value != collapsed[-1]:
                collapsed.append(float(value))
        # sum() over an empty cycle list yields int 0; keep that exact.
        total = 0
        if len(collapsed) < 2:
            return total
        reversals = [collapsed[0]]
        for index in range(1, len(collapsed) - 1):
            previous, current, following = (
                collapsed[index - 1],
                collapsed[index],
                collapsed[index + 1],
            )
            if (current - previous) * (following - current) < 0.0:
                reversals.append(current)
        reversals.append(collapsed[-1])

        pair_stress = self._pair_stress
        stack = []
        for point in reversals:
            stack.append(point)
            while len(stack) >= 3:
                x_range = abs(stack[-1] - stack[-2])
                y_range = abs(stack[-2] - stack[-3])
                if x_range < y_range:
                    break
                if len(stack) == 3:
                    if y_range > 0.0:
                        total = total + pair_stress(stack[0], stack[1], 0.5)
                    stack.pop(0)
                else:
                    if y_range > 0.0:
                        total = total + pair_stress(stack[-3], stack[-2], 1.0)
                    del stack[-3:-1]
        for index in range(len(stack) - 1):
            if stack[index] != stack[index + 1]:
                total = total + pair_stress(stack[index], stack[index + 1], 0.5)
        return total

    def observe(
        self,
        epoch_samples: Sequence[Sequence[float]],
        sample_period_s: float,
        context_samples: Optional[Sequence[Sequence[float]]] = None,
    ) -> EpochObservation:
        """Evaluate stress/aging of an epoch of sensor samples.

        Parameters
        ----------
        epoch_samples:
            Per-core sample lists covering one decision epoch (degC).
        sample_period_s:
            Temperature sampling interval.
        context_samples:
            Optional per-core samples of the *previous* epoch, prepended
            for the cycle count only.  Thermal cycles caused by an
            epoch-to-epoch action change span the epoch boundary and
            would otherwise be invisible to the agent — this is part of
            the paper's point about measuring cycling over a period
            rather than from instantaneous samples.

        Returns
        -------
        EpochObservation
            Worst-core normalised stress and aging.  Aging is evaluated
            on the current epoch only (it reflects the *current*
            operating point); stress over the contextual window.
        """
        worst_stress_rate = 0.0
        worst_aging_rate = 0.0
        for core, series in enumerate(epoch_samples):
            # Drop non-finite samples (dropped sensor readings on an
            # unsupervised faulty platform) so the stress/aging math —
            # and through it the Q-table — never sees a NaN.
            series = [x for x in series if math.isfinite(x)]
            if not series:
                continue
            stress_series = series
            if context_samples is not None and core < len(context_samples):
                context = [x for x in context_samples[core] if math.isfinite(x)]
                stress_series = context + series
            duration = len(stress_series) * sample_period_s
            stress = self._series_stress(stress_series)
            worst_stress_rate = max(worst_stress_rate, stress / duration)
            # Aging is judged on the trailing half of the epoch: the
            # epoch that follows an actuation change starts at the old
            # operating point's temperature, and averaging over the whole
            # ramp would under-report the temperature the action actually
            # drives the core to.
            trailing = series[len(series) // 2 :]
            worst_aging_rate = max(
                worst_aging_rate, self._mean_aging_rate(trailing)
            )
        return EpochObservation(
            stress_norm=min(1.0, worst_stress_rate / STRESS_RATE_FULL_SCALE),
            aging_norm=min(
                1.0, max(0.0, (worst_aging_rate - 1.0) / (AGING_RATE_FULL_SCALE - 1.0))
            ),
            raw_stress_rate=worst_stress_rate,
            raw_aging_rate=worst_aging_rate,
        )

    # ------------------------------------------------------------------
    # Discretisation
    # ------------------------------------------------------------------

    def stress_bin(self, stress_norm: float) -> int:
        """Bin index of a normalised stress value."""
        return min(self.num_stress_bins - 1, int(stress_norm * self.num_stress_bins))

    def aging_bin(self, aging_norm: float) -> int:
        """Bin index of a normalised aging value."""
        return min(self.num_aging_bins - 1, int(aging_norm * self.num_aging_bins))

    def state_of(self, observation: EpochObservation) -> int:
        """Flat state index of an observation."""
        s_bin = self.stress_bin(observation.stress_norm)
        a_bin = self.aging_bin(observation.aging_norm)
        return a_bin * self.num_stress_bins + s_bin

    def bins_of(self, state: int) -> Tuple[int, int]:
        """(aging_bin, stress_bin) of a flat state index."""
        if not 0 <= state < self.num_states:
            raise ValueError(f"state {state} outside 0..{self.num_states - 1}")
        return divmod(state, self.num_stress_bins)

    def is_unsafe(self, observation: EpochObservation) -> bool:
        """Whether the observation falls in an unsafe (last) interval."""
        return (
            self.stress_bin(observation.stress_norm) == self.num_stress_bins - 1
            or self.aging_bin(observation.aging_norm) == self.num_aging_bins - 1
        )

    def describe(self, state: int) -> str:
        """Human-readable label of a state (for logs and tests)."""
        a_bin, s_bin = self.bins_of(state)
        return f"aging[{a_bin}/{self.num_aging_bins}] stress[{s_bin}/{self.num_stress_bins}]"
