"""State space of the learning agent (Section 5.1).

The environment is ``E = A x S``: the per-epoch *aging* and *stress* of
the worst core, each discretised into ``Na`` / ``Ns`` disjoint intervals.
Both quantities are first normalised into [0, 1]:

* **stress** — the Eq. 6 stress accumulated over the decision epoch,
  divided by the epoch length, relative to a documented reference rate
  (the rate at which the cycling-MTTF calibration profile accrues
  stress);
* **aging** — the mean Arrhenius aging rate of the epoch (1.0 = idle
  core), mapped linearly so that a rate of ``aging_rate_unsafe`` (the
  ~70 degC sustained-operation rate) reaches 1.0.

The last interval of each axis is the *unsafe zone* whose visits are
penalised by the reward function.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.config import ReliabilityConfig
from repro.reliability.aging import mean_aging_rate
from repro.reliability.rainflow import count_cycles
from repro.reliability.stress import thermal_stress

#: Stress rate (per second) that normalises to 1.0: several times the
#: accrual rate of the calibration reference profile, i.e. sustained
#: heavy cycling.
STRESS_RATE_FULL_SCALE = 1.5e-3

#: Aging rate (relative to idle) that normalises to 1.0: sustained
#: operation in the mid-60s degC on the default platform.
AGING_RATE_FULL_SCALE = 14.0


@dataclass(frozen=True)
class EpochObservation:
    """Normalised stress/aging observed over one decision epoch.

    Attributes
    ----------
    stress_norm:
        Normalised stress in [0, 1].
    aging_norm:
        Normalised aging in [0, 1].
    raw_stress_rate:
        Eq. 6 stress per second of epoch (before normalisation).
    raw_aging_rate:
        Mean relative aging rate of the epoch (1.0 = idle).
    """

    stress_norm: float
    aging_norm: float
    raw_stress_rate: float
    raw_aging_rate: float


class StateSpace:
    """Discretisation of (aging, stress) into Q-table states.

    Parameters
    ----------
    num_stress_bins:
        ``Ns`` of Section 5.1.
    num_aging_bins:
        ``Na`` of Section 5.1.
    reliability:
        Device parameters used to evaluate Eqs. 1 and 6 on the epoch's
        sensor samples.
    """

    def __init__(
        self,
        num_stress_bins: int,
        num_aging_bins: int,
        reliability: ReliabilityConfig,
    ) -> None:
        if num_stress_bins < 2 or num_aging_bins < 2:
            raise ValueError("need at least two bins per axis")
        self.num_stress_bins = num_stress_bins
        self.num_aging_bins = num_aging_bins
        self.reliability = reliability

    @property
    def num_states(self) -> int:
        """Total number of discrete states ``Na * Ns``."""
        return self.num_stress_bins * self.num_aging_bins

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------

    def observe(
        self,
        epoch_samples: Sequence[Sequence[float]],
        sample_period_s: float,
        context_samples: Optional[Sequence[Sequence[float]]] = None,
    ) -> EpochObservation:
        """Evaluate stress/aging of an epoch of sensor samples.

        Parameters
        ----------
        epoch_samples:
            Per-core sample lists covering one decision epoch (degC).
        sample_period_s:
            Temperature sampling interval.
        context_samples:
            Optional per-core samples of the *previous* epoch, prepended
            for the cycle count only.  Thermal cycles caused by an
            epoch-to-epoch action change span the epoch boundary and
            would otherwise be invisible to the agent — this is part of
            the paper's point about measuring cycling over a period
            rather than from instantaneous samples.

        Returns
        -------
        EpochObservation
            Worst-core normalised stress and aging.  Aging is evaluated
            on the current epoch only (it reflects the *current*
            operating point); stress over the contextual window.
        """
        worst_stress_rate = 0.0
        worst_aging_rate = 0.0
        for core, series in enumerate(epoch_samples):
            # Drop non-finite samples (dropped sensor readings on an
            # unsupervised faulty platform) so the stress/aging math —
            # and through it the Q-table — never sees a NaN.
            series = [x for x in series if math.isfinite(x)]
            if not series:
                continue
            stress_series = series
            if context_samples is not None and core < len(context_samples):
                context = [x for x in context_samples[core] if math.isfinite(x)]
                stress_series = context + series
            duration = len(stress_series) * sample_period_s
            stress = thermal_stress(count_cycles(stress_series), self.reliability)
            worst_stress_rate = max(worst_stress_rate, stress / duration)
            # Aging is judged on the trailing half of the epoch: the
            # epoch that follows an actuation change starts at the old
            # operating point's temperature, and averaging over the whole
            # ramp would under-report the temperature the action actually
            # drives the core to.
            trailing = series[len(series) // 2 :]
            worst_aging_rate = max(
                worst_aging_rate, mean_aging_rate(trailing, self.reliability)
            )
        return EpochObservation(
            stress_norm=min(1.0, worst_stress_rate / STRESS_RATE_FULL_SCALE),
            aging_norm=min(
                1.0, max(0.0, (worst_aging_rate - 1.0) / (AGING_RATE_FULL_SCALE - 1.0))
            ),
            raw_stress_rate=worst_stress_rate,
            raw_aging_rate=worst_aging_rate,
        )

    # ------------------------------------------------------------------
    # Discretisation
    # ------------------------------------------------------------------

    def stress_bin(self, stress_norm: float) -> int:
        """Bin index of a normalised stress value."""
        return min(self.num_stress_bins - 1, int(stress_norm * self.num_stress_bins))

    def aging_bin(self, aging_norm: float) -> int:
        """Bin index of a normalised aging value."""
        return min(self.num_aging_bins - 1, int(aging_norm * self.num_aging_bins))

    def state_of(self, observation: EpochObservation) -> int:
        """Flat state index of an observation."""
        s_bin = self.stress_bin(observation.stress_norm)
        a_bin = self.aging_bin(observation.aging_norm)
        return a_bin * self.num_stress_bins + s_bin

    def bins_of(self, state: int) -> Tuple[int, int]:
        """(aging_bin, stress_bin) of a flat state index."""
        if not 0 <= state < self.num_states:
            raise ValueError(f"state {state} outside 0..{self.num_states - 1}")
        return divmod(state, self.num_stress_bins)

    def is_unsafe(self, observation: EpochObservation) -> bool:
        """Whether the observation falls in an unsafe (last) interval."""
        return (
            self.stress_bin(observation.stress_norm) == self.num_stress_bins - 1
            or self.aging_bin(observation.aging_norm) == self.num_aging_bins - 1
        )

    def describe(self, state: int) -> str:
        """Human-readable label of a state (for logs and tests)."""
        a_bin, s_bin = self.bins_of(state)
        return f"aging[{a_bin}/{self.num_aging_bins}] stress[{s_bin}/{self.num_stress_bins}]"
