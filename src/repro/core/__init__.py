"""The paper's contribution: the Q-learning thermal manager.

This package implements Algorithm 1 and Sections 5.1-5.4:

* :mod:`repro.core.state` — the (stress, aging) state space with its
  discretisation into ``Ns`` x ``Na`` bins;
* :mod:`repro.core.actions` — the restricted action space of affinity
  mappings x CPU governors;
* :mod:`repro.core.reward` — the Eq. 8 reward with Gaussian learning
  weights and the performance-constraint term;
* :mod:`repro.core.qtable` — the Q-table of Eq. 7, with the dual-table
  snapshot/restore mechanism of Section 5.4;
* :mod:`repro.core.schedule` — the exponentially decaying learning rate
  and the three learning phases of Section 5.3;
* :mod:`repro.core.variation` — moving-average detection of intra- and
  inter-application workload variation (Section 5.4);
* :mod:`repro.core.agent` — the learning agent tying it all together
  (the pseudo-code of Algorithm 1);
* :mod:`repro.core.manager` — the run-time system that samples the
  sensors, drives the agent at decision epochs and actuates affinity
  masks and governors through the OS layer.
"""

from repro.core.actions import Action, ActionSpace, default_action_space
from repro.core.agent import QLearningThermalAgent
from repro.core.manager import ProposedThermalManager
from repro.core.qtable import QTable
from repro.core.reward import RewardFunction
from repro.core.schedule import AlphaSchedule, LearningPhase
from repro.core.state import EpochObservation, StateSpace
from repro.core.variation import VariationDetector, VariationKind

__all__ = [
    "Action",
    "ActionSpace",
    "AlphaSchedule",
    "EpochObservation",
    "LearningPhase",
    "ProposedThermalManager",
    "QLearningThermalAgent",
    "QTable",
    "RewardFunction",
    "StateSpace",
    "VariationDetector",
    "VariationKind",
    "default_action_space",
]
