"""The learning agent — Algorithm 1 of the paper.

The agent consumes temperature samples at the sampling interval and
makes a decision every time a full decision epoch of samples has been
recorded (``|TRec| == Decision Epoch``).  One decision consists of, in
the order of Algorithm 1:

1. compute the stress/aging moving averages and classify the change
   (intra-application -> restore the end-of-exploration Q-table and
   alpha; inter-application -> reset Q-table and alpha to 1);
2. identify the current state from the epoch's samples;
3. compute the reward of the previous action (Eq. 8) and update the
   Q-table entry of (previous state, previous action) per Eq. 7;
4. select the next action (epsilon-greedy, epsilon tied to alpha);
5. update the learning rate and clear the sample record.

The agent itself is platform-agnostic: it sees sample vectors and emits
action indices.  :mod:`repro.core.manager` binds it to the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.instrument import Instrumentation

from repro.config import AgentConfig, ReliabilityConfig
from repro.core.actions import ActionSpace, build_action_space
from repro.core.qtable import QTable
from repro.core.reward import RewardFunction
from repro.core.schedule import AlphaSchedule, LearningPhase
from repro.core.state import EpochObservation, StateSpace
from repro.core.variation import VariationDetector, VariationKind, VariationReport

#: Epochs of unchanged greedy policy after which we call it converged.
CONVERGENCE_WINDOW = 8

#: Learning-rate floor in the exploitation phase ("negligible fraction").
EXPLOITATION_ALPHA_FLOOR = 0.10

#: Epochs that must separate two inter-application re-learning events.
INTER_COOLDOWN_EPOCHS = 10

#: Greedy-action hysteresis: keep the previous action while its Q-value
#: is within this margin of the state's best.  Without it, observations
#: that straddle a bin boundary make two states' greedy actions chase
#: each other, and the resulting actuation flip-flop is itself a source
#: of thermal cycling.
ACTION_HYSTERESIS = 0.05


@dataclass
class AgentStats:
    """Counters the experiments read back after a run."""

    epochs: int = 0
    intra_events: int = 0
    inter_events: int = 0
    unsafe_epochs: int = 0
    reward_sum: float = 0.0
    #: First epoch at which the greedy policy stayed unchanged for
    #: CONVERGENCE_WINDOW epochs (None if never converged).
    convergence_epoch: Optional[int] = None
    #: Epoch of the most recent greedy-policy change (training time).
    last_policy_change_epoch: int = 0
    #: Epoch at which the exploration phase ended.
    exploration_end_epoch: Optional[int] = None
    #: Epoch at which the agent first entered pure exploitation.
    exploitation_entry_epoch: Optional[int] = None
    #: Label of the most recently selected action.
    last_action_label: str = ""
    action_counts: Dict[str, int] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, float]:
        """Flatten to the manager-stats dict of a simulation result."""
        return {
            "epochs": float(self.epochs),
            "intra_events": float(self.intra_events),
            "inter_events": float(self.inter_events),
            "unsafe_epochs": float(self.unsafe_epochs),
            "mean_reward": self.reward_sum / self.epochs if self.epochs else 0.0,
            "convergence_epoch": float(
                self.convergence_epoch if self.convergence_epoch is not None else -1
            ),
            "last_policy_change_epoch": float(self.last_policy_change_epoch),
            "exploration_end_epoch": float(
                self.exploration_end_epoch
                if self.exploration_end_epoch is not None
                else -1
            ),
            "exploitation_entry_epoch": float(
                self.exploitation_entry_epoch
                if self.exploitation_entry_epoch is not None
                else -1
            ),
        }


class QLearningThermalAgent:
    """Algorithm 1: the inter/intra-application Q-learning agent.

    Parameters
    ----------
    config:
        Hyper-parameters (sampling interval, decision epoch, bins, ...).
    reliability:
        Device parameters used to evaluate stress/aging on the samples.
    action_space:
        The action space; built from ``config.num_actions`` when omitted.
    """

    def __init__(
        self,
        config: AgentConfig,
        reliability: ReliabilityConfig,
        action_space: Optional[ActionSpace] = None,
    ) -> None:
        self.config = config
        self.actions = (
            action_space
            if action_space is not None
            else build_action_space(config.num_actions)
        )
        self.states = StateSpace(
            config.num_stress_bins, config.num_aging_bins, reliability
        )
        self.qtable = QTable(self.states.num_states, len(self.actions))
        self.schedule = AlphaSchedule(
            decay_epochs=config.alpha_decay_epochs,
            exploit_threshold=config.alpha_exploit_threshold,
            table_size=self.states.num_states * len(self.actions),
            alpha_intra=config.alpha_intra,
        )
        self.reward_fn = RewardFunction(config, self.states)
        self.detector = VariationDetector(config)
        self._rng = np.random.default_rng(config.seed)

        self.samples_per_epoch = max(
            1, int(round(config.decision_epoch_s / config.sampling_interval_s))
        )
        self._trec: List[np.ndarray] = []
        self._prev_epoch_series: Optional[List[List[float]]] = None
        self._prev_state: Optional[int] = None
        self._prev_action: Optional[int] = None
        self._prev_prev_action: Optional[int] = None
        self._same_action_count = 0
        self._policy_stable_for = 0
        self._last_policy: Optional[np.ndarray] = None
        self._last_intra_epoch = -(10**9)
        self._last_inter_epoch = -(10**9)
        self.stats = AgentStats()
        self.last_observation: Optional[EpochObservation] = None
        #: Optional observation-only hook (set by the manager).
        self.obs: "Optional[Instrumentation]" = None

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------

    def record_sample(self, temps_c: Sequence[float]) -> None:
        """Push one sensor sample vector into TRec."""
        self._trec.append(np.asarray(temps_c, dtype=float))

    @property
    def epoch_ready(self) -> bool:
        """``|TRec| == Decision Epoch`` of Algorithm 1."""
        return len(self._trec) >= self.samples_per_epoch

    # ------------------------------------------------------------------
    # Decision epoch
    # ------------------------------------------------------------------

    def _epoch_series(self) -> List[List[float]]:
        """TRec transposed into per-core series."""
        stacked = np.stack(self._trec)  # (samples, cores)
        return [list(stacked[:, core]) for core in range(stacked.shape[1])]

    def decide(
        self, performance: float, constraint: float, now_s: float = 0.0
    ) -> int:
        """Run one decision epoch of Algorithm 1 and pick an action.

        Parameters
        ----------
        performance:
            Measured performance ``P`` over the ending epoch.
        constraint:
            The application's performance constraint ``Pc``.
        now_s:
            Simulation time of the decision, used only to timestamp
            trace events (the agent itself has no clock).

        Returns
        -------
        int
            Index of the selected action in the action space.
        """
        if not self.epoch_ready:
            raise RuntimeError("decide() called before the epoch is full")

        epoch_series = self._epoch_series()
        observation = self.states.observe(
            epoch_series,
            self.config.sampling_interval_s,
            context_samples=self._prev_epoch_series,
        )
        self._prev_epoch_series = epoch_series
        self.last_observation = observation

        # 1. Workload-variation handling (Section 5.4).  Inter-application
        # re-learning is armed only once the current learning pass has
        # covered the action menu (a reset while still exploring would
        # respond to the agent's own action-induced thermal swings) and
        # is rate-limited so a noisy workload cannot keep the agent in a
        # perpetual reset loop.
        # The action must have been held for several epochs before a
        # thermal deviation counts as workload-induced: a 30 s epoch is
        # comparable to the package thermal ramp, so the first couple of
        # epochs after an actuation change still carry self-induced
        # drift.
        action_stable = self._same_action_count >= 3
        report = self.detector.observe(observation, action_stable=action_stable)
        inter_armed = (
            self.schedule.epoch >= 2 * len(self.actions)
            and self.stats.epochs - self._last_inter_epoch >= INTER_COOLDOWN_EPOCHS
        )
        if report.kind is VariationKind.INTER and not inter_armed:
            report = VariationReport(
                VariationKind.INTRA, report.delta_stress_ma, report.delta_aging_ma
            )
        if report.kind is VariationKind.INTER:
            self.qtable.reset()
            self.schedule.restart_inter()
            self.detector.reset()
            self._prev_state = None
            self._prev_action = None
            self._prev_prev_action = None
            self._same_action_count = 0
            self._policy_stable_for = 0
            self._last_policy = None
            self._last_inter_epoch = self.stats.epochs
            self.stats.inter_events += 1
            if self.obs is not None:
                self.obs.emit(
                    "variation",
                    now_s,
                    kind="inter",
                    delta_stress_ma=float(report.delta_stress_ma),
                    delta_aging_ma=float(report.delta_aging_ma),
                    applied=True,
                )
        elif report.kind is VariationKind.INTRA:
            # Restore the end-of-exploration table and resume from
            # alpha_exp — but only once the agent has actually settled
            # below alpha_exp (bumping alpha during early learning would
            # only add noise), and not more often than once per
            # moving-average window.
            settled = self.schedule.alpha < self.config.alpha_intra
            cooled_down = (
                self.stats.epochs - self._last_intra_epoch >= self.config.ma_window
            )
            applied = False
            if settled and cooled_down and self.qtable.restore_exploration():
                self.schedule.restart_intra()
                self._last_intra_epoch = self.stats.epochs
                self.stats.intra_events += 1
                applied = True
            if self.obs is not None:
                self.obs.emit(
                    "variation",
                    now_s,
                    kind="intra",
                    delta_stress_ma=float(report.delta_stress_ma),
                    delta_aging_ma=float(report.delta_aging_ma),
                    applied=applied,
                )

        # 2. Identify the state.
        state = self.states.state_of(observation)

        # 3. Reward the previous action and update the Q-table (Eq. 7).
        #    In the exploitation phase the update continues with a
        #    negligible learning rate (the paper's "updated with
        #    negligible fraction of the reward value"), which lets the
        #    table keep absorbing states first reached after the decay.
        if self._prev_state is not None and self._prev_action is not None:
            breakdown = self.reward_fn.evaluate(observation, performance, constraint)
            if breakdown.unsafe:
                self.stats.unsafe_epochs += 1
            self.stats.reward_sum += breakdown.total
            alpha = max(self.schedule.alpha, EXPLOITATION_ALPHA_FLOOR)
            self.qtable.update(
                self._prev_state,
                self._prev_action,
                breakdown.total,
                state,
                alpha,
                self.config.discount,
            )
            if self.obs is not None:
                self.obs.emit(
                    "q_update",
                    now_s,
                    state=int(self._prev_state),
                    action=int(self._prev_action),
                    reward=float(breakdown.total),
                    alpha=float(alpha),
                    q_value=float(
                        self.qtable.value(self._prev_state, self._prev_action)
                    ),
                )

        # Bookkeeping of the learning phases: note when exploration
        # ends, and capture the static second Q-table once the agent
        # enters pure exploitation (the table is fully trained then; a
        # snapshot taken at the very end of round-robin exploration
        # would restore a half-learned policy on intra-application
        # variation).
        if self.schedule.exploration_just_ended():
            self.stats.exploration_end_epoch = self.stats.epochs
        if (
            not self.qtable.has_exploration_snapshot
            and self.schedule.phase is LearningPhase.EXPLOITATION
        ):
            self.qtable.capture_exploration()
            if self.stats.exploitation_entry_epoch is None:
                self.stats.exploitation_entry_epoch = self.stats.epochs

        # 4. Select the next action.  During exploration the agent
        # cycles through the whole action menu ("selects action
        # arbitrarily to determine the corresponding reward") so every
        # action's reward lands in the table; afterwards it is
        # epsilon-greedy with epsilon tied to alpha.
        if (
            self.schedule.phase is LearningPhase.EXPLORATION
            or self.schedule.epoch < len(self.actions)
        ):
            action = self.schedule.epoch % len(self.actions)
        elif self._rng.random() < self.schedule.epsilon:
            action = int(self._rng.integers(len(self.actions)))
        else:
            action = self.qtable.best_action(state)
            if (
                self._prev_action is not None
                and self.qtable.value(state, self._prev_action)
                >= self.qtable.value(state, action) - ACTION_HYSTERESIS
            ):
                action = self._prev_action

        # 5. Learning-rate update and bookkeeping.
        self.schedule.advance()
        self._prev_state = state
        if self._prev_action is not None and action == self._prev_action:
            self._same_action_count += 1
        else:
            self._same_action_count = 1
        self._prev_prev_action = self._prev_action
        self._prev_action = action
        self._trec.clear()
        self.stats.epochs += 1
        label = self.actions[action].label
        self.stats.last_action_label = label
        self.stats.action_counts[label] = self.stats.action_counts.get(label, 0) + 1
        self._track_convergence()
        if self.obs is not None:
            self.obs.emit(
                "decision",
                now_s,
                epoch=self.stats.epochs - 1,
                state=int(state),
                action=int(action),
                action_label=label,
                phase=self.schedule.phase.value,
                alpha=float(self.schedule.alpha),
            )
        return action

    def _track_convergence(self) -> None:
        """Detect when the greedy policy has stabilised."""
        policy = self.qtable.greedy_policy()
        if self._last_policy is not None and np.array_equal(policy, self._last_policy):
            self._policy_stable_for += 1
        else:
            self._policy_stable_for = 0
            self.stats.last_policy_change_epoch = self.stats.epochs
        self._last_policy = policy
        if (
            self.stats.convergence_epoch is None
            and self._policy_stable_for >= CONVERGENCE_WINDOW
        ):
            self.stats.convergence_epoch = self.stats.epochs - CONVERGENCE_WINDOW

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def phase(self) -> LearningPhase:
        """Current learning phase."""
        return self.schedule.phase
