"""Reward function of the learning agent (Eq. 8, Section 5.2).

.. math::

    R(E_i, E_{i+1}) = \\begin{cases}
        -\\hat{s}_i \\times \\hat{a}_i & (\\hat{s}_i = \\hat{s}_{N_s})
            \\text{ or } (\\hat{a}_i = \\hat{a}_{N_a}) \\\\
        f(\\hat{a}_i, \\hat{s}_i) + (P_c - P) & \\text{otherwise}
    \\end{cases}

with ``f = a K_1 \\cdot \\text{safety}_s + b K_2 \\cdot \\text{safety}_a``
where the safeties are ``1 - normalised value`` and ``K_1``/``K_2`` are
Gaussian functions of the normalised stress/aging.  The Gaussian weights
assign low reward both to thermally unstable *and* to trivially stable
states, which keeps the agent exploring instead of clustering the
Q-table (Section 5.2).

The relative importance pair ``(a, b)`` is selected per epoch from the
observed balance of stress vs aging: cycling-dominant epochs (mpeg-like)
weight stress, hot epochs (tachyon-like) weight aging.

Sign conventions: the unsafe branch is strictly negative; the penalty
grows with how deep into the unsafe region the observation sits.  The
performance term penalises violating the constraint and gives no bonus
above it, so "rewards are guaranteed if an action leads to a thermal
safe state while satisfying the performance requirements".
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.config import AgentConfig
from repro.core.state import EpochObservation, StateSpace


@dataclass(frozen=True)
class RewardBreakdown:
    """The reward and its components, for logging and tests."""

    total: float
    unsafe: bool
    thermal_term: float
    performance_term: float
    stress_weight: float
    aging_weight: float


class RewardFunction:
    """Eq. 8 evaluator.

    Parameters
    ----------
    config:
        Agent hyper-parameters (Gaussian widths, importance pairs,
        performance weight).
    states:
        The state space (to test for the unsafe zone).
    """

    #: Scale of the unsafe-zone penalty.
    UNSAFE_PENALTY_SCALE = 2.0
    #: Floor of the unsafe-zone penalty, so it is always clearly negative.
    UNSAFE_PENALTY_FLOOR = 0.5

    def __init__(self, config: AgentConfig, states: StateSpace) -> None:
        self.config = config
        self.states = states

    # ------------------------------------------------------------------
    # Components
    # ------------------------------------------------------------------

    def gaussian_weight(self, value_norm: float) -> float:
        """The Gaussian learning weight ``K`` of a normalised value."""
        centre = self.config.gaussian_centre
        width = self.config.gaussian_width
        return math.exp(-((value_norm - centre) ** 2) / (2.0 * width * width))

    def importance(self, observation: EpochObservation) -> tuple:
        """(a, b) importance pair for this epoch's stress/aging balance.

        Stress-dominant epochs (normalised stress exceeds normalised
        aging) use ``weight_stress_dominant``; otherwise the aging pair.
        """
        if observation.stress_norm >= observation.aging_norm:
            return self.config.weight_stress_dominant
        return self.config.weight_aging_dominant

    #: Fraction of the thermal term modulated by the Gaussian weights.
    #: The base (1 - GAUSSIAN_BLEND) keeps the term strictly monotone in
    #: thermal safety, so a perfectly stable state is never rewarded
    #: below a marginal one; the Gaussian share flattens the gradient at
    #: both extremes, which is what keeps the agent exploring instead of
    #: clustering the Q-table (Section 5.2).
    GAUSSIAN_BLEND = 0.3

    def thermal_term(self, observation: EpochObservation) -> float:
        """``f(a_hat, s_hat)`` of Eq. 8 for a safe observation."""
        a, b = self.importance(observation)
        k1 = self.gaussian_weight(observation.stress_norm)
        k2 = self.gaussian_weight(observation.aging_norm)
        blend = self.GAUSSIAN_BLEND
        stress_safety = 1.0 - observation.stress_norm
        aging_safety = 1.0 - observation.aging_norm
        return a * stress_safety * (1.0 - blend + blend * k1) + b * aging_safety * (
            1.0 - blend + blend * k2
        )

    def performance_term(self, performance: float, constraint: float) -> float:
        """The ``(Pc - P)`` penalty, normalised by the constraint.

        Negative when the constraint is violated, zero otherwise (no
        bonus for exceeding it).
        """
        if constraint <= 0.0:
            return 0.0
        shortfall = min(0.0, (performance - constraint) / constraint)
        return self.config.performance_weight * shortfall

    # ------------------------------------------------------------------
    # Eq. 8
    # ------------------------------------------------------------------

    def evaluate(
        self,
        observation: EpochObservation,
        performance: float,
        constraint: float,
    ) -> RewardBreakdown:
        """Compute the reward of the epoch that just ended.

        Parameters
        ----------
        observation:
            Normalised stress/aging of the epoch.
        performance:
            Measured performance ``P`` over the epoch (same units as the
            constraint, e.g. frames per second).
        constraint:
            The application's performance constraint ``Pc``.
        """
        a, b = self.importance(observation)
        if self.states.is_unsafe(observation):
            penalty = -(
                self.UNSAFE_PENALTY_SCALE
                * observation.stress_norm
                * observation.aging_norm
                + self.UNSAFE_PENALTY_FLOOR
            )
            return RewardBreakdown(
                total=penalty,
                unsafe=True,
                thermal_term=penalty,
                performance_term=0.0,
                stress_weight=a,
                aging_weight=b,
            )
        thermal = self.thermal_term(observation)
        perf = self.performance_term(performance, constraint)
        return RewardBreakdown(
            total=thermal + perf,
            unsafe=False,
            thermal_term=thermal,
            performance_term=perf,
            stress_weight=a,
            aging_weight=b,
        )
