"""Learning-rate schedule and learning phases (Section 5.3).

The algorithm passes through three phases:

* **exploration** — alpha close to 1, actions chosen (mostly) randomly;
* **exploration-exploitation** — best actions selected, Q-table still
  updated with part of the reward;
* **exploitation** — greedy actions, negligible table updates.

Transitions are driven by an exponentially decreasing alpha,
``alpha(i) = exp(-i / tau)`` in the epoch index ``i`` (the paper's
``UpdateLearningRate`` subroutine).  The exploration probability
(epsilon) is tied to alpha, so exploration fades in lockstep.

``tau`` scales with the square root of the Q-table size so that larger
state/action spaces get proportionally longer exploration — the paper's
requirement that "a significant fraction of the reward values contribute
towards the Q-Table entries" before exploitation, and the mechanism
behind the Figure 8 convergence trend.
"""

from __future__ import annotations

import enum
import math


class LearningPhase(enum.Enum):
    """The three phases of Section 5.3."""

    EXPLORATION = "exploration"
    EXPLORATION_EXPLOITATION = "exploration-exploitation"
    EXPLOITATION = "exploitation"


#: Alpha above which the agent is considered purely exploring.
EXPLORATION_ALPHA = 0.5

#: Reference table size (9 states x 8 actions) at which ``tau`` equals
#: the configured ``alpha_decay_epochs``.
REFERENCE_TABLE_SIZE = 72.0


class AlphaSchedule:
    """Exponentially decaying learning rate with phase bookkeeping.

    Parameters
    ----------
    decay_epochs:
        Base time constant ``tau`` (in epochs) at the reference table
        size.
    exploit_threshold:
        Alpha below which the agent is in pure exploitation.
    table_size:
        ``num_states * num_actions``; scales the time constant.
    alpha_intra:
        Alpha restored on intra-application variation (Section 5.4).
    """

    def __init__(
        self,
        decay_epochs: float,
        exploit_threshold: float,
        table_size: int,
        alpha_intra: float = 0.3,
    ) -> None:
        if decay_epochs <= 0.0:
            raise ValueError("decay_epochs must be positive")
        if not 0.0 < exploit_threshold < EXPLORATION_ALPHA:
            raise ValueError("exploit threshold must be in (0, 0.5)")
        self.tau = decay_epochs * math.sqrt(table_size / REFERENCE_TABLE_SIZE)
        self.exploit_threshold = exploit_threshold
        self.alpha_intra = alpha_intra
        self._alpha = 1.0
        self._epoch = 0
        self._exploration_captured = False

    @property
    def alpha(self) -> float:
        """The current learning rate."""
        return self._alpha

    @property
    def epoch(self) -> int:
        """Number of decision epochs since the last (re)start."""
        return self._epoch

    @property
    def phase(self) -> LearningPhase:
        """The current learning phase."""
        if self._alpha > EXPLORATION_ALPHA:
            return LearningPhase.EXPLORATION
        if self._alpha > self.exploit_threshold:
            return LearningPhase.EXPLORATION_EXPLOITATION
        return LearningPhase.EXPLOITATION

    @property
    def epsilon(self) -> float:
        """Exploration probability, tied to alpha.

        Zero in the exploitation phase: the paper's exploitation phase
        "still selects the action corresponding to the highest Q-value",
        with no residual exploration — an exploratory thermal excursion
        would undo the cycling control the agent has learned.
        """
        if self.phase is LearningPhase.EXPLOITATION:
            return 0.0
        return max(0.05, min(1.0, self._alpha))

    def advance(self) -> float:
        """Advance one decision epoch; returns the new alpha.

        This is the ``UpdateLearningRate`` subroutine of Algorithm 1.
        """
        self._epoch += 1
        self._alpha = math.exp(-self._epoch / self.tau)
        return self._alpha

    def exploration_just_ended(self) -> bool:
        """True exactly once, when the exploration phase first ends.

        The agent uses this to capture the end-of-exploration Q-table
        snapshot (Section 5.4).
        """
        if self._exploration_captured:
            return False
        if self.phase is not LearningPhase.EXPLORATION:
            self._exploration_captured = True
            return True
        return False

    # ------------------------------------------------------------------
    # Variation responses (Section 5.4)
    # ------------------------------------------------------------------

    def restart_intra(self) -> None:
        """Intra-application variation: resume from ``alpha_intra``."""
        self._alpha = self.alpha_intra
        self._epoch = max(1, int(round(-self.tau * math.log(self.alpha_intra))))

    def restart_inter(self) -> None:
        """Inter-application variation: full re-learning from alpha = 1."""
        self._alpha = 1.0
        self._epoch = 0
        self._exploration_captured = False
