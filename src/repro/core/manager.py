"""Run-time system binding the learning agent to the platform.

This is the "Proposed Approach" box of Figure 2: it samples the on-board
sensors at the temperature sampling interval, hands the samples to the
agent, and — at every decision epoch — lets the agent pick an action,
which it enforces through the operating-system layer (affinity masks and
CPU governors), paying the associated sampling/decision/migration
overheads.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.config import AgentConfig, ReliabilityConfig
from repro.core.actions import Action, ActionSpace
from repro.core.agent import QLearningThermalAgent
from repro.soc.simulator import Simulation, ThermalManagerBase
from repro.workloads.application import Application


class ProposedThermalManager(ThermalManagerBase):
    """The paper's thermal manager, pluggable into a Simulation.

    Parameters
    ----------
    config:
        Agent hyper-parameters.
    reliability:
        Device parameters for the stress/aging state computation.
    action_space:
        Optional explicit action space (the Figure 8 sweep passes sized
        spaces); defaults to ``config.num_actions`` menu entries.
    """

    def __init__(
        self,
        config: AgentConfig,
        reliability: ReliabilityConfig,
        action_space: Optional[ActionSpace] = None,
    ) -> None:
        self.config = config
        self.agent = QLearningThermalAgent(config, reliability, action_space)
        self._next_sample_s = config.sampling_interval_s
        self._current_action: Optional[Action] = None

    # ------------------------------------------------------------------
    # ThermalManagerBase interface
    # ------------------------------------------------------------------

    def attach(self, sim: Simulation) -> None:
        """Reset sampling state at the start of a run."""
        self._next_sample_s = self.config.sampling_interval_s
        self.agent.obs = sim.obs

    def on_tick(self, sim: Simulation) -> None:
        """Sample at the sampling interval; decide at decision epochs."""
        if sim.now + 1e-9 < self._next_sample_s:
            return
        self._next_sample_s += self.config.sampling_interval_s
        self.agent.record_sample(sim.read_sensors())
        if not self.agent.epoch_ready:
            return

        app = sim.current_app
        performance = app.throughput(window_s=self.config.decision_epoch_s)
        constraint = app.spec.performance_constraint
        action_index = self.agent.decide(performance, constraint, now_s=sim.now)
        action = self.agent.actions[action_index]
        self._apply(sim, action, app)
        sim.charge_decision_overhead()

    def on_app_switch(self, sim: Simulation, app: Application) -> None:
        """The proposed approach ignores explicit switch notifications.

        Application switches must be detected autonomously through the
        moving-average mechanism (Section 5.4); accepting this signal
        would reduce the approach to the modified Ge & Qiu baseline.
        """

    # ------------------------------------------------------------------
    # Actuation
    # ------------------------------------------------------------------

    def _apply(self, sim: Simulation, action: Action, app: Application) -> None:
        """Enforce the selected action through the OS layer."""
        if (
            self._current_action is not None
            and action.label == self._current_action.label
        ):
            return
        sim.set_mapping(action.mapping(app.spec.num_threads))
        sim.set_governor(action.governor, action.userspace_frequency_hz)
        self._current_action = action

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def stats(self) -> Dict[str, float]:
        """Agent counters for the simulation result."""
        return self.agent.stats.as_dict()

    @property
    def current_action(self) -> Optional[Action]:
        """The most recently enforced action."""
        return self._current_action
