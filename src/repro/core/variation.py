"""Moving-average workload-variation detection (Section 5.4).

At the start of every decision epoch the agent maintains moving averages
``MA_s`` / ``MA_a`` of the (normalised) stress and aging and measures the
deviation of the newest observation from the trend:

.. math::

    \\Delta MA = x_t - MA_{t-1}

* a *sustained* deviation — two consecutive epochs beyond the upper
  threshold **with the same sign** on the same axis, or a single very
  large jump — is an **inter-application** variation (an application
  switch): the Q-table is reset to zero and alpha to 1 so the agent
  re-learns from scratch;
* a moderate deviation (between the lower and upper thresholds), or a
  single-epoch spike, is an **intra-application** variation: the Q-table
  is restored from the end-of-exploration snapshot and alpha resumes
  from ``alpha_exp``.

The same-sign requirement distinguishes a level shift (a different
application's thermal signature) from the alternating swings the agent's
own exploration produces.  This is how the proposed approach detects
application switches *autonomously*, without any notification from the
application layer — the property Figure 3's comparison against the
"modified" Ge & Qiu baseline isolates.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional

from repro.config import AgentConfig
from repro.core.state import EpochObservation

#: A single-epoch jump this many times the upper threshold is an
#: immediate inter-application trigger.
IMMEDIATE_JUMP_FACTOR = 2.5


class VariationKind(enum.Enum):
    """Classification of the epoch-to-epoch workload change."""

    NONE = "none"
    INTRA = "intra"
    INTER = "inter"


@dataclass(frozen=True)
class VariationReport:
    """Detection outcome of one epoch."""

    kind: VariationKind
    delta_stress_ma: float
    delta_aging_ma: float


class VariationDetector:
    """Moving-average deviation detector over epoch observations.

    Parameters
    ----------
    config:
        Agent hyper-parameters (window length and the four thresholds).
    """

    def __init__(self, config: AgentConfig) -> None:
        if config.ma_window < 1:
            raise ValueError("moving-average window must be >= 1")
        self.config = config
        self._stress: Deque[float] = deque(maxlen=config.ma_window)
        self._aging: Deque[float] = deque(maxlen=config.ma_window)
        self._pending_stress_sign: Optional[float] = None
        self._pending_aging_sign: Optional[float] = None

    def reset(self) -> None:
        """Forget all history (after an inter-application event)."""
        self._stress.clear()
        self._aging.clear()
        self._pending_stress_sign: Optional[float] = None
        self._pending_aging_sign: Optional[float] = None

    def observe(
        self, observation: EpochObservation, action_stable: bool = True
    ) -> VariationReport:
        """Ingest one epoch and classify the change.

        Parameters
        ----------
        observation:
            The epoch's normalised stress/aging.
        action_stable:
            Whether the agent held the *same* action over the last two
            epochs.  A thermal shift that coincides with the agent's own
            actuation change is self-induced, not a workload change, so
            only deviations that appear under a stable action can open
            an inter-application trigger.

        Returns
        -------
        VariationReport
            ``INTER`` dominates ``INTRA`` when both would trigger.
        """
        cfg = self.config
        if not self._stress:
            # First observation: establish the trend, no classification.
            self._stress.append(observation.stress_norm)
            self._aging.append(observation.aging_norm)
            return VariationReport(VariationKind.NONE, 0.0, 0.0)

        stress_ma = sum(self._stress) / len(self._stress)
        aging_ma = sum(self._aging) / len(self._aging)
        dev_s = observation.stress_norm - stress_ma
        dev_a = observation.aging_norm - aging_ma

        inter = action_stable and (
            abs(dev_s) >= IMMEDIATE_JUMP_FACTOR * cfg.stress_ma_upper
            or abs(dev_a) >= IMMEDIATE_JUMP_FACTOR * cfg.aging_ma_upper
        )
        # Second same-sign deviation confirms a pending level shift (the
        # confirming epoch may legitimately carry an action change — the
        # agent starts reacting to the new workload).
        if self._pending_stress_sign is not None:
            if abs(dev_s) >= cfg.stress_ma_upper and (
                (dev_s > 0.0) == (self._pending_stress_sign > 0.0)
            ):
                inter = True
            self._pending_stress_sign = None
        if self._pending_aging_sign is not None:
            if abs(dev_a) >= cfg.aging_ma_upper and (
                (dev_a > 0.0) == (self._pending_aging_sign > 0.0)
            ):
                inter = True
            self._pending_aging_sign = None
        # A first above-threshold deviation opens a pending trigger only
        # when the agent did not just change its own action.
        if action_stable:
            if abs(dev_s) >= cfg.stress_ma_upper:
                self._pending_stress_sign = dev_s
            if abs(dev_a) >= cfg.aging_ma_upper:
                self._pending_aging_sign = dev_a

        intra = (
            cfg.stress_ma_lower <= abs(dev_s)
            or cfg.aging_ma_lower <= abs(dev_a)
        )

        # While a pending trigger awaits confirmation the moving-average
        # reference is frozen: absorbing the deviating sample would
        # shrink the second deviation below threshold and mask genuine
        # level shifts.
        if self._pending_stress_sign is None and self._pending_aging_sign is None:
            self._stress.append(observation.stress_norm)
            self._aging.append(observation.aging_norm)

        if inter:
            kind = VariationKind.INTER
        elif intra:
            kind = VariationKind.INTRA
        else:
            kind = VariationKind.NONE
        return VariationReport(kind, dev_s, dev_a)
