"""Action space of the learning agent (Section 5.1).

An action is a pair ``(affinity mapping, CPU governor)``.  The number of
possible affinity masks grows exponentially with threads and cores, so —
exactly as the paper does — only a few structured alternatives are
exposed, combined with the five Linux governors (with three frequency
levels for ``userspace``).  The default space has 8 actions, the value
the Figure 8 trade-off selects; :func:`build_action_space` can build the
4- and 12-action variants that figure sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.sched.affinity import AffinityMapping, mapping_by_name
from repro.units import ghz


@dataclass(frozen=True)
class Action:
    """One (mapping, governor) actuation choice.

    Attributes
    ----------
    mapping_name:
        Preset name from :mod:`repro.sched.affinity`.
    governor:
        cpufreq governor name.
    userspace_frequency_hz:
        Frequency for the ``userspace`` governor, else ``None``.
    """

    mapping_name: str
    governor: str
    userspace_frequency_hz: Optional[float] = None

    @property
    def label(self) -> str:
        """Short display label used in logs and experiment tables."""
        if self.governor == "userspace":
            gov = f"userspace@{self.userspace_frequency_hz / 1e9:.1f}GHz"
        else:
            gov = self.governor
        return f"{self.mapping_name}+{gov}"

    def mapping(self, num_threads: int = 6) -> Optional[AffinityMapping]:
        """Materialise the affinity mapping (None for the OS default)."""
        if self.mapping_name == "os_default":
            return None
        return mapping_by_name(self.mapping_name, num_threads)


#: The full menu the sized spaces draw from, ordered so that a prefix of
#: any length is a sensible space: thermal knobs early, extremes later.
_ACTION_MENU: Tuple[Action, ...] = (
    Action("os_default", "ondemand"),
    Action("spread_rr", "userspace", ghz(2.4)),
    Action("spread_rr", "userspace", ghz(2.0)),
    Action("os_default", "powersave"),
    Action("paired_2211", "userspace", ghz(2.4)),
    Action("cluster_3", "userspace", ghz(2.0)),
    Action("spread_rr", "conservative"),
    Action("os_default", "userspace", ghz(3.4)),
    Action("half_split", "userspace", ghz(2.4)),
    Action("paired_2211", "conservative"),
    Action("cluster_2", "userspace", ghz(2.0)),
    Action("spread_alt", "userspace", ghz(2.4)),
)


class ActionSpace:
    """An ordered, indexable set of actions.

    Parameters
    ----------
    actions:
        The actions, in Q-table column order.
    """

    def __init__(self, actions: Sequence[Action]) -> None:
        if not actions:
            raise ValueError("need at least one action")
        labels = [a.label for a in actions]
        if len(set(labels)) != len(labels):
            raise ValueError("duplicate actions in the space")
        self._actions = list(actions)

    def __len__(self) -> int:
        return len(self._actions)

    def __iter__(self):
        return iter(self._actions)

    def __getitem__(self, index: int) -> Action:
        return self._actions[index]

    def index_of(self, label: str) -> int:
        """Index of the action with this label.

        Raises
        ------
        KeyError
            If no action carries the label.
        """
        for index, action in enumerate(self._actions):
            if action.label == label:
                return index
        raise KeyError(f"no action labelled {label!r}")

    def labels(self) -> List[str]:
        """All action labels in order."""
        return [a.label for a in self._actions]


def build_action_space(num_actions: int) -> ActionSpace:
    """Build an action space of the requested size (Figure 8 sweep).

    Parameters
    ----------
    num_actions:
        Between 2 and ``len(_ACTION_MENU)``; the first ``num_actions``
        entries of the menu are used.
    """
    if not 2 <= num_actions <= len(_ACTION_MENU):
        raise ValueError(
            f"num_actions must be in 2..{len(_ACTION_MENU)}, got {num_actions}"
        )
    return ActionSpace(_ACTION_MENU[:num_actions])


def default_action_space() -> ActionSpace:
    """The 8-action default space of the paper's chosen design point."""
    return build_action_space(8)
