"""Deterministic capture/restore of the full simulation closure.

A snapshot captures every piece of mutable state that influences the
rest of a run — chip thermal/energy state, scheduler placement, governor
frequencies, dual Q-tables and the agent's learning-rate schedule, fault
injector and supervisor machinery, every RNG stream, and the attached
observability sinks (trace events and metric instruments, so the
artefacts written at the end of a resumed run are byte-identical to an
uninterrupted run's).

Everything is rendered as JSON-ready primitives:

* ``numpy`` arrays via ``tolist()`` (float ``repr`` round-trips IEEE
  doubles exactly);
* ``numpy`` generators via ``bit_generator.state`` (a plain dict of
  ints, restorable by assignment);
* threads by their index within the owning application (thread objects
  are rebuilt by the fresh simulation; indices re-key the scheduler's
  identity-based dicts against them);
* non-finite floats (``-inf`` stuck timers, ``NaN`` stuck references)
  ride on Python's non-strict JSON encoding — both ends of the
  round-trip are this module, so the extension is safe.

The restore protocol is *prepare-then-overwrite*: the fresh simulation
runs its normal :meth:`~repro.soc.simulator.Simulation.prepare` (so all
attach-time side effects — manager binding, first-application adoption,
lazily-built baseline Q-tables — happen exactly once), after which every
mutable field is overwritten wholesale from the snapshot.  Transient
per-tick caches (run queues, dt-derived EWMA constants) are deliberately
not captured: a fresh ``None`` forces the identical recompute on the
first resumed tick.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

import numpy as np

from repro.baselines.ge_qiu import GeQiuThermalManager
from repro.baselines.static_policy import StaticPolicyManager
from repro.checkpoint.store import CheckpointStateError
from repro.core.manager import ProposedThermalManager
from repro.faults.supervisor import _PendingActuation, _UNSET
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.power.energy import EnergyMeter
from repro.sched.affinity import AffinityMapping
from repro.sched.governors import Governor, UserspaceGovernor, make_governor
from repro.soc.simulator import AppRecord, Simulation
from repro.workloads.application import Application
from repro.workloads.thread_model import ThreadPhase

# ----------------------------------------------------------------------
# Primitive helpers
# ----------------------------------------------------------------------


def capture_rng_state(generator: np.random.Generator) -> dict:
    """The generator's bit-generator state (a JSON-ready dict of ints)."""
    return generator.bit_generator.state


def restore_rng_state(generator: np.random.Generator, state: dict) -> None:
    """Overwrite a generator's stream position from a captured state."""
    generator.bit_generator.state = state


def _opt_list(array: Optional[np.ndarray]) -> Optional[list]:
    return None if array is None else np.asarray(array).tolist()


def _opt_array(values: Optional[list], dtype=float) -> Optional[np.ndarray]:
    return None if values is None else np.asarray(values, dtype=dtype)


# ----------------------------------------------------------------------
# Energy / perf / profile
# ----------------------------------------------------------------------


def _capture_energy(meter: EnergyMeter) -> dict:
    return {
        "dynamic_j": meter.dynamic_j,
        "static_j": meter.static_j,
        "elapsed_s": meter.elapsed_s,
    }


def _energy_from(state: dict) -> EnergyMeter:
    return EnergyMeter(
        dynamic_j=float(state["dynamic_j"]),
        static_j=float(state["static_j"]),
        elapsed_s=float(state["elapsed_s"]),
    )


def _restore_energy_into(meter: EnergyMeter, state: dict) -> None:
    meter.dynamic_j = float(state["dynamic_j"])
    meter.static_j = float(state["static_j"])
    meter.elapsed_s = float(state["elapsed_s"])


_PERF_FIELDS = (
    "cache_misses",
    "page_faults",
    "migrations",
    "sample_events",
    "decision_events",
    "executed_cycles",
)


def _capture_perf(perf) -> dict:
    return {name: getattr(perf, name) for name in _PERF_FIELDS}


def _restore_perf(perf, state: dict) -> None:
    for name in _PERF_FIELDS:
        setattr(perf, name, state[name])


def _capture_profile(profile) -> List[List[float]]:
    return profile._data[:, : profile._len].tolist()


def _restore_profile(profile, rows: List[List[float]]) -> None:
    block = np.asarray(rows, dtype=float)
    if block.ndim != 2:
        block = block.reshape(profile.num_cores, 0)
    profile._adopt(block)


# ----------------------------------------------------------------------
# Chip (thermal network, sensors, energy, drift)
# ----------------------------------------------------------------------


def _capture_sensor_bank(bank) -> dict:
    return {
        "rng": capture_rng_state(bank._rng),
        "ema": _opt_list(bank._ema),
    }


def _restore_sensor_bank(bank, state: dict) -> None:
    restore_rng_state(bank._rng, state["rng"])
    bank._ema = _opt_array(state["ema"])


def capture_chip(chip) -> dict:
    """Thermal network, sensor bank, energy meter and drift RNG."""
    return {
        "node_temps_c": chip.thermal.node_temps_c().tolist(),
        "ambient_c": chip.thermal.ambient_c,
        "sensors": _capture_sensor_bank(chip.sensors),
        "energy": _capture_energy(chip.energy),
        "last_dynamic": list(chip._last_dynamic),
        "last_static": list(chip._last_static),
        "drift_rng": capture_rng_state(chip._drift_rng),
    }


def restore_chip(chip, state: dict) -> None:
    """Overwrite a chip's mutable state from a captured snapshot."""
    chip.thermal.set_state(state["node_temps_c"])
    chip.thermal.set_ambient_c(float(state["ambient_c"]))
    _restore_sensor_bank(chip.sensors, state["sensors"])
    _restore_energy_into(chip.energy, state["energy"])
    chip._last_dynamic = [float(v) for v in state["last_dynamic"]]
    chip._last_static = [float(v) for v in state["last_static"]]
    restore_rng_state(chip._drift_rng, state["drift_rng"])
    # _drift_dt / _drift_pull_gain / _drift_kick_scale are dt-derived
    # caches: a fresh None triggers the identical recompute on the next
    # step, so they are deliberately not part of the snapshot.


# ----------------------------------------------------------------------
# Applications and threads
# ----------------------------------------------------------------------


def _capture_thread(thread) -> dict:
    return {
        "phase": thread.phase.value,
        "iteration": thread.iteration,
        "remaining_cycles": thread.remaining_cycles,
        "last_core": thread.last_core,
        "core": thread.core,
    }


def _restore_thread(thread, state: dict) -> None:
    thread.phase = ThreadPhase(state["phase"])
    thread.iteration = int(state["iteration"])
    thread.remaining_cycles = float(state["remaining_cycles"])
    thread.last_core = state["last_core"]
    thread.core = state["core"]


def capture_application(app: Application) -> dict:
    """Barrier/queue coordination state plus every thread's progress."""
    return {
        # The jitter RNG is shared by reference with the threads, so one
        # captured stream position covers the whole application.
        "rng": capture_rng_state(app._rng),
        "sync_remaining_s": app._sync_remaining_s,
        "thread_sync_s": [[tid, value] for tid, value in app._thread_sync_s.items()],
        "thread_completions": app._thread_completions,
        "completion_times_s": list(app._completion_times_s),
        "elapsed_s": app._elapsed_s,
        "queue_remaining": app._queue_remaining,
        "threads": [_capture_thread(thread) for thread in app.threads],
    }


def restore_application(app: Application, state: dict) -> None:
    """Overwrite an application's run-time state from a snapshot."""
    if len(state["threads"]) != len(app.threads):
        raise CheckpointStateError(
            f"snapshot has {len(state['threads'])} threads for "
            f"{app.spec.name!r}, simulation has {len(app.threads)}"
        )
    restore_rng_state(app._rng, state["rng"])
    app._sync_remaining_s = state["sync_remaining_s"]
    app._thread_sync_s = {int(tid): float(v) for tid, v in state["thread_sync_s"]}
    app._thread_completions = int(state["thread_completions"])
    app._completion_times_s = [float(t) for t in state["completion_times_s"]]
    app._elapsed_s = float(state["elapsed_s"])
    app._queue_remaining = int(state["queue_remaining"])
    for thread, thread_state in zip(app.threads, state["threads"]):
        _restore_thread(thread, thread_state)


# ----------------------------------------------------------------------
# Scheduler (threads re-keyed by index into the current application)
# ----------------------------------------------------------------------


def _capture_scheduler(scheduler) -> dict:
    index_of = {thread: i for i, thread in enumerate(scheduler._threads)}
    return {
        "core_of": [
            [index_of[thread], core] for thread, core in scheduler._core_of.items()
        ],
        "prev_runnable": [
            [index_of[thread], runnable]
            for thread, runnable in scheduler._prev_runnable.items()
        ],
        "stalled": sorted(index_of[thread] for thread in scheduler._stalled),
        "stall_s": list(scheduler._stall_s),
        "idle_for_s": list(scheduler._idle_for_s),
        "busy_ewma": scheduler._busy_ewma,
        "since_rebalance_s": scheduler._since_rebalance_s,
        "runnable_per_core": list(scheduler._runnable_per_core),
    }


def _restore_scheduler(scheduler, state: dict, threads, mapping) -> None:
    # Adopt the restored current application's threads directly: calling
    # set_threads/set_mapping would re-place and re-charge migrations.
    scheduler._threads = list(threads)
    scheduler._mapping = mapping
    scheduler._core_of = {threads[i]: core for i, core in state["core_of"]}
    scheduler._prev_runnable = {
        threads[i]: bool(flag) for i, flag in state["prev_runnable"]
    }
    scheduler._stalled = {threads[i] for i in state["stalled"]}
    scheduler._stall_s = [float(v) for v in state["stall_s"]]
    scheduler._idle_for_s = [float(v) for v in state["idle_for_s"]]
    scheduler._busy_ewma = float(state["busy_ewma"])
    scheduler._since_rebalance_s = float(state["since_rebalance_s"])
    scheduler._runnable_per_core = [int(v) for v in state["runnable_per_core"]]
    # _ewma_dt/_ewma_weight and the per-tick run queues are transient:
    # left at their freshly-constructed values they recompute identically
    # on the first resumed tick.


# ----------------------------------------------------------------------
# Governors and affinity mappings
# ----------------------------------------------------------------------


def _encode_governor(governor: Optional[Governor]) -> Optional[dict]:
    if governor is None:
        return None
    if isinstance(governor, UserspaceGovernor):
        return {
            "kind": "userspace",
            "target_hz": governor.target_frequency_hz,
            "frequencies": governor.frequencies(),
        }
    return {
        "kind": governor.name,
        "target_hz": None,
        "frequencies": governor.frequencies(),
    }


def _decode_governor(state: Optional[dict], ladder, num_cores: int):
    if state is None:
        return None
    governor = make_governor(
        state["kind"], ladder, num_cores, state["target_hz"]
    )
    governor._frequencies = [float(v) for v in state["frequencies"]]
    return governor


def _encode_mapping(mapping: Optional[AffinityMapping]) -> Optional[dict]:
    if mapping is None:
        return None
    return {
        "name": mapping.name,
        "masks": [
            sorted(mask) if mask is not None else None for mask in mapping.masks
        ],
    }


def _decode_mapping(state: Optional[dict]) -> Optional[AffinityMapping]:
    if state is None:
        return None
    masks = tuple(
        frozenset(mask) if mask is not None else None for mask in state["masks"]
    )
    return AffinityMapping(state["name"], masks)


# ----------------------------------------------------------------------
# Agent (dual Q-tables, alpha schedule, variation detector)
# ----------------------------------------------------------------------


def _capture_qtable(qtable) -> dict:
    return {
        "q": qtable._q.tolist(),
        "visits": qtable._visits.tolist(),
        "exploration_snapshot": _opt_list(qtable._exploration_snapshot),
    }


def _restore_qtable(qtable, state: dict) -> None:
    qtable._q = np.asarray(state["q"], dtype=float)
    qtable._visits = np.asarray(state["visits"], dtype=int)
    qtable._exploration_snapshot = _opt_array(state["exploration_snapshot"])


def capture_agent(agent) -> dict:
    """The learning agent's complete mutable state."""
    stats = agent.stats
    return {
        "qtable": _capture_qtable(agent.qtable),
        "schedule": {
            "alpha": agent.schedule._alpha,
            "epoch": agent.schedule._epoch,
            "exploration_captured": agent.schedule._exploration_captured,
        },
        "detector": {
            "stress": list(agent.detector._stress),
            "aging": list(agent.detector._aging),
            "pending_stress_sign": agent.detector._pending_stress_sign,
            "pending_aging_sign": agent.detector._pending_aging_sign,
        },
        "rng": capture_rng_state(agent._rng),
        "trec": [sample.tolist() for sample in agent._trec],
        "prev_epoch_series": agent._prev_epoch_series,
        "prev_state": agent._prev_state,
        "prev_action": agent._prev_action,
        "prev_prev_action": agent._prev_prev_action,
        "same_action_count": agent._same_action_count,
        "policy_stable_for": agent._policy_stable_for,
        "last_policy": _opt_list(agent._last_policy),
        "last_intra_epoch": agent._last_intra_epoch,
        "last_inter_epoch": agent._last_inter_epoch,
        "stats": {
            "epochs": stats.epochs,
            "intra_events": stats.intra_events,
            "inter_events": stats.inter_events,
            "unsafe_epochs": stats.unsafe_epochs,
            "reward_sum": stats.reward_sum,
            "convergence_epoch": stats.convergence_epoch,
            "last_policy_change_epoch": stats.last_policy_change_epoch,
            "exploration_end_epoch": stats.exploration_end_epoch,
            "exploitation_entry_epoch": stats.exploitation_entry_epoch,
            "last_action_label": stats.last_action_label,
            "action_counts": [
                [label, count] for label, count in stats.action_counts.items()
            ],
        },
    }


def restore_agent(agent, state: dict) -> None:
    """Overwrite an agent's learning state from a snapshot."""
    _restore_qtable(agent.qtable, state["qtable"])
    agent.schedule._alpha = float(state["schedule"]["alpha"])
    agent.schedule._epoch = int(state["schedule"]["epoch"])
    agent.schedule._exploration_captured = bool(
        state["schedule"]["exploration_captured"]
    )
    detector = agent.detector
    detector._stress.clear()
    detector._stress.extend(float(v) for v in state["detector"]["stress"])
    detector._aging.clear()
    detector._aging.extend(float(v) for v in state["detector"]["aging"])
    detector._pending_stress_sign = state["detector"]["pending_stress_sign"]
    detector._pending_aging_sign = state["detector"]["pending_aging_sign"]
    restore_rng_state(agent._rng, state["rng"])
    agent._trec = [np.asarray(sample, dtype=float) for sample in state["trec"]]
    agent._prev_epoch_series = state["prev_epoch_series"]
    agent._prev_state = state["prev_state"]
    agent._prev_action = state["prev_action"]
    agent._prev_prev_action = state["prev_prev_action"]
    agent._same_action_count = int(state["same_action_count"])
    agent._policy_stable_for = int(state["policy_stable_for"])
    agent._last_policy = _opt_array(state["last_policy"], dtype=int)
    agent._last_intra_epoch = int(state["last_intra_epoch"])
    agent._last_inter_epoch = int(state["last_inter_epoch"])
    stats = agent.stats
    captured = state["stats"]
    stats.epochs = int(captured["epochs"])
    stats.intra_events = int(captured["intra_events"])
    stats.inter_events = int(captured["inter_events"])
    stats.unsafe_epochs = int(captured["unsafe_epochs"])
    stats.reward_sum = float(captured["reward_sum"])
    stats.convergence_epoch = captured["convergence_epoch"]
    stats.last_policy_change_epoch = int(captured["last_policy_change_epoch"])
    stats.exploration_end_epoch = captured["exploration_end_epoch"]
    stats.exploitation_entry_epoch = captured["exploitation_entry_epoch"]
    stats.last_action_label = captured["last_action_label"]
    stats.action_counts = {
        label: int(count) for label, count in captured["action_counts"]
    }
    # last_observation is diagnostic-only (nothing on the decide path
    # reads it back); the next full epoch rebuilds it.
    agent.last_observation = None


# ----------------------------------------------------------------------
# Thermal managers
# ----------------------------------------------------------------------


def _capture_manager(manager) -> dict:
    if manager is None:
        return {"kind": "none"}
    if isinstance(manager, ProposedThermalManager):
        action = manager._current_action
        action_index = None
        if action is not None:
            action_index = next(
                i
                for i, candidate in enumerate(manager.agent.actions)
                if candidate.label == action.label
            )
        return {
            "kind": "proposed",
            "next_sample_s": manager._next_sample_s,
            "current_action": action_index,
            "agent": capture_agent(manager.agent),
        }
    if isinstance(manager, GeQiuThermalManager):
        return {
            "kind": "ge_qiu",
            "rng": capture_rng_state(manager._rng),
            "qtable": (
                _capture_qtable(manager._qtable)
                if manager._qtable is not None
                else None
            ),
            "next_sample_s": manager._next_sample_s,
            "prev_state": manager._prev_state,
            "prev_action": manager._prev_action,
            "steps": manager._steps,
            "switch_resets": manager._switch_resets,
            "last_temp_c": manager._last_temp_c,
        }
    if isinstance(manager, StaticPolicyManager):
        return {"kind": "static", "applied": manager._applied}
    raise CheckpointStateError(
        f"cannot checkpoint unknown manager type {type(manager).__name__}"
    )


def _restore_manager(manager, state: dict) -> None:
    kind = state["kind"]
    if kind == "none":
        if manager is not None:
            raise CheckpointStateError(
                "snapshot has no manager state but the simulation has one"
            )
        return
    if manager is None:
        raise CheckpointStateError(
            f"snapshot expects a {kind!r} manager, simulation has none"
        )
    if kind == "proposed":
        if not isinstance(manager, ProposedThermalManager):
            raise CheckpointStateError(
                f"snapshot expects a proposed manager, got {type(manager).__name__}"
            )
        manager._next_sample_s = float(state["next_sample_s"])
        index = state["current_action"]
        manager._current_action = (
            manager.agent.actions[index] if index is not None else None
        )
        restore_agent(manager.agent, state["agent"])
        return
    if kind == "ge_qiu":
        if not isinstance(manager, GeQiuThermalManager):
            raise CheckpointStateError(
                f"snapshot expects a ge_qiu manager, got {type(manager).__name__}"
            )
        restore_rng_state(manager._rng, state["rng"])
        if state["qtable"] is not None:
            if manager._qtable is None:
                raise CheckpointStateError(
                    "snapshot carries a Ge&Qiu Q-table but none was built"
                )
            _restore_qtable(manager._qtable, state["qtable"])
        manager._next_sample_s = float(state["next_sample_s"])
        manager._prev_state = state["prev_state"]
        manager._prev_action = state["prev_action"]
        manager._steps = int(state["steps"])
        manager._switch_resets = int(state["switch_resets"])
        manager._last_temp_c = float(state["last_temp_c"])
        return
    if kind == "static":
        if not isinstance(manager, StaticPolicyManager):
            raise CheckpointStateError(
                f"snapshot expects a static manager, got {type(manager).__name__}"
            )
        manager._applied = bool(state["applied"])
        return
    raise CheckpointStateError(f"unknown manager kind {kind!r} in snapshot")


# ----------------------------------------------------------------------
# Fault injector and supervisors
# ----------------------------------------------------------------------

_FAULT_STAT_FIELDS = (
    "sensor_reads",
    "dropouts",
    "spikes",
    "stuck_events",
    "stuck_reads",
    "governor_calls",
    "governor_failures",
    "governor_noops",
    "mapping_calls",
    "mapping_failures",
    "mapping_noops",
)


def capture_fault_injector(injector) -> dict:
    """RNG stream, stuck-at latches and every fault counter."""
    return {
        "rng": capture_rng_state(injector._rng),
        "stuck_until": injector._stuck_until.tolist(),
        "stuck_value": injector._stuck_value.tolist(),
        "stats": {
            name: getattr(injector.stats, name) for name in _FAULT_STAT_FIELDS
        },
    }


def restore_fault_injector(injector, state: dict) -> None:
    """Overwrite a fault injector's state from a snapshot."""
    restore_rng_state(injector._rng, state["rng"])
    injector._stuck_until = np.asarray(state["stuck_until"], dtype=float)
    injector._stuck_value = np.asarray(state["stuck_value"], dtype=float)
    for name in _FAULT_STAT_FIELDS:
        setattr(injector.stats, name, int(state["stats"][name]))


_SENSOR_SUP_COUNTERS = (
    "reads",
    "dropouts_blocked",
    "range_blocked",
    "rate_blocked",
    "stuck_blocked",
    "median_fallbacks",
    "hold_fallbacks",
    "failsafe_fallbacks",
)


def _capture_sensor_supervisor(supervisor) -> dict:
    return {
        "last_good": _opt_list(supervisor._last_good),
        "last_time": supervisor._last_time,
        "stuck_ref": supervisor._stuck_ref.tolist(),
        "stuck_run": supervisor._stuck_run.tolist(),
        "last_max_c": supervisor.last_max_c,
        "counters": {
            name: getattr(supervisor, name) for name in _SENSOR_SUP_COUNTERS
        },
    }


def _restore_sensor_supervisor(supervisor, state: dict) -> None:
    supervisor._last_good = _opt_array(state["last_good"])
    supervisor._last_time = state["last_time"]
    supervisor._stuck_ref = np.asarray(state["stuck_ref"], dtype=float)
    supervisor._stuck_run = np.asarray(state["stuck_run"], dtype=int)
    supervisor.last_max_c = state["last_max_c"]
    for name in _SENSOR_SUP_COUNTERS:
        setattr(supervisor, name, int(state["counters"][name]))


_ACTUATION_SUP_COUNTERS = (
    "requests",
    "deferred",
    "failures_detected",
    "retries",
    "abandoned",
    "emergencies",
)


def _capture_actuation_supervisor(supervisor) -> dict:
    desired_mapping: dict
    if supervisor._desired_mapping is _UNSET:
        desired_mapping = {"state": "unset"}
    else:
        desired_mapping = {
            "state": "set",
            "mapping": _encode_mapping(supervisor._desired_mapping),
        }
    return {
        "desired_governor": (
            list(supervisor._desired_governor)
            if supervisor._desired_governor is not None
            else None
        ),
        "desired_mapping": desired_mapping,
        "pending": [
            [
                kind,
                {
                    "first_requested_s": pending.first_requested_s,
                    "attempts": pending.attempts,
                    "next_retry_s": pending.next_retry_s,
                    "abandoned": pending.abandoned,
                },
            ]
            for kind, pending in supervisor._pending.items()
        ],
        "emergency_active": supervisor.emergency_active,
        "engaged_at_s": supervisor._engaged_at_s,
        "counters": {
            name: getattr(supervisor, name) for name in _ACTUATION_SUP_COUNTERS
        },
        "emergency_time_s": supervisor._emergency_time_s,
    }


def _restore_actuation_supervisor(supervisor, state: dict) -> None:
    desired = state["desired_governor"]
    supervisor._desired_governor = tuple(desired) if desired is not None else None
    if state["desired_mapping"]["state"] == "unset":
        supervisor._desired_mapping = _UNSET
    else:
        supervisor._desired_mapping = _decode_mapping(
            state["desired_mapping"]["mapping"]
        )
    supervisor._pending = {
        kind: _PendingActuation(
            first_requested_s=float(entry["first_requested_s"]),
            attempts=int(entry["attempts"]),
            next_retry_s=float(entry["next_retry_s"]),
            abandoned=bool(entry["abandoned"]),
        )
        for kind, entry in state["pending"]
    }
    supervisor.emergency_active = bool(state["emergency_active"])
    supervisor._engaged_at_s = state["engaged_at_s"]
    for name in _ACTUATION_SUP_COUNTERS:
        setattr(supervisor, name, int(state["counters"][name]))
    supervisor._emergency_time_s = float(state["emergency_time_s"])


# ----------------------------------------------------------------------
# Observability (trace events + metric instruments)
# ----------------------------------------------------------------------


def _capture_metrics(registry: MetricsRegistry) -> List[dict]:
    entries: List[dict] = []
    for name, instrument in registry._instruments.items():
        entry: Dict[str, Any] = {
            "name": name,
            "kind": instrument.kind,
            "help": instrument.help,
        }
        if isinstance(instrument, Histogram):
            entry["buckets"] = list(instrument.buckets)
            entry["bucket_counts"] = list(instrument.bucket_counts)
            entry["sum"] = instrument.sum
            entry["count"] = instrument.count
        else:
            entry["value"] = instrument.value
        entries.append(entry)
    return entries


def _restore_metrics(registry: MetricsRegistry, entries: List[dict]) -> None:
    registry._instruments.clear()
    for entry in entries:
        kind = entry["kind"]
        if kind == Counter.kind:
            registry.counter(entry["name"], entry["help"]).value = float(
                entry["value"]
            )
        elif kind == Gauge.kind:
            registry.gauge(entry["name"], entry["help"]).value = float(
                entry["value"]
            )
        elif kind == Histogram.kind:
            histogram = registry.histogram(
                entry["name"], entry["buckets"], entry["help"]
            )
            histogram.bucket_counts = [int(c) for c in entry["bucket_counts"]]
            histogram.sum = float(entry["sum"])
            histogram.count = int(entry["count"])
        else:
            raise CheckpointStateError(f"unknown metric kind {kind!r} in snapshot")


def _capture_observability(sim: Simulation) -> Optional[dict]:
    if sim.obs is None:
        return None
    captured: Dict[str, Any] = {}
    if sim.obs.tracer is not None:
        captured["trace"] = {
            "seq": sim.obs.tracer._seq,
            "events": [dict(event) for event in sim.obs.tracer.events],
        }
    if sim.obs.registry is not None:
        captured["metrics"] = _capture_metrics(sim.obs.registry)
    return captured


def _restore_observability(sim: Simulation, state: Optional[dict]) -> None:
    if state is None or sim.obs is None:
        return
    trace = state.get("trace")
    if trace is not None and sim.obs.tracer is not None:
        sim.obs.tracer.events = [dict(event) for event in trace["events"]]
        sim.obs.tracer._seq = int(trace["seq"])
    metrics = state.get("metrics")
    if metrics is not None and sim.obs.registry is not None:
        _restore_metrics(sim.obs.registry, metrics)


# ----------------------------------------------------------------------
# Full-simulation capture / restore
# ----------------------------------------------------------------------

_RECORD_FIELDS = (
    "name",
    "dataset",
    "start_s",
    "end_s",
    "completed_iterations",
    "completed",
    "dynamic_energy_j",
    "static_energy_j",
)


def capture_simulation(sim: Simulation) -> Dict[str, Any]:
    """Snapshot everything a tick boundary needs to continue from.

    Must be called at a tick boundary of a prepared, running simulation
    (i.e. from the run loop, after ``step``); the snapshot references
    live arrays only transiently — callers serialize it immediately.
    """
    if sim._app_index < 0 or sim._app_index >= len(sim.applications):
        raise CheckpointStateError(
            "can only checkpoint a running simulation (after prepare, "
            "before the last application finished)"
        )
    return {
        "now": sim.now,
        "app_index": sim._app_index,
        "app_start_s": sim._app_start_s,
        "next_eval_s": sim._next_eval_s,
        "next_watchdog_s": sim._next_watchdog_s,
        "app_switched_flag": sim._app_switched_flag,
        "app_energy_snapshot": _capture_energy(sim._app_energy_snapshot),
        "records": [
            {name: getattr(record, name) for name in _RECORD_FIELDS}
            for record in sim._records
        ],
        "chip": capture_chip(sim.chip),
        "perf": _capture_perf(sim.perf),
        "scheduler": _capture_scheduler(sim.scheduler),
        "governor": _encode_governor(sim._governor),
        "pre_emergency_governor": _encode_governor(sim._pre_emergency_governor),
        "mapping": _encode_mapping(sim._mapping),
        "manager_sensors": _capture_sensor_bank(sim._manager_sensors),
        "eval_sensors": _capture_sensor_bank(sim._eval_sensors),
        "profile": _capture_profile(sim._profile),
        "applications": [capture_application(app) for app in sim.applications],
        "manager": _capture_manager(sim.manager),
        "fault_injector": (
            capture_fault_injector(sim._fault_injector)
            if sim._fault_injector is not None
            else None
        ),
        "sensor_supervisor": (
            _capture_sensor_supervisor(sim._sensor_supervisor)
            if sim._sensor_supervisor is not None
            else None
        ),
        "actuation_supervisor": (
            _capture_actuation_supervisor(sim._actuation_supervisor)
            if sim._actuation_supervisor is not None
            else None
        ),
        "observability": _capture_observability(sim),
    }


def restore_simulation(sim: Simulation, state: Dict[str, Any]) -> None:
    """Rebuild a snapshot's exact state inside a fresh simulation.

    The simulation must have been constructed with the same arguments as
    the checkpointed run (the snapshot carries run-time state only, not
    configuration).  ``prepare()`` runs first so every attach-time side
    effect happens through the normal path; the snapshot then overwrites
    all of it.  Afterwards :meth:`Simulation.run` continues mid-stream
    (the restore arms the simulation's resume flag).
    """
    sim.prepare()
    apps_state = state["applications"]
    if len(apps_state) != len(sim.applications):
        raise CheckpointStateError(
            f"snapshot has {len(apps_state)} applications, "
            f"simulation has {len(sim.applications)}"
        )
    for app, app_state in zip(sim.applications, apps_state):
        restore_application(app, app_state)

    sim.now = float(state["now"])
    sim._app_index = int(state["app_index"])
    sim._app_start_s = float(state["app_start_s"])
    sim._next_eval_s = float(state["next_eval_s"])
    sim._next_watchdog_s = float(state["next_watchdog_s"])
    sim._app_switched_flag = bool(state["app_switched_flag"])
    sim._app_energy_snapshot = _energy_from(state["app_energy_snapshot"])
    sim._records = [
        AppRecord(**{name: record[name] for name in _RECORD_FIELDS})
        for record in state["records"]
    ]

    restore_chip(sim.chip, state["chip"])
    _restore_perf(sim.perf, state["perf"])

    mapping = _decode_mapping(state["mapping"])
    sim._mapping = mapping
    _restore_scheduler(
        sim.scheduler,
        state["scheduler"],
        sim.applications[sim._app_index].threads,
        mapping,
    )

    ladder = sim.chip.ladder
    num_cores = sim.platform.num_cores
    sim._governor = _decode_governor(state["governor"], ladder, num_cores)
    sim._pre_emergency_governor = _decode_governor(
        state["pre_emergency_governor"], ladder, num_cores
    )

    _restore_sensor_bank(sim._manager_sensors, state["manager_sensors"])
    _restore_sensor_bank(sim._eval_sensors, state["eval_sensors"])
    _restore_profile(sim._profile, state["profile"])
    _restore_manager(sim.manager, state["manager"])

    if state["fault_injector"] is not None:
        if sim._fault_injector is None:
            raise CheckpointStateError(
                "snapshot carries fault-injector state but the simulation "
                "was built without faults"
            )
        restore_fault_injector(sim._fault_injector, state["fault_injector"])
    if state["sensor_supervisor"] is not None:
        if sim._sensor_supervisor is None:
            raise CheckpointStateError(
                "snapshot carries supervisor state but the simulation "
                "was built without one"
            )
        _restore_sensor_supervisor(
            sim._sensor_supervisor, state["sensor_supervisor"]
        )
    if state["actuation_supervisor"] is not None:
        if sim._actuation_supervisor is None:
            raise CheckpointStateError(
                "snapshot carries actuation-supervisor state but the "
                "simulation was built without one"
            )
        _restore_actuation_supervisor(
            sim._actuation_supervisor, state["actuation_supervisor"]
        )
    _restore_observability(sim, state["observability"])
    sim._resume_armed = True
