"""Tick-boundary checkpointing and resume orchestration.

:class:`Checkpointer` is the object a :class:`~repro.soc.simulator.
Simulation` calls back into at the bottom of every run-loop iteration
(``attach_checkpointer``): every ``every_ticks`` completed ticks it
captures the full closure and appends a content-addressed snapshot to
its :class:`~repro.checkpoint.store.CheckpointStore`.

:func:`resume_simulation` is the other direction: given a *fresh*
simulation built with the same arguments as the interrupted run, it
loads the newest valid checkpoint (or an explicitly named one), rebuilds
the captured state, and arms the simulation so ``run()`` continues
mid-stream instead of re-preparing.  Both corruption and an empty store
degrade to ``None`` — the caller simply runs from scratch.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Union

from repro.checkpoint.state import capture_simulation, restore_simulation
from repro.checkpoint.store import (
    CheckpointError,
    CheckpointStore,
    LoadedCheckpoint,
    load_checkpoint_file,
)


class Checkpointer:
    """Periodic tick-boundary snapshotting into a checkpoint store."""

    def __init__(self, store: CheckpointStore, every_ticks: int) -> None:
        if every_ticks < 1:
            raise ValueError("every_ticks must be >= 1")
        self.store = store
        self.every_ticks = every_ticks
        self._parent: Optional[str] = None
        self._last_tick = -1

    def note_resumed(self, loaded: LoadedCheckpoint) -> None:
        """Continue the manifest chain from a restored checkpoint."""
        self._parent = loaded.digest
        self._last_tick = loaded.tick

    def maybe_checkpoint(self, sim) -> bool:
        """Snapshot the simulation if a checkpoint boundary was crossed.

        Deterministic by construction: whether a tick is a boundary
        depends only on the tick index, and capturing draws no
        randomness — so checkpointed and checkpoint-free runs produce
        identical results.
        """
        tick = sim.tick_index
        if tick <= self._last_tick or tick % self.every_ticks != 0:
            return False
        record = self.store.save(
            capture_simulation(sim), tick=tick, now=sim.now, parent=self._parent
        )
        self._parent = record.digest
        self._last_tick = tick
        return True


def resume_simulation(
    sim,
    store: CheckpointStore,
    checkpoint: Optional[Union[str, Path]] = None,
) -> Optional[LoadedCheckpoint]:
    """Restore ``sim`` from a checkpoint, degrading gracefully.

    Parameters
    ----------
    sim:
        A freshly constructed simulation (same arguments as the
        interrupted run); it must not have been prepared or stepped.
    store:
        The checkpoint directory of the interrupted run.
    checkpoint:
        Optional explicit checkpoint file.  If it fails verification the
        store's newest valid checkpoint is used instead.

    Returns the checkpoint that was restored, or ``None`` when nothing
    valid exists (the caller then runs from scratch).  A snapshot that
    fails to *apply* (state mismatch — e.g. the simulation was built
    with different applications) raises
    :class:`~repro.checkpoint.store.CheckpointStateError`: that is a
    caller error, not corruption.
    """
    loaded: Optional[LoadedCheckpoint] = None
    if checkpoint is not None:
        try:
            loaded = load_checkpoint_file(checkpoint)
        except CheckpointError:
            loaded = None
    if loaded is None:
        loaded = store.latest_valid()
    if loaded is None:
        return None
    restore_simulation(sim, loaded.state)
    return loaded
