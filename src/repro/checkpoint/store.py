"""Content-addressed, schema-versioned checkpoint store.

Checkpoints are serialized like JobSpecs: canonical JSON (sorted keys,
compact separators), hashed with SHA-256, and named by tick plus digest
prefix (``ckpt-<tick>-<digest12>.json``).  A ``chain.json`` manifest —
rewritten atomically after every save — links each checkpoint to its
predecessor's digest, so a resumed run can prove it continues the same
lineage and ``repro ckpt verify`` can audit the whole chain.

Corruption policy: a checkpoint is *valid* only if its bytes hash to the
recorded digest and its schema version matches.  :meth:`CheckpointStore.
latest_valid` walks the chain newest-to-oldest, re-verifying digests on
disk, and silently skips truncated/corrupted/mismatched entries — a
damaged newest checkpoint degrades to the previous valid one, never to a
crash.  If the chain manifest itself is damaged, the store falls back to
globbing checkpoint files and validating them individually.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.ioutil import atomic_write_bytes

#: Bump when the snapshot layout changes; older checkpoints are then
#: treated as invalid (skipped, not migrated).
CHECKPOINT_SCHEMA_VERSION = 1

#: Checkpoint filename prefix: ``ckpt-<tick:010d>-<digest12>.json``.
CHECKPOINT_PREFIX = "ckpt-"

#: Manifest chain filename inside a checkpoint directory.
CHAIN_FILENAME = "chain.json"

#: Digest prefix length embedded in checkpoint filenames.
DIGEST_PREFIX_LEN = 12


class CheckpointError(Exception):
    """A checkpoint could not be loaded, verified, or applied."""


class CheckpointStateError(CheckpointError):
    """A snapshot does not match the simulation it is applied to."""


def serialize_checkpoint(doc: Dict[str, Any]) -> bytes:
    """Canonical on-disk encoding of a checkpoint document.

    Sorted keys and compact separators make the encoding a pure function
    of the content — the same state always hashes to the same digest.
    Non-finite floats (stuck-at sentinels) use Python's non-strict JSON
    extension; both ends of the round-trip are this module.
    """
    return (json.dumps(doc, sort_keys=True, separators=(",", ":")) + "\n").encode(
        "utf-8"
    )


def checkpoint_digest(data: bytes) -> str:
    """SHA-256 hex digest of a checkpoint's canonical bytes."""
    return hashlib.sha256(data).hexdigest()


def checkpoint_filename(tick: int, digest: str) -> str:
    """Canonical filename for a checkpoint (tick + digest prefix)."""
    return f"{CHECKPOINT_PREFIX}{tick:010d}-{digest[:DIGEST_PREFIX_LEN]}.json"


@dataclass(frozen=True)
class CheckpointRecord:
    """One entry of the manifest chain."""

    tick: int
    digest: str
    parent: Optional[str]
    file: str
    bytes: int

    def as_dict(self) -> Dict[str, Any]:
        return {
            "tick": self.tick,
            "digest": self.digest,
            "parent": self.parent,
            "file": self.file,
            "bytes": self.bytes,
        }

    @classmethod
    def from_dict(cls, entry: Dict[str, Any]) -> "CheckpointRecord":
        return cls(
            tick=int(entry["tick"]),
            digest=str(entry["digest"]),
            parent=entry["parent"],
            file=str(entry["file"]),
            bytes=int(entry["bytes"]),
        )


@dataclass(frozen=True)
class LoadedCheckpoint:
    """A verified checkpoint document plus its provenance."""

    doc: Dict[str, Any]
    digest: str
    path: Path

    @property
    def tick(self) -> int:
        """Tick the snapshot was taken at."""
        return int(self.doc["tick"])

    @property
    def state(self) -> Dict[str, Any]:
        """The captured simulation state."""
        return self.doc["state"]


def load_checkpoint_file(path: Union[str, Path]) -> LoadedCheckpoint:
    """Load and verify one checkpoint file.

    Raises :class:`CheckpointError` when the file is missing, truncated,
    fails its content digest (filename prefix), or carries a different
    schema version.
    """
    target = Path(path)
    try:
        data = target.read_bytes()
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {target}: {exc}") from exc
    digest = checkpoint_digest(data)
    stem = target.name
    if stem.startswith(CHECKPOINT_PREFIX) and stem.endswith(".json"):
        fragment = stem[len(CHECKPOINT_PREFIX) : -len(".json")].rsplit("-", 1)[-1]
        if not digest.startswith(fragment):
            raise CheckpointError(
                f"checkpoint {target.name} failed its digest check "
                f"(content hashes to {digest[:DIGEST_PREFIX_LEN]}…, "
                f"filename claims {fragment}…)"
            )
    try:
        doc = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CheckpointError(f"checkpoint {target} is not valid JSON: {exc}") from exc
    _check_doc(doc, target)
    return LoadedCheckpoint(doc=doc, digest=digest, path=target)


def _check_doc(doc: Any, origin: Path) -> None:
    if not isinstance(doc, dict) or "schema" not in doc:
        raise CheckpointError(f"checkpoint {origin} has no schema marker")
    if doc["schema"] != CHECKPOINT_SCHEMA_VERSION:
        raise CheckpointError(
            f"checkpoint {origin} has schema {doc['schema']!r}, "
            f"this build reads {CHECKPOINT_SCHEMA_VERSION}"
        )
    if "tick" not in doc or "state" not in doc:
        raise CheckpointError(f"checkpoint {origin} is missing tick/state")


class CheckpointStore:
    """Checkpoint files plus their manifest chain in one directory."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------

    def save(
        self,
        state: Dict[str, Any],
        tick: int,
        now: float,
        parent: Optional[str] = None,
    ) -> CheckpointRecord:
        """Write one checkpoint and append it to the manifest chain."""
        doc = {
            "schema": CHECKPOINT_SCHEMA_VERSION,
            "tick": int(tick),
            "now": float(now),
            "parent": parent,
            "state": state,
        }
        data = serialize_checkpoint(doc)
        digest = checkpoint_digest(data)
        record = CheckpointRecord(
            tick=int(tick),
            digest=digest,
            parent=parent,
            file=checkpoint_filename(tick, digest),
            bytes=len(data),
        )
        atomic_write_bytes(self.root / record.file, data)
        entries = self.entries()
        # Re-checkpointing a tick (resume after corruption fallback)
        # replaces the stale entry instead of duplicating it.
        entries = [entry for entry in entries if entry.tick != record.tick]
        entries.append(record)
        entries.sort(key=lambda entry: entry.tick)
        self._write_chain(entries)
        return record

    def _write_chain(self, entries: List[CheckpointRecord]) -> None:
        doc = {
            "schema": CHECKPOINT_SCHEMA_VERSION,
            "entries": [entry.as_dict() for entry in entries],
        }
        atomic_write_bytes(self.root / CHAIN_FILENAME, serialize_checkpoint(doc))

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    def entries(self) -> List[CheckpointRecord]:
        """Manifest-chain entries, oldest first; ``[]`` if unreadable."""
        chain_path = self.root / CHAIN_FILENAME
        try:
            doc = json.loads(chain_path.read_text(encoding="utf-8"))
            records = [CheckpointRecord.from_dict(e) for e in doc["entries"]]
        except (OSError, ValueError, KeyError, TypeError):
            return []
        records.sort(key=lambda entry: entry.tick)
        return records

    def _checkpoint_files(self) -> List[Path]:
        """Checkpoint files on disk, oldest tick first."""
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob(f"{CHECKPOINT_PREFIX}*.json"))

    def load_record(self, record: CheckpointRecord) -> LoadedCheckpoint:
        """Load one chain entry, verifying its full recorded digest."""
        path = self.root / record.file
        loaded = load_checkpoint_file(path)
        if loaded.digest != record.digest:
            raise CheckpointError(
                f"checkpoint {record.file} does not match its chain digest"
            )
        if loaded.tick != record.tick:
            raise CheckpointError(
                f"checkpoint {record.file} claims tick {loaded.tick}, "
                f"chain records {record.tick}"
            )
        return loaded

    def latest_valid(self) -> Optional[LoadedCheckpoint]:
        """Newest checkpoint that passes verification, else ``None``.

        Never raises: corruption of any individual checkpoint — or of
        the chain manifest itself — degrades to the next older valid
        checkpoint (falling back to a directory glob when the chain is
        unreadable), and finally to ``None`` (run from scratch).
        """
        seen: set = set()
        for record in reversed(self.entries()):
            seen.add(record.file)
            try:
                return self.load_record(record)
            except CheckpointError:
                continue
        # Chain missing/corrupt or every entry invalid: fall back to the
        # raw files, newest tick first (filenames sort by tick).
        for path in reversed(self._checkpoint_files()):
            if path.name in seen:
                continue
            try:
                return load_checkpoint_file(path)
            except CheckpointError:
                continue
        return None

    # ------------------------------------------------------------------
    # Auditing and retention
    # ------------------------------------------------------------------

    def verify(self) -> List[Dict[str, Any]]:
        """Audit every chain entry plus orphaned checkpoint files.

        Each report carries ``tick``, ``digest``, ``file``, ``bytes``
        (on-disk size, ``None`` when missing), a ``status`` of ``ok`` /
        ``missing`` / ``corrupt`` and a ``chain_ok`` flag (parent digest
        actually precedes the entry in the chain).
        """
        reports: List[Dict[str, Any]] = []
        known_digests: set = set()
        chained_files = set()
        for record in self.entries():
            chained_files.add(record.file)
            path = self.root / record.file
            status = "ok"
            size: Optional[int] = None
            try:
                size = path.stat().st_size
            except OSError:
                status = "missing"
            if status == "ok":
                try:
                    self.load_record(record)
                except CheckpointError:
                    status = "corrupt"
            chain_ok = record.parent is None or record.parent in known_digests
            known_digests.add(record.digest)
            reports.append(
                {
                    "tick": record.tick,
                    "digest": record.digest,
                    "file": record.file,
                    "bytes": size,
                    "status": status,
                    "chain_ok": chain_ok,
                }
            )
        for path in self._checkpoint_files():
            if path.name in chained_files:
                continue
            try:
                loaded = load_checkpoint_file(path)
                status = "orphan"
                tick: Optional[int] = loaded.tick
                digest = loaded.digest
            except CheckpointError:
                status = "corrupt"
                tick = None
                digest = ""
            reports.append(
                {
                    "tick": tick,
                    "digest": digest,
                    "file": path.name,
                    "bytes": path.stat().st_size,
                    "status": status,
                    "chain_ok": False,
                }
            )
        return reports

    def prune(self, keep: int) -> List[CheckpointRecord]:
        """Drop all but the newest ``keep`` valid checkpoints.

        Invalid/missing entries are always dropped.  Returns the removed
        records; the chain is rewritten to the kept suffix (the oldest
        kept entry's parent pointer is preserved as provenance even when
        its predecessor file is gone).
        """
        if keep < 1:
            raise ValueError("keep must be >= 1")
        valid: List[CheckpointRecord] = []
        removed: List[CheckpointRecord] = []
        for record in self.entries():
            try:
                self.load_record(record)
            except CheckpointError:
                removed.append(record)
                continue
            valid.append(record)
        kept = valid[-keep:]
        removed.extend(valid[: -keep] if len(valid) > keep else [])
        kept_files = {record.file for record in kept}
        for record in removed:
            path = self.root / record.file
            if record.file in kept_files:
                continue
            try:
                path.unlink()
            except OSError:
                pass
        self._write_chain(kept)
        return removed
