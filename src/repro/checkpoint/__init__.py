"""Content-addressed tick-level checkpoint/resume for simulations.

See :mod:`repro.checkpoint.store` for the on-disk format (canonical
JSON, SHA-256 digests, manifest chain), :mod:`repro.checkpoint.state`
for the capture/restore of the simulation closure, and
:mod:`repro.checkpoint.runtime` for the run-loop hook and resume entry
point.
"""

from repro.checkpoint.runtime import Checkpointer, resume_simulation
from repro.checkpoint.state import (
    capture_agent,
    capture_chip,
    capture_fault_injector,
    capture_rng_state,
    capture_simulation,
    restore_agent,
    restore_chip,
    restore_fault_injector,
    restore_rng_state,
    restore_simulation,
)
from repro.checkpoint.store import (
    CHECKPOINT_SCHEMA_VERSION,
    CheckpointError,
    CheckpointRecord,
    CheckpointStateError,
    CheckpointStore,
    LoadedCheckpoint,
    checkpoint_digest,
    load_checkpoint_file,
    serialize_checkpoint,
)

__all__ = [
    "CHECKPOINT_SCHEMA_VERSION",
    "CheckpointError",
    "CheckpointRecord",
    "CheckpointStateError",
    "CheckpointStore",
    "Checkpointer",
    "LoadedCheckpoint",
    "capture_agent",
    "capture_chip",
    "capture_fault_injector",
    "capture_rng_state",
    "capture_simulation",
    "checkpoint_digest",
    "load_checkpoint_file",
    "restore_agent",
    "restore_chip",
    "restore_fault_injector",
    "restore_rng_state",
    "restore_simulation",
    "resume_simulation",
    "serialize_checkpoint",
]
