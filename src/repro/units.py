"""Physical constants and unit helpers used across the simulator.

All internal computation uses SI units unless a name says otherwise:
temperatures are kelvin internally in the thermal solver, but most public
interfaces (sensors, profiles, reliability) speak degrees Celsius because
that is what the paper reports and what Linux ``coretemp`` exposes.
"""

from __future__ import annotations

#: Boltzmann constant in electron-volts per kelvin (used by Arrhenius terms).
BOLTZMANN_EV = 8.617333262e-5

#: Conversion offset between Celsius and kelvin.
KELVIN_OFFSET = 273.15

#: Seconds in a (Julian) year, used to express MTTF in years.
SECONDS_PER_YEAR = 365.25 * 24.0 * 3600.0


def celsius_to_kelvin(temp_c: float) -> float:
    """Convert a temperature from degrees Celsius to kelvin."""
    return temp_c + KELVIN_OFFSET


def kelvin_to_celsius(temp_k: float) -> float:
    """Convert a temperature from kelvin to degrees Celsius."""
    return temp_k - KELVIN_OFFSET


def seconds_to_years(seconds: float) -> float:
    """Convert a duration in seconds to years."""
    return seconds / SECONDS_PER_YEAR


def years_to_seconds(years: float) -> float:
    """Convert a duration in years to seconds."""
    return years * SECONDS_PER_YEAR


def ghz(value: float) -> float:
    """Return ``value`` gigahertz expressed in hertz."""
    return value * 1e9
