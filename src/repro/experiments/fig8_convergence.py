"""Figure 8: convergence vs state/action space size.

For the mpeg decoding application the paper sweeps the number of states
and actions (4..12 each) and reports the number of decision epochs the
learning algorithm needs to converge, annotated with the resulting
(cycling, aging) MTTF pair.  Larger tables take longer to fill but give
the agent finer control.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence, Tuple

from repro.analysis.tables import format_table
from repro.config import default_agent_config
from repro.core.actions import build_action_space
from repro.experiments.engine import ExperimentEngine, default_engine, workload_job

#: (num_states, (num_aging_bins, num_stress_bins)) design points.
STATE_GRID: Tuple[Tuple[int, Tuple[int, int]], ...] = (
    (4, (2, 2)),
    (8, (2, 4)),
    (12, (3, 4)),
)

#: Action-space sizes swept.
ACTION_GRID: Tuple[int, ...] = (4, 8, 12)

#: Grid axes the ensemble grid planner may batch across.  The design
#: points differ in agent configuration and action space only — the
#: ensemble control plane runs such heterogeneous members through its
#: scalar per-member manager fallback, still bit-identically.
ENSEMBLE_AXES: Tuple[str, ...] = ("agent_config", "actions")


@dataclass
class Fig8Row:
    """One (states, actions) design point."""

    num_states: int
    num_actions: int
    iterations_to_converge: float
    cycling_mttf_years: float
    aging_mttf_years: float


@dataclass
class Fig8Result:
    """The full grid."""

    rows: List[Fig8Row] = field(default_factory=list)

    def format_table(self) -> str:
        """Render the convergence surface with MTTF annotations."""
        headers = ["states", "actions", "iterations", "tcMTTF", "ageMTTF"]
        rows = [
            [
                r.num_states,
                r.num_actions,
                r.iterations_to_converge,
                r.cycling_mttf_years,
                r.aging_mttf_years,
            ]
            for r in self.rows
        ]
        return format_table(
            headers,
            rows,
            title="Figure 8 — convergence vs number of states and actions (mpeg_dec)",
        )


def run_fig8(
    state_grid: Sequence[Tuple[int, Tuple[int, int]]] = STATE_GRID,
    action_grid: Sequence[int] = ACTION_GRID,
    iteration_scale: float = 1.0,
    seed: int = 1,
    app: str = "mpeg_dec",
    dataset: str = "clip 1",
    engine: Optional[ExperimentEngine] = None,
) -> Fig8Result:
    """Sweep the Q-table dimensions for one workload."""
    engine = default_engine(engine)
    cells = [
        (num_states, aging_bins, stress_bins, num_actions)
        for num_states, (aging_bins, stress_bins) in state_grid
        for num_actions in action_grid
    ]
    summaries = engine.run(
        [
            workload_job(
                app,
                dataset,
                "proposed",
                seed=seed,
                agent_config=replace(
                    default_agent_config(),
                    num_aging_bins=aging_bins,
                    num_stress_bins=stress_bins,
                    num_actions=num_actions,
                ),
                action_space=build_action_space(num_actions),
                iteration_scale=iteration_scale,
            )
            for num_states, aging_bins, stress_bins, num_actions in cells
        ]
    )
    result = Fig8Result()
    for (num_states, _, _, num_actions), summary in zip(cells, summaries):
        # Convergence: the agent has both finished its schedule-driven
        # training (exploitation entry scales with the table size,
        # because coverage demands it) and stopped changing its
        # greedy policy.  A run that never reached exploitation is
        # censored at its full epoch count.
        entry = summary.manager_stats.get("exploitation_entry_epoch", -1.0)
        if entry <= 0.0:
            entry = summary.manager_stats.get("epochs", 0.0)
        iterations = max(
            entry, summary.manager_stats.get("last_policy_change_epoch", 0.0)
        )
        result.rows.append(
            Fig8Row(
                num_states=num_states,
                num_actions=num_actions,
                iterations_to_converge=iterations,
                cycling_mttf_years=summary.cycling_mttf_years,
                aging_mttf_years=summary.aging_mttf_years,
            )
        )
    return result


if __name__ == "__main__":
    print(run_fig8().format_table())
