"""Figure 1: the motivational experiment.

Two multi-threaded applications (face recognition and mpeg encoding) run
back-to-back twice: once under Linux's default thread placement, once
with a fixed user assignment (two cores with two threads each, two with
one — the ``paired_2211`` mapping).  The figure contrasts the resulting
thermal profiles; the reproduction returns both traces plus the
average-temperature / stress summary for each (application, placement)
combination.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.tables import format_table
from repro.experiments.engine import ExperimentEngine, default_engine, workload_job
from repro.experiments.runner import RunSummary
from repro.sched.affinity import mapping_by_name
from repro.thermal.profile import ThermalProfile

#: The two applications of the motivational experiment.
FIG1_APPS: Tuple[Tuple[str, str], ...] = (("face_rec", "img 1"), ("mpeg_enc", "seq 1"))

#: The two placement arms.
FIG1_PLACEMENTS: Tuple[str, ...] = ("linux_default", "user_paired_2211")


@dataclass
class Fig1Cell:
    """One (application, placement) run."""

    app: str
    dataset: str
    placement: str
    summary: RunSummary

    @property
    def profile(self) -> Optional[ThermalProfile]:
        """The measured thermal trace (for plotting)."""
        return self.summary.profile


@dataclass
class Fig1Result:
    """All four cells of the motivational experiment."""

    cells: List[Fig1Cell] = field(default_factory=list)

    def cell(self, app: str, placement: str) -> Fig1Cell:
        """Look up one cell."""
        for c in self.cells:
            if c.app == app and c.placement == placement:
                return c
        raise KeyError(f"no cell for ({app}, {placement})")

    def format_table(self) -> str:
        """Render the summary statistics of the four traces."""
        headers = ["app", "placement", "avgT", "peakT", "stress", "tcMTTF", "ageMTTF"]
        rows = []
        for c in self.cells:
            s = c.summary
            rows.append(
                [
                    c.app,
                    c.placement,
                    s.average_temp_c,
                    s.peak_temp_c,
                    s.stress,
                    s.cycling_mttf_years,
                    s.aging_mttf_years,
                ]
            )
        return format_table(
            headers,
            rows,
            title="Figure 1 — thread-to-core affinity influences the thermal profile",
            float_format="{:.3g}",
        )


def run_fig1(
    iteration_scale: float = 1.0,
    seed: int = 1,
    engine: Optional[ExperimentEngine] = None,
) -> Fig1Result:
    """Run the four (application, placement) combinations."""
    engine = default_engine(engine)
    cells = [
        (app, dataset, placement)
        for app, dataset in FIG1_APPS
        for placement in FIG1_PLACEMENTS
    ]
    summaries = engine.run(
        [
            workload_job(
                app,
                dataset,
                "linux",
                seed=seed,
                mapping=(
                    mapping_by_name("paired_2211")
                    if placement == "user_paired_2211"
                    else None
                ),
                iteration_scale=iteration_scale,
                train_passes=0,
            )
            for app, dataset, placement in cells
        ]
    )
    result = Fig1Result()
    for (app, dataset, placement), summary in zip(cells, summaries):
        result.cells.append(Fig1Cell(app, dataset, placement, summary))
    return result


if __name__ == "__main__":
    print(run_fig1().format_table())
