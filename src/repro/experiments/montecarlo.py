"""Monte Carlo reliability study: MTTF distributions over seed fleets.

The paper reports lifetime as a single MTTF figure per (application,
policy) cell.  A single seed, however, is one draw from the joint
distribution of workload phasing, fault-free thermal trajectories and
the agent's exploration schedule — so this study re-runs every cell
across a fleet of seeds (256 per cell at full scale) and reports the
*distribution* of the aging and thermal-cycling MTTF: mean, spread and
the 5th/50th/95th percentiles.

That is exactly the workload the vectorized ensemble engine exists
for: all replicates of all cells share one platform closure, so the
grid planner batches the entire study into one ensemble and steps every
trajectory in lockstep (``repro montecarlo --ensemble``).  Run scalar,
the same grid is hundreds of sequential simulations; the results are
bit-identical either way.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.analysis.tables import format_table
from repro.experiments.engine import ExperimentEngine, default_engine, workload_job
from repro.experiments.runner import RunSummary

#: The applications of the study (the paper's short- and mid-length
#: workloads — together they keep the full-scale fleet tractable).
MC_APPS: Tuple[str, ...] = ("tachyon", "mpeg_dec")

#: Policies contrasted per application: the Linux baseline against the
#: paper's RL approach.
MC_POLICIES: Tuple[str, ...] = ("linux", "proposed")

#: Seed replicates per (app, policy) cell at full scale.
MC_SEEDS = 256

#: Grid axes the ensemble grid planner may batch across — every cell of
#: this study shares the default platform closure, so the whole grid
#: collapses into one ensemble group.
ENSEMBLE_AXES: Tuple[str, ...] = ("app", "policy", "seed")


def default_seed_count(iteration_scale: float) -> int:
    """Replicates per cell, scaled with the sweep's iteration scale.

    Full-scale sweeps use the full :data:`MC_SEEDS` fleet; reduced
    sweeps (tests, CI) shrink proportionally, never below 8 — enough to
    exercise every percentile column.
    """
    if iteration_scale >= 1.0:
        return MC_SEEDS
    return max(8, int(round(MC_SEEDS * iteration_scale)))


def _quantile(sorted_values: Sequence[float], q: float) -> float:
    """Linear-interpolation quantile of an ascending sequence."""
    if not sorted_values:
        return float("nan")
    position = q * (len(sorted_values) - 1)
    low = int(math.floor(position))
    high = int(math.ceil(position))
    fraction = position - low
    return sorted_values[low] * (1.0 - fraction) + sorted_values[high] * fraction


@dataclass
class MonteCarloRow:
    """Distribution statistics of one (application, policy) cell."""

    app: str
    policy: str
    seeds: int
    aging_mean_y: float
    aging_std_y: float
    aging_p5_y: float
    aging_p50_y: float
    aging_p95_y: float
    cycling_mean_y: float
    cycling_p50_y: float
    avg_temp_c: float
    exec_time_s: float

    @classmethod
    def from_summaries(
        cls, app: str, policy: str, summaries: Sequence[RunSummary]
    ) -> "MonteCarloRow":
        """Reduce one cell's replicate summaries to its statistics row."""
        aging = sorted(s.aging_mttf_years for s in summaries)
        cycling = sorted(s.cycling_mttf_years for s in summaries)
        count = len(summaries)
        aging_mean = sum(aging) / count
        # Population standard deviation: the fleet *is* the population
        # of interest, and ddof=0 keeps the figure defined at count=1.
        aging_std = math.sqrt(
            sum((value - aging_mean) ** 2 for value in aging) / count
        )
        return cls(
            app=app,
            policy=policy,
            seeds=count,
            aging_mean_y=aging_mean,
            aging_std_y=aging_std,
            aging_p5_y=_quantile(aging, 0.05),
            aging_p50_y=_quantile(aging, 0.50),
            aging_p95_y=_quantile(aging, 0.95),
            cycling_mean_y=sum(cycling) / count,
            cycling_p50_y=_quantile(cycling, 0.50),
            avg_temp_c=sum(s.average_temp_c for s in summaries) / count,
            exec_time_s=sum(s.execution_time_s for s in summaries) / count,
        )


@dataclass
class MonteCarloResult:
    """All cells of the Monte Carlo grid."""

    rows: List[MonteCarloRow] = field(default_factory=list)

    def row(self, app: str, policy: str) -> MonteCarloRow:
        """Look up one cell."""
        for row in self.rows:
            if row.app == app and row.policy == policy:
                return row
        raise KeyError(f"no row ({app}, {policy})")

    def format_table(self) -> str:
        """Render the distribution table."""
        headers = [
            "app",
            "policy",
            "seeds",
            "ageMTTF_mean",
            "ageMTTF_std",
            "ageMTTF_p5",
            "ageMTTF_p50",
            "ageMTTF_p95",
            "tcMTTF_mean",
            "tcMTTF_p50",
            "avgT",
            "exec_s",
        ]
        cells = [
            [
                row.app,
                row.policy,
                row.seeds,
                row.aging_mean_y,
                row.aging_std_y,
                row.aging_p5_y,
                row.aging_p50_y,
                row.aging_p95_y,
                row.cycling_mean_y,
                row.cycling_p50_y,
                row.avg_temp_c,
                row.exec_time_s,
            ]
            for row in self.rows
        ]
        return format_table(
            headers,
            cells,
            title=(
                "Monte Carlo — lifetime distributions across seed fleets "
                "(per app x policy)"
            ),
            float_format="{:.2f}",
        )


def run_montecarlo(
    iteration_scale: float = 1.0,
    seed: int = 1,
    apps: Tuple[str, ...] = MC_APPS,
    policies: Tuple[str, ...] = MC_POLICIES,
    seeds: Optional[int] = None,
    engine: Optional[ExperimentEngine] = None,
) -> MonteCarloResult:
    """Run the {app} x {policy} x {seed fleet} reliability grid.

    Parameters
    ----------
    iteration_scale:
        Scale on application lengths; also scales the default fleet
        size (see :func:`default_seed_count`).
    seed:
        First seed of the fleet; cell (app, policy) runs seeds
        ``seed .. seed + seeds - 1``, the *same* range for every cell
        so each policy faces an identical workload draw.
    apps / policies:
        Grid axes.
    seeds:
        Replicates per cell; default scales with ``iteration_scale``.
    engine:
        Experiment engine (serial uncached when omitted).  Pass one
        with ``ensemble=True`` to batch the whole fleet through the
        vectorized ensemble engine.
    """
    engine = default_engine(engine)
    count = seeds if seeds is not None else default_seed_count(iteration_scale)
    if count < 1:
        raise ValueError(f"seeds must be >= 1, got {count}")
    cells = [(app, policy) for app in apps for policy in policies]
    summaries = engine.run(
        [
            workload_job(
                app,
                None,
                policy,
                seed=seed + offset,
                iteration_scale=iteration_scale,
            )
            for app, policy in cells
            for offset in range(count)
        ]
    )
    result = MonteCarloResult()
    for index, (app, policy) in enumerate(cells):
        cell = summaries[index * count : (index + 1) * count]
        result.rows.append(MonteCarloRow.from_summaries(app, policy, cell))
    return result


if __name__ == "__main__":
    print(run_montecarlo().format_table())
