"""Experiment harness: one module per table/figure of the paper.

Every experiment builds on :mod:`repro.experiments.runner`, which runs
one (workload, policy) pair under the standard measurement protocol:

* each application is executed twice back-to-back in a single
  simulation — a training pass and a measurement pass — because the
  paper evaluates the controllers in their trained steady state (its
  training time at the chosen decision epoch exceeds one application
  execution, see Figure 7c);
* all metrics are computed from the measurement pass only, on the
  common 1 s evaluation sensor trace, for every policy alike.

Experiment index (see DESIGN.md for the full mapping):

========  =====================================  =========================
Artefact  Module                                 What it reproduces
========  =====================================  =========================
Fig. 1    repro.experiments.fig1_motivation     thread-affinity motivation
Table 2   repro.experiments.table2_intra        intra-application results
Fig. 3    repro.experiments.fig3_inter          inter-application results
Fig. 4/5  repro.experiments.fig45_phases        exploration vs exploitation
Fig. 6    repro.experiments.fig6_sampling       sampling-interval study
Fig. 7    repro.experiments.fig7_epoch          decision-epoch study
Fig. 8    repro.experiments.fig8_convergence    states/actions convergence
Table 3   repro.experiments.table3_exec_time    execution-time comparison
Fig. 9    repro.experiments.fig9_power          power/energy comparison
(extra)   repro.experiments.fault_tolerance     faults + supervision study
========  =====================================  =========================

The ``fault_tolerance`` artefact goes beyond the paper: it re-runs the
headline controllers on a faulty substrate (see :mod:`repro.faults`)
with the graceful-degradation layer off and on.

Every experiment accepts an optional ``engine``
(:class:`repro.experiments.engine.ExperimentEngine`) and submits its
whole grid as one batch of hashable job specs, which is how ``repro
all`` parallelises and memoises the evaluation; with no engine the
grid executes serially and uncached, exactly as the modules did before
the engine existed.
"""

from repro.experiments.runner import (
    POLICIES,
    RunSummary,
    run_scenario,
    run_workload,
)

__all__ = ["POLICIES", "RunSummary", "run_scenario", "run_workload"]

# The per-artefact entry points are intentionally not imported here:
# each pulls in a full experiment, and the CLI (repro.cli) already
# aggregates them for interactive use.
