"""Table 2: intra-application results.

For each of {tachyon, mpeg_dec, mpeg_enc} x three datasets, run Linux
``ondemand``, the Ge & Qiu baseline and the proposed approach, and report
average temperature, peak temperature, thermal-cycling MTTF and
average-temperature (aging) MTTF — the exact columns of the paper's
Table 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.tables import format_table
from repro.experiments.engine import ExperimentEngine, default_engine, workload_job
from repro.experiments.runner import RunSummary
from repro.workloads.datasets import dataset_names_for

#: The applications and datasets of Table 2.
TABLE2_WORKLOADS: Tuple[str, ...] = ("tachyon", "mpeg_dec", "mpeg_enc")

#: The policies of Table 2, in column order.
TABLE2_POLICIES: Tuple[str, ...] = ("linux", "ge", "proposed")

#: Grid axes the ensemble grid planner may batch across: every cell
#: shares the default platform closure and differs only in these
#: :class:`~repro.experiments.engine.spec.JobSpec` fields, so the whole
#: table collapses into one ensemble group under ``--ensemble``.
ENSEMBLE_AXES: Tuple[str, ...] = ("app", "dataset", "policy")


@dataclass
class Table2Row:
    """One (application, dataset) row across all three policies."""

    app: str
    dataset: str
    summaries: Dict[str, RunSummary]

    def cells(self) -> List[object]:
        """Flatten to the column layout of the paper's Table 2."""
        row: List[object] = [self.app, self.dataset]
        for metric in (
            "average_temp_c",
            "peak_temp_c",
            "cycling_mttf_years",
            "aging_mttf_years",
        ):
            for policy in TABLE2_POLICIES:
                row.append(getattr(self.summaries[policy], metric))
        return row


@dataclass
class Table2Result:
    """All rows plus the aggregate improvement factors."""

    rows: List[Table2Row] = field(default_factory=list)

    def improvement(self, metric: str, over: str) -> float:
        """Mean ratio proposed/baseline across all rows for a metric."""
        ratios = [
            getattr(r.summaries["proposed"], metric)
            / getattr(r.summaries[over], metric)
            for r in self.rows
        ]
        return sum(ratios) / len(ratios)

    def format_table(self) -> str:
        """Render the full table."""
        headers = ["app", "data"]
        for metric in ("avgT", "peakT", "tcMTTF", "ageMTTF"):
            for policy in TABLE2_POLICIES:
                headers.append(f"{metric}:{policy[:4]}")
        return format_table(
            headers,
            [row.cells() for row in self.rows],
            title="Table 2 — intra-application thermal/MTTF comparison",
        )


def run_table2(
    iteration_scale: float = 1.0,
    seed: int = 1,
    workloads: Tuple[str, ...] = TABLE2_WORKLOADS,
    engine: Optional[ExperimentEngine] = None,
) -> Table2Result:
    """Run the full Table 2 grid.

    Parameters
    ----------
    iteration_scale:
        Scale on application lengths (tests use < 1 for speed).
    seed:
        Measurement seed shared by all policies.
    workloads:
        Applications to include (the paper's three by default).
    engine:
        Experiment engine to submit the grid through (serial uncached
        execution when omitted).
    """
    engine = default_engine(engine)
    cells = [
        (app, dataset, policy)
        for app in workloads
        for dataset in dataset_names_for(app)
        for policy in TABLE2_POLICIES
    ]
    summaries = engine.run(
        [
            workload_job(
                app, dataset, policy, seed=seed, iteration_scale=iteration_scale
            )
            for app, dataset, policy in cells
        ]
    )
    result = Table2Result()
    by_cell: Dict[Tuple[str, str], Dict[str, RunSummary]] = {}
    for (app, dataset, policy), summary in zip(cells, summaries):
        by_cell.setdefault((app, dataset), {})[policy] = summary
    for (app, dataset), row in by_cell.items():
        result.rows.append(Table2Row(app, dataset, row))
    return result


if __name__ == "__main__":
    print(run_table2().format_table())
