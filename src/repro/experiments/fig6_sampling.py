"""Figure 6: impact of the temperature sampling interval.

For the tachyon application the paper sweeps the sensor sampling
interval from 1 to 10 seconds and reports four panels:

* **computed MTTF** — the cycling MTTF as computed *from the sampled
  trace*: coarser sampling misses cycles, so the computed MTTF inflates
  (an over-estimate relative to the 1 s ground truth);
* **autocorrelation** — consecutive samples decorrelate as the interval
  grows (silicon thermals are slow, so 1 s neighbours are similar);
* **cache misses** and **page faults** — management overhead counters,
  which fall as sampling gets rarer.

The first two panels are properties of the *measurement*, so they are
evaluated by decimating one reference thermal profile (the workload
under Linux, which exhibits the platform's natural thermal dynamics);
the overhead panels come from running the managed system at each
sampling interval.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional

import numpy as np

from repro.analysis.autocorrelation import autocorrelation, decimate
from repro.analysis.tables import format_table
from repro.config import (
    PlatformConfig,
    default_agent_config,
    default_reliability_config,
)
from repro.experiments.engine import ExperimentEngine, default_engine, workload_job
from repro.reliability.mttf import cycling_mttf_years

#: Grid axes the ensemble grid planner may batch across.  The plain
#: reference run and the managed sweep share the default platform and
#: batch together; the EMA-filtered reference (``ema_tau_s=4``) is
#: planner-ineligible (no batched low-pass sensor path) and always
#: runs scalar.
ENSEMBLE_AXES = ("policy", "agent_config")


@dataclass
class Fig6Row:
    """Metrics of one sampling-interval setting."""

    sampling_interval_s: float
    computed_mttf_years: float
    autocorrelation: float
    cache_misses: float
    page_faults: float
    execution_time_s: float


@dataclass
class Fig6Result:
    """The sweep's rows."""

    rows: List[Fig6Row] = field(default_factory=list)

    def format_table(self) -> str:
        """Render the four panels as table columns."""
        headers = [
            "interval_s",
            "computed_MTTF_y",
            "autocorr",
            "cache_misses",
            "page_faults",
            "exec_s",
        ]
        rows = [
            [
                r.sampling_interval_s,
                r.computed_mttf_years,
                r.autocorrelation,
                r.cache_misses,
                r.page_faults,
                r.execution_time_s,
            ]
            for r in self.rows
        ]
        return format_table(
            headers,
            rows,
            title="Figure 6 — impact of the temperature sampling interval",
            float_format="{:.3g}",
        )


def run_fig6(
    intervals=(1, 2, 3, 4, 5, 6, 7, 8, 9, 10),
    iteration_scale: float = 1.0,
    seed: int = 1,
    app: str = "tachyon",
    dataset: str = "set 2",
    engine: Optional[ExperimentEngine] = None,
) -> Fig6Result:
    """Sweep the sampling interval for one workload.

    The computed MTTF and autocorrelation are evaluated on the reference
    profile *decimated* to each interval — exactly what an
    implementation that only reads the sensors at that interval would
    compute — while the overhead counters come from managed runs whose
    controller samples at that interval.

    Two reference profiles are used: the plain one for the computed-MTTF
    panel (decimation loses cycles -> the MTTF inflates), and one read
    through a sensor with the DTS reading path's low-pass response for
    the autocorrelation panel — on the physical testbed it is that
    response that makes consecutive 1 s samples so similar.
    """
    engine = default_engine(engine)
    reliability = default_reliability_config()
    filtered_platform = PlatformConfig(
        sensor=replace(PlatformConfig().sensor, ema_tau_s=4.0)
    )
    jobs = [
        workload_job(app, dataset, "linux", seed=seed, iteration_scale=iteration_scale),
        workload_job(
            app,
            dataset,
            "linux",
            seed=seed,
            platform=filtered_platform,
            iteration_scale=iteration_scale,
        ),
    ] + [
        workload_job(
            app,
            dataset,
            "proposed",
            seed=seed,
            agent_config=replace(
                default_agent_config(), sampling_interval_s=float(interval)
            ),
            iteration_scale=iteration_scale,
        )
        for interval in intervals
    ]
    summaries = engine.run(jobs)
    reference, filtered_reference = summaries[0], summaries[1]
    profile = reference.profile
    filtered_profile = filtered_reference.profile
    result = Fig6Result()
    for interval, summary in zip(intervals, summaries[2:]):
        factor = max(1, int(round(interval / profile.sample_period_s)))
        mttfs = []
        for core in range(profile.num_cores):
            series = decimate(profile.core_series(core), factor)
            if len(series) >= 4:
                duration = len(series) * interval
                mttfs.append(cycling_mttf_years(series, duration, reliability))
        # Autocorrelation: evaluated on the filtered-sensor reading of
        # the package-level (cross-core mean) temperature — the DTS
        # reading path's response is what correlates neighbouring
        # samples on the physical testbed.
        package_series = decimate(
            filtered_profile.as_array().mean(axis=1).tolist(), factor
        )
        autocorr = (
            autocorrelation(package_series) if len(package_series) >= 4 else 0.0
        )
        result.rows.append(
            Fig6Row(
                sampling_interval_s=float(interval),
                computed_mttf_years=float(np.min(mttfs)) if mttfs else float("nan"),
                autocorrelation=autocorr,
                cache_misses=summary.cache_misses,
                page_faults=summary.page_faults,
                execution_time_s=summary.execution_time_s,
            )
        )
    return result


if __name__ == "__main__":
    print(run_fig6().format_table())
