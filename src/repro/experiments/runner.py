"""Common experiment harness.

``run_workload`` executes one application under one policy with the
standard train-then-measure protocol and returns a :class:`RunSummary`
holding every metric any table or figure needs.  ``run_scenario``
executes an inter-application sequence (Figure 3) where the *switching*
itself is the phenomenon, so applications run once each and the whole
scenario is measured.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.config import (
    AgentConfig,
    FaultConfig,
    GeQiuConfig,
    PlatformConfig,
    ReliabilityConfig,
    SupervisorConfig,
    default_agent_config,
    default_reliability_config,
)
from repro.baselines.ge_qiu import GeQiuThermalManager
from repro.baselines.static_policy import StaticPolicyManager
from repro.core.actions import ActionSpace
from repro.core.manager import ProposedThermalManager
from repro.sched.affinity import AffinityMapping
from repro.soc.simulator import Simulation, SimulationResult, ThermalManagerBase
from repro.thermal.profile import ThermalProfile
from repro.units import ghz
from repro.workloads.alpbench import make_application
from repro.workloads.application import Application

#: Policy names accepted by the harness.
POLICIES: Tuple[str, ...] = (
    "linux",  # Linux default scheduling + ondemand (the paper's baseline)
    "powersave",  # Linux + powersave governor
    "performance",  # Linux + performance governor
    "userspace@2.4",  # fixed 2.4 GHz (Table 3 column)
    "userspace@3.4",  # fixed 3.4 GHz (Table 3 column)
    "ge",  # Ge & Qiu DAC'11 learning DVFS manager
    "ge_modified",  # Ge & Qiu + explicit app-switch re-learning
    "proposed",  # the paper's approach
)

#: Warm-up excluded from every measurement window (cold-start ramp).
WARMUP_SKIP_S = 60.0


def _setup_checkpointing(
    sim: Simulation,
    checkpoint_every: Optional[int],
    checkpoint_dir,
    resume,
) -> bool:
    """Attach periodic checkpointing and/or resume ``sim`` in place.

    Parameters
    ----------
    sim:
        A freshly constructed (unprepared) simulation.
    checkpoint_every:
        Checkpoint cadence in ticks; ``None``/0 disables snapshotting.
    checkpoint_dir:
        Checkpoint directory; ``None`` disables the whole feature.
    resume:
        ``True`` to resume from the newest valid checkpoint in
        ``checkpoint_dir``, or a path to a specific checkpoint file.
        Corrupted checkpoints degrade to the previous valid one; with
        nothing valid the run simply starts from scratch.

    Returns whether the simulation was actually resumed.
    """
    if checkpoint_dir is None:
        return False
    # Imported lazily so the experiment harness has no hard dependency
    # on the checkpoint layer for ordinary (checkpoint-free) runs.
    from repro.checkpoint import CheckpointStore, Checkpointer, resume_simulation

    store = CheckpointStore(checkpoint_dir)
    checkpointer = None
    if checkpoint_every:
        checkpointer = Checkpointer(store, checkpoint_every)
        sim.attach_checkpointer(checkpointer)
    if not resume:
        return False
    explicit = resume if not isinstance(resume, bool) else None
    loaded = resume_simulation(sim, store, checkpoint=explicit)
    if loaded is None:
        return False
    if checkpointer is not None:
        checkpointer.note_resumed(loaded)
    return True


def _validate_policy(policy: str) -> None:
    """Reject unknown policy names before any simulation work starts.

    Raises
    ------
    ValueError
        With the full allowed list, so a typo in a sweep definition
        fails immediately and readably rather than mid-grid.
    """
    if policy in POLICIES:
        return
    if policy.startswith("userspace@"):
        try:
            float(policy.split("@", 1)[1])
            return
        except ValueError:
            pass
    raise ValueError(
        f"unknown policy {policy!r}; allowed policies: {', '.join(POLICIES)} "
        "(or 'userspace@<GHz>' for any fixed frequency)"
    )


@dataclass
class RunSummary:
    """Every metric the experiments report for one (workload, policy)."""

    app: str
    dataset: str
    policy: str
    average_temp_c: float
    peak_temp_c: float
    aging_mttf_years: float
    cycling_mttf_years: float
    stress: float
    num_cycles: float
    execution_time_s: float
    throughput: float
    dynamic_energy_j: float
    static_energy_j: float
    average_dynamic_power_w: float
    cache_misses: float
    page_faults: float
    migrations: int
    completed: bool
    manager_stats: Dict[str, float] = field(default_factory=dict)
    #: Injected-fault counters (empty without a fault model).
    fault_stats: Dict[str, float] = field(default_factory=dict)
    #: Supervisor counters (empty without the supervision layer).
    supervisor_stats: Dict[str, float] = field(default_factory=dict)
    #: The measurement-window thermal profile, for trace figures.
    profile: Optional[ThermalProfile] = None

    @property
    def total_energy_j(self) -> float:
        """Dynamic plus static energy of the measurement window."""
        return self.dynamic_energy_j + self.static_energy_j


def build_manager(
    policy: str,
    agent_config: Optional[AgentConfig] = None,
    reliability: Optional[ReliabilityConfig] = None,
    action_space: Optional[ActionSpace] = None,
    ge_config: Optional[GeQiuConfig] = None,
    mapping: Optional[AffinityMapping] = None,
) -> Tuple[Optional[ThermalManagerBase], str, Optional[float]]:
    """Materialise a policy name.

    Returns
    -------
    (manager, governor_name, userspace_frequency_hz)
        The manager (or None) plus the simulation's initial governor.
    """
    agent_config = agent_config if agent_config is not None else default_agent_config()
    reliability = (
        reliability if reliability is not None else default_reliability_config()
    )
    if policy == "linux":
        return (
            StaticPolicyManager(mapping=mapping) if mapping is not None else None,
            "ondemand",
            None,
        )
    if policy == "powersave":
        return StaticPolicyManager("powersave", mapping=mapping), "powersave", None
    if policy == "performance":
        return StaticPolicyManager("performance", mapping=mapping), "performance", None
    if policy.startswith("userspace@"):
        freq = ghz(float(policy.split("@")[1]))
        return (
            StaticPolicyManager("userspace", freq, mapping=mapping),
            "userspace",
            freq,
        )
    if policy == "ge":
        return GeQiuThermalManager(ge_config), "ondemand", None
    if policy == "ge_modified":
        return (
            GeQiuThermalManager(ge_config, react_to_app_switch=True),
            "ondemand",
            None,
        )
    if policy == "proposed":
        return (
            ProposedThermalManager(agent_config, reliability, action_space),
            "ondemand",
            None,
        )
    raise KeyError(f"unknown policy {policy!r}; known: {POLICIES}")


def _summarise(
    result: SimulationResult,
    window: ThermalProfile,
    records: Sequence,
    app: str,
    dataset: str,
    policy: str,
    reliability: ReliabilityConfig,
) -> RunSummary:
    """Collapse a simulation result into a RunSummary."""
    report = window.worst_case_report(reliability)
    execution = sum(r.execution_time_s for r in records)
    iterations = sum(r.completed_iterations for r in records)
    return RunSummary(
        app=app,
        dataset=dataset,
        policy=policy,
        average_temp_c=report["average_temp_c"],
        peak_temp_c=report["peak_temp_c"],
        aging_mttf_years=report["aging_mttf_years"],
        cycling_mttf_years=report["cycling_mttf_years"],
        stress=report["stress"],
        num_cycles=report["num_cycles"],
        execution_time_s=execution,
        throughput=iterations / execution if execution > 0.0 else 0.0,
        dynamic_energy_j=sum(r.dynamic_energy_j for r in records),
        static_energy_j=sum(r.static_energy_j for r in records),
        average_dynamic_power_w=(
            sum(r.dynamic_energy_j for r in records) / execution
            if execution > 0.0
            else 0.0
        ),
        cache_misses=result.perf.cache_misses,
        page_faults=result.perf.page_faults,
        migrations=result.perf.migrations,
        completed=all(r.completed for r in records),
        manager_stats=dict(result.manager_stats),
        fault_stats=dict(result.fault_stats),
        supervisor_stats=dict(result.supervisor_stats),
        profile=window,
    )


def run_workload(
    app: str,
    dataset: Optional[str] = None,
    policy: str = "linux",
    seed: int = 1,
    train_passes: int = 1,
    agent_config: Optional[AgentConfig] = None,
    reliability: Optional[ReliabilityConfig] = None,
    platform: Optional[PlatformConfig] = None,
    action_space: Optional[ActionSpace] = None,
    ge_config: Optional[GeQiuConfig] = None,
    mapping: Optional[AffinityMapping] = None,
    iteration_scale: float = 1.0,
    max_time_s: float = 20000.0,
    faults: Optional[FaultConfig] = None,
    supervisor: Optional[SupervisorConfig] = None,
    instrumentation=None,
    checkpoint_every: Optional[int] = None,
    checkpoint_dir=None,
    resume=False,
) -> RunSummary:
    """Run one application under one policy (train + measure).

    Parameters
    ----------
    app:
        Application name (``tachyon``, ``mpeg_dec``, ...).
    dataset:
        Dataset label; the application's first dataset when omitted.
    policy:
        One of :data:`POLICIES`.
    seed:
        Seed of the *measurement* pass; training passes use derived
        seeds so the measured input is identical across policies.
    train_passes:
        Number of identical training executions preceding the measured
        one (0 disables training; adaptive policies then measure their
        learning transient, as the Figure 4 exploration trace does).
    agent_config / reliability / platform / action_space / ge_config:
        Configuration overrides.
    mapping:
        Fixed affinity mapping for the static policies (Figure 1's
        "user thread assignment" arm).
    iteration_scale:
        Scale on the application's iteration count (shorter sweeps).
    max_time_s:
        Safety limit for the whole simulation.
    faults / supervisor:
        Optional fault model and graceful-degradation layer (see
        :mod:`repro.faults`); both default to off, leaving the run
        bit-identical to the fault-free engine.
    instrumentation:
        Optional observation-only :class:`repro.obs.Instrumentation`
        hook; attaching it never changes the run's trajectory.
    checkpoint_every / checkpoint_dir / resume:
        Crash tolerance: snapshot the full simulation closure every
        ``checkpoint_every`` ticks into ``checkpoint_dir``, and/or
        resume from the newest valid checkpoint there (``resume=True``)
        or from an explicit checkpoint file (``resume=<path>``).  A
        resumed run is byte-identical to an uninterrupted one.
    """
    _validate_policy(policy)
    reliability = (
        reliability if reliability is not None else default_reliability_config()
    )
    sim = _build_workload_setup(
        app,
        dataset,
        policy,
        seed=seed,
        train_passes=train_passes,
        agent_config=agent_config,
        reliability=reliability,
        platform=platform,
        action_space=action_space,
        ge_config=ge_config,
        mapping=mapping,
        iteration_scale=iteration_scale,
        max_time_s=max_time_s,
        faults=faults,
        supervisor=supervisor,
        instrumentation=instrumentation,
    )
    _setup_checkpointing(sim, checkpoint_every, checkpoint_dir, resume)
    result = sim.run()
    return _summarise_workload(
        result,
        app,
        dataset if dataset is not None else sim.applications[-1].spec.dataset,
        policy,
        train_passes,
        reliability,
    )


def _build_workload_setup(
    app: str,
    dataset: Optional[str],
    policy: str,
    seed: int,
    train_passes: int = 1,
    agent_config: Optional[AgentConfig] = None,
    reliability: Optional[ReliabilityConfig] = None,
    platform: Optional[PlatformConfig] = None,
    action_space: Optional[ActionSpace] = None,
    ge_config: Optional[GeQiuConfig] = None,
    mapping: Optional[AffinityMapping] = None,
    iteration_scale: float = 1.0,
    max_time_s: float = 20000.0,
    faults: Optional[FaultConfig] = None,
    supervisor: Optional[SupervisorConfig] = None,
    instrumentation=None,
) -> Simulation:
    """Construct (without running) one workload-protocol simulation.

    Shared between :func:`run_workload` and the ensemble runner — a
    member built here and run through the vectorized engine sees exactly
    the setup the scalar path sees.
    """
    applications: List[Application] = []
    for index in range(train_passes):
        applications.append(
            _make_app(app, dataset, seed=seed * 17 + 101 + index, scale=iteration_scale)
        )
    applications.append(_make_app(app, dataset, seed=seed, scale=iteration_scale))
    manager, governor, userspace_hz = build_manager(
        policy, agent_config, reliability, action_space, ge_config, mapping
    )
    return Simulation(
        applications,
        platform=platform,
        governor=governor,
        userspace_frequency_hz=userspace_hz,
        manager=manager,
        seed=seed,
        max_time_s=max_time_s,
        faults=faults,
        supervisor=supervisor,
        instrumentation=instrumentation,
    )


def _summarise_workload(
    result: SimulationResult,
    app: str,
    dataset: str,
    policy: str,
    train_passes: int,
    reliability: ReliabilityConfig,
) -> RunSummary:
    """Measurement-window extraction + summary for the workload protocol.

    Shared between :func:`run_workload` and the ensemble runner, so both
    paths reduce a :class:`SimulationResult` identically.
    """
    measured = result.app_records[train_passes:]
    if measured:
        start = measured[0].start_s + WARMUP_SKIP_S * (1 if train_passes == 0 else 0)
        end = measured[-1].end_s
        if end <= start:
            raise ValueError(
                f"empty measurement window for {app!r} under {policy!r}: the "
                f"measured pass ends at {end:.1f} s, inside the "
                f"{WARMUP_SKIP_S:.0f} s warm-up skip; increase the run length "
                "(iteration_scale) or train first (train_passes >= 1)"
            )
        window = result.profile.window(start, end)
        if len(window) == 0:
            raise ValueError(
                f"empty measurement window for {app!r} under {policy!r}: "
                f"[{start:.1f} s, {end:.1f} s) holds no sensor sample at the "
                f"{result.profile.sample_period_s:g} s sampling period"
            )
    else:  # the run timed out before the measurement pass
        window = result.profile
    return _summarise(
        result,
        window,
        measured,
        app,
        dataset,
        policy,
        reliability,
    )


def _make_app(
    app: str, dataset: Optional[str], seed: int, scale: float
) -> Application:
    """Application instance with an optional iteration-count scale."""
    application = make_application(app, dataset, seed=seed)
    if scale != 1.0:
        spec = application.spec
        scaled = max(10, int(spec.iterations * scale))
        application = Application(
            replace(spec, iterations=scaled), metric=application.metric, seed=seed
        )
    return application


def run_scenario(
    apps: Sequence[str],
    policy: str,
    seed: int = 1,
    agent_config: Optional[AgentConfig] = None,
    reliability: Optional[ReliabilityConfig] = None,
    platform: Optional[PlatformConfig] = None,
    action_space: Optional[ActionSpace] = None,
    ge_config: Optional[GeQiuConfig] = None,
    iteration_scale: float = 1.0,
    max_time_s: float = 30000.0,
    faults: Optional[FaultConfig] = None,
    supervisor: Optional[SupervisorConfig] = None,
    instrumentation=None,
    checkpoint_every: Optional[int] = None,
    checkpoint_dir=None,
    resume=False,
) -> RunSummary:
    """Run an inter-application scenario (Figure 3).

    Applications execute once each, back-to-back; the measurement
    window covers the whole scenario (minus the cold-start warm-up)
    because the application *switches* are the phenomenon under test.
    """
    _validate_policy(policy)
    reliability = (
        reliability if reliability is not None else default_reliability_config()
    )
    applications = [
        _make_app(app, None, seed=seed + 7 * index + 1, scale=iteration_scale)
        for index, app in enumerate(apps)
    ]
    manager, governor, userspace_hz = build_manager(
        policy, agent_config, reliability, action_space, ge_config
    )
    sim = Simulation(
        applications,
        platform=platform,
        governor=governor,
        userspace_frequency_hz=userspace_hz,
        manager=manager,
        seed=seed,
        max_time_s=max_time_s,
        faults=faults,
        supervisor=supervisor,
        instrumentation=instrumentation,
    )
    _setup_checkpointing(sim, checkpoint_every, checkpoint_dir, resume)
    result = sim.run()
    if result.total_time_s <= WARMUP_SKIP_S:
        raise ValueError(
            f"empty measurement window for scenario {'-'.join(apps)!r} under "
            f"{policy!r}: the whole scenario lasts {result.total_time_s:.1f} s, "
            f"not longer than the {WARMUP_SKIP_S:.0f} s warm-up skip; increase "
            "the run length (iteration_scale)"
        )
    window = result.profile.window(WARMUP_SKIP_S, result.total_time_s)
    return _summarise(
        result,
        window,
        result.app_records,
        "-".join(apps),
        "scenario",
        policy,
        reliability,
    )
