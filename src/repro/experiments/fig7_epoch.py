"""Figure 7: effect of the decision-epoch length.

For each application the paper sweeps the decision epoch (5-80 s) and
reports execution time and dynamic energy normalised to Linux (no
adaptation), plus the training time normalised to the 5 s setting.
Small epochs adapt frequently — more decision/migration overhead —
while large epochs stretch the learning transient.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.tables import format_table
from repro.config import default_agent_config
from repro.experiments.engine import ExperimentEngine, default_engine, workload_job

#: The applications of Figure 7.
FIG7_APPS: Tuple[Tuple[str, str], ...] = (
    ("tachyon", "set 2"),
    ("mpeg_dec", "clip 1"),
    ("mpeg_enc", "seq 1"),
)

#: Decision-epoch settings swept (seconds).
FIG7_EPOCHS: Tuple[float, ...] = (5.0, 10.0, 20.0, 30.0, 45.0, 60.0, 80.0)


@dataclass
class Fig7Row:
    """One (application, epoch) point."""

    app: str
    dataset: str
    epoch_s: float
    normalized_execution_time: float
    normalized_energy: float
    training_time_s: float
    #: Training time normalised to the smallest epoch (filled at the end).
    normalized_training_time: float = 0.0


@dataclass
class Fig7Result:
    """All points of the sweep."""

    rows: List[Fig7Row] = field(default_factory=list)

    def series(self, app: str) -> List[Fig7Row]:
        """The epoch series of one application."""
        return [r for r in self.rows if r.app == app]

    def format_table(self) -> str:
        """Render all three panels."""
        headers = ["app", "epoch_s", "norm_exec", "norm_energy", "norm_training"]
        rows = [
            [
                r.app,
                r.epoch_s,
                r.normalized_execution_time,
                r.normalized_energy,
                r.normalized_training_time,
            ]
            for r in self.rows
        ]
        return format_table(
            headers, rows, title="Figure 7 — effect of the decision-epoch length"
        )


def run_fig7(
    epochs: Sequence[float] = FIG7_EPOCHS,
    apps: Sequence[Tuple[str, str]] = FIG7_APPS,
    iteration_scale: float = 1.0,
    seed: int = 1,
    engine: Optional[ExperimentEngine] = None,
) -> Fig7Result:
    """Sweep the decision epoch for each application."""
    engine = default_engine(engine)
    jobs = []
    for app, dataset in apps:
        jobs.append(
            workload_job(
                app, dataset, "linux", seed=seed, iteration_scale=iteration_scale
            )
        )
        for epoch in epochs:
            jobs.append(
                workload_job(
                    app,
                    dataset,
                    "proposed",
                    seed=seed,
                    agent_config=replace(
                        default_agent_config(), decision_epoch_s=epoch
                    ),
                    iteration_scale=iteration_scale,
                )
            )
    summaries = iter(engine.run(jobs))
    result = Fig7Result()
    for app, dataset in apps:
        linux = next(summaries)
        app_rows: List[Fig7Row] = []
        for epoch in epochs:
            summary = next(summaries)
            # Training time: epochs until the agent enters pure
            # exploitation (the alpha schedule's natural horizon).
            training_epochs = summary.manager_stats.get(
                "exploitation_entry_epoch", -1.0
            )
            if training_epochs <= 0.0:
                training_epochs = max(
                    summary.manager_stats.get("epochs", 1.0), 1.0
                )
            app_rows.append(
                Fig7Row(
                    app=app,
                    dataset=dataset,
                    epoch_s=epoch,
                    normalized_execution_time=summary.execution_time_s
                    / linux.execution_time_s,
                    normalized_energy=summary.dynamic_energy_j
                    / linux.dynamic_energy_j,
                    training_time_s=training_epochs * epoch,
                )
            )
        reference = app_rows[0].training_time_s
        for row in app_rows:
            row.normalized_training_time = row.training_time_s / reference
        result.rows.extend(app_rows)
    return result


if __name__ == "__main__":
    print(run_fig7().format_table())
