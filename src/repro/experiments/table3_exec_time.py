"""Table 3: execution-time comparison.

Execution time (seconds) of the three Table 2 applications under Linux's
``ondemand`` and ``powersave`` governors, two fixed userspace
frequencies (2.4 GHz and 3.4 GHz), the Ge & Qiu baseline and the
proposed approach.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.tables import format_table
from repro.experiments.engine import ExperimentEngine, default_engine, workload_job
from repro.experiments.runner import RunSummary

#: The policies of Table 3, in column order.
TABLE3_POLICIES: Tuple[str, ...] = (
    "linux",
    "powersave",
    "userspace@2.4",
    "userspace@3.4",
    "ge",
    "proposed",
)

#: The applications of Table 3 (first dataset of each).
TABLE3_APPS: Tuple[str, ...] = ("tachyon", "mpeg_dec", "mpeg_enc")


@dataclass
class Table3Row:
    """Execution time of one application across policies."""

    app: str
    dataset: str
    summaries: Dict[str, RunSummary]

    def execution_time(self, policy: str) -> float:
        """Execution time in seconds for one policy."""
        return self.summaries[policy].execution_time_s


@dataclass
class Table3Result:
    """All rows of the table."""

    rows: List[Table3Row] = field(default_factory=list)

    def format_table(self) -> str:
        """Render the table."""
        headers = ["app"] + list(TABLE3_POLICIES)
        rows = [
            [r.app] + [r.execution_time(p) for p in TABLE3_POLICIES]
            for r in self.rows
        ]
        return format_table(
            headers,
            rows,
            title="Table 3 — execution time (s) per policy",
            float_format="{:.0f}",
        )


def run_table3(
    iteration_scale: float = 1.0,
    seed: int = 1,
    apps: Tuple[str, ...] = TABLE3_APPS,
    engine: Optional[ExperimentEngine] = None,
) -> Table3Result:
    """Run the execution-time grid."""
    engine = default_engine(engine)
    cells = [(app, policy) for app in apps for policy in TABLE3_POLICIES]
    results = engine.run(
        [
            workload_job(app, None, policy, seed=seed, iteration_scale=iteration_scale)
            for app, policy in cells
        ]
    )
    result = Table3Result()
    for app in apps:
        summaries = {
            policy: summary
            for (cell_app, policy), summary in zip(cells, results)
            if cell_app == app
        }
        dataset = next(iter(summaries.values())).dataset
        result.rows.append(Table3Row(app, dataset, summaries))
    return result


if __name__ == "__main__":
    print(run_table3().format_table())
