"""Fault-tolerance study: controllers on a faulty substrate.

Runs the headline controllers — the proposed agent, the Ge & Qiu
baseline and plain Linux ``ondemand`` — across the fault modes of
:mod:`repro.faults.presets` ({no faults, sensor faults, actuation
faults}), each with the supervision layer off and on, and reports
lifetime (cycling/aging MTTF), thermal-cycle counts, execution-time
overhead and the supervisor/fault counters.

The grid answers three questions the paper's fault-free evaluation
cannot:

* how much lifetime does each controller lose when its observations
  and actuations degrade (supervisor off vs the no-fault row);
* how much of that loss the supervision layer recovers (supervisor on
  vs off, same fault mode);
* what the supervision layer itself costs on a healthy platform (the
  no-fault row, supervisor on vs off).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.analysis.tables import format_table
from repro.experiments.engine import ExperimentEngine, default_engine, workload_job
from repro.experiments.runner import RunSummary
from repro.faults.presets import default_supervisor_config, fault_config_for

#: Controllers compared, in row order.
FT_POLICIES: Tuple[str, ...] = ("linux", "ge", "proposed")

#: Fault modes compared (see :mod:`repro.faults.presets`).
FT_FAULT_MODES: Tuple[str, ...] = ("none", "sensor", "actuation")

#: The workload of the study (the paper's mid-length application).
FT_APP = "mpeg_dec"

#: Grid axes the ensemble grid planner may batch across.  Fault
#: injection vectorizes (each member keeps its own seeded fault
#: schedule); the supervised half of the grid is planner-ineligible —
#: the ensemble engine rejects supervised members — and runs scalar.
ENSEMBLE_AXES: Tuple[str, ...] = ("policy", "faults")


@dataclass
class FaultToleranceRow:
    """One (policy, fault mode, supervisor) cell of the grid."""

    policy: str
    fault_mode: str
    supervised: bool
    summary: RunSummary

    @property
    def emergencies(self) -> float:
        """Thermal-emergency engagements during the measured run."""
        return self.summary.supervisor_stats.get("emergencies", 0.0)

    @property
    def sensor_fixups(self) -> float:
        """Readings the sensor supervisor repaired before delivery."""
        stats = self.summary.supervisor_stats
        return (
            stats.get("sensor_median_fallbacks", 0.0)
            + stats.get("sensor_hold_fallbacks", 0.0)
            + stats.get("sensor_failsafe_fallbacks", 0.0)
        )

    @property
    def actuation_recoveries(self) -> float:
        """Failed transitions the actuation supervisor retried."""
        return self.summary.supervisor_stats.get("actuation_retries", 0.0)


@dataclass
class FaultToleranceResult:
    """All rows of the fault-tolerance grid."""

    rows: List[FaultToleranceRow] = field(default_factory=list)

    def row(
        self, policy: str, fault_mode: str, supervised: bool
    ) -> FaultToleranceRow:
        """Look up one cell of the grid."""
        for row in self.rows:
            if (
                row.policy == policy
                and row.fault_mode == fault_mode
                and row.supervised == supervised
            ):
                return row
        raise KeyError(f"no row ({policy}, {fault_mode}, supervised={supervised})")

    def format_table(self) -> str:
        """Render the grid."""
        headers = [
            "policy",
            "faults",
            "supervisor",
            "tcMTTF_y",
            "ageMTTF_y",
            "cycles",
            "exec_s",
            "peakT",
            "emergencies",
            "fixups",
            "retries",
        ]
        cells = [
            [
                row.policy,
                row.fault_mode,
                "on" if row.supervised else "off",
                row.summary.cycling_mttf_years,
                row.summary.aging_mttf_years,
                row.summary.num_cycles,
                row.summary.execution_time_s,
                row.summary.peak_temp_c,
                row.emergencies,
                row.sensor_fixups,
                row.actuation_recoveries,
            ]
            for row in self.rows
        ]
        return format_table(
            headers,
            cells,
            title=(
                "Fault tolerance — lifetime and overhead under sensor/actuation "
                "faults, supervisor off vs on"
            ),
            float_format="{:.2f}",
        )


def run_fault_tolerance(
    iteration_scale: float = 1.0,
    seed: int = 1,
    app: str = FT_APP,
    policies: Tuple[str, ...] = FT_POLICIES,
    fault_modes: Tuple[str, ...] = FT_FAULT_MODES,
    engine: Optional[ExperimentEngine] = None,
) -> FaultToleranceResult:
    """Run the full {policy} x {fault mode} x {supervisor} grid.

    Parameters
    ----------
    iteration_scale:
        Scale on the application's iteration count (shorter sweeps).
    seed:
        Measurement seed, shared by every cell so all controllers face
        the same workload and the same fault schedule per mode.
    app:
        Workload name.
    policies / fault_modes:
        Grid axes (defaults: the headline controllers and fault modes).
    """
    engine = default_engine(engine)
    cells = [
        (policy, fault_mode, supervised)
        for policy in policies
        for fault_mode in fault_modes
        for supervised in (False, True)
    ]
    summaries = engine.run(
        [
            workload_job(
                app,
                None,
                policy,
                seed=seed,
                iteration_scale=iteration_scale,
                faults=fault_config_for(fault_mode),
                supervisor=default_supervisor_config() if supervised else None,
            )
            for policy, fault_mode, supervised in cells
        ]
    )
    result = FaultToleranceResult()
    for (policy, fault_mode, supervised), summary in zip(cells, summaries):
        result.rows.append(
            FaultToleranceRow(policy, fault_mode, supervised, summary)
        )
    return result


if __name__ == "__main__":
    print(run_fault_tolerance().format_table())
