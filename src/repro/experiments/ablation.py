"""Ablation study of the proposed controller's design choices.

DESIGN.md calls out four mechanisms that differentiate the proposed
approach from prior RL thermal managers; this experiment removes them
one at a time and measures the damage on a representative workload mix:

* **no_decoupling** — the decision epoch equals the sampling interval
  (contribution 2 of the paper): each decision sees a single sample, so
  stress is invisible and aging is an instantaneous reading;
* **no_affinity** — the action space is DVFS-only (what Ge & Qiu can
  actuate), isolating the value of the thread-mapping dimension;
* **no_variation** — the moving-average inter/intra detection is
  disabled (thresholds pushed out of reach), so the agent never
  re-learns on an application switch;
* **full** — the complete proposed controller, for reference.

Each variant runs the intra-application workload trio plus one
inter-application scenario and reports cycling/aging MTTF.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.analysis.tables import format_table
from repro.config import AgentConfig, default_agent_config
from repro.core.actions import Action, ActionSpace
from repro.experiments.engine import (
    ExperimentEngine,
    default_engine,
    scenario_job,
    workload_job,
)
from repro.experiments.runner import RunSummary
from repro.units import ghz

#: Variant names in report order.
ABLATION_VARIANTS: Tuple[str, ...] = (
    "full",
    "no_decoupling",
    "no_affinity",
    "no_variation",
)

#: The intra-application workloads of the study.
ABLATION_WORKLOADS: Tuple[Tuple[str, str], ...] = (
    ("tachyon", "set 2"),
    ("mpeg_dec", "clip 1"),
)

#: The inter-application scenario of the study.
ABLATION_SCENARIO: Tuple[str, ...] = ("mpeg_dec", "tachyon")


def _dvfs_only_space() -> ActionSpace:
    """An action menu that only touches frequency (OS-default mapping)."""
    return ActionSpace(
        [
            Action("os_default", "ondemand"),
            Action("os_default", "userspace", ghz(2.4)),
            Action("os_default", "userspace", ghz(2.0)),
            Action("os_default", "powersave"),
            Action("os_default", "conservative"),
            Action("os_default", "userspace", ghz(3.4)),
        ]
    )


def variant_config(variant: str) -> Tuple[AgentConfig, Optional[ActionSpace]]:
    """Agent configuration + action space of an ablation variant."""
    base = default_agent_config()
    if variant == "full":
        return base, None
    if variant == "no_decoupling":
        return replace(base, decision_epoch_s=base.sampling_interval_s), None
    if variant == "no_affinity":
        return replace(base, num_actions=6), _dvfs_only_space()
    if variant == "no_variation":
        # Push the thresholds out of [0, 1]: no deviation ever triggers.
        return (
            replace(
                base,
                stress_ma_lower=9.0,
                stress_ma_upper=10.0,
                aging_ma_lower=9.0,
                aging_ma_upper=10.0,
            ),
            None,
        )
    raise KeyError(f"unknown ablation variant {variant!r}; known: {ABLATION_VARIANTS}")


@dataclass
class AblationRow:
    """One (workload, variant) measurement."""

    workload: str
    variant: str
    summary: RunSummary


@dataclass
class AblationResult:
    """All measurements of the study."""

    rows: List[AblationRow] = field(default_factory=list)

    def value(self, workload: str, variant: str, metric: str) -> float:
        """Look up one cell."""
        for row in self.rows:
            if row.workload == workload and row.variant == variant:
                return getattr(row.summary, metric)
        raise KeyError(f"no row for ({workload}, {variant})")

    def workloads(self) -> List[str]:
        """Distinct workload labels, in insertion order."""
        seen: List[str] = []
        for row in self.rows:
            if row.workload not in seen:
                seen.append(row.workload)
        return seen

    def variants(self) -> List[str]:
        """Distinct variant labels, in insertion order."""
        seen: List[str] = []
        for row in self.rows:
            if row.variant not in seen:
                seen.append(row.variant)
        return seen

    def format_table(self) -> str:
        """Render cycling/aging MTTF per workload and variant."""
        variants = self.variants()
        headers = ["workload", "metric"] + variants
        rows = []
        for workload in self.workloads():
            for metric, label in (
                ("cycling_mttf_years", "tcMTTF_y"),
                ("aging_mttf_years", "ageMTTF_y"),
            ):
                rows.append(
                    [workload, label]
                    + [self.value(workload, v, metric) for v in variants]
                )
        return format_table(
            headers, rows, title="Ablation — removing one design choice at a time"
        )


def run_ablation(
    iteration_scale: float = 1.0,
    seed: int = 1,
    variants: Tuple[str, ...] = ABLATION_VARIANTS,
    workloads: Tuple[Tuple[str, str], ...] = ABLATION_WORKLOADS,
    scenario: Tuple[str, ...] = ABLATION_SCENARIO,
    engine: Optional[ExperimentEngine] = None,
) -> AblationResult:
    """Run every variant on the workload mix."""
    engine = default_engine(engine)
    labels: List[Tuple[str, str]] = []
    jobs = []
    for variant in variants:
        config, space = variant_config(variant)
        for app, dataset in workloads:
            labels.append((f"{app}:{dataset}", variant))
            jobs.append(
                workload_job(
                    app,
                    dataset,
                    "proposed",
                    seed=seed,
                    agent_config=config,
                    action_space=space,
                    iteration_scale=iteration_scale,
                )
            )
        labels.append(("-".join(scenario), variant))
        jobs.append(
            scenario_job(
                scenario,
                "proposed",
                seed=seed,
                agent_config=config,
                iteration_scale=iteration_scale,
            )
        )
    result = AblationResult()
    for (workload, variant), summary in zip(labels, engine.run(jobs)):
        result.rows.append(AblationRow(workload, variant, summary))
    return result


if __name__ == "__main__":
    print(run_ablation().format_table())
