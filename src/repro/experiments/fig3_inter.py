"""Figure 3: inter-application results.

Six application sequences are executed back-to-back under Linux
``ondemand``, the *modified* Ge & Qiu baseline (explicit switch
notification) and the proposed approach (autonomous switch detection);
the figure plots the thermal-cycling MTTF of each policy normalised to
Linux.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.tables import format_table
from repro.experiments.engine import ExperimentEngine, default_engine, scenario_job
from repro.experiments.runner import RunSummary
from repro.workloads.scenarios import INTER_APP_SCENARIOS, scenario_name

#: The policies of Figure 3, in bar order.
FIG3_POLICIES: Tuple[str, ...] = ("linux", "ge_modified", "proposed")


@dataclass
class Fig3Row:
    """One scenario's normalised cycling MTTFs."""

    scenario: Tuple[str, ...]
    summaries: Dict[str, RunSummary]

    @property
    def name(self) -> str:
        """The paper-style scenario label."""
        return scenario_name(self.scenario)

    def normalised(self, policy: str) -> float:
        """Cycling MTTF normalised to the Linux run."""
        base = self.summaries["linux"].cycling_mttf_years
        return self.summaries[policy].cycling_mttf_years / base

    @property
    def num_switches(self) -> int:
        """Application switches in the scenario."""
        return len(self.scenario) - 1


@dataclass
class Fig3Result:
    """All scenario rows."""

    rows: List[Fig3Row] = field(default_factory=list)

    def mean_improvement(self, policy: str) -> float:
        """Mean normalised cycling MTTF of a policy across scenarios."""
        return sum(r.normalised(policy) for r in self.rows) / len(self.rows)

    def format_table(self) -> str:
        """Render the figure's series as a table."""
        headers = ["scenario", "switches"] + [
            f"tcMTTF_norm:{p}" for p in FIG3_POLICIES
        ]
        rows = [
            [r.name, r.num_switches] + [r.normalised(p) for p in FIG3_POLICIES]
            for r in self.rows
        ]
        return format_table(
            headers,
            rows,
            title="Figure 3 — normalised thermal-cycling MTTF, inter-application",
        )


def run_fig3(
    iteration_scale: float = 1.0,
    seed: int = 1,
    scenarios: Sequence[Tuple[str, ...]] = INTER_APP_SCENARIOS,
    engine: Optional[ExperimentEngine] = None,
) -> Fig3Result:
    """Run all six scenarios under the three policies."""
    engine = default_engine(engine)
    cells = [
        (tuple(scenario), policy)
        for scenario in scenarios
        for policy in FIG3_POLICIES
    ]
    summaries = engine.run(
        [
            scenario_job(scenario, policy, seed=seed, iteration_scale=iteration_scale)
            for scenario, policy in cells
        ]
    )
    result = Fig3Result()
    by_scenario: Dict[Tuple[str, ...], Dict[str, RunSummary]] = {}
    for (scenario, policy), summary in zip(cells, summaries):
        by_scenario.setdefault(scenario, {})[policy] = summary
    for scenario, row in by_scenario.items():
        result.rows.append(Fig3Row(scenario, row))
    return result


if __name__ == "__main__":
    print(run_fig3().format_table())
