"""Figures 4 & 5: exploration vs exploitation thermal traces.

The paper plots the face-recognition temperature profile during the
learning agent's exploration phase (comparable to Linux ``ondemand``)
and during its exploitation phase (visibly cooler).  The reproduction
runs face_rec under Linux and under the proposed manager *without*
pre-training, then splits the managed trace at the end of the
exploration/learning transient.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.analysis.tables import format_table
from repro.config import default_agent_config
from repro.experiments.engine import ExperimentEngine, default_engine, workload_job
from repro.experiments.runner import RunSummary
from repro.thermal.profile import ThermalProfile


@dataclass
class Fig45Result:
    """Traces and summary statistics of the two learning phases."""

    linux: RunSummary
    managed: RunSummary
    #: Trace of the learning transient (Figure 4's window).
    exploration_profile: ThermalProfile
    #: Trace after the transient (Figure 5's window).
    exploitation_profile: ThermalProfile
    split_s: float

    @property
    def linux_avg_c(self) -> float:
        """Average temperature under Linux ondemand."""
        return self.linux.average_temp_c

    @property
    def exploration_avg_c(self) -> float:
        """Average temperature during exploration."""
        return self.exploration_profile.average_temp_c()

    @property
    def exploitation_avg_c(self) -> float:
        """Average temperature during exploitation."""
        return self.exploitation_profile.average_temp_c()

    def format_table(self) -> str:
        """Render the comparison of the three traces."""
        headers = ["trace", "avgT", "peakT", "duration_s"]
        rows = [
            [
                "linux ondemand",
                self.linux.average_temp_c,
                self.linux.peak_temp_c,
                self.linux.profile.duration_s,
            ],
            [
                "proposed: exploration",
                self.exploration_profile.average_temp_c(),
                self.exploration_profile.peak_temp_c(),
                self.exploration_profile.duration_s,
            ],
            [
                "proposed: exploitation",
                self.exploitation_profile.average_temp_c(),
                self.exploitation_profile.peak_temp_c(),
                self.exploitation_profile.duration_s,
            ],
        ]
        return format_table(
            headers,
            rows,
            title="Figures 4/5 — exploration vs exploitation phases (face_rec)",
        )


def run_fig45(
    iteration_scale: float = 1.0,
    seed: int = 1,
    app: str = "face_rec",
    engine: Optional[ExperimentEngine] = None,
) -> Fig45Result:
    """Run the two-phase trace experiment.

    The managed run uses ``train_passes=0`` so its trace *starts* with
    the learning transient, exactly like the paper's Figure 4 window.
    """
    engine = default_engine(engine)
    agent_config = default_agent_config()
    linux, managed = engine.run(
        [
            workload_job(
                app,
                None,
                "linux",
                seed=seed,
                iteration_scale=iteration_scale,
                train_passes=0,
            ),
            workload_job(
                app,
                None,
                "proposed",
                seed=seed,
                iteration_scale=iteration_scale,
                train_passes=0,
                agent_config=agent_config,
            ),
        ]
    )
    # The exploration/learning transient lasts roughly until alpha has
    # decayed below the exploitation threshold; use the agent's recorded
    # last policy change, bounded to leave at least a third of the trace
    # for the exploitation window.
    profile = managed.profile
    epochs_to_exploit = managed.manager_stats.get("exploitation_entry_epoch", -1.0)
    if epochs_to_exploit <= 0.0:
        epochs_to_exploit = managed.manager_stats.get("last_policy_change_epoch", 0.0)
    split_s = min(
        max(epochs_to_exploit * agent_config.decision_epoch_s, 120.0),
        profile.duration_s * 2.0 / 3.0,
    )
    exploration = profile.window(0.0, split_s)
    exploitation = profile.window(split_s, profile.duration_s)
    return Fig45Result(
        linux=linux,
        managed=managed,
        exploration_profile=exploration,
        exploitation_profile=exploitation,
        split_s=split_s,
    )


if __name__ == "__main__":
    print(run_fig45().format_table())
