"""Content-addressed on-disk result cache.

Completed :class:`~repro.experiments.runner.RunSummary` objects are
stored under ``.repro-cache/results/<key[:2]>/<key>.pkl`` where ``key``
is :func:`repro.experiments.engine.spec.job_key` — a stable hash of the
job spec plus the package version.  Because the simulations are
deterministic, a hit is bit-identical to re-running the job; because the
version participates in the key, bumping ``repro.__version__``
invalidates every prior entry at once.

The cache also owns the *artifact routing* policy: formatted artefact
tables regenerated at full scale belong in the repository's committed
``results/`` directory, while reduced-scale sweeps are routed into the
cache tree (``results-scale-<s>/``) so they can never clobber the
committed full-scale artefacts.
"""

from __future__ import annotations

import os
import pickle
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

import repro
from repro.experiments.engine.spec import JobSpec, job_key
from repro.ioutil import atomic_write

#: Environment variable relocating the cache tree (tests, CI).
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Default cache directory name, created relative to the working dir.
DEFAULT_CACHE_DIRNAME = ".repro-cache"


def default_cache_root() -> Path:
    """The cache root: ``$REPRO_CACHE_DIR`` or ``./.repro-cache``."""
    override = os.environ.get(CACHE_DIR_ENV)
    return Path(override) if override else Path(DEFAULT_CACHE_DIRNAME)


def artifact_dir(scale: float, results_dir: Path) -> Path:
    """Where regenerated artefact tables for ``scale`` belong.

    Full-scale output goes to the repository's ``results_dir``;
    anything else is routed into the cache tree so reduced-scale sweeps
    cannot overwrite the committed artefacts.
    """
    if scale == 1.0:
        return results_dir
    return default_cache_root() / f"results-scale-{scale:g}"


@dataclass
class CacheStats:
    """Hit/miss/store/invalidation counters of one cache instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    invalidated: int = 0

    def as_dict(self) -> dict:
        """Plain-dict view (for logging and tests)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "invalidated": self.invalidated,
        }


@dataclass
class ResultCache:
    """Pickle-backed content-addressed store of run summaries.

    Parameters
    ----------
    root:
        Cache root directory (``None`` -> :func:`default_cache_root`).
    version:
        Version string mixed into every key (``None`` -> the installed
        ``repro.__version__``).
    """

    root: Optional[Path] = None
    version: Optional[str] = None
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        self.root = Path(self.root) if self.root is not None else default_cache_root()
        self.version = self.version if self.version is not None else repro.__version__

    # ------------------------------------------------------------------
    # Addressing
    # ------------------------------------------------------------------

    def key_for(self, spec: JobSpec) -> str:
        """The content address of one job under this cache's version."""
        return job_key(spec, self.version)

    def _path_for(self, key: str) -> Path:
        return self.root / "results" / key[:2] / f"{key}.pkl"

    # ------------------------------------------------------------------
    # Store / load
    # ------------------------------------------------------------------

    def get(self, spec: JobSpec):
        """The cached summary for ``spec``, or ``None`` (counted miss).

        A corrupt or version-mismatched entry is deleted (counted as an
        invalidation) and reported as a miss.
        """
        path = self._path_for(self.key_for(spec))
        if not path.exists():
            self.stats.misses += 1
            return None
        try:
            with path.open("rb") as handle:
                payload = pickle.load(handle)
            if payload.get("version") != self.version:
                raise ValueError("version mismatch")
            summary = payload["summary"]
        except Exception:
            path.unlink(missing_ok=True)
            self.stats.invalidated += 1
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return summary

    def put(self, spec: JobSpec, summary) -> str:
        """Store one summary; atomic and durable against crashes."""
        key = self.key_for(spec)
        path = self._path_for(key)
        payload = {"version": self.version, "key": key, "summary": summary}
        atomic_write(
            path,
            lambda handle: pickle.dump(
                payload, handle, protocol=pickle.HIGHEST_PROTOCOL
            ),
        )
        self.stats.stores += 1
        return key

    # ------------------------------------------------------------------
    # Invalidation / eviction
    # ------------------------------------------------------------------

    def invalidate(self, spec: Optional[JobSpec] = None) -> int:
        """Drop one entry (or every entry when ``spec`` is ``None``).

        Returns the number of entries removed; also counted in
        ``stats.invalidated``.
        """
        removed = 0
        if spec is not None:
            path = self._path_for(self.key_for(spec))
            if path.exists():
                path.unlink()
                removed = 1
        else:
            store = self.root / "results"
            if store.exists():
                for path in sorted(store.rglob("*.pkl")):
                    path.unlink()
                    removed += 1
        self.stats.invalidated += removed
        return removed

    def __len__(self) -> int:
        """Number of entries currently on disk."""
        store = self.root / "results"
        if not store.exists():
            return 0
        return sum(1 for _ in store.rglob("*.pkl"))
