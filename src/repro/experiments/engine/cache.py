"""Content-addressed on-disk result cache.

Completed :class:`~repro.experiments.runner.RunSummary` objects are
stored under ``.repro-cache/results/<key[:2]>/<key>.pkl`` where ``key``
is :func:`repro.experiments.engine.spec.job_key` — a stable hash of the
job spec, the package version and the behavior-closure digest.  Because
the simulations are deterministic, a hit is bit-identical to re-running
the job.

Invalidation is **closure-digest-driven**: the digest fingerprints every
module transitively reachable from the job executors (see
:mod:`repro.analysis.audit.closure`), so editing simulation code
cold-misses stale entries automatically — no manual cache clearing —
while doc-only edits keep the cache warm.  ``repro.__version__`` still
participates in the key, but bumping it is for cut releases, not the
edit-run-edit loop.  Each stored payload records the version and digest
it was keyed under; :func:`repro.analysis.audit.report.explain_job_key`
(``repro audit --explain KEY``) decodes why any entry is fresh or stale.

The cache also owns the *artifact routing* policy: formatted artefact
tables regenerated at full scale belong in the repository's committed
``results/`` directory, while reduced-scale sweeps are routed into the
cache tree (``results-scale-<s>/``) so they can never clobber the
committed full-scale artefacts.
"""

from __future__ import annotations

import os
import pickle
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

import repro
from repro.experiments.engine.spec import JobSpec, behavior_digest, job_key
from repro.ioutil import atomic_write

#: Environment variable relocating the cache tree (tests, CI).
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Default cache directory name, created relative to the working dir.
DEFAULT_CACHE_DIRNAME = ".repro-cache"


def default_cache_root() -> Path:
    """The cache root: ``$REPRO_CACHE_DIR`` or ``./.repro-cache``."""
    override = os.environ.get(CACHE_DIR_ENV)
    return Path(override) if override else Path(DEFAULT_CACHE_DIRNAME)


def artifact_dir(scale: float, results_dir: Path) -> Path:
    """Where regenerated artefact tables for ``scale`` belong.

    Full-scale output goes to the repository's ``results_dir``;
    anything else is routed into the cache tree so reduced-scale sweeps
    cannot overwrite the committed artefacts.
    """
    if scale == 1.0:
        return results_dir
    return default_cache_root() / f"results-scale-{scale:g}"


@dataclass
class CacheStats:
    """Hit/miss/store/invalidation counters of one cache instance.

    ``invalidated`` is the total number of evicted entries; ``corrupt``
    (unreadable pickles) and ``mismatched`` (readable entries keyed
    under a different version or closure digest) break that total down
    by cause for the evictions :meth:`ResultCache.get` performs.
    """

    hits: int = 0
    misses: int = 0
    stores: int = 0
    invalidated: int = 0
    corrupt: int = 0
    mismatched: int = 0

    def as_dict(self) -> dict:
        """Plain-dict view (for logging and tests)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "invalidated": self.invalidated,
            "corrupt": self.corrupt,
            "mismatched": self.mismatched,
        }


@dataclass
class ResultCache:
    """Pickle-backed content-addressed store of run summaries.

    Parameters
    ----------
    root:
        Cache root directory (``None`` -> :func:`default_cache_root`).
    version:
        Version string mixed into every key (``None`` -> the installed
        ``repro.__version__``).
    """

    root: Optional[Path] = None
    version: Optional[str] = None
    #: Behavior-closure digest entries are keyed and validated under
    #: (``None`` -> the current tree's, see ``spec.behavior_digest``).
    closure: Optional[str] = None
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        self.root = Path(self.root) if self.root is not None else default_cache_root()
        self.version = self.version if self.version is not None else repro.__version__
        self.closure = self.closure if self.closure is not None else behavior_digest()

    # ------------------------------------------------------------------
    # Addressing
    # ------------------------------------------------------------------

    def key_for(self, spec: JobSpec) -> str:
        """One job's content address under this cache's version + closure."""
        return job_key(spec, self.version, self.closure)

    def _path_for(self, key: str) -> Path:
        return self.root / "results" / key[:2] / f"{key}.pkl"

    # ------------------------------------------------------------------
    # Store / load
    # ------------------------------------------------------------------

    def get(self, spec: JobSpec):
        """The cached summary for ``spec``, or ``None`` (counted miss).

        A corrupt entry (unreadable pickle) or a mismatched one (keyed
        under a different version or closure digest) is deleted and
        reported as a miss; the two causes are counted distinctly in
        ``stats.corrupt`` / ``stats.mismatched`` on top of the shared
        ``stats.invalidated`` total.
        """
        path = self._path_for(self.key_for(spec))
        if not path.exists():
            self.stats.misses += 1
            return None
        try:
            with path.open("rb") as handle:
                payload = pickle.load(handle)
            summary = payload["summary"]
        except Exception:
            path.unlink(missing_ok=True)
            self.stats.corrupt += 1
            self.stats.invalidated += 1
            self.stats.misses += 1
            return None
        if (
            payload.get("version") != self.version
            or payload.get("closure") != self.closure
        ):
            path.unlink(missing_ok=True)
            self.stats.mismatched += 1
            self.stats.invalidated += 1
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return summary

    def put(self, spec: JobSpec, summary) -> str:
        """Store one summary; atomic and durable against crashes."""
        key = self.key_for(spec)
        path = self._path_for(key)
        payload = {
            "version": self.version,
            "closure": self.closure,
            "key": key,
            "summary": summary,
        }
        atomic_write(
            path,
            lambda handle: pickle.dump(
                payload, handle, protocol=pickle.HIGHEST_PROTOCOL
            ),
        )
        self.stats.stores += 1
        return key

    # ------------------------------------------------------------------
    # Invalidation / eviction
    # ------------------------------------------------------------------

    def invalidate(self, spec: Optional[JobSpec] = None) -> int:
        """Drop one entry (or every entry when ``spec`` is ``None``).

        Returns the number of entries removed; also counted in
        ``stats.invalidated``.
        """
        removed = 0
        if spec is not None:
            path = self._path_for(self.key_for(spec))
            if path.exists():
                path.unlink()
                removed = 1
        else:
            store = self.root / "results"
            if store.exists():
                for path in sorted(store.rglob("*.pkl")):
                    path.unlink()
                    removed += 1
        self.stats.invalidated += removed
        return removed

    def __len__(self) -> int:
        """Number of entries currently on disk."""
        store = self.root / "results"
        if not store.exists():
            return 0
        return sum(1 for _ in store.rglob("*.pkl"))
