"""Job execution: the function a worker process actually runs.

Kept in its own module (no engine/scheduler imports) so
``ProcessPoolExecutor`` can pickle the callable cheaply and a worker
process only imports what one simulation needs.
"""

from __future__ import annotations

import shutil
from pathlib import Path
from typing import List, Optional, Union

from repro.experiments.engine.spec import EnsembleJobSpec, JobSpec, job_key
from repro.experiments.runner import RunSummary, run_scenario, run_workload


def job_checkpoint_dir(checkpoint_root: Union[str, Path], spec: JobSpec) -> Path:
    """Per-job checkpoint directory, keyed by the spec's content hash."""
    return Path(checkpoint_root) / job_key(spec)[:16]


def execute_job(
    spec: Union[JobSpec, EnsembleJobSpec],
    checkpoint_every: Optional[int] = None,
    checkpoint_root: Optional[str] = None,
    resume: bool = False,
) -> Union[RunSummary, "List[RunSummary]"]:
    """Execute one job spec serially in this process.

    An :class:`EnsembleJobSpec` runs through the vectorized ensemble
    engine and yields one ``RunSummary`` per member, in member order;
    a scalar spec yields its single summary.

    Parameters
    ----------
    spec:
        The job to run.  Checkpoint settings deliberately do NOT live on
        the spec: they change crash-recovery behaviour, never results,
        so cache keys stay stable with or without checkpointing.
    checkpoint_every / checkpoint_root / resume:
        When ``checkpoint_root`` is given, the simulation snapshots its
        full state every ``checkpoint_every`` ticks into a per-job
        directory (keyed by the spec hash) and, with ``resume``,
        restarts from the newest valid checkpoint there.  The directory
        is removed once the job completes.

        Ensemble shards are exempt: their snapshots live in process
        memory (``EnsembleSimulation.capture``), so disk checkpoint
        settings are ignored for :class:`EnsembleJobSpec` jobs — crash
        recovery for those comes from member-level result caching.
    """
    if isinstance(spec, EnsembleJobSpec):
        # Lazy import: workers running scalar jobs never pay for the
        # ensemble machinery.
        from repro.ensemble.runner import run_ensemble_workloads

        return run_ensemble_workloads(spec.members)
    checkpoint_dir: Optional[str] = None
    if checkpoint_root is not None:
        checkpoint_dir = str(job_checkpoint_dir(checkpoint_root, spec))
    summary = _execute(spec, checkpoint_every, checkpoint_dir, resume)
    if checkpoint_dir is not None:
        # The job finished; its checkpoints have served their purpose.
        shutil.rmtree(checkpoint_dir, ignore_errors=True)
    return summary


def execute_ensemble_job(spec: EnsembleJobSpec, cache=None):
    """Execute an ensemble job through the vectorized engine.

    Imported lazily so workers running ordinary scalar jobs never pay
    for the ensemble machinery.  Returns one ``RunSummary`` per member,
    in member order; with a cache, members hit in the cache are not
    re-simulated.
    """
    from repro.ensemble.runner import run_ensemble_job

    return run_ensemble_job(spec, cache=cache)


def _execute(
    spec: JobSpec,
    checkpoint_every: Optional[int],
    checkpoint_dir: Optional[str],
    resume: bool,
) -> RunSummary:
    if spec.kind == "workload":
        kwargs = dict(
            app=spec.app,
            dataset=spec.dataset,
            policy=spec.policy,
            seed=spec.seed,
            train_passes=spec.train_passes,
            agent_config=spec.agent_config,
            reliability=spec.reliability,
            platform=spec.platform,
            action_space=spec.action_space(),
            ge_config=spec.ge_config,
            mapping=spec.mapping,
            iteration_scale=spec.iteration_scale,
            faults=spec.faults,
            supervisor=spec.supervisor,
            checkpoint_every=checkpoint_every,
            checkpoint_dir=checkpoint_dir,
            resume=resume,
        )
        if spec.max_time_s is not None:
            kwargs["max_time_s"] = spec.max_time_s
        return run_workload(**kwargs)
    if spec.kind == "scenario":
        kwargs = dict(
            apps=spec.apps,
            policy=spec.policy,
            seed=spec.seed,
            agent_config=spec.agent_config,
            reliability=spec.reliability,
            platform=spec.platform,
            action_space=spec.action_space(),
            ge_config=spec.ge_config,
            iteration_scale=spec.iteration_scale,
            faults=spec.faults,
            supervisor=spec.supervisor,
            checkpoint_every=checkpoint_every,
            checkpoint_dir=checkpoint_dir,
            resume=resume,
        )
        if spec.max_time_s is not None:
            kwargs["max_time_s"] = spec.max_time_s
        return run_scenario(**kwargs)
    raise ValueError(f"unknown job kind {spec.kind!r}")
