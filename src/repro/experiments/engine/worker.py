"""Job execution: the function a worker process actually runs.

Kept in its own module (no engine/scheduler imports) so
``ProcessPoolExecutor`` can pickle the callable cheaply and a worker
process only imports what one simulation needs.
"""

from __future__ import annotations

from repro.experiments.engine.spec import JobSpec
from repro.experiments.runner import RunSummary, run_scenario, run_workload


def execute_job(spec: JobSpec) -> RunSummary:
    """Execute one job spec serially in this process."""
    if spec.kind == "workload":
        kwargs = dict(
            app=spec.app,
            dataset=spec.dataset,
            policy=spec.policy,
            seed=spec.seed,
            train_passes=spec.train_passes,
            agent_config=spec.agent_config,
            reliability=spec.reliability,
            platform=spec.platform,
            action_space=spec.action_space(),
            ge_config=spec.ge_config,
            mapping=spec.mapping,
            iteration_scale=spec.iteration_scale,
            faults=spec.faults,
            supervisor=spec.supervisor,
        )
        if spec.max_time_s is not None:
            kwargs["max_time_s"] = spec.max_time_s
        return run_workload(**kwargs)
    if spec.kind == "scenario":
        kwargs = dict(
            apps=spec.apps,
            policy=spec.policy,
            seed=spec.seed,
            agent_config=spec.agent_config,
            reliability=spec.reliability,
            platform=spec.platform,
            action_space=spec.action_space(),
            ge_config=spec.ge_config,
            iteration_scale=spec.iteration_scale,
            faults=spec.faults,
            supervisor=spec.supervisor,
        )
        if spec.max_time_s is not None:
            kwargs["max_time_s"] = spec.max_time_s
        return run_scenario(**kwargs)
    raise ValueError(f"unknown job kind {spec.kind!r}")
