"""Hashable job descriptions for the experiment engine.

A :class:`JobSpec` is the complete, immutable description of one
simulation job — everything :func:`repro.experiments.runner.run_workload`
or :func:`~repro.experiments.runner.run_scenario` needs to produce a
:class:`~repro.experiments.runner.RunSummary`.  Because every simulation
is deterministic and seeded, the spec *is* the result's identity: two
equal specs always produce bit-identical summaries, which is what makes
the content-addressed cache (:mod:`repro.experiments.engine.cache`)
sound.

The cache key is a SHA-256 over a canonical JSON rendering of the spec
plus the package version plus the **behavior-closure digest**
(:func:`job_key`).  The rendering walks nested dataclasses field by
field and tags each with its qualified class name, so *any* config-field
change — a new default, a renamed field, a tweaked probability — changes
the key.  The closure digest (:func:`behavior_digest`, computed by
:mod:`repro.analysis.audit.closure`) fingerprints every module
transitively reachable from the job executors, so editing simulation
*code* re-keys the cache automatically too, while doc-only edits leave
keys — and therefore warm caches — untouched.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Tuple

import repro
from repro.config import (
    AgentConfig,
    FaultConfig,
    GeQiuConfig,
    PlatformConfig,
    ReliabilityConfig,
    SupervisorConfig,
)
from repro.core.actions import Action, ActionSpace
from repro.sched.affinity import AffinityMapping

#: Job kinds the engine knows how to execute.
JOB_KINDS: Tuple[str, ...] = ("workload", "scenario")


@dataclass(frozen=True)
class JobSpec:
    """One (workload|scenario, policy, configuration) simulation job.

    Mirrors the keyword surface of the runner entry points; ``None``
    config fields mean "the runner's default", exactly like calling the
    runner directly.  ``actions`` holds the :class:`ActionSpace` content
    as a plain tuple so the spec stays hashable and picklable.
    """

    kind: str
    #: Workload jobs: the application name.  Scenario jobs: unused.
    app: Optional[str] = None
    #: Scenario jobs: the application sequence.  Workload jobs: unused.
    apps: Tuple[str, ...] = ()
    dataset: Optional[str] = None
    policy: str = "linux"
    seed: int = 1
    train_passes: int = 1
    iteration_scale: float = 1.0
    #: ``None`` -> the runner's per-kind default.
    max_time_s: Optional[float] = None
    agent_config: Optional[AgentConfig] = None
    reliability: Optional[ReliabilityConfig] = None
    platform: Optional[PlatformConfig] = None
    actions: Optional[Tuple[Action, ...]] = None
    ge_config: Optional[GeQiuConfig] = None
    mapping: Optional[AffinityMapping] = None
    faults: Optional[FaultConfig] = None
    supervisor: Optional[SupervisorConfig] = None

    def __post_init__(self) -> None:
        if self.kind not in JOB_KINDS:
            raise ValueError(f"unknown job kind {self.kind!r}; known: {JOB_KINDS}")
        if self.kind == "workload" and not self.app:
            raise ValueError("workload jobs need an app name")
        if self.kind == "scenario" and not self.apps:
            raise ValueError("scenario jobs need an application sequence")

    def action_space(self) -> Optional[ActionSpace]:
        """Materialise the stored actions back into an ActionSpace."""
        if self.actions is None:
            return None
        return ActionSpace(list(self.actions))

    @property
    def label(self) -> str:
        """Short display label for progress reporting."""
        target = self.app if self.kind == "workload" else "-".join(self.apps)
        return f"{target}/{self.policy}"


def workload_job(
    app: str,
    dataset: Optional[str] = None,
    policy: str = "linux",
    *,
    seed: int = 1,
    train_passes: int = 1,
    iteration_scale: float = 1.0,
    max_time_s: Optional[float] = None,
    agent_config: Optional[AgentConfig] = None,
    reliability: Optional[ReliabilityConfig] = None,
    platform: Optional[PlatformConfig] = None,
    action_space: Optional[ActionSpace] = None,
    ge_config: Optional[GeQiuConfig] = None,
    mapping: Optional[AffinityMapping] = None,
    faults: Optional[FaultConfig] = None,
    supervisor: Optional[SupervisorConfig] = None,
) -> JobSpec:
    """A workload job spec, mirroring ``run_workload``'s signature."""
    return JobSpec(
        kind="workload",
        app=app,
        dataset=dataset,
        policy=policy,
        seed=seed,
        train_passes=train_passes,
        iteration_scale=iteration_scale,
        max_time_s=max_time_s,
        agent_config=agent_config,
        reliability=reliability,
        platform=platform,
        actions=tuple(action_space) if action_space is not None else None,
        ge_config=ge_config,
        mapping=mapping,
        faults=faults,
        supervisor=supervisor,
    )


def scenario_job(
    apps,
    policy: str,
    *,
    seed: int = 1,
    iteration_scale: float = 1.0,
    max_time_s: Optional[float] = None,
    agent_config: Optional[AgentConfig] = None,
    reliability: Optional[ReliabilityConfig] = None,
    platform: Optional[PlatformConfig] = None,
    action_space: Optional[ActionSpace] = None,
    ge_config: Optional[GeQiuConfig] = None,
    faults: Optional[FaultConfig] = None,
    supervisor: Optional[SupervisorConfig] = None,
) -> JobSpec:
    """A scenario job spec, mirroring ``run_scenario``'s signature."""
    return JobSpec(
        kind="scenario",
        apps=tuple(apps),
        policy=policy,
        seed=seed,
        iteration_scale=iteration_scale,
        max_time_s=max_time_s,
        agent_config=agent_config,
        reliability=reliability,
        platform=platform,
        actions=tuple(action_space) if action_space is not None else None,
        ge_config=ge_config,
        faults=faults,
        supervisor=supervisor,
    )


@dataclass(frozen=True)
class EnsembleJobSpec:
    """A batch of workload jobs executed by the vectorized ensemble engine.

    The members are plain :class:`JobSpec` objects, so each member's
    cache identity (:func:`job_key`) is exactly the scalar job's —
    bit-faithfulness of the ensemble engine is what makes sharing the
    result cache between the two execution paths sound.  The bundle
    itself also canonicalises (it is a dataclass of dataclasses), so an
    :class:`EnsembleJobSpec` can be hashed with :func:`job_key` too.
    """

    members: Tuple[JobSpec, ...]

    def __post_init__(self) -> None:
        if not self.members:
            raise ValueError("ensemble jobs need at least one member")
        platform = self.members[0].platform
        for index, member in enumerate(self.members):
            if member.kind != "workload":
                raise ValueError(
                    f"ensemble member {index} has kind {member.kind!r}; "
                    "only workload jobs can be batched"
                )
            if member.platform != platform:
                raise ValueError(
                    f"ensemble member {index} has a different platform; "
                    "ensembles require a uniform platform"
                )
            if member.supervisor is not None and member.supervisor.enabled:
                raise ValueError(
                    f"ensemble member {index} enables the supervisor; "
                    "not supported by the ensemble engine"
                )

    def member_keys(self, version: Optional[str] = None) -> Tuple[str, ...]:
        """Each member's scalar cache key, in member order."""
        return tuple(job_key(member, version) for member in self.members)

    @property
    def label(self) -> str:
        """Short display label for progress reporting."""
        return f"ensemble[{len(self.members)}]"


def ensemble_job(members) -> EnsembleJobSpec:
    """An ensemble job spec from an iterable of workload job specs."""
    return EnsembleJobSpec(members=tuple(members))


# ---------------------------------------------------------------------------
# Canonical serialisation and hashing
# ---------------------------------------------------------------------------

#: Environment variable pointing the closure digest at an alternate
#: package tree (tests audit fixture trees without installing them).
CLOSURE_ROOT_ENV = "REPRO_CLOSURE_ROOT"

#: Environment variable pinning the closure digest to a literal value,
#: bypassing the AST walk entirely (fixtures, cross-tree comparisons).
CLOSURE_DIGEST_ENV = "REPRO_CLOSURE_DIGEST"


def behavior_digest() -> str:
    """The behavior-closure digest mixed into every job key.

    Resolution order: the literal ``$REPRO_CLOSURE_DIGEST`` pin if set,
    otherwise the digest of the tree at ``$REPRO_CLOSURE_ROOT`` (the
    installed ``repro`` package when unset).  The underlying computation
    is memoized per process and per root, so repeated key derivations —
    and worker processes forked after the first one — pay the AST walk
    at most once.
    """
    pinned = os.environ.get(CLOSURE_DIGEST_ENV)
    if pinned:
        return pinned
    # Imported lazily: the audit subpackage is excluded from the closure
    # itself, and most spec consumers never need it resolved at import.
    from repro.analysis.audit.closure import closure_digest

    root = os.environ.get(CLOSURE_ROOT_ENV)
    return closure_digest(Path(root) if root else None)


def canonicalise(value):
    """Reduce a spec value to a JSON-serialisable canonical form.

    Dataclasses carry their qualified class name so that two configs
    with coincidentally equal field dicts but different types (or a
    future renamed type) never collide; frozensets are sorted; floats
    are rendered through ``repr`` by ``json.dumps`` (exact for the
    round-trippable doubles used throughout the configs).
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            "__class__": f"{type(value).__module__}.{type(value).__qualname__}",
            "fields": {
                f.name: canonicalise(getattr(value, f.name))
                for f in dataclasses.fields(value)
            },
        }
    if isinstance(value, dict):
        return {str(k): canonicalise(v) for k, v in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [canonicalise(v) for v in value]
    if isinstance(value, frozenset):
        return {"__frozenset__": sorted(canonicalise(v) for v in value)}
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(f"cannot canonicalise {type(value).__name__}: {value!r}")


def canonical_json(
    spec: JobSpec,
    version: Optional[str] = None,
    closure: Optional[str] = None,
) -> str:
    """The canonical JSON document a job key is hashed over.

    Carries the package version *and* the behavior-closure digest, so a
    key changes when the spec changes, when a release is cut, or when
    any code reachable from the job executors changes behavior.  Both
    default to the current tree's values.
    """
    document = {
        "closure": closure if closure is not None else behavior_digest(),
        "version": version if version is not None else repro.__version__,
        "spec": canonicalise(spec),
    }
    return json.dumps(document, sort_keys=True, separators=(",", ":"))


def job_key(
    spec: JobSpec,
    version: Optional[str] = None,
    closure: Optional[str] = None,
) -> str:
    """Content address of a job: SHA-256 of spec + version + closure."""
    return hashlib.sha256(
        canonical_json(spec, version, closure).encode("utf-8")
    ).hexdigest()
