"""``repro all``: regenerate every paper artefact in one parallel sweep.

Drives each experiment module through one shared
:class:`~repro.experiments.engine.ExperimentEngine`, so the whole
evaluation section fans out over worker processes and overlapping grids
(Table 3 and Figure 9 share every run) resolve from the cache.  Each
artefact's formatted table is written to ``results/<name>.txt`` — or,
for reduced-scale sweeps, into the cache tree (see
:func:`~repro.experiments.engine.cache.artifact_dir`) so scaled output
can never clobber the committed full-scale artefacts.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.experiments.ablation import run_ablation
from repro.experiments.engine.cache import artifact_dir
from repro.experiments.engine.scheduler import (
    EngineJobError,
    EngineStats,
    ExperimentEngine,
    JobFailure,
)
from repro.ioutil import atomic_write_text
from repro.obs.metrics import MetricsRegistry
from repro.experiments.fault_tolerance import run_fault_tolerance
from repro.experiments.fig1_motivation import run_fig1
from repro.experiments.fig3_inter import run_fig3
from repro.experiments.fig45_phases import run_fig45
from repro.experiments.fig6_sampling import run_fig6
from repro.experiments.fig7_epoch import run_fig7
from repro.experiments.fig8_convergence import run_fig8
from repro.experiments.fig9_power import run_fig9
from repro.experiments.montecarlo import run_montecarlo
from repro.experiments.table2_intra import run_table2
from repro.experiments.table3_exec_time import run_table3

#: Artefact name -> experiment entry point, in regeneration order.
ARTEFACTS: Dict[str, Callable] = {
    "fig1": run_fig1,
    "table2": run_table2,
    "fig3": run_fig3,
    "fig45": run_fig45,
    "fig6": run_fig6,
    "fig7": run_fig7,
    "fig8": run_fig8,
    "table3": run_table3,
    "fig9": run_fig9,
    "ablation": run_ablation,
    "fault_tolerance": run_fault_tolerance,
    "montecarlo": run_montecarlo,
}


@dataclass
class ArtefactRun:
    """Outcome of regenerating one artefact."""

    name: str
    text: str
    path: Path
    elapsed_s: float


@dataclass
class SweepReport:
    """Everything one ``repro all`` invocation produced."""

    runs: List[ArtefactRun] = field(default_factory=list)
    stats: Optional[EngineStats] = None
    output_dir: Optional[Path] = None
    elapsed_s: float = 0.0
    #: The engine's metrics registry, when one was attached.
    metrics: Optional[MetricsRegistry] = None
    #: Artefacts that failed, with their structured job failures.
    failed_artefacts: Dict[str, List[JobFailure]] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """Whether every requested artefact regenerated successfully."""
        return not self.failed_artefacts

    def summary_lines(self) -> List[str]:
        """Human-readable closing summary for the CLI."""
        lines = [
            f"{run.name:<16} {run.elapsed_s:7.2f} s  -> {run.path}"
            for run in self.runs
        ]
        stats = self.stats.as_dict() if self.stats is not None else {}
        lines.append(
            f"{len(self.runs)} artefacts in {self.elapsed_s:.2f} s; "
            f"jobs executed: {stats.get('executed', 0)}, "
            f"cache hits: {stats.get('cache_hits', 0)}, "
            f"cache misses: {stats.get('cache_misses', 0)}, "
            f"deduplicated: {stats.get('deduplicated', 0)}"
        )
        retried = stats.get("retried", 0)
        timeouts = stats.get("timeouts", 0)
        restarts = stats.get("pool_restarts", 0)
        if retried or timeouts or restarts:
            lines.append(
                f"recovered: {retried} retried attempt(s), "
                f"{timeouts} timeout(s), {restarts} pool restart(s)"
            )
        for name, job_failures in sorted(self.failed_artefacts.items()):
            lines.append(f"FAILED {name}: {len(job_failures)} job(s) gave up")
            for failure in job_failures:
                suffix = ", timed out" if failure.timed_out else ""
                lines.append(
                    f"  {failure.label} [{failure.key[:12]}] "
                    f"{failure.error_type}: {failure.message} "
                    f"({failure.attempts} attempts, "
                    f"{failure.duration_s:.1f} s{suffix})"
                )
        return lines


def regenerate_all(
    iteration_scale: float = 1.0,
    seed: int = 1,
    engine: Optional[ExperimentEngine] = None,
    artefacts: Optional[Sequence[str]] = None,
    results_dir: Optional[Path] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> SweepReport:
    """Regenerate artefact tables through one shared engine.

    Parameters
    ----------
    iteration_scale:
        Application-length scale; anything other than 1.0 routes the
        output files into the cache tree instead of ``results_dir``.
    seed:
        Measurement seed shared by every artefact.
    engine:
        Shared engine (serial and uncached when omitted).
    artefacts:
        Subset of artefact names to regenerate (all when omitted).
    results_dir:
        Where full-scale artefacts belong (default ``./results``).
    progress:
        Optional callback receiving one line per artefact as it starts.
    """
    engine = engine if engine is not None else ExperimentEngine()
    names: Tuple[str, ...] = tuple(artefacts) if artefacts else tuple(ARTEFACTS)
    unknown = [name for name in names if name not in ARTEFACTS]
    if unknown:
        raise ValueError(
            f"unknown artefacts {unknown}; known: {', '.join(ARTEFACTS)}"
        )
    results_dir = results_dir if results_dir is not None else Path("results")
    output_dir = artifact_dir(iteration_scale, results_dir)
    output_dir.mkdir(parents=True, exist_ok=True)

    report = SweepReport(output_dir=output_dir)
    sweep_start = time.perf_counter()
    for name in names:
        if progress is not None:
            progress(f"regenerating {name} ...")
        start = time.perf_counter()
        try:
            result = ARTEFACTS[name](
                iteration_scale=iteration_scale, seed=seed, engine=engine
            )
        except EngineJobError as error:
            # One artefact's exhausted jobs must not abort the campaign:
            # record the structured failures and move to the next one.
            report.failed_artefacts[name] = list(error.failures)
            if progress is not None:
                progress(f"FAILED {name}: {len(error.failures)} job(s) gave up")
            continue
        text = result.format_table()
        path = output_dir / f"{name}.txt"
        atomic_write_text(path, text + "\n")
        report.runs.append(
            ArtefactRun(
                name=name,
                text=text,
                path=path,
                elapsed_s=time.perf_counter() - start,
            )
        )
        if engine.metrics is not None:
            engine.metrics.counter(
                "repro_artefacts_regenerated_total",
                "artefact tables written by repro all",
            ).inc()
    report.stats = engine.stats
    report.metrics = engine.metrics
    report.elapsed_s = time.perf_counter() - sweep_start
    return report
