"""The parallel, cache-aware job scheduler.

:class:`ExperimentEngine` takes a batch of :class:`JobSpec` objects and
returns their :class:`~repro.experiments.runner.RunSummary` results *in
submission order*, regardless of how many worker processes executed them
or which came back from the cache.  The pipeline per batch is:

1. deduplicate equal specs (deterministic simulations make duplicates
   free to share);
2. resolve cache hits;
3. execute the misses — inline when ``jobs == 1``, else fanned out over
   a ``ProcessPoolExecutor``;
4. store fresh results back into the cache.

With ``jobs=1`` and no cache the engine degenerates to calling the
runner directly in a loop — the exact serial code path the experiments
used before the engine existed, which is what the bit-identity
guarantee (parallel + cached output == serial seed output) is tested
against.
"""

from __future__ import annotations

import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.config import EngineConfig
from repro.experiments.engine.cache import ResultCache
from repro.experiments.engine.spec import EnsembleJobSpec, JobSpec, job_key
from repro.experiments.engine.worker import execute_job
from repro.experiments.runner import RunSummary
from repro.obs.metrics import (
    DURATION_BUCKETS_S,
    MetricsRegistry,
    TEMPERATURE_BUCKETS_C,
)

#: Poll period of the parallel wait loop when a job timeout is armed.
_TIMEOUT_POLL_S = 0.1


@dataclass
class EngineStats:
    """Lifetime accounting of one engine instance."""

    #: Jobs submitted across all batches (before deduplication).
    submitted: int = 0
    #: Unique jobs that actually ran a simulation.
    executed: int = 0
    #: Jobs resolved from the cache.
    cache_hits: int = 0
    #: Unique jobs that missed the cache (equals ``executed`` when a
    #: cache is attached).
    cache_misses: int = 0
    #: Duplicate submissions shared within batches.
    deduplicated: int = 0
    #: Failed attempts that were retried.
    retried: int = 0
    #: Jobs that exhausted every attempt.
    failed: int = 0
    #: Attempts killed by the per-job timeout.
    timeouts: int = 0
    #: Worker-pool respawns (timeout kills and broken-pool recoveries).
    pool_restarts: int = 0

    def as_dict(self) -> dict:
        """Plain-dict view (for logging and tests)."""
        return {
            "submitted": self.submitted,
            "executed": self.executed,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "deduplicated": self.deduplicated,
            "retried": self.retried,
            "failed": self.failed,
            "timeouts": self.timeouts,
            "pool_restarts": self.pool_restarts,
        }


@dataclass(frozen=True)
class JobFailure:
    """Structured record of a job that exhausted its attempts.

    Replaces the bare worker traceback with everything needed to triage
    and re-run the job: the spec's content hash, a display label, how
    many attempts were burned over how long, the final error, the
    deterministic backoff the retries accounted, and whether the last
    attempt was killed by the timeout.
    """

    key: str
    label: str
    attempts: int
    duration_s: float
    error_type: str
    message: str
    backoff_s: float = 0.0
    timed_out: bool = False

    def as_dict(self) -> dict:
        """Plain-dict view (manifest records, summaries)."""
        return {
            "key": self.key,
            "label": self.label,
            "attempts": self.attempts,
            "duration_s": self.duration_s,
            "error_type": self.error_type,
            "message": self.message,
            "backoff_s": self.backoff_s,
            "timed_out": self.timed_out,
        }


class EngineJobError(RuntimeError):
    """A batch had jobs that failed after exhausting their retries."""

    def __init__(self, failures: Sequence[JobFailure]) -> None:
        self.failures = list(failures)
        lines = [f"{len(self.failures)} job(s) failed after retries:"]
        for failure in self.failures:
            suffix = " (timed out)" if failure.timed_out else ""
            lines.append(
                f"  {failure.label} [{failure.key[:12]}] — "
                f"{failure.error_type}: {failure.message}"
                f" ({failure.attempts} attempts{suffix})"
            )
        super().__init__("\n".join(lines))


@dataclass
class ExperimentEngine:
    """Run batches of simulation jobs, optionally parallel and cached.

    Parameters
    ----------
    jobs:
        Worker processes; 1 executes inline in this process.
    cache:
        A :class:`ResultCache`, or ``None`` to disable caching.  The
    default engine (``ExperimentEngine()``) is the serial, uncached
    degenerate case every experiment module falls back to.
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry`.  After
        every batch the engine folds its scheduling counters and
        per-job rollups (average temperature, execution time) into it,
        in submission order — so serial and parallel execution of the
        same batch produce identical metric state.
    """

    jobs: int = 1
    cache: Optional[ResultCache] = None
    stats: EngineStats = field(default_factory=EngineStats)
    metrics: Optional[MetricsRegistry] = None
    #: Wall-clock budget per attempt; ``None`` disables the timeout.
    job_timeout_s: Optional[float] = None
    #: Total attempts per job before a structured failure is recorded.
    max_job_attempts: int = 3
    #: Base of the deterministic backoff accounting (never slept).
    retry_backoff_s: float = 0.5
    #: Checkpoint cadence (ticks) and per-job store root; see worker.
    checkpoint_every: Optional[int] = None
    checkpoint_dir: Optional[str] = None
    #: Resume interrupted jobs from their newest valid checkpoint.
    resume: bool = False
    #: Route each batch through the ensemble grid planner: cells that
    #: share a platform closure are batched into vectorized ensemble
    #: shards (see :mod:`repro.experiments.engine.planner`); everything
    #: else runs on the scalar path.  Bit-identical either way.
    ensemble: bool = False
    #: Structured failure records accumulated over the engine's life.
    failures: List[JobFailure] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {self.jobs}")
        if self.max_job_attempts < 1:
            raise ValueError(
                f"max_job_attempts must be >= 1, got {self.max_job_attempts}"
            )

    @classmethod
    def from_config(cls, config: EngineConfig) -> "ExperimentEngine":
        """Build an engine from an :class:`repro.config.EngineConfig`."""
        cache = ResultCache(root=config.cache_dir) if config.use_cache else None
        return cls(
            jobs=config.jobs,
            cache=cache,
            job_timeout_s=config.job_timeout_s,
            max_job_attempts=config.max_job_attempts,
            retry_backoff_s=config.retry_backoff_s,
            checkpoint_every=config.checkpoint_every,
            checkpoint_dir=config.checkpoint_dir,
            resume=config.resume,
            ensemble=config.ensemble,
        )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run(self, specs: Sequence[JobSpec]) -> List[RunSummary]:
        """Execute a batch; results align index-for-index with ``specs``."""
        specs = list(specs)
        self.stats.submitted += len(specs)

        # Deduplicate: map each submission to the first equal spec.
        unique: List[JobSpec] = []
        slot_of: Dict[JobSpec, int] = {}
        placement: List[int] = []
        for spec in specs:
            if spec not in slot_of:
                slot_of[spec] = len(unique)
                unique.append(spec)
            else:
                self.stats.deduplicated += 1
            placement.append(slot_of[spec])

        results: List[Optional[RunSummary]] = [None] * len(unique)
        pending: List[int] = []
        for index, spec in enumerate(unique):
            if self.cache is not None:
                summary = self.cache.get(spec)
                if summary is not None:
                    self.stats.cache_hits += 1
                    results[index] = summary
                    continue
                self.stats.cache_misses += 1
            pending.append(index)

        failures: List[JobFailure] = []
        if pending:
            self.stats.executed += len(pending)
            jobs = {index: unique[index] for index in pending}
            if self.ensemble:
                outcomes, failures = self._execute_ensemble(jobs)
            elif self.jobs == 1 or len(pending) == 1:
                outcomes, failures = self._execute_serial(jobs)
            else:
                outcomes, failures = self._execute_parallel(jobs)
            for index, summary in sorted(outcomes.items()):
                results[index] = summary

        if failures:
            self.failures.extend(failures)
            raise EngineJobError(failures)

        ordered = [results[slot] for slot in placement]
        if self.metrics is not None:
            self._fold_metrics(len(specs), len(pending), ordered)
        return ordered

    def run_collect(
        self, specs: Sequence[JobSpec], charge_stats: bool = True
    ) -> Tuple[Dict[int, RunSummary], List[JobFailure]]:
        """Execute specs through the hardened paths, collecting failures.

        Unlike :meth:`run` this never raises on exhausted jobs — the
        caller receives the outcomes that did complete (keyed by spec
        index) alongside the structured failures — and it skips
        deduplication, cache lookup and metrics folding.  Callers that
        manage their own result granularity (per-member caching of
        ensemble shards in :mod:`repro.ensemble.shard`) use it to get
        timeouts, retries and pool recovery without the engine treating
        a composite result as one cacheable summary.  Failures still
        accumulate in :attr:`failures` and count in :attr:`stats`.

        ``charge_stats=False`` is the planner's reentrant mode: when
        :meth:`run` routes a batch through ensemble shards, the batch's
        members were already counted as submitted/executed (and its
        failures are recorded by :meth:`run` itself), so the inner
        shard-level call must not double-charge them.
        """
        jobs = dict(enumerate(specs))
        if charge_stats:
            self.stats.submitted += len(jobs)
        if not jobs:
            return {}, []
        if charge_stats:
            self.stats.executed += len(jobs)
        if self.jobs == 1 or len(jobs) == 1:
            outcomes, failures = self._execute_serial(jobs)
        else:
            outcomes, failures = self._execute_parallel(jobs)
        if failures and charge_stats:
            self.failures.extend(failures)
        return outcomes, failures

    # ------------------------------------------------------------------
    # Hardened execution paths
    # ------------------------------------------------------------------

    def _worker_args(self) -> Tuple[Optional[int], Optional[str], bool]:
        """Checkpoint settings forwarded to every ``execute_job`` call."""
        return (self.checkpoint_every, self.checkpoint_dir, self.resume)

    def _store(self, spec: JobSpec, summary: RunSummary) -> None:
        """Persist one fresh result the moment it exists.

        Caching per-arrival (instead of per-batch) means a crash of the
        driver process loses at most the jobs still in flight.

        Composite outcomes (an ensemble shard's list of member
        summaries) are not cached here — their members are cached
        individually, under scalar keys, by the sharding layer.
        """
        if self.cache is not None and isinstance(summary, RunSummary):
            self.cache.put(spec, summary)

    def _failures_for(
        self,
        spec: JobSpec,
        attempts: int,
        duration_s: float,
        error: BaseException,
        backoff_s: float,
        timed_out: bool = False,
    ) -> List[JobFailure]:
        """Structured failure records for one exhausted job.

        An :class:`EnsembleJobSpec` expands to one failure *per member*,
        keyed by the member's scalar :func:`job_key` — so a failed shard
        degrades exactly its members' cells and a sweep re-run (whose
        cache holds every member of the shards that did succeed) only
        re-executes the members that actually failed.
        """
        members: Sequence[JobSpec]
        if isinstance(spec, EnsembleJobSpec):
            members = spec.members
        else:
            members = (spec,)
        self.stats.failed += len(members)
        return [
            JobFailure(
                key=job_key(member),
                label=member.label,
                attempts=attempts,
                duration_s=duration_s,
                error_type=type(error).__name__,
                message=str(error) or type(error).__name__,
                backoff_s=backoff_s,
                timed_out=timed_out,
            )
            for member in members
        ]

    def _backoff_for(self, attempt: int) -> float:
        """Deterministic exponential backoff charged to ``attempt``.

        Accounting only — the engine never sleeps, so retried batches
        stay deterministic and tests stay fast; the figure is recorded
        in the failure record as the delay a live deployment would have
        waited.
        """
        return self.retry_backoff_s * 2 ** (attempt - 1)

    def _execute_ensemble(
        self, jobs: Dict[int, JobSpec]
    ) -> Tuple[Dict[int, RunSummary], List[JobFailure]]:
        """Route one pending batch through the ensemble grid planner.

        The planner partitions the (already cache-missed, deduplicated)
        batch into platform-uniform member groups plus scalar leftovers;
        each group runs as a sharded ensemble job over this same engine
        (``jobs`` worker processes, timeouts, bounded retries), which
        caches fresh members under their scalar keys as shards land.
        Leftovers take the ordinary serial/parallel path.  Every member
        summary is bit-identical to scalar execution, so this changes
        *throughput only* — never bytes.

        Imports lazily: the shard layer sits above the scheduler in the
        module graph, so a top-level import would be cyclic.
        """
        from repro.ensemble.shard import run_sharded_ensemble_job
        from repro.experiments.engine.planner import plan_grid
        from repro.experiments.engine.spec import ensemble_job

        indices = sorted(jobs)
        specs = [jobs[index] for index in indices]
        plan = plan_grid(specs)
        outcomes: Dict[int, RunSummary] = {}
        failures: List[JobFailure] = []
        for group in plan.groups:
            group_spec = ensemble_job(specs[local] for local in group)
            # The batch's cache misses were resolved by run() already,
            # so the shard layer skips its per-member pre-resolution;
            # it still stores fresh members under their scalar keys.
            report = run_sharded_ensemble_job(
                group_spec,
                self,
                cache=self.cache,
                resolve_cache=False,
                charge_stats=False,
            )
            failures.extend(report.failures)
            for offset, local in enumerate(group):
                summary = report.summaries[offset]
                if summary is not None:
                    outcomes[indices[local]] = summary
        if plan.scalar:
            leftovers = {indices[local]: specs[local] for local in plan.scalar}
            if self.jobs == 1 or len(leftovers) == 1:
                extra_outcomes, extra_failures = self._execute_serial(leftovers)
            else:
                extra_outcomes, extra_failures = self._execute_parallel(leftovers)
            outcomes.update(extra_outcomes)
            failures.extend(extra_failures)
        return outcomes, failures

    def _execute_serial(
        self, jobs: Dict[int, JobSpec]
    ) -> Tuple[Dict[int, RunSummary], List[JobFailure]]:
        """Inline execution with bounded retries (no timeout machinery:
        a hung job in-process would hang the caller regardless)."""
        outcomes: Dict[int, RunSummary] = {}
        failures: List[JobFailure] = []
        for index in sorted(jobs):
            spec = jobs[index]
            attempts = 0
            backoff_total = 0.0
            started = time.perf_counter()
            while True:
                attempts += 1
                try:
                    summary = execute_job(spec, *self._worker_args())
                except Exception as error:
                    if attempts >= self.max_job_attempts:
                        failures.extend(
                            self._failures_for(
                                spec,
                                attempts,
                                time.perf_counter() - started,
                                error,
                                backoff_total,
                            )
                        )
                        break
                    self.stats.retried += 1
                    backoff_total += self._backoff_for(attempts)
                    continue
                outcomes[index] = summary
                self._store(spec, summary)
                break
        return outcomes, failures

    def _execute_parallel(
        self, jobs: Dict[int, JobSpec]
    ) -> Tuple[Dict[int, RunSummary], List[JobFailure]]:
        """Submit-based fan-out with timeouts, retries and pool recovery.

        Unlike ``pool.map``, each job is tracked individually: a worker
        exception burns one attempt and requeues the job; an attempt
        exceeding ``job_timeout_s`` gets its worker killed (terminating
        the pool — sibling jobs are requeued without burning attempts);
        a ``BrokenProcessPool`` respawns the pool and requeues only the
        jobs that were in flight.
        """
        workers = min(self.jobs, len(jobs))
        outcomes: Dict[int, RunSummary] = {}
        failures: List[JobFailure] = []
        attempts: Dict[int, int] = {index: 0 for index in jobs}
        backoff: Dict[int, float] = {index: 0.0 for index in jobs}
        started: Dict[int, float] = {}
        queue: deque = deque(sorted(jobs))
        inflight: Dict[object, Tuple[int, float]] = {}
        pool = ProcessPoolExecutor(max_workers=workers)

        def attempt_failed(index: int, error: BaseException, timed_out: bool) -> None:
            if attempts[index] >= self.max_job_attempts:
                failures.extend(
                    self._failures_for(
                        jobs[index],
                        attempts[index],
                        time.perf_counter() - started[index],
                        error,
                        backoff[index],
                        timed_out=timed_out,
                    )
                )
            else:
                self.stats.retried += 1
                backoff[index] += self._backoff_for(attempts[index])
                queue.append(index)

        def respawn_pool() -> None:
            nonlocal pool
            self.stats.pool_restarts += 1
            for process in list(getattr(pool, "_processes", {}).values()):
                try:
                    process.terminate()
                except Exception:
                    pass
            try:
                pool.shutdown(wait=False, cancel_futures=True)
            except Exception:
                pass
            pool = ProcessPoolExecutor(max_workers=workers)

        def requeue_inflight(charge_attempt: bool) -> None:
            for future, (index, _submitted) in list(inflight.items()):
                del inflight[future]
                if not charge_attempt:
                    # Collateral of a sibling's timeout kill or a pool
                    # crash attributed elsewhere: give the attempt back.
                    attempts[index] -= 1
                queue.append(index)

        try:
            while queue or inflight:
                while queue and len(inflight) < workers:
                    index = queue.popleft()
                    attempts[index] += 1
                    now = time.perf_counter()
                    started.setdefault(index, now)
                    try:
                        future = pool.submit(
                            execute_job, jobs[index], *self._worker_args()
                        )
                    except BrokenProcessPool:
                        # Pool died between batches of submissions.
                        attempts[index] -= 1
                        queue.appendleft(index)
                        requeue_inflight(charge_attempt=False)
                        respawn_pool()
                        continue
                    inflight[future] = (index, now)
                poll = _TIMEOUT_POLL_S if self.job_timeout_s is not None else None
                done, _ = wait(
                    set(inflight), timeout=poll, return_when=FIRST_COMPLETED
                )
                broken = False
                for future in done:
                    index, _submitted = inflight.pop(future)
                    try:
                        summary = future.result()
                    except BrokenProcessPool as error:
                        # The pool died under this job (or a sibling);
                        # charge this job the attempt, requeue the rest
                        # for free, and start a fresh pool.
                        broken = True
                        attempt_failed(index, error, timed_out=False)
                    except Exception as error:
                        attempt_failed(index, error, timed_out=False)
                    else:
                        outcomes[index] = summary
                        self._store(jobs[index], summary)
                if broken:
                    requeue_inflight(charge_attempt=False)
                    respawn_pool()
                    continue
                if self.job_timeout_s is not None and inflight:
                    now = time.perf_counter()
                    expired = [
                        (future, index)
                        for future, (index, submitted) in sorted(
                            inflight.items(), key=lambda item: item[1][0]
                        )
                        if now - submitted >= self.job_timeout_s
                        and not future.done()
                    ]
                    if expired:
                        for future, index in expired:
                            del inflight[future]
                            self.stats.timeouts += 1
                            attempt_failed(
                                index,
                                TimeoutError(
                                    f"attempt exceeded {self.job_timeout_s:g} s"
                                ),
                                timed_out=True,
                            )
                        # Killing a worker mid-job requires killing the
                        # pool; jobs caught in the blast radius are
                        # requeued without burning an attempt.
                        requeue_inflight(charge_attempt=False)
                        respawn_pool()
        finally:
            pool.shutdown(wait=True, cancel_futures=True)
        return outcomes, failures

    def _fold_metrics(
        self, submitted: int, executed: int, ordered: Sequence[RunSummary]
    ) -> None:
        """Roll one batch up into the attached metrics registry."""
        registry = self.metrics
        registry.counter(
            "repro_engine_jobs_submitted_total", "jobs submitted to the engine"
        ).inc(submitted)
        registry.counter(
            "repro_engine_jobs_executed_total", "jobs that ran a simulation"
        ).inc(executed)
        registry.gauge(
            "repro_engine_cache_hits", "lifetime cache hits of this engine"
        ).set(self.stats.cache_hits)
        registry.gauge(
            "repro_engine_cache_misses", "lifetime cache misses of this engine"
        ).set(self.stats.cache_misses)
        registry.gauge(
            "repro_engine_deduplicated", "lifetime duplicate submissions shared"
        ).set(self.stats.deduplicated)
        temp_hist = registry.histogram(
            "repro_job_avg_temp_c",
            TEMPERATURE_BUCKETS_C,
            "per-job average temperature (degC)",
        )
        time_hist = registry.histogram(
            "repro_job_execution_time_s",
            DURATION_BUCKETS_S,
            "per-job simulated execution time (s)",
        )
        for summary in ordered:
            temp_hist.observe(summary.average_temp_c)
            time_hist.observe(summary.execution_time_s)

    def run_one(self, spec: JobSpec) -> RunSummary:
        """Convenience wrapper for a single job."""
        return self.run([spec])[0]


def default_engine(engine: Optional[ExperimentEngine]) -> ExperimentEngine:
    """The engine an experiment should use: the given one, or the
    serial uncached degenerate engine."""
    return engine if engine is not None else ExperimentEngine()
