"""The parallel, cache-aware job scheduler.

:class:`ExperimentEngine` takes a batch of :class:`JobSpec` objects and
returns their :class:`~repro.experiments.runner.RunSummary` results *in
submission order*, regardless of how many worker processes executed them
or which came back from the cache.  The pipeline per batch is:

1. deduplicate equal specs (deterministic simulations make duplicates
   free to share);
2. resolve cache hits;
3. execute the misses — inline when ``jobs == 1``, else fanned out over
   a ``ProcessPoolExecutor``;
4. store fresh results back into the cache.

With ``jobs=1`` and no cache the engine degenerates to calling the
runner directly in a loop — the exact serial code path the experiments
used before the engine existed, which is what the bit-identity
guarantee (parallel + cached output == serial seed output) is tested
against.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.config import EngineConfig
from repro.experiments.engine.cache import ResultCache
from repro.experiments.engine.spec import JobSpec
from repro.experiments.engine.worker import execute_job
from repro.experiments.runner import RunSummary
from repro.obs.metrics import (
    DURATION_BUCKETS_S,
    MetricsRegistry,
    TEMPERATURE_BUCKETS_C,
)


@dataclass
class EngineStats:
    """Lifetime accounting of one engine instance."""

    #: Jobs submitted across all batches (before deduplication).
    submitted: int = 0
    #: Unique jobs that actually ran a simulation.
    executed: int = 0
    #: Jobs resolved from the cache.
    cache_hits: int = 0
    #: Unique jobs that missed the cache (equals ``executed`` when a
    #: cache is attached).
    cache_misses: int = 0
    #: Duplicate submissions shared within batches.
    deduplicated: int = 0

    def as_dict(self) -> dict:
        """Plain-dict view (for logging and tests)."""
        return {
            "submitted": self.submitted,
            "executed": self.executed,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "deduplicated": self.deduplicated,
        }


@dataclass
class ExperimentEngine:
    """Run batches of simulation jobs, optionally parallel and cached.

    Parameters
    ----------
    jobs:
        Worker processes; 1 executes inline in this process.
    cache:
        A :class:`ResultCache`, or ``None`` to disable caching.  The
    default engine (``ExperimentEngine()``) is the serial, uncached
    degenerate case every experiment module falls back to.
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry`.  After
        every batch the engine folds its scheduling counters and
        per-job rollups (average temperature, execution time) into it,
        in submission order — so serial and parallel execution of the
        same batch produce identical metric state.
    """

    jobs: int = 1
    cache: Optional[ResultCache] = None
    stats: EngineStats = field(default_factory=EngineStats)
    metrics: Optional[MetricsRegistry] = None

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {self.jobs}")

    @classmethod
    def from_config(cls, config: EngineConfig) -> "ExperimentEngine":
        """Build an engine from an :class:`repro.config.EngineConfig`."""
        cache = ResultCache(root=config.cache_dir) if config.use_cache else None
        return cls(jobs=config.jobs, cache=cache)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run(self, specs: Sequence[JobSpec]) -> List[RunSummary]:
        """Execute a batch; results align index-for-index with ``specs``."""
        specs = list(specs)
        self.stats.submitted += len(specs)

        # Deduplicate: map each submission to the first equal spec.
        unique: List[JobSpec] = []
        slot_of: Dict[JobSpec, int] = {}
        placement: List[int] = []
        for spec in specs:
            if spec not in slot_of:
                slot_of[spec] = len(unique)
                unique.append(spec)
            else:
                self.stats.deduplicated += 1
            placement.append(slot_of[spec])

        results: List[Optional[RunSummary]] = [None] * len(unique)
        pending: List[int] = []
        for index, spec in enumerate(unique):
            if self.cache is not None:
                summary = self.cache.get(spec)
                if summary is not None:
                    self.stats.cache_hits += 1
                    results[index] = summary
                    continue
                self.stats.cache_misses += 1
            pending.append(index)

        if pending:
            self.stats.executed += len(pending)
            if self.jobs == 1 or len(pending) == 1:
                fresh = [execute_job(unique[i]) for i in pending]
            else:
                workers = min(self.jobs, len(pending))
                with ProcessPoolExecutor(max_workers=workers) as pool:
                    fresh = list(pool.map(execute_job, [unique[i] for i in pending]))
            for index, summary in zip(pending, fresh):
                results[index] = summary
                if self.cache is not None:
                    self.cache.put(unique[index], summary)

        ordered = [results[slot] for slot in placement]
        if self.metrics is not None:
            self._fold_metrics(len(specs), len(pending), ordered)
        return ordered

    def _fold_metrics(
        self, submitted: int, executed: int, ordered: Sequence[RunSummary]
    ) -> None:
        """Roll one batch up into the attached metrics registry."""
        registry = self.metrics
        registry.counter(
            "repro_engine_jobs_submitted_total", "jobs submitted to the engine"
        ).inc(submitted)
        registry.counter(
            "repro_engine_jobs_executed_total", "jobs that ran a simulation"
        ).inc(executed)
        registry.gauge(
            "repro_engine_cache_hits", "lifetime cache hits of this engine"
        ).set(self.stats.cache_hits)
        registry.gauge(
            "repro_engine_cache_misses", "lifetime cache misses of this engine"
        ).set(self.stats.cache_misses)
        registry.gauge(
            "repro_engine_deduplicated", "lifetime duplicate submissions shared"
        ).set(self.stats.deduplicated)
        temp_hist = registry.histogram(
            "repro_job_avg_temp_c",
            TEMPERATURE_BUCKETS_C,
            "per-job average temperature (degC)",
        )
        time_hist = registry.histogram(
            "repro_job_execution_time_s",
            DURATION_BUCKETS_S,
            "per-job simulated execution time (s)",
        )
        for summary in ordered:
            temp_hist.observe(summary.average_temp_c)
            time_hist.observe(summary.execution_time_s)

    def run_one(self, spec: JobSpec) -> RunSummary:
        """Convenience wrapper for a single job."""
        return self.run([spec])[0]


def default_engine(engine: Optional[ExperimentEngine]) -> ExperimentEngine:
    """The engine an experiment should use: the given one, or the
    serial uncached degenerate engine."""
    return engine if engine is not None else ExperimentEngine()
