"""The ensemble grid planner: batch scalar sweep cells into ensembles.

Every experiment grid submits plain scalar :class:`JobSpec` cells.  The
planner is the pass that lets the engine execute those same cells
through the vectorized ensemble engine instead: it partitions a batch
into :class:`EnsembleJobSpec`-shaped member groups plus the scalar
leftovers the ensemble engine cannot (or should not) take.

The grouping rules are exactly the ensemble engine's own preconditions:

* only ``workload`` jobs can be batched (scenario jobs drive an
  application *sequence* through one simulation — there is nothing to
  vectorize across);
* the supervisor must be off — :class:`~repro.ensemble.engine.
  EnsembleSimulation` rejects supervised members;
* the effective platform's evaluation sensor must be EMA-free
  (``sensor.ema_tau_s == 0``): :class:`~repro.ensemble.sensors.
  BatchedEvalSensors` has no batched low-pass path;
* members of one group share the *exact* ``platform`` field —
  ``None`` ("the runner's default") is deliberately distinct from an
  explicit default-valued :class:`~repro.config.PlatformConfig`, because
  that is the uniformity :class:`EnsembleJobSpec` validates and the one
  the member cache keys encode.

Everything else — app, dataset, policy, seed, agent config, action
space, affinity mapping, fault schedule, Ge&Qiu config — may vary
freely *within* a group: the ensemble data plane is bit-faithful per
member regardless of who shares the batch (cross-member isolation), and
heterogeneous control-plane members simply fall back to the scalar
per-member manager path inside the ensemble tick.

Determinism: groups appear in order of their platform's first
appearance in the batch, member indices ascend within a group, and the
scalar leftovers ascend — so the shard job specs derived from a plan
(and hence their content hashes and failure records) are a pure
function of the submitted batch.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.config import PlatformConfig
from repro.experiments.engine.spec import JobSpec

#: Fewest members worth promoting into an ensemble.  A single-member
#: "ensemble" would run the vectorized engine for no batching win, so
#: lone cells stay on the scalar path by default.
MIN_GROUP = 2


def ensemble_eligible(spec: JobSpec) -> bool:
    """Whether the vectorized ensemble engine can execute ``spec``.

    Mirrors the hard preconditions of
    :class:`~repro.experiments.engine.spec.EnsembleJobSpec` and
    :class:`~repro.ensemble.engine.EnsembleSimulation`; anything
    ineligible must run on the scalar path.
    """
    if spec.kind != "workload":
        return False
    if spec.supervisor is not None and spec.supervisor.enabled:
        return False
    platform = spec.platform if spec.platform is not None else PlatformConfig()
    if platform.sensor.ema_tau_s > 0.0:
        return False
    return True


@dataclass(frozen=True)
class GridPlan:
    """A deterministic partition of one batch of job specs.

    ``groups`` holds tuples of batch indices destined for one
    :class:`EnsembleJobSpec` each; ``scalar`` holds the indices left on
    the scalar execution path.  Together they cover every submitted
    index exactly once.
    """

    groups: Tuple[Tuple[int, ...], ...] = ()
    scalar: Tuple[int, ...] = ()

    @property
    def batched_members(self) -> int:
        """Members routed through the ensemble engine."""
        return sum(len(group) for group in self.groups)

    def indices(self) -> List[int]:
        """Every planned index, sorted (for coverage checks)."""
        flat = [index for group in self.groups for index in group]
        flat.extend(self.scalar)
        return sorted(flat)


def plan_grid(specs: Sequence[JobSpec], min_group: int = MIN_GROUP) -> GridPlan:
    """Partition a batch into ensemble groups plus scalar leftovers.

    Parameters
    ----------
    specs:
        The batch, in submission order.  Callers pass the *pending*
        (cache-missed, deduplicated) specs, so planning never changes
        what the cache already resolved.
    min_group:
        Smallest member count worth batching; eligible platforms with
        fewer cells fall back to the scalar path.
    """
    if min_group < 1:
        raise ValueError(f"min_group must be >= 1, got {min_group}")
    by_platform: Dict[Optional[PlatformConfig], List[int]] = {}
    order: List[Optional[PlatformConfig]] = []
    scalar: List[int] = []
    for index, spec in enumerate(specs):
        if not ensemble_eligible(spec):
            scalar.append(index)
            continue
        key = spec.platform
        if key not in by_platform:
            by_platform[key] = []
            order.append(key)
        by_platform[key].append(index)
    groups: List[Tuple[int, ...]] = []
    for key in order:
        members = by_platform[key]
        if len(members) >= min_group:
            groups.append(tuple(members))
        else:
            scalar.extend(members)
    scalar.sort()
    return GridPlan(groups=tuple(groups), scalar=tuple(scalar))


def varying_fields(specs: Sequence[JobSpec]) -> FrozenSet[str]:
    """Names of :class:`JobSpec` fields that differ across ``specs``.

    The experiments declare their ensemble-able axes as
    ``ENSEMBLE_AXES`` constants; the planner property tests assert that
    every planned group varies only along declared axes.
    """
    if not specs:
        return frozenset()
    first = specs[0]
    varying = set()
    for spec_field in dataclasses.fields(JobSpec):
        reference = getattr(first, spec_field.name)
        if any(
            getattr(spec, spec_field.name) != reference for spec in specs[1:]
        ):
            varying.add(spec_field.name)
    return frozenset(varying)
