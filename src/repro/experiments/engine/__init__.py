"""Parallel, content-addressed experiment engine.

Every paper artefact is a grid of independent, deterministic,
seeded simulations.  This package turns each grid cell into a hashable
:class:`JobSpec`, fans batches of specs out across worker processes
with deterministic result ordering (:class:`ExperimentEngine`), and
memoises completed runs in a content-addressed on-disk cache
(:class:`ResultCache`) keyed by a stable hash of the spec, the package
version and the behavior-closure digest — see DESIGN.md, "Job hashing
and the result cache".

Layout:

* :mod:`~repro.experiments.engine.spec` — job descriptions + hashing;
* :mod:`~repro.experiments.engine.cache` — the on-disk result store and
  the artifact-routing policy for reduced-scale sweeps;
* :mod:`~repro.experiments.engine.worker` — the per-process job entry;
* :mod:`~repro.experiments.engine.scheduler` — batch execution;
* :mod:`~repro.experiments.engine.planner` — the ensemble grid planner
  batching scalar sweep cells into vectorized ensemble groups;
* :mod:`~repro.experiments.engine.sweep` — ``repro all`` (imported
  lazily by the CLI; not re-exported here to keep experiment modules
  importable from this package without a cycle).
"""

from repro.experiments.engine.cache import (
    CACHE_DIR_ENV,
    CacheStats,
    ResultCache,
    artifact_dir,
    default_cache_root,
)
from repro.experiments.engine.planner import (
    GridPlan,
    ensemble_eligible,
    plan_grid,
    varying_fields,
)
from repro.experiments.engine.scheduler import (
    EngineStats,
    ExperimentEngine,
    default_engine,
)
from repro.experiments.engine.spec import (
    CLOSURE_DIGEST_ENV,
    CLOSURE_ROOT_ENV,
    EnsembleJobSpec,
    JobSpec,
    behavior_digest,
    canonical_json,
    canonicalise,
    ensemble_job,
    job_key,
    scenario_job,
    workload_job,
)
from repro.experiments.engine.worker import execute_job

__all__ = [
    "CACHE_DIR_ENV",
    "CLOSURE_DIGEST_ENV",
    "CLOSURE_ROOT_ENV",
    "CacheStats",
    "EngineStats",
    "EnsembleJobSpec",
    "ExperimentEngine",
    "GridPlan",
    "JobSpec",
    "ResultCache",
    "artifact_dir",
    "behavior_digest",
    "canonical_json",
    "canonicalise",
    "default_cache_root",
    "default_engine",
    "ensemble_eligible",
    "ensemble_job",
    "execute_job",
    "job_key",
    "plan_grid",
    "scenario_job",
    "varying_fields",
    "workload_job",
]
