"""Figure 9: power and energy comparison.

Average dynamic power and total dynamic energy of the three Table 2
applications under the same six policies as Table 3 (the simulator's
energy meter plays the role of ``likwid-powermeter``).  The static
(leakage) energy is also reported: by lowering average temperature the
proposed approach reduces leakage, the 11-15% saving quoted at the end
of Section 6.5.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.tables import format_table
from repro.experiments.engine import ExperimentEngine, default_engine, workload_job
from repro.experiments.runner import RunSummary
from repro.experiments.table3_exec_time import TABLE3_APPS, TABLE3_POLICIES


@dataclass
class Fig9Row:
    """Power/energy of one application across policies."""

    app: str
    dataset: str
    summaries: Dict[str, RunSummary]

    def dynamic_power_w(self, policy: str) -> float:
        """Average dynamic power in watts."""
        return self.summaries[policy].average_dynamic_power_w

    def dynamic_energy_j(self, policy: str) -> float:
        """Total dynamic energy in joules."""
        return self.summaries[policy].dynamic_energy_j

    def static_energy_j(self, policy: str) -> float:
        """Total leakage energy in joules."""
        return self.summaries[policy].static_energy_j


@dataclass
class Fig9Result:
    """Both panels of the figure."""

    rows: List[Fig9Row] = field(default_factory=list)

    def saving(self, metric: str, policy: str, over: str) -> float:
        """Mean fractional saving of ``policy`` relative to ``over``."""
        ratios = []
        for row in self.rows:
            reference = getattr(row, metric)(over)
            ratios.append(1.0 - getattr(row, metric)(policy) / reference)
        return sum(ratios) / len(ratios)

    def format_table(self) -> str:
        """Render both panels."""
        headers = ["app", "metric"] + list(TABLE3_POLICIES)
        rows = []
        for r in self.rows:
            rows.append(
                [r.app, "Pdyn_W"] + [r.dynamic_power_w(p) for p in TABLE3_POLICIES]
            )
            rows.append(
                [r.app, "Edyn_kJ"]
                + [r.dynamic_energy_j(p) / 1e3 for p in TABLE3_POLICIES]
            )
            rows.append(
                [r.app, "Estat_kJ"]
                + [r.static_energy_j(p) / 1e3 for p in TABLE3_POLICIES]
            )
        return format_table(
            headers,
            rows,
            title="Figure 9 — average dynamic power and energy per policy",
            float_format="{:.1f}",
        )


def run_fig9(
    iteration_scale: float = 1.0,
    seed: int = 1,
    apps: Tuple[str, ...] = TABLE3_APPS,
    engine: Optional[ExperimentEngine] = None,
) -> Fig9Result:
    """Run the power/energy grid.

    The grid is the same (app, policy, seed) set as Table 3, so with a
    cache-backed engine the whole figure resolves from cache after a
    ``repro all`` has regenerated Table 3.
    """
    engine = default_engine(engine)
    cells = [(app, policy) for app in apps for policy in TABLE3_POLICIES]
    results = engine.run(
        [
            workload_job(app, None, policy, seed=seed, iteration_scale=iteration_scale)
            for app, policy in cells
        ]
    )
    result = Fig9Result()
    for app in apps:
        summaries = {
            policy: summary
            for (cell_app, policy), summary in zip(cells, results)
            if cell_app == app
        }
        dataset = next(iter(summaries.values())).dataset
        result.rows.append(Fig9Row(app, dataset, summaries))
    return result


if __name__ == "__main__":
    print(run_fig9().format_table())
