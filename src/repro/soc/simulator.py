"""Discrete-time simulation engine.

A :class:`Simulation` wires together the chip, the scheduler, a frequency
governor, a sequence of applications (run back-to-back, as in the
inter-application experiments) and optionally a thermal manager — the
learning agent of the paper, a baseline controller, or nothing (plain
Linux behaviour).

Managers interact with the engine exactly the way the paper's run-time
system interacts with Linux:

* observe: :meth:`Simulation.read_sensors` (quantised sensor samples),
  :attr:`Simulation.current_app` performance, :attr:`Simulation.perf`
  counters;
* actuate: :meth:`Simulation.set_governor` (``cpufreq-set``) and
  :meth:`Simulation.set_mapping` (affinity masks);
* pay for it: sampling/decision overhead is charged through
  :meth:`repro.sched.scheduler.Scheduler.stall_all` and the perf
  counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.instrument import Instrumentation

from repro.config import (
    FaultConfig,
    PlatformConfig,
    ReliabilityConfig,
    SupervisorConfig,
)
from repro.faults.injector import OUTCOME_FAIL, OUTCOME_OK, FaultInjector
from repro.faults.supervisor import ActuationSupervisor, SensorSupervisor
from repro.perf.timer import SectionTimer
from repro.power.energy import EnergyMeter
from repro.sched.affinity import AffinityMapping
from repro.sched.governors import Governor, UserspaceGovernor, make_governor
from repro.sched.perf import PerfCounters
from repro.sched.scheduler import Scheduler
from repro.soc.chip import Chip
from repro.thermal.profile import ThermalProfile
from repro.thermal.sensors import SensorBank
from repro.workloads.application import Application

#: CPU time stolen from every core by one sensor-sampling event.
SAMPLE_OVERHEAD_S = 0.005
#: CPU time stolen from every core by one learning-decision event.
DECISION_OVERHEAD_S = 0.025

#: Governor names ``Simulation.set_governor`` accepts (cpufreq's menu).
KNOWN_GOVERNORS = (
    "ondemand",
    "conservative",
    "performance",
    "powersave",
    "userspace",
)


def _mapping_masks(mapping: Optional[AffinityMapping]) -> Optional[list]:
    """JSON-ready rendering of a mapping for mapping_change events."""
    if mapping is None:
        return None
    return [
        sorted(mask) if mask is not None else None for mask in mapping.masks
    ]


class ThermalManagerBase:
    """Interface every thermal-management controller implements."""

    def attach(self, sim: "Simulation") -> None:
        """Called once before the run starts."""

    def on_tick(self, sim: "Simulation") -> None:
        """Called after every simulation tick."""

    def on_app_switch(self, sim: "Simulation", app: Application) -> None:
        """Explicit application-switch signal.

        Only controllers that rely on application-layer notification
        (the *modified* Ge & Qiu baseline of Section 6.2) act on this;
        the proposed approach must detect switches autonomously.
        """

    def stats(self) -> Dict[str, float]:
        """Controller-specific statistics for the experiment record."""
        return {}


@dataclass
class AppRecord:
    """Execution record of one application within a run."""

    name: str
    dataset: str
    start_s: float
    end_s: float
    completed_iterations: int
    completed: bool
    #: Chip dynamic energy consumed while this application ran (J).
    dynamic_energy_j: float = 0.0
    #: Chip static (leakage) energy consumed while it ran (J).
    static_energy_j: float = 0.0

    @property
    def execution_time_s(self) -> float:
        """Wall-clock execution time of the application."""
        return self.end_s - self.start_s

    @property
    def throughput(self) -> float:
        """Average iterations (frames) per second."""
        if self.execution_time_s <= 0.0:
            return 0.0
        return self.completed_iterations / self.execution_time_s


@dataclass
class SimulationResult:
    """Everything an experiment needs from one run."""

    profile: ThermalProfile
    energy: EnergyMeter
    perf: PerfCounters
    app_records: List[AppRecord]
    total_time_s: float
    completed: bool
    manager_stats: Dict[str, float] = field(default_factory=dict)
    #: Injected-fault counters (empty when no fault model was active).
    fault_stats: Dict[str, float] = field(default_factory=dict)
    #: Supervisor counters (empty when the loop ran unsupervised).
    supervisor_stats: Dict[str, float] = field(default_factory=dict)

    def reliability(self, config: ReliabilityConfig) -> Dict[str, float]:
        """Worst-core reliability summary of the whole run."""
        return self.profile.worst_case_report(config)

    @property
    def execution_time_s(self) -> float:
        """Total execution time across all applications."""
        return self.total_time_s


class Simulation:
    """One end-to-end run of applications on the simulated platform.

    Parameters
    ----------
    applications:
        Applications executed back-to-back (one for intra-application
        experiments, several for the Figure 3 scenarios).
    platform:
        Platform configuration.
    governor:
        Initial cpufreq governor name.
    userspace_frequency_hz:
        Frequency for the ``userspace`` governor.
    mapping:
        Initial affinity mapping (None = OS default).
    manager:
        Optional thermal-management controller.
    seed:
        Base seed for sensor noise (manager and evaluation sensors get
        distinct derived seeds).
    eval_sample_period_s:
        Sampling period of the evaluation thermal profile — the common
        measuring stick all policies are judged with (1 s by default).
    max_time_s:
        Safety limit; a run that hits it is marked incomplete.
    warm_start:
        Start from the idle steady state instead of ambient.
    faults:
        Optional fault model (see :mod:`repro.faults`).  ``None`` — or a
        config with ``enabled=False`` — means no injector is built and
        the run is bit-identical to one on the fault-free engine.
    supervisor:
        Optional graceful-degradation layer.  When enabled, manager
        sensor readings are sanitised before they are returned and
        governor/mapping requests are verified, retried and backed by a
        thermal-emergency safe state.
    instrumentation:
        Optional observation-only :class:`repro.obs.Instrumentation`
        (metrics registry and/or structured trace emitter).  Attaching
        it never changes the run's trajectory: it only reads values the
        engine already computed and draws no randomness.
    """

    def __init__(
        self,
        applications: Sequence[Application],
        platform: Optional[PlatformConfig] = None,
        governor: str = "ondemand",
        userspace_frequency_hz: Optional[float] = None,
        mapping: Optional[AffinityMapping] = None,
        manager: Optional[ThermalManagerBase] = None,
        seed: int = 0,
        eval_sample_period_s: float = 1.0,
        max_time_s: Optional[float] = None,
        warm_start: bool = True,
        faults: Optional[FaultConfig] = None,
        supervisor: Optional[SupervisorConfig] = None,
        instrumentation: "Optional[Instrumentation]" = None,
    ) -> None:
        if not applications:
            raise ValueError("need at least one application")
        self.platform = platform if platform is not None else PlatformConfig()
        self.applications = list(applications)
        self.chip = Chip(self.platform, seed=seed)
        self.perf = PerfCounters()
        self.scheduler = Scheduler(self.platform.num_cores, perf=self.perf)
        self._governor: Governor = make_governor(
            governor,
            self.chip.ladder,
            self.platform.num_cores,
            userspace_frequency_hz,
        )
        self._mapping = mapping
        self.manager = manager
        self._manager_sensors = SensorBank(
            self.platform.num_cores, self.platform.sensor, seed=seed + 101
        )
        self._eval_sensors = SensorBank(
            self.platform.num_cores,
            self.platform.sensor,
            seed=seed + 202,
            sample_period_s=eval_sample_period_s,
        )
        self.eval_sample_period_s = eval_sample_period_s
        self.max_time_s = max_time_s
        self._seed = seed
        self._dt = self.platform.dt  # PlatformConfig is frozen
        self.now = 0.0
        self._app_index = -1
        self._app_start_s = 0.0
        self._app_energy_snapshot = self.chip.energy.snapshot()
        self._records: List[AppRecord] = []
        self._profile = ThermalProfile(self.platform.num_cores, eval_sample_period_s)
        self._next_eval_s = eval_sample_period_s
        self._app_switched_flag = False
        self.faults = faults
        self.supervisor = supervisor
        self._fault_injector: Optional[FaultInjector] = None
        if faults is not None and faults.enabled:
            self._fault_injector = FaultInjector(
                faults, self.platform.num_cores, seed=seed
            )
        self._timer: Optional[SectionTimer] = None
        # Duck-typed checkpoint hook (repro.checkpoint.Checkpointer);
        # kept untyped so the core simulator never imports the
        # checkpoint layer.
        self._checkpointer = None
        self._resume_armed = False
        self._sensor_supervisor: Optional[SensorSupervisor] = None
        self._actuation_supervisor: Optional[ActuationSupervisor] = None
        self._next_watchdog_s = 0.0
        self._pre_emergency_governor: Optional[Governor] = None
        if supervisor is not None and supervisor.enabled:
            self._sensor_supervisor = SensorSupervisor(
                supervisor, self.platform.sensor, self.platform.num_cores
            )
            self._actuation_supervisor = ActuationSupervisor(
                supervisor, self._sensor_supervisor
            )
            self._next_watchdog_s = supervisor.watchdog_period_s
        self.obs: "Optional[Instrumentation]" = None
        if instrumentation is not None:
            self.attach_instrumentation(instrumentation)
        if warm_start:
            self.chip.warm_start_idle()

    # ------------------------------------------------------------------
    # Manager-facing API
    # ------------------------------------------------------------------

    @property
    def current_app(self) -> Application:
        """The application currently executing."""
        index = self._app_index
        return self.applications[index if index > 0 else 0]

    @property
    def governor(self) -> Governor:
        """The active frequency governor."""
        return self._governor

    @property
    def mapping(self) -> Optional[AffinityMapping]:
        """The active affinity mapping."""
        return self._mapping

    def read_sensors(self) -> np.ndarray:
        """Sample the on-board sensors (the manager's observation).

        With a fault model active the clean sensor reading is perturbed
        (offsets, drift, stuck-at, spikes, NaN dropouts); with the
        supervisor active the — possibly faulted — reading is sanitised
        before any controller sees it.
        """
        self.perf.record_sample_event()
        self.scheduler.stall_all(SAMPLE_OVERHEAD_S)
        readings = self._manager_sensors.read(self.chip.core_temps_c())
        if self._fault_injector is not None:
            readings = self._fault_injector.perturb_sensors(self.now, readings)
        if self._sensor_supervisor is not None:
            readings = self._sensor_supervisor.filter(self.now, readings)
        return readings

    def set_governor(
        self, name: str, userspace_frequency_hz: Optional[float] = None
    ) -> None:
        """Switch the cpufreq governor (``cpufreq-set -g``).

        Raises
        ------
        ValueError
            For an unknown governor name, or ``userspace`` without a
            frequency.  Argument validation happens before the fault
            model: an invalid request is a caller bug, not a transient
            platform failure.
        """
        if name not in KNOWN_GOVERNORS:
            raise ValueError(
                f"unknown governor {name!r}; expected one of {KNOWN_GOVERNORS}"
            )
        if name == "userspace" and userspace_frequency_hz is None:
            raise ValueError("userspace governor needs an explicit frequency")
        if self._actuation_supervisor is not None:
            self._actuation_supervisor.request_governor(
                self, name, userspace_frequency_hz
            )
            return
        self._actuate_governor(name, userspace_frequency_hz)

    def set_mapping(self, mapping: Optional[AffinityMapping]) -> None:
        """Apply affinity masks (``pthread_setaffinity_np``).

        Raises
        ------
        ValueError
            If the mapping references cores outside the platform.
        """
        if mapping is not None:
            mapping.validate(self.platform.num_cores)
        if self._actuation_supervisor is not None:
            self._actuation_supervisor.request_mapping(self, mapping)
            return
        self._actuate_mapping(mapping)

    # ------------------------------------------------------------------
    # Actuation internals (fault-model aware)
    # ------------------------------------------------------------------

    def _actuate_governor(
        self, name: str, userspace_frequency_hz: Optional[float]
    ) -> bool:
        """Perform one governor transition through the faultable path.

        Returns False when the platform *reports* the transition failed
        (the analogue of a non-zero ``cpufreq-set`` exit status).  A
        silent no-op returns True without changing anything — only
        reading the state back (:meth:`governor_in_force`) can catch it.
        """
        if self._fault_injector is not None:
            outcome = self._fault_injector.governor_outcome()
            if outcome != OUTCOME_OK:
                if self.obs is not None:
                    self.obs.emit(
                        "governor_change",
                        self.now,
                        governor=name,
                        frequency_hz=userspace_frequency_hz,
                        outcome=outcome,
                    )
                    self.obs.emit(
                        "fault", self.now, path="governor", kind=outcome, count=1
                    )
                return outcome != OUTCOME_FAIL
        current = self._governor
        self._governor = make_governor(
            name, self.chip.ladder, self.platform.num_cores, userspace_frequency_hz
        )
        # Adaptive governors inherit the running frequencies, so a
        # governor switch does not teleport the clock.
        if self._governor.adaptive:
            self._governor.inherit_frequencies(current.frequencies())
        if self.obs is not None:
            self.obs.emit(
                "governor_change",
                self.now,
                governor=name,
                frequency_hz=userspace_frequency_hz,
                outcome=OUTCOME_OK,
            )
        return True

    def _actuate_mapping(self, mapping: Optional[AffinityMapping]) -> bool:
        """Perform one affinity change through the faultable path."""
        if self._fault_injector is not None:
            outcome = self._fault_injector.mapping_outcome()
            if outcome != OUTCOME_OK:
                if self.obs is not None:
                    self.obs.emit(
                        "mapping_change",
                        self.now,
                        mapping=_mapping_masks(mapping),
                        outcome=outcome,
                    )
                    self.obs.emit(
                        "fault", self.now, path="mapping", kind=outcome, count=1
                    )
                return outcome != OUTCOME_FAIL
        self._mapping = mapping
        self.scheduler.set_mapping(mapping)
        if self.obs is not None:
            self.obs.emit(
                "mapping_change",
                self.now,
                mapping=_mapping_masks(mapping),
                outcome=OUTCOME_OK,
            )
        return True

    def governor_in_force(
        self, name: str, userspace_frequency_hz: Optional[float] = None
    ) -> bool:
        """Whether the active governor matches a requested transition."""
        governor = self._governor
        if name == "userspace":
            if not isinstance(governor, UserspaceGovernor):
                return False
            if userspace_frequency_hz is None:
                return True
            target = self.chip.ladder.nearest(userspace_frequency_hz).frequency_hz
            return abs(governor.target_frequency_hz - target) < 1.0
        return governor.name == name

    def mapping_in_force(self, mapping: Optional[AffinityMapping]) -> bool:
        """Whether the active mapping equals the requested one.

        Compared by value (mask equality), so a retry with an
        equal-but-distinct :class:`AffinityMapping` object verifies
        correctly.
        """
        if mapping is None or self._mapping is None:
            return self._mapping is mapping
        return self._mapping == mapping

    def _engage_thermal_emergency(self) -> None:
        """Clamp the chip to the minimum operating point.

        Models hardware thermal protection (PROCHOT): the clamp acts
        below the software cpufreq path, so it is immune to the
        injected actuation faults.
        """
        if self._pre_emergency_governor is None:
            self._pre_emergency_governor = self._governor
        self._governor = make_governor(
            "powersave", self.chip.ladder, self.platform.num_cores
        )

    def _release_thermal_emergency(self) -> None:
        """Lift the clamp and restore the pre-emergency governor."""
        if self._pre_emergency_governor is not None:
            self._governor = self._pre_emergency_governor
            self._pre_emergency_governor = None

    def charge_decision_overhead(self) -> None:
        """Charge one learning-decision event's CPU cost."""
        self.perf.record_decision_event()
        self.scheduler.stall_all(DECISION_OVERHEAD_S)

    # ------------------------------------------------------------------
    # Engine
    # ------------------------------------------------------------------

    def _start_next_app(self) -> bool:
        """Advance to the next application; False when all are done."""
        self._app_index += 1
        if self._app_index >= len(self.applications):
            return False
        app = self.applications[self._app_index]
        self.scheduler.set_threads(app.threads, mapping=self._mapping)
        self._app_start_s = self.now
        self._app_energy_snapshot = self.chip.energy.snapshot()
        self._app_switched_flag = True
        if self.obs is not None:
            self.obs.emit(
                "app_switch",
                self.now,
                index=self._app_index,
                app=app.spec.name,
                dataset=app.spec.dataset,
            )
        if self.manager is not None and self._app_index > 0:
            self.manager.on_app_switch(self, app)
        return True

    def _finish_app(self, app: Application, completed: bool) -> None:
        consumed = self.chip.energy.since(self._app_energy_snapshot)
        self._records.append(
            AppRecord(
                name=app.spec.name,
                dataset=app.spec.dataset,
                start_s=self._app_start_s,
                end_s=self.now,
                completed_iterations=app.completed_iterations,
                completed=completed,
                dynamic_energy_j=consumed.dynamic_j,
                static_energy_j=consumed.static_j,
            )
        )

    def attach_instrumentation(self, obs: "Optional[Instrumentation]") -> None:
        """Attach (or detach, with None) the observability layer.

        Propagates the hook to the fault injector and the supervisors
        so their events carry through the same trace/metrics sinks.
        The hook is observation-only; with none attached each call
        site pays one ``is not None`` check.
        """
        self.obs = obs
        if self._fault_injector is not None:
            self._fault_injector.obs = obs
        if self._sensor_supervisor is not None:
            self._sensor_supervisor.obs = obs

    def attach_timer(self, timer: Optional[SectionTimer]) -> None:
        """Attach (or detach, with None) per-phase tick-loop accounting.

        The timer splits each tick into schedule/app/governor (here),
        power/thermal (inside :meth:`Chip.step`) and sensors/manager
        sections.  With no timer attached the loop pays one ``is not
        None`` check per phase.
        """
        self._timer = timer
        self.chip.attach_timer(timer)

    def attach_checkpointer(self, checkpointer) -> None:
        """Attach (or detach, with None) a tick-boundary checkpointer.

        The hook's ``maybe_checkpoint(self)`` is called at the bottom of
        every run-loop iteration.  Checkpointing is observation-only: it
        draws no randomness and mutates nothing, so a checkpointed run
        is bit-identical to a checkpoint-free one.
        """
        self._checkpointer = checkpointer

    @property
    def tick_index(self) -> int:
        """Completed ticks since the start of the run."""
        return int(round(self.now / self._dt))

    def step(self) -> None:
        """Advance the whole system by one tick."""
        timer = self._timer
        dt = self._dt
        app = self.current_app
        if timer is not None:
            mark = timer.now()
        frequencies = self._governor.frequencies()
        loads = self.scheduler.tick(frequencies, dt)
        if timer is not None:
            mark = timer.lap("schedule", mark)
        app.tick(dt)
        if timer is not None:
            mark = timer.lap("app", mark)
        self._governor.update([load.utilisation for load in loads])
        if timer is not None:
            mark = timer.lap("governor", mark)
        # The chip accounts its own power/thermal split with this timer.
        self.chip.step([load.activity for load in loads], frequencies, dt)
        self.now += dt

        if timer is not None:
            mark = timer.now()
        if self.now + 1e-9 >= self._next_eval_s:
            reading = self._eval_sensors.read(self.chip.core_temps_c())
            self._profile.append(reading)
            self._next_eval_s += self.eval_sample_period_s
            if self.obs is not None:
                self.obs.emit(
                    "tick", self.now, temps_c=[float(t) for t in reading]
                )
        if timer is not None:
            mark = timer.lap("sensors", mark)

        if self.manager is not None:
            self.manager.on_tick(self)

        if self._actuation_supervisor is not None:
            self._supervise_tick()
        if timer is not None:
            timer.lap("manager", mark)
            timer.count_tick()

    def _supervise_tick(self) -> None:
        """One supervision round: watchdog sampling, retries, emergency.

        The watchdog samples through :meth:`read_sensors` — paying the
        same overhead a controller pays — so the thermal-emergency
        monitor stays alive even under controllers that never read the
        sensors themselves (the static policies).
        """
        if self.now + 1e-9 >= self._next_watchdog_s:
            self._next_watchdog_s += self.supervisor.watchdog_period_s
            self.read_sensors()
        self._actuation_supervisor.on_tick(self)

    def prepare(self) -> None:
        """Arm the engine for manual stepping.

        Everything :meth:`run` does before its tick loop: reset the
        reading-path filter state, attach the manager and start the
        first application.  Callers that drive :meth:`step` themselves
        (the benchmark harness, tests) call this once first.
        """
        # A reused engine (or sensor bank) must not leak filter state
        # from a previous run into this one.
        self._manager_sensors.reset()
        self._eval_sensors.reset()
        if self._sensor_supervisor is not None:
            self._sensor_supervisor.reset()
        if self.obs is not None:
            self.obs.emit(
                "run_start",
                self.now,
                num_cores=self.platform.num_cores,
                governor=self._governor.name,
                apps=[app.spec.name for app in self.applications],
                seed=self._seed,
            )
        if self.manager is not None:
            self.manager.attach(self)
        self._start_next_app()

    def run(self) -> SimulationResult:
        """Execute every application to completion and build the result."""
        completed = True
        if self._resume_armed:
            # A restored snapshot already carries a fully prepared
            # engine (restore ran prepare() and overwrote its state);
            # re-preparing would emit a second run_start and restart
            # the first application.
            self._resume_armed = False
        else:
            self.prepare()
        checkpointer = self._checkpointer
        while True:
            app = self.current_app
            self.step()
            if app.done:
                self._finish_app(app, completed=True)
                if not self._start_next_app():
                    break
            elif self.max_time_s is not None and self.now >= self.max_time_s:
                self._finish_app(app, completed=False)
                completed = False
                break
            if checkpointer is not None:
                checkpointer.maybe_checkpoint(self)
        supervisor_stats: Dict[str, float] = {}
        if self._sensor_supervisor is not None:
            supervisor_stats.update(self._sensor_supervisor.stats())
        if self._actuation_supervisor is not None:
            supervisor_stats.update(self._actuation_supervisor.stats(self.now))
        if self.obs is not None:
            self.obs.emit(
                "run_end",
                self.now,
                total_time_s=self.now,
                completed=completed,
                ticks=int(round(self.now / self._dt)),
            )
        return SimulationResult(
            profile=self._profile,
            energy=self.chip.energy,
            perf=self.perf,
            app_records=self._records,
            total_time_s=self.now,
            completed=completed,
            manager_stats=self.manager.stats() if self.manager is not None else {},
            fault_stats=(
                self._fault_injector.stats.as_dict()
                if self._fault_injector is not None
                else {}
            ),
            supervisor_stats=supervisor_stats,
        )
