"""The simulated quad-core system-on-chip.

* :mod:`repro.soc.chip` — composes the thermal network, sensor bank and
  power model into one steppable chip;
* :mod:`repro.soc.simulator` — the discrete-time engine that wires the
  chip to the scheduler, governor, applications and (optionally) a
  thermal-management controller, and produces the run record every
  experiment consumes.
"""

from repro.soc.chip import Chip
from repro.soc.simulator import (
    AppRecord,
    Simulation,
    SimulationResult,
    ThermalManagerBase,
)

__all__ = ["AppRecord", "Chip", "Simulation", "SimulationResult", "ThermalManagerBase"]
