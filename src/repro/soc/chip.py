"""The chip: thermal network + power model + energy meter.

One :meth:`Chip.step` call advances the die one tick: per-core dynamic
power is evaluated from the scheduler's activity factors, leakage from
the *current* temperatures (capturing the leakage/temperature feedback
loop), the RC network integrates the total heat, and the energy meter
accumulates both channels.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.config import PlatformConfig
from repro.power.dynamic import dynamic_power_w
from repro.power.energy import EnergyMeter
from repro.power.leakage import leakage_power_w
from repro.power.opp import OppLadder
from repro.thermal.floorplan import Floorplan
from repro.thermal.rc_model import RCThermalModel
from repro.thermal.sensors import SensorBank


class Chip:
    """Steppable model of the quad-core die.

    Parameters
    ----------
    config:
        Platform configuration (power, thermal, sensors, OPPs).
    seed:
        Seed for the sensor noise RNG.
    """

    def __init__(self, config: PlatformConfig, seed: int = 0) -> None:
        self.config = config
        self.ladder = OppLadder(config.opp_table)
        self.floorplan = Floorplan(
            num_cores=config.num_cores, adjacency=config.core_adjacency
        )
        self.thermal = RCThermalModel(self.floorplan, config.thermal, config.dt)
        self.sensors = SensorBank(config.num_cores, config.sensor, seed=seed)
        self.energy = EnergyMeter()
        self._last_dynamic: List[float] = [0.0] * config.num_cores
        self._last_static: List[float] = [0.0] * config.num_cores
        self._drift_rng = np.random.default_rng(seed + 7)

    @property
    def num_cores(self) -> int:
        """Number of cores on the die."""
        return self.config.num_cores

    def core_temps_c(self) -> np.ndarray:
        """True (un-sensed) core temperatures."""
        return self.thermal.core_temps_c()

    def read_sensors(self) -> np.ndarray:
        """One quantised+noisy sensor sample per core."""
        return self.sensors.read(self.core_temps_c())

    def step(
        self,
        activities: Sequence[float],
        frequencies_hz: Sequence[float],
        dt: float,
    ) -> np.ndarray:
        """Advance the die one tick.

        Parameters
        ----------
        activities:
            Per-core switching-activity factors from the scheduler.
        frequencies_hz:
            Per-core clock frequencies (must be OPP frequencies).
        dt:
            Tick length in seconds.

        Returns
        -------
        numpy.ndarray
            The new true core temperatures.
        """
        if len(activities) != self.num_cores or len(frequencies_hz) != self.num_cores:
            raise ValueError(f"expected {self.num_cores} activities and frequencies")
        thermal_cfg = self.config.thermal
        if thermal_cfg.ambient_drift_sigma_c > 0.0:
            # Ornstein-Uhlenbeck airflow/ambient fluctuation.
            tau = thermal_cfg.ambient_drift_tau_s
            current = self.thermal.ambient_c
            pull = (thermal_cfg.ambient_c - current) * (dt / tau)
            kick = (
                thermal_cfg.ambient_drift_sigma_c
                * np.sqrt(2.0 * dt / tau)
                * self._drift_rng.normal()
            )
            self.thermal.set_ambient_c(current + pull + kick)
        temps = self.core_temps_c()
        dynamic = []
        static = []
        for core in range(self.num_cores):
            voltage = self.ladder.voltage_for(frequencies_hz[core])
            dynamic.append(
                dynamic_power_w(
                    activities[core], voltage, frequencies_hz[core], self.config.power
                )
            )
            static.append(leakage_power_w(temps[core], voltage, self.config.power))
        uncore = (
            self.config.power.idle_package_power
            + self.config.power.uncore_power_per_active_core * sum(activities)
        )
        self.energy.record(dynamic, static, uncore, dt)
        self._last_dynamic = dynamic
        self._last_static = static
        total = [dynamic[c] + static[c] for c in range(self.num_cores)]
        return self.thermal.step(total, spreader_power_w=uncore)

    def last_core_powers_w(self) -> List[float]:
        """Total per-core power of the most recent tick."""
        return [
            self._last_dynamic[c] + self._last_static[c] for c in range(self.num_cores)
        ]

    def warm_start_idle(self) -> None:
        """Jump the die to the steady state of an idle chip.

        Uses the leakage at the lowest operating point as the idle power,
        iterating the leakage/temperature fixed point a few times.
        """
        voltage = self.ladder.min_point.voltage_v
        temps = self.core_temps_c()
        for _ in range(5):
            powers = [
                leakage_power_w(temps[c], voltage, self.config.power)
                for c in range(self.num_cores)
            ]
            self.thermal.warm_start(
                powers, spreader_power_w=self.config.power.idle_package_power
            )
            temps = self.core_temps_c()
