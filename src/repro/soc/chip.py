"""The chip: thermal network + power model + energy meter.

One :meth:`Chip.step` call advances the die one tick: per-core dynamic
power is evaluated from the scheduler's activity factors, leakage from
the *current* temperatures (capturing the leakage/temperature feedback
loop), the RC network integrates the total heat, and the energy meter
accumulates both channels.

``step`` is on the simulation's hot path, so the per-core power math
runs off a precomputed :class:`~repro.power.table.PowerTable` (one dict
lookup per core instead of a ladder scan plus re-validated free-function
calls) and the thermal update goes through the RC model's unchecked
``_step_into`` — both bit-identical to the seed arithmetic.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

import numpy as np

from repro.config import PlatformConfig
from repro.perf.timer import SectionTimer
from repro.power.energy import EnergyMeter
from repro.power.leakage import leakage_power_w
from repro.power.opp import OppLadder
from repro.power.table import PowerTable
from repro.thermal.floorplan import Floorplan
from repro.thermal.rc_model import RCThermalModel
from repro.thermal.sensors import SensorBank


class Chip:
    """Steppable model of the quad-core die.

    Parameters
    ----------
    config:
        Platform configuration (power, thermal, sensors, OPPs).
    seed:
        Seed for the sensor noise RNG.
    """

    def __init__(self, config: PlatformConfig, seed: int = 0) -> None:
        self.config = config
        self.ladder = OppLadder(config.opp_table)
        self.power_table = PowerTable(self.ladder, config.power)
        self.floorplan = Floorplan(
            num_cores=config.num_cores, adjacency=config.core_adjacency
        )
        self.thermal = RCThermalModel(self.floorplan, config.thermal, config.dt)
        self.sensors = SensorBank(config.num_cores, config.sensor, seed=seed)
        self.energy = EnergyMeter()
        self._last_dynamic: List[float] = [0.0] * config.num_cores
        self._last_static: List[float] = [0.0] * config.num_cores
        self._drift_rng = np.random.default_rng(seed + 7)
        # Ornstein-Uhlenbeck drift constants, cached per tick length
        # (recomputed only when a caller changes dt between steps).
        self._drift_enabled = config.thermal.ambient_drift_sigma_c > 0.0
        self._drift_dt: Optional[float] = None
        self._drift_pull_gain = 0.0
        self._drift_kick_scale = 0.0
        # Uncore-power constants (PowerConfig is frozen).
        self._idle_package_power_w = config.power.idle_package_power
        self._uncore_per_active_w = config.power.uncore_power_per_active_core
        self._timer: Optional[SectionTimer] = None

    def attach_timer(self, timer: Optional[SectionTimer]) -> None:
        """Attach (or detach, with None) a per-phase section timer."""
        self._timer = timer

    @property
    def num_cores(self) -> int:
        """Number of cores on the die."""
        return self.config.num_cores

    def core_temps_c(self) -> np.ndarray:
        """True (un-sensed) core temperatures."""
        return self.thermal.core_temps_c()

    def read_sensors(self) -> np.ndarray:
        """One quantised+noisy sensor sample per core."""
        return self.sensors.read(self.core_temps_c())

    def step(
        self,
        activities: Sequence[float],
        frequencies_hz: Sequence[float],
        dt: float,
    ) -> np.ndarray:
        """Advance the die one tick.

        Parameters
        ----------
        activities:
            Per-core switching-activity factors from the scheduler.
        frequencies_hz:
            Per-core clock frequencies (must be OPP frequencies).
        dt:
            Tick length in seconds.

        Returns
        -------
        numpy.ndarray
            The new true core temperatures.
        """
        num_cores = self.config.num_cores
        if len(activities) != num_cores or len(frequencies_hz) != num_cores:
            raise ValueError(f"expected {num_cores} activities and frequencies")
        if self._drift_enabled:
            # Ornstein-Uhlenbeck airflow/ambient fluctuation.
            if dt != self._drift_dt:
                thermal_cfg = self.config.thermal
                tau = thermal_cfg.ambient_drift_tau_s
                self._drift_pull_gain = dt / tau
                self._drift_kick_scale = thermal_cfg.ambient_drift_sigma_c * np.sqrt(
                    2.0 * dt / tau
                )
                self._drift_dt = dt
            thermal = self.thermal
            current = thermal.ambient_c
            pull = (self.config.thermal.ambient_c - current) * self._drift_pull_gain
            kick = self._drift_kick_scale * self._drift_rng.normal()
            thermal.set_ambient_c(current + pull + kick)
        timer = self._timer
        if timer is not None:
            mark = timer.now()
        table = self.power_table
        by_frequency = table._by_frequency
        c_eff = table.c_eff
        t_leak = table.t_leak
        # Plain-float temperatures: one C-level conversion instead of a
        # boxed numpy scalar per core (same IEEE doubles either way).
        temps = self.thermal._temps.tolist()
        dynamic: List[float] = []
        static: List[float] = []
        for core in range(num_cores):
            frequency = frequencies_hz[core]
            entry = by_frequency.get(frequency)
            if entry is None:
                entry = table.entry_for_hz(frequency)
            activity = activities[core]
            if not 0.0 <= activity <= 1.0:
                raise ValueError(f"activity {activity} outside [0, 1]")
            voltage = entry.voltage_v
            dynamic.append(activity * c_eff * voltage * voltage * frequency)
            static.append(entry.leakage_scale_w * math.exp(t_leak * temps[core]))
        uncore = (
            self._idle_package_power_w
            + self._uncore_per_active_w * sum(activities)
        )
        self.energy.record(dynamic, static, uncore, dt)
        self._last_dynamic = dynamic
        self._last_static = static
        total = [d + s for d, s in zip(dynamic, static)]
        if timer is not None:
            mark = timer.lap("power", mark)
        self.thermal._step_into(total, uncore)
        if timer is not None:
            timer.lap("thermal", mark)
        return self.thermal.core_temps_c()

    def last_core_powers_w(self) -> List[float]:
        """Total per-core power of the most recent tick."""
        return [
            self._last_dynamic[c] + self._last_static[c] for c in range(self.num_cores)
        ]

    def warm_start_idle(self) -> None:
        """Jump the die to the steady state of an idle chip.

        Uses the leakage at the lowest operating point as the idle power,
        iterating the leakage/temperature fixed point a few times.
        """
        voltage = self.ladder.min_point.voltage_v
        temps = self.core_temps_c()
        for _ in range(5):
            powers = [
                leakage_power_w(temps[c], voltage, self.config.power)
                for c in range(self.num_cores)
            ]
            self.thermal.warm_start(
                powers, spreader_power_w=self.config.power.idle_package_power
            )
            temps = self.core_temps_c()
