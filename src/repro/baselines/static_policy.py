"""Static (non-adaptive) policies: a fixed mapping and/or governor.

Covers the ``userspace 2.4 GHz`` / ``3.4 GHz`` columns of Table 3 and the
fixed-assignment arm of the motivational experiment (Figure 1).  A
static policy is applied once at attach time and never changes, so any
difference from the Linux baseline is attributable to the chosen
operating point / placement alone.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.sched.affinity import AffinityMapping
from repro.soc.simulator import Simulation, ThermalManagerBase


class StaticPolicyManager(ThermalManagerBase):
    """Apply a fixed governor and/or affinity mapping at startup.

    Parameters
    ----------
    governor:
        cpufreq governor name, or None to keep the simulation's initial
        governor.
    userspace_frequency_hz:
        Frequency for the ``userspace`` governor.
    mapping:
        Affinity mapping to pin, or None for the OS default.
    """

    def __init__(
        self,
        governor: Optional[str] = None,
        userspace_frequency_hz: Optional[float] = None,
        mapping: Optional[AffinityMapping] = None,
    ) -> None:
        self.governor = governor
        self.userspace_frequency_hz = userspace_frequency_hz
        self.mapping = mapping
        self._applied = False

    def attach(self, sim: Simulation) -> None:
        """Enforce the policy once at the start of the run."""
        if self.governor is not None:
            sim.set_governor(self.governor, self.userspace_frequency_hz)
        sim.set_mapping(self.mapping)
        self._applied = True

    def on_app_switch(self, sim: Simulation, app) -> None:
        """Re-pin the mapping for the new application's threads."""
        sim.set_mapping(self.mapping)

    def stats(self) -> Dict[str, float]:
        """Static policies expose only whether they were applied."""
        return {"applied": 1.0 if self._applied else 0.0}
