"""Ge & Qiu (DAC 2011) Q-learning DVFS manager — the paper's ref. [7].

Re-implemented from that paper's published description, with the exact
limitations the proposed approach is designed to remove:

* the state is the **instantaneous temperature** from the most recent
  sensor sample — not stress/aging measured over an epoch — so thermal
  cycling is invisible to it;
* the decision interval **equals** the sampling interval (no decoupling);
* actions are **frequency levels only** — it never touches thread
  affinity, leaving placement to Linux;
* the reward trades instantaneous temperature against performance.

The *modified* variant of Section 6.2 additionally resets its Q-table
when the application layer explicitly signals a switch
(``react_to_app_switch=True``); the base variant keeps learning across
switches, which is what degrades it in the inter-application scenarios.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.config import GeQiuConfig
from repro.core.qtable import QTable
from repro.soc.simulator import Simulation, ThermalManagerBase
from repro.workloads.application import Application


class GeQiuThermalManager(ThermalManagerBase):
    """Temperature-state, frequency-action Q-learning controller.

    Parameters
    ----------
    config:
        Baseline hyper-parameters.
    react_to_app_switch:
        True for the "modified" variant of Section 6.2 that re-learns on
        an explicit application-switch signal.
    """

    def __init__(
        self, config: Optional[GeQiuConfig] = None, react_to_app_switch: bool = False
    ) -> None:
        self.config = config if config is not None else GeQiuConfig()
        self.react_to_app_switch = react_to_app_switch
        self._rng = np.random.default_rng(self.config.seed)
        self._qtable: Optional[QTable] = None
        self._frequencies: list = []
        self._next_sample_s = self.config.interval_s
        self._prev_state: Optional[int] = None
        self._prev_action: Optional[int] = None
        self._steps = 0
        self._switch_resets = 0
        self._last_temp_c = self.config.temp_range_c[0]

    # ------------------------------------------------------------------
    # State helpers
    # ------------------------------------------------------------------

    def _hottest_core_c(self, temps_c: np.ndarray) -> float:
        """Finite hottest-core reading, NaN-tolerant.

        On an unsupervised faulty platform readings can be NaN; the
        controller then falls back to the hottest *valid* sensor, and —
        if every sensor dropped out — to the last temperature it saw,
        so its state/reward math stays well-defined.
        """
        finite = temps_c[np.isfinite(temps_c)]
        if finite.size:
            self._last_temp_c = float(np.max(finite))
        return self._last_temp_c

    def _temperature_state(self, temps_c: np.ndarray) -> int:
        """Bin of the hottest core's instantaneous temperature."""
        return self._bin_of(self._hottest_core_c(np.asarray(temps_c, dtype=float)))

    def _bin_of(self, temp_c: float) -> int:
        """Bin index of one (finite) temperature."""
        low, high = self.config.temp_range_c
        norm = (temp_c - low) / (high - low)
        norm = min(1.0, max(0.0, norm))
        return min(self.config.num_temp_bins - 1, int(norm * self.config.num_temp_bins))

    def _alpha(self) -> float:
        """Exponentially decaying learning rate."""
        return float(np.exp(-self._steps / self.config.alpha_decay_epochs))

    def _epsilon(self) -> float:
        """Exploration probability, tied to the learning rate."""
        return max(0.02, self._alpha())

    def _reward(self, temp_c: float, frequency_hz: float) -> float:
        """Performance-thermal trade-off with a temperature constraint.

        Below the thermal threshold the reward is the instantaneous
        performance — proportional to the running frequency, as with the
        performance-counter metrics Ge & Qiu use — so the controller
        maximises throughput; above the threshold, a penalty that grows
        with the excursion.  This produces the classic DTM limit cycle
        on hot workloads: run fast until the threshold trips, throttle,
        cool down, run fast again — thermal cycling the controller
        cannot see, because its state is the instantaneous temperature.
        """
        over = temp_c - self.config.temp_threshold_c
        if over > 0.0:
            return -self.config.temp_weight * (1.0 + over / 10.0)
        f_max = self._frequencies[-1]
        return self.config.perf_weight * (frequency_hz / f_max)

    # ------------------------------------------------------------------
    # ThermalManagerBase interface
    # ------------------------------------------------------------------

    def attach(self, sim: Simulation) -> None:
        """Bind to the platform, preserving learning across runs.

        The Q-table is built on first attach only, so a manager carried
        from a training pass into a measurement pass keeps what it
        learned (it is the same long-lived daemon on the real platform).
        """
        self._frequencies = sim.chip.ladder.frequencies()
        if self._qtable is None:
            self._qtable = QTable(self.config.num_temp_bins, len(self._frequencies))
        self._next_sample_s = self.config.interval_s
        self._prev_state = None
        self._prev_action = None

    def on_tick(self, sim: Simulation) -> None:
        """Sample, learn and set a frequency every interval."""
        if sim.now + 1e-9 < self._next_sample_s:
            return
        self._next_sample_s += self.config.interval_s
        temps = np.asarray(sim.read_sensors(), dtype=float)
        hottest_c = self._hottest_core_c(temps)
        state = self._bin_of(hottest_c)

        if self._prev_state is not None and self._prev_action is not None:
            reward = self._reward(hottest_c, self._frequencies[self._prev_action])
            self._qtable.update(
                self._prev_state,
                self._prev_action,
                reward,
                state,
                self._alpha(),
                self.config.discount,
            )

        if self._rng.random() < self._epsilon():
            action = int(self._rng.integers(len(self._frequencies)))
        else:
            action = self._qtable.best_action(state)

        sim.set_governor("userspace", self._frequencies[action])
        sim.charge_decision_overhead()
        self._prev_state = state
        self._prev_action = action
        self._steps += 1

    def on_app_switch(self, sim: Simulation, app: Application) -> None:
        """Modified variant only: reset learning on the explicit signal."""
        if not self.react_to_app_switch:
            return
        if self._qtable is not None:
            self._qtable.reset()
        self._steps = 0
        self._prev_state = None
        self._prev_action = None
        self._switch_resets += 1

    def stats(self) -> Dict[str, float]:
        """Counters for the simulation result."""
        return {
            "steps": float(self._steps),
            "switch_resets": float(self._switch_resets),
            "final_alpha": self._alpha(),
        }
