"""Plain-Linux baseline: default scheduling plus a cpufreq governor.

The paper's primary baseline is Linux's ``ondemand`` governor with the
kernel's own thread placement and no thermal management at all.  This
module is a thin convenience around :class:`repro.soc.simulator.Simulation`
so experiments can spell the baseline explicitly.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.config import PlatformConfig
from repro.soc.simulator import Simulation
from repro.workloads.application import Application


def make_linux_simulation(
    applications: Sequence[Application],
    governor: str = "ondemand",
    userspace_frequency_hz: Optional[float] = None,
    platform: Optional[PlatformConfig] = None,
    seed: int = 0,
    max_time_s: Optional[float] = None,
) -> Simulation:
    """Build a Simulation with no thermal manager (pure Linux behaviour).

    Parameters
    ----------
    applications:
        Applications to execute back-to-back.
    governor:
        cpufreq governor name (``ondemand`` is Linux's default).
    userspace_frequency_hz:
        Frequency for the ``userspace`` governor.
    platform:
        Platform configuration override.
    seed:
        Sensor-noise seed.
    max_time_s:
        Safety time limit.
    """
    return Simulation(
        applications,
        platform=platform,
        governor=governor,
        userspace_frequency_hz=userspace_frequency_hz,
        mapping=None,
        manager=None,
        seed=seed,
        max_time_s=max_time_s,
    )
