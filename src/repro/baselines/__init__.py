"""Baseline thermal-management policies the paper compares against.

* :mod:`repro.baselines.linux_default` — plain Linux behaviour: default
  scheduling plus a chosen cpufreq governor, no thermal manager;
* :mod:`repro.baselines.ge_qiu` — the DVFS-only Q-learning manager of
  Ge & Qiu (DAC 2011, the paper's ref. [7]), including the *modified*
  variant that re-learns on an explicit application-switch notification
  (Section 6.2);
* :mod:`repro.baselines.static_policy` — fixed userspace-frequency
  policies (the 2.4 GHz / 3.4 GHz columns of Table 3).
"""

from repro.baselines.ge_qiu import GeQiuThermalManager
from repro.baselines.linux_default import make_linux_simulation
from repro.baselines.static_policy import StaticPolicyManager

__all__ = ["GeQiuThermalManager", "StaticPolicyManager", "make_linux_simulation"]
