"""Process-local metrics registry (counters, gauges, histograms).

A :class:`MetricsRegistry` is a deterministic, allocation-light
collection of named instruments.  It never reads the wall clock and
never draws randomness, so a metrics dump produced by a replayed
deterministic simulation is byte-identical to the original run's —
the property the instrumented-vs-uninstrumented identity tests lean on.

Three instrument kinds mirror the Prometheus data model:

* :class:`Counter` — monotonically non-decreasing totals;
* :class:`Gauge` — last-written values;
* :class:`Histogram` — fixed bucket ladders chosen at creation time
  (cumulative bucket counts, plus ``sum`` and ``count``).

Exporters: :meth:`MetricsRegistry.as_dict` (stable JSON-ready dict) and
:meth:`MetricsRegistry.render_prometheus` (the Prometheus text
exposition format, one family per instrument).
"""

from __future__ import annotations

import json
import math
import re
from typing import Dict, List, Optional, Sequence, Tuple

#: Prometheus-compatible metric names.
_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")

#: Default ladder for core-temperature histograms (degC upper bounds).
TEMPERATURE_BUCKETS_C: Tuple[float, ...] = (
    35.0, 40.0, 45.0, 50.0, 55.0, 60.0, 65.0, 70.0, 75.0, 80.0, 90.0, 100.0
)

#: Default ladder for per-epoch reward observations.
REWARD_BUCKETS: Tuple[float, ...] = (
    -5.0, -2.0, -1.0, -0.5, -0.2, 0.0, 0.2, 0.5, 1.0, 2.0, 5.0
)

#: Default ladder for job/artefact durations (seconds).
DURATION_BUCKETS_S: Tuple[float, ...] = (
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0
)


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ValueError(f"invalid metric name {name!r}")
    return name


class Counter:
    """A monotonically non-decreasing total."""

    __slots__ = ("name", "help", "value")

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = _check_name(name)
        self.help = help
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the total."""
        if amount < 0.0:
            raise ValueError(f"counter {self.name} cannot decrease (got {amount})")
        self.value += amount


class Gauge:
    """A value that can be set to anything at any time."""

    __slots__ = ("name", "help", "value")

    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = _check_name(name)
        self.help = help
        self.value = 0.0

    def set(self, value: float) -> None:
        """Overwrite the gauge."""
        if not math.isfinite(value):
            raise ValueError(f"gauge {self.name} must be finite, got {value}")
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (may be negative)."""
        self.value += amount


class Histogram:
    """Fixed-ladder histogram (cumulative buckets, sum and count).

    Parameters
    ----------
    name / help:
        Metric identity.
    buckets:
        Strictly increasing finite upper bounds; an implicit ``+Inf``
        bucket is always appended.
    """

    __slots__ = ("name", "help", "buckets", "bucket_counts", "sum", "count")

    kind = "histogram"

    def __init__(
        self, name: str, buckets: Sequence[float], help: str = ""
    ) -> None:
        self.name = _check_name(name)
        self.help = help
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError(f"histogram {name} needs at least one bucket bound")
        for low, high in zip(bounds, bounds[1:]):
            if not low < high:
                raise ValueError(
                    f"histogram {name} buckets must strictly increase: "
                    f"{low} >= {high}"
                )
        if not all(math.isfinite(b) for b in bounds):
            raise ValueError(f"histogram {name} bucket bounds must be finite")
        self.buckets = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)  # + the +Inf bucket
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        if not math.isfinite(value):
            raise ValueError(f"histogram {self.name} observation must be finite")
        index = len(self.buckets)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                index = i
                break
        self.bucket_counts[index] += 1
        self.sum += value
        self.count += 1

    def cumulative_counts(self) -> List[int]:
        """Cumulative counts per bound (Prometheus ``le`` semantics)."""
        out: List[int] = []
        running = 0
        for count in self.bucket_counts:
            running += count
            out.append(running)
        return out


class MetricsRegistry:
    """Get-or-create registry of named instruments.

    Re-requesting an existing name returns the same instrument; asking
    for it under a different kind (or different histogram ladder) is an
    error — silent shadowing would split one logical series in two.
    """

    def __init__(self) -> None:
        self._instruments: Dict[str, object] = {}

    # ------------------------------------------------------------------
    # Creation
    # ------------------------------------------------------------------

    def _get_or_create(self, kind: type, name: str, *args, **kwargs):
        existing = self._instruments.get(name)
        if existing is not None:
            if not isinstance(existing, kind):
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{type(existing).kind}, not {kind.kind}"
                )
            return existing
        instrument = kind(name, *args, **kwargs)
        self._instruments[name] = instrument
        return instrument

    def counter(self, name: str, help: str = "") -> Counter:
        """Get or create a counter."""
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        """Get or create a gauge."""
        return self._get_or_create(Gauge, name, help)

    def histogram(
        self, name: str, buckets: Sequence[float], help: str = ""
    ) -> Histogram:
        """Get or create a histogram; the ladder must match on reuse."""
        instrument = self._get_or_create(Histogram, name, buckets, help)
        if instrument.buckets != tuple(float(b) for b in buckets):
            raise ValueError(
                f"histogram {name!r} already registered with a different "
                f"bucket ladder"
            )
        return instrument

    # ------------------------------------------------------------------
    # Introspection / export
    # ------------------------------------------------------------------

    def get(self, name: str):
        """The instrument registered under ``name``, or ``None``."""
        return self._instruments.get(name)

    def names(self) -> List[str]:
        """Registered names, sorted."""
        return sorted(self._instruments)

    def __len__(self) -> int:
        return len(self._instruments)

    def as_dict(self) -> Dict[str, dict]:
        """Stable, JSON-serialisable dump of every instrument."""
        out: Dict[str, dict] = {}
        for name in self.names():
            instrument = self._instruments[name]
            entry: dict = {"kind": instrument.kind, "help": instrument.help}
            if isinstance(instrument, Histogram):
                entry["buckets"] = list(instrument.buckets)
                entry["bucket_counts"] = list(instrument.bucket_counts)
                entry["sum"] = instrument.sum
                entry["count"] = instrument.count
            else:
                entry["value"] = instrument.value
            out[name] = entry
        return out

    def to_json(self, indent: Optional[int] = 2) -> str:
        """The :meth:`as_dict` dump rendered as JSON."""
        return json.dumps(self.as_dict(), indent=indent, sort_keys=True)

    def render_prometheus(self) -> str:
        """Prometheus text exposition of every instrument."""
        lines: List[str] = []
        for name in self.names():
            instrument = self._instruments[name]
            if instrument.help:
                lines.append(f"# HELP {name} {instrument.help}")
            lines.append(f"# TYPE {name} {instrument.kind}")
            if isinstance(instrument, Histogram):
                cumulative = instrument.cumulative_counts()
                for bound, count in zip(instrument.buckets, cumulative):
                    lines.append(f'{name}_bucket{{le="{bound:g}"}} {count}')
                lines.append(f'{name}_bucket{{le="+Inf"}} {cumulative[-1]}')
                lines.append(f"{name}_sum {instrument.sum:g}")
                lines.append(f"{name}_count {instrument.count}")
            else:
                lines.append(f"{name} {instrument.value:g}")
        return "\n".join(lines) + ("\n" if lines else "")
