"""The observation-only instrumentation hub.

An :class:`Instrumentation` object is what the simulation, the agent,
the fault injector and the supervisors hold a reference to.  Every
interesting moment funnels through :meth:`Instrumentation.emit`, which

* appends a schema-versioned record to the attached
  :class:`~repro.obs.trace.TraceEmitter` (if any), and
* folds the event into the attached
  :class:`~repro.obs.metrics.MetricsRegistry` (if any) under a fixed
  metric-name mapping.

It is strictly observation-only: it reads values the simulation already
computed, draws no randomness and never touches simulation state, so an
instrumented run's trajectory is tick-for-tick identical to an
uninstrumented one (a dedicated test asserts exactly this).
"""

from __future__ import annotations

from typing import Optional

from repro.obs.metrics import (
    MetricsRegistry,
    REWARD_BUCKETS,
    TEMPERATURE_BUCKETS_C,
)
from repro.obs.trace import TraceEmitter


class Instrumentation:
    """Bundles a metrics registry and a trace emitter behind one hook.

    Parameters
    ----------
    registry:
        Metrics sink; ``None`` disables metric folding.
    tracer:
        Trace sink; ``None`` disables event recording.
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[TraceEmitter] = None,
    ) -> None:
        self.registry = registry
        self.tracer = tracer

    def emit(self, etype: str, t: float, **fields) -> None:
        """Record one event in the trace and fold it into the metrics."""
        if self.tracer is not None:
            self.tracer.emit(etype, t, **fields)
        if self.registry is not None:
            self._fold(etype, fields)

    # ------------------------------------------------------------------
    # Event -> metrics mapping
    # ------------------------------------------------------------------

    def _fold(self, etype: str, fields: dict) -> None:
        registry = self.registry
        if etype == "tick":
            registry.counter(
                "repro_eval_samples_total", "evaluation sensor samples recorded"
            ).inc()
            histogram = registry.histogram(
                "repro_core_temp_c",
                TEMPERATURE_BUCKETS_C,
                "per-core evaluation temperature samples (degC)",
            )
            peak = None
            for temp in fields["temps_c"]:
                histogram.observe(temp)
                peak = temp if peak is None else max(peak, temp)
            if peak is not None:
                registry.gauge(
                    "repro_last_peak_temp_c", "hottest core of the latest sample"
                ).set(peak)
        elif etype == "decision":
            registry.counter(
                "repro_decisions_total", "learning-agent decision epochs"
            ).inc()
            registry.gauge(
                "repro_agent_alpha", "learning rate after the latest epoch"
            ).set(fields["alpha"])
        elif etype == "q_update":
            registry.counter(
                "repro_q_updates_total", "Q-table updates applied"
            ).inc()
            registry.histogram(
                "repro_reward", REWARD_BUCKETS, "per-epoch reward values"
            ).observe(fields["reward"])
        elif etype == "governor_change":
            registry.counter(
                "repro_governor_changes_total", "governor transitions requested"
            ).inc()
            if fields["outcome"] != "ok":
                registry.counter(
                    "repro_governor_change_failures_total",
                    "governor transitions that failed or silently no-opped",
                ).inc()
        elif etype == "mapping_change":
            registry.counter(
                "repro_mapping_changes_total", "affinity changes requested"
            ).inc()
            if fields["outcome"] != "ok":
                registry.counter(
                    "repro_mapping_change_failures_total",
                    "affinity changes that failed or silently no-opped",
                ).inc()
        elif etype == "variation":
            registry.counter(
                f"repro_variation_{fields['kind']}_total",
                "workload-variation detections by kind",
            ).inc()
        elif etype == "fault":
            registry.counter(
                "repro_faults_injected_total", "faults injected across all paths"
            ).inc(fields.get("count", 1))
        elif etype == "supervisor":
            registry.counter(
                "repro_supervisor_interventions_total",
                "supervisor interventions (fallbacks, retries, emergencies)",
            ).inc(fields.get("count", 1))
        elif etype == "app_switch":
            registry.counter(
                "repro_app_switches_total", "application starts within the run"
            ).inc()
        elif etype == "run_end":
            registry.counter("repro_runs_total", "completed simulation runs").inc()
            registry.gauge(
                "repro_run_time_s", "simulated seconds of the latest run"
            ).set(fields["total_time_s"])
            registry.counter(
                "repro_ticks_total", "simulation ticks across all runs"
            ).inc(fields["ticks"])
