"""Observability layer: metrics, structured tracing, run manifests.

Three always-deterministic, observation-only building blocks:

* :mod:`repro.obs.metrics` — a process-local
  :class:`~repro.obs.metrics.MetricsRegistry` of counters, gauges and
  fixed-ladder histograms with JSON and Prometheus-text exporters;
* :mod:`repro.obs.trace` — a schema-versioned JSONL
  :class:`~repro.obs.trace.TraceEmitter` plus validation and
  summarisation of emitted traces;
* :mod:`repro.obs.manifest` — :class:`~repro.obs.manifest.RunManifest`
  provenance records (config hash, package version, git state,
  artefact digests) written alongside results.

:class:`~repro.obs.instrument.Instrumentation` bundles a registry and a
tracer behind the single hook the simulation engine, the learning
agent, the fault injector and the supervisors call.  Attaching it is
guaranteed not to change a run's trajectory: the golden masters and the
serial/parallel identity hold byte-for-byte with observability enabled.
"""

from repro.obs.instrument import Instrumentation
from repro.obs.manifest import (
    MANIFEST_FILENAME,
    MANIFEST_SCHEMA_VERSION,
    ManifestError,
    RunManifest,
    build_manifest,
    config_digest,
    file_digest,
    load_manifest,
    validate_manifest,
    verify_artefacts,
)
from repro.obs.metrics import (
    Counter,
    DURATION_BUCKETS_S,
    Gauge,
    Histogram,
    MetricsRegistry,
    REWARD_BUCKETS,
    TEMPERATURE_BUCKETS_C,
)
from repro.obs.trace import (
    EVENT_FIELDS,
    SCHEMA_VERSION,
    TraceEmitter,
    TraceSummary,
    TraceValidationError,
    format_summary,
    read_events,
    summarize_events,
    validate_event,
    write_events,
)

__all__ = [
    "Counter",
    "DURATION_BUCKETS_S",
    "EVENT_FIELDS",
    "Gauge",
    "Histogram",
    "Instrumentation",
    "MANIFEST_FILENAME",
    "MANIFEST_SCHEMA_VERSION",
    "ManifestError",
    "MetricsRegistry",
    "REWARD_BUCKETS",
    "RunManifest",
    "SCHEMA_VERSION",
    "TEMPERATURE_BUCKETS_C",
    "TraceEmitter",
    "TraceSummary",
    "TraceValidationError",
    "build_manifest",
    "config_digest",
    "file_digest",
    "format_summary",
    "load_manifest",
    "read_events",
    "summarize_events",
    "validate_event",
    "validate_manifest",
    "verify_artefacts",
    "write_events",
]
