"""Run manifests: what exactly produced a result directory.

A :class:`RunManifest` is a small JSON document written alongside every
traced/metered run, binding the result to

* the **configuration hash** — a SHA-256 over the canonical rendering
  of the run's job spec (the same canonicalisation the experiment
  engine's content-addressed cache keys on, so a manifest hash equals
  the cache identity of the run);
* the **package version** and, when available, ``git describe`` of the
  working tree;
* the **artefact digests** — SHA-256 and size of every file the run
  wrote (trace, metrics, result), so any later tampering or truncation
  is detectable.

Manifests are provenance records, not replay inputs: they may carry
environment facts (git state) without compromising the determinism of
the traced run itself.
"""

from __future__ import annotations

import hashlib
import json
import subprocess
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Union

import repro
from repro.ioutil import atomic_write_text

#: Version of the manifest document layout.
MANIFEST_SCHEMA_VERSION = 1

#: Filename a run directory's manifest is written under.
MANIFEST_FILENAME = "manifest.json"


class ManifestError(ValueError):
    """A manifest document is malformed or fails verification."""


def config_digest(value) -> str:
    """SHA-256 over the canonical rendering of a config/spec object.

    Accepts anything :func:`repro.experiments.engine.spec.canonicalise`
    understands (dataclasses, dicts, tuples, scalars).  Imported lazily
    so importing :mod:`repro.obs` never drags the experiment engine in.
    """
    from repro.experiments.engine.spec import canonicalise

    document = json.dumps(
        canonicalise(value), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(document.encode("utf-8")).hexdigest()


def file_digest(path: Union[str, Path]) -> Dict[str, Union[str, int]]:
    """SHA-256 and byte size of one file."""
    path = Path(path)
    digest = hashlib.sha256()
    size = 0
    with path.open("rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 16), b""):
            digest.update(chunk)
            size += len(chunk)
    return {"sha256": digest.hexdigest(), "bytes": size}


def git_describe(cwd: Optional[Union[str, Path]] = None) -> Optional[str]:
    """``git describe --always --dirty`` of the working tree, or None."""
    try:
        proc = subprocess.run(
            ["git", "describe", "--always", "--dirty"],
            cwd=str(cwd) if cwd is not None else None,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if proc.returncode != 0:
        return None
    return proc.stdout.strip() or None


@dataclass
class RunManifest:
    """Provenance record of one run's result directory."""

    config_hash: str
    package_version: str = field(default_factory=lambda: repro.__version__)
    git: Optional[str] = None
    #: Relative filename -> {"sha256": ..., "bytes": ...}.
    artefacts: Dict[str, Dict[str, Union[str, int]]] = field(default_factory=dict)
    #: Free-form run description (app, policy, seed, ...).
    run: Dict[str, Union[str, int, float, bool, None]] = field(default_factory=dict)
    schema: int = MANIFEST_SCHEMA_VERSION

    def add_artefact(self, path: Union[str, Path], root: Union[str, Path]) -> None:
        """Digest one produced file, stored under its path relative to
        the manifest's directory."""
        path = Path(path)
        self.artefacts[str(path.relative_to(root))] = file_digest(path)

    def as_dict(self) -> dict:
        """JSON-ready document."""
        return {
            "schema": self.schema,
            "package_version": self.package_version,
            "git": self.git,
            "config_hash": self.config_hash,
            "artefacts": {
                name: dict(entry) for name, entry in sorted(self.artefacts.items())
            },
            "run": dict(self.run),
        }

    def write(self, directory: Union[str, Path]) -> Path:
        """Write ``manifest.json`` into ``directory`` and return its path."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / MANIFEST_FILENAME
        atomic_write_text(
            path, json.dumps(self.as_dict(), indent=2, sort_keys=True) + "\n"
        )
        return path


def build_manifest(
    config,
    run: Optional[dict] = None,
    repo_dir: Optional[Union[str, Path]] = None,
) -> RunManifest:
    """A manifest for one run: config hash + version + git state."""
    return RunManifest(
        config_hash=config_digest(config),
        git=git_describe(repo_dir),
        run=dict(run) if run else {},
    )


def load_manifest(path: Union[str, Path]) -> dict:
    """Load and validate one manifest document."""
    path = Path(path)
    if path.is_dir():
        path = path / MANIFEST_FILENAME
    try:
        document = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ManifestError(f"{path}: not valid JSON: {exc}") from exc
    validate_manifest(document)
    return document


def validate_manifest(document: dict) -> None:
    """Raise :class:`ManifestError` unless the document is well-formed."""
    if not isinstance(document, dict):
        raise ManifestError("manifest must be a JSON object")
    if document.get("schema") != MANIFEST_SCHEMA_VERSION:
        raise ManifestError(
            f"unsupported manifest schema {document.get('schema')!r}"
        )
    for key, types in (
        ("package_version", str),
        ("config_hash", str),
        ("artefacts", dict),
        ("run", dict),
    ):
        if not isinstance(document.get(key), types):
            raise ManifestError(f"manifest field {key!r} missing or mistyped")
    if document.get("git") is not None and not isinstance(document["git"], str):
        raise ManifestError("manifest field 'git' must be a string or null")
    if len(document["config_hash"]) != 64:
        raise ManifestError("config_hash must be a hex SHA-256 digest")
    for name, entry in sorted(document["artefacts"].items()):
        if not isinstance(entry, dict):
            raise ManifestError(f"artefact entry {name!r} must be an object")
        if not isinstance(entry.get("sha256"), str) or len(entry["sha256"]) != 64:
            raise ManifestError(f"artefact {name!r} needs a hex sha256")
        if not isinstance(entry.get("bytes"), int) or entry["bytes"] < 0:
            raise ManifestError(f"artefact {name!r} needs a non-negative size")


def verify_artefacts(document: dict, root: Union[str, Path]) -> None:
    """Re-digest every artefact listed in a manifest against ``root``.

    Raises
    ------
    ManifestError
        If any listed file is missing or its digest/size drifted.
    """
    root = Path(root)
    for name, entry in sorted(document["artefacts"].items()):
        path = root / name
        if not path.exists():
            raise ManifestError(f"artefact {name!r} listed but missing")
        actual = file_digest(path)
        if actual != entry:
            raise ManifestError(
                f"artefact {name!r} drifted: manifest says {entry}, "
                f"file is {actual}"
            )
