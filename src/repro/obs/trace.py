"""Structured JSONL run tracing: schema, emitter, reader, summariser.

Every trace record is one JSON object per line with a fixed envelope —
``schema`` (the schema version), ``seq`` (a per-run monotonically
increasing sequence number), ``type`` and ``t`` (simulation time in
seconds) — plus type-specific payload fields declared in
:data:`EVENT_FIELDS`.  The emitter is observation-only: it serialises
values that the simulation already computed and never perturbs any RNG
stream, so a traced run is tick-for-tick identical to an untraced one.

:func:`validate_event` checks a decoded record against the schema (the
CI trace job runs it over every line a traced ``repro run`` emits), and
:func:`summarize_events` recomputes headline statistics — average
temperature, rainflow cycle count, decision count — from the trace
alone, which ``repro trace summarize`` compares against the run's
results artefact.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from types import MappingProxyType
from typing import Dict, IO, Iterable, Iterator, List, Mapping, Optional, Tuple, Union

#: Version stamped into (and required of) every trace record.
SCHEMA_VERSION = 1

_NUMBER = (int, float)
_STR = (str,)
_BOOL = (bool,)
_LIST = (list,)
_NULLABLE_NUMBER = (int, float, type(None))
_NULLABLE_STR = (str, type(None))
_NULLABLE_LIST = (list, type(None))

#: Required payload fields (and accepted JSON types) per event type.
#: Read-only: trace emitters run inside engine worker processes, so the
#: schema table must never be mutable shared state.
EVENT_FIELDS: Mapping[str, Dict[str, tuple]] = MappingProxyType({
    "run_start": {
        "num_cores": (int,),
        "governor": _STR,
        "apps": _LIST,
        "seed": (int,),
    },
    "tick": {
        "temps_c": _LIST,
    },
    "decision": {
        "epoch": (int,),
        "state": (int,),
        "action": (int,),
        "action_label": _STR,
        "phase": _STR,
        "alpha": _NUMBER,
    },
    "q_update": {
        "state": (int,),
        "action": (int,),
        "reward": _NUMBER,
        "alpha": _NUMBER,
        "q_value": _NUMBER,
    },
    "governor_change": {
        "governor": _STR,
        "frequency_hz": _NULLABLE_NUMBER,
        "outcome": _STR,
    },
    "mapping_change": {
        "mapping": _NULLABLE_LIST,
        "outcome": _STR,
    },
    "variation": {
        "kind": _STR,
        "delta_stress_ma": _NUMBER,
        "delta_aging_ma": _NUMBER,
        "applied": _BOOL,
    },
    "fault": {
        "path": _STR,
        "kind": _STR,
        "count": (int,),
    },
    "supervisor": {
        "intervention": _STR,
        "count": (int,),
    },
    "app_switch": {
        "index": (int,),
        "app": _STR,
        "dataset": _STR,
    },
    "run_end": {
        "total_time_s": _NUMBER,
        "completed": _BOOL,
        "ticks": (int,),
    },
})

#: Actuation outcomes a governor/mapping-change event may carry.
ACTUATION_OUTCOMES = ("ok", "fail", "noop")


class TraceValidationError(ValueError):
    """A trace record does not conform to the schema."""


def validate_event(event: dict) -> None:
    """Raise :class:`TraceValidationError` unless ``event`` is valid.

    Checks the envelope (schema version, sequence number, type, time)
    and the per-type required payload fields.  Unknown extra fields are
    rejected, so the schema stays an exact contract rather than a
    lower bound.
    """
    if not isinstance(event, dict):
        raise TraceValidationError(f"event must be an object, got {type(event)}")
    for key in ("schema", "seq", "type", "t"):
        if key not in event:
            raise TraceValidationError(f"event missing envelope field {key!r}")
    if event["schema"] != SCHEMA_VERSION:
        raise TraceValidationError(
            f"unsupported schema version {event['schema']!r} "
            f"(this reader understands {SCHEMA_VERSION})"
        )
    if not isinstance(event["seq"], int) or event["seq"] < 0:
        raise TraceValidationError(f"seq must be a non-negative int: {event['seq']!r}")
    etype = event["type"]
    if etype not in EVENT_FIELDS:
        raise TraceValidationError(f"unknown event type {etype!r}")
    if not isinstance(event["t"], _NUMBER) or isinstance(event["t"], bool):
        raise TraceValidationError(f"t must be a number, got {event['t']!r}")
    spec = EVENT_FIELDS[etype]
    for name, types in spec.items():
        if name not in event:
            raise TraceValidationError(f"{etype} event missing field {name!r}")
        value = event[name]
        if isinstance(value, bool) and bool not in types:
            raise TraceValidationError(
                f"{etype}.{name} must be {types}, got bool"
            )
        if not isinstance(value, types):
            raise TraceValidationError(
                f"{etype}.{name} must be {types}, got {type(value).__name__}"
            )
    extras = set(event) - {"schema", "seq", "type", "t"} - set(spec)
    if extras:
        raise TraceValidationError(
            f"{etype} event carries undeclared fields {sorted(extras)}"
        )
    if etype in ("governor_change", "mapping_change"):
        if event["outcome"] not in ACTUATION_OUTCOMES:
            raise TraceValidationError(
                f"{etype}.outcome must be one of {ACTUATION_OUTCOMES}, "
                f"got {event['outcome']!r}"
            )


class TraceEmitter:
    """Writes schema-versioned JSONL events to a stream.

    Parameters
    ----------
    stream:
        A text file-like object; ``None`` keeps events in memory only
        (they are always retained in :attr:`events` for programmatic
        access either way).
    """

    def __init__(self, stream: Optional[IO[str]] = None) -> None:
        self._stream = stream
        self._seq = 0
        self.events: List[dict] = []

    @property
    def seq(self) -> int:
        """Number of events emitted so far."""
        return self._seq

    def emit(self, etype: str, t: float, **fields) -> dict:
        """Build, record and (when streaming) write one event."""
        if etype not in EVENT_FIELDS:
            raise ValueError(f"unknown event type {etype!r}")
        event = {
            "schema": SCHEMA_VERSION,
            "seq": self._seq,
            "type": etype,
            "t": float(t),
        }
        event.update(fields)
        self._seq += 1
        self.events.append(event)
        if self._stream is not None:
            self._stream.write(json.dumps(event, sort_keys=True) + "\n")
        return event

    def flush(self) -> None:
        """Flush the underlying stream, if any."""
        if self._stream is not None:
            self._stream.flush()


def write_events(events: Iterable[dict], path: Union[str, Path]) -> Path:
    """Write an event sequence to a JSONL file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as handle:
        for event in events:
            handle.write(json.dumps(event, sort_keys=True) + "\n")
    return path


def read_events(path: Union[str, Path]) -> Iterator[dict]:
    """Iterate the events of a JSONL trace file (no validation)."""
    with Path(path).open() as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                yield json.loads(line)
            except json.JSONDecodeError as exc:
                raise TraceValidationError(
                    f"{path}:{line_no}: not valid JSON: {exc}"
                ) from exc


@dataclass
class TraceSummary:
    """Headline statistics recomputed from a trace alone."""

    #: Events per type, in schema order.
    events_by_type: Dict[str, int] = field(default_factory=dict)
    total_events: int = 0
    #: Mean of every per-core temperature in the tick events (degC).
    avg_temp_c: float = 0.0
    #: Peak per-core temperature across the tick events (degC).
    peak_temp_c: float = 0.0
    #: Rainflow cycles summed over every core's tick-event series.
    num_cycles: float = 0.0
    #: Decision epochs recorded.
    decisions: int = 0
    #: Final simulation time (from run_end, else the last event's t).
    total_time_s: float = 0.0

    def as_dict(self) -> dict:
        """JSON-ready dump (what ``result.json`` embeds)."""
        return {
            "events_by_type": dict(self.events_by_type),
            "total_events": self.total_events,
            "avg_temp_c": self.avg_temp_c,
            "peak_temp_c": self.peak_temp_c,
            "num_cycles": self.num_cycles,
            "decisions": self.decisions,
            "total_time_s": self.total_time_s,
        }


def summarize_events(
    events: Iterable[dict], validate: bool = True
) -> TraceSummary:
    """Recompute the headline statistics of a trace.

    The rainflow cycle count uses the same counting code the
    reliability models use (:mod:`repro.reliability.rainflow`), so a
    trace summary agrees exactly with the run's own accounting over the
    same samples.
    """
    from repro.reliability.rainflow import count_cycles, total_cycle_count

    summary = TraceSummary(
        events_by_type={name: 0 for name in EVENT_FIELDS}
    )
    series: List[List[float]] = []
    temp_sum = 0.0
    temp_count = 0
    peak = -math.inf
    last_t = 0.0
    for event in events:
        if validate:
            validate_event(event)
        summary.events_by_type[event["type"]] += 1
        summary.total_events += 1
        last_t = float(event["t"])
        if event["type"] == "tick":
            temps = event["temps_c"]
            if not series:
                series = [[] for _ in temps]
            for core, temp in enumerate(temps):
                series[core].append(float(temp))
                temp_sum += float(temp)
                peak = max(peak, float(temp))
            temp_count += len(temps)
        elif event["type"] == "decision":
            summary.decisions += 1
        elif event["type"] == "run_end":
            summary.total_time_s = float(event["total_time_s"])
    if summary.total_time_s == 0.0:
        summary.total_time_s = last_t
    if temp_count:
        summary.avg_temp_c = temp_sum / temp_count
        summary.peak_temp_c = peak
    summary.num_cycles = float(
        sum(total_cycle_count(count_cycles(core_series)) for core_series in series)
    )
    return summary


def format_summary(summary: TraceSummary) -> str:
    """Human-readable rendering of a :class:`TraceSummary`."""
    lines = [f"{summary.total_events} events over {summary.total_time_s:.1f} s:"]
    for name, count in summary.events_by_type.items():
        if count:
            lines.append(f"  {name:<16} {count:8d}")
    lines.append(f"  avg temperature : {summary.avg_temp_c:8.2f} C")
    lines.append(f"  peak temperature: {summary.peak_temp_c:8.2f} C")
    lines.append(f"  rainflow cycles : {summary.num_cycles:8.1f}")
    lines.append(f"  decisions       : {summary.decisions:8d}")
    return "\n".join(lines)
