"""Deterministic fault injection for the observe/actuate paths.

The :class:`FaultInjector` sits between the platform and the controllers
and replays the failure modes of a physical DTM substrate:

* **sensor path** — per-core static offsets (miscalibration), slow
  drift, stuck-at latching, transient spikes and dropped samples (NaN),
  applied to every :meth:`repro.soc.simulator.Simulation.read_sensors`
  result *after* the sensor model but *before* the supervisor;
* **actuation path** — ``set_governor`` / ``set_mapping`` calls that
  fail transiently (the transition is rejected, as a non-zero
  ``cpufreq-set`` exit status) or silently no-op (the call "succeeds"
  but the hardware state does not change).

All randomness comes from one dedicated ``numpy`` Generator seeded from
the (run seed, fault seed) pair, so fault schedules are exactly
reproducible and independent of the sensor-noise streams: enabling a
fault with probability 0 perturbs nothing and changes no other RNG
stream in the simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional, Sequence

import numpy as np

from repro.config import FaultConfig

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.instrument import Instrumentation

#: Actuation-call outcomes.
OUTCOME_OK = "ok"
OUTCOME_FAIL = "fail"
OUTCOME_NOOP = "noop"


@dataclass
class FaultInjectionStats:
    """Counters of every injected fault, for the experiment record."""

    sensor_reads: int = 0
    dropouts: int = 0
    spikes: int = 0
    stuck_events: int = 0
    stuck_reads: int = 0
    governor_calls: int = 0
    governor_failures: int = 0
    governor_noops: int = 0
    mapping_calls: int = 0
    mapping_failures: int = 0
    mapping_noops: int = 0

    def as_dict(self) -> Dict[str, float]:
        """Flatten to the fault-stats dict of a simulation result."""
        return {
            "sensor_reads": float(self.sensor_reads),
            "dropouts": float(self.dropouts),
            "spikes": float(self.spikes),
            "stuck_events": float(self.stuck_events),
            "stuck_reads": float(self.stuck_reads),
            "governor_calls": float(self.governor_calls),
            "governor_failures": float(self.governor_failures),
            "governor_noops": float(self.governor_noops),
            "mapping_calls": float(self.mapping_calls),
            "mapping_failures": float(self.mapping_failures),
            "mapping_noops": float(self.mapping_noops),
        }


class FaultInjector:
    """Seeded perturbation of sensor readings and actuation calls.

    Parameters
    ----------
    config:
        Fault probabilities and magnitudes.
    num_cores:
        Number of per-core sensors.
    seed:
        Run seed, mixed with ``config.seed`` so distinct runs draw
        distinct fault schedules while staying reproducible.
    """

    def __init__(self, config: FaultConfig, num_cores: int, seed: int = 0) -> None:
        self.config = config
        self.num_cores = num_cores
        self._rng = np.random.default_rng((seed, config.seed))
        self._stuck_until = np.full(num_cores, -np.inf)
        self._stuck_value = np.zeros(num_cores)
        self.stats = FaultInjectionStats()
        #: Optional observation-only hook (set by the simulation).
        self.obs: "Optional[Instrumentation]" = None

    # ------------------------------------------------------------------
    # Sensor path
    # ------------------------------------------------------------------

    def perturb_sensors(self, now_s: float, readings: Sequence[float]) -> np.ndarray:
        """Apply the configured sensor faults to one reading vector.

        Parameters
        ----------
        now_s:
            Simulation time of the read (drives drift and stuck expiry).
        readings:
            Clean per-core sensor readings (degC).

        Returns
        -------
        numpy.ndarray
            Perturbed readings; may contain NaN (dropouts) and values
            outside the sensor's saturation range (spikes).
        """
        config = self.config
        out = np.array(readings, dtype=float, copy=True)
        if out.shape != (self.num_cores,):
            raise ValueError(f"expected {self.num_cores} readings")
        self.stats.sensor_reads += 1

        if config.offset_c:
            offsets = [
                config.offset_c[core % len(config.offset_c)]
                for core in range(self.num_cores)
            ]
            out += np.asarray(offsets)
        if config.drift_rate_c_per_s != 0.0:
            out += config.drift_rate_c_per_s * now_s

        if config.stuck_prob > 0.0:
            rolls = self._rng.random(self.num_cores)
            stuck_now = 0
            for core in range(self.num_cores):
                if now_s < self._stuck_until[core]:
                    out[core] = self._stuck_value[core]
                    self.stats.stuck_reads += 1
                    stuck_now += 1
                elif rolls[core] < config.stuck_prob:
                    self._stuck_until[core] = now_s + config.stuck_duration_s
                    self._stuck_value[core] = out[core]
                    self.stats.stuck_events += 1
                    self.stats.stuck_reads += 1
                    stuck_now += 1
            if stuck_now and self.obs is not None:
                self.obs.emit(
                    "fault", now_s, path="sensor", kind="stuck", count=stuck_now
                )

        if config.spike_prob > 0.0:
            rolls = self._rng.random(self.num_cores)
            signs = np.where(self._rng.random(self.num_cores) < 0.5, -1.0, 1.0)
            spiking = rolls < config.spike_prob
            out[spiking] += signs[spiking] * config.spike_magnitude_c
            spike_count = int(np.count_nonzero(spiking))
            self.stats.spikes += spike_count
            if spike_count and self.obs is not None:
                self.obs.emit(
                    "fault", now_s, path="sensor", kind="spike", count=spike_count
                )

        if config.dropout_prob > 0.0:
            rolls = self._rng.random(self.num_cores)
            dropping = rolls < config.dropout_prob
            out[dropping] = np.nan
            drop_count = int(np.count_nonzero(dropping))
            self.stats.dropouts += drop_count
            if drop_count and self.obs is not None:
                self.obs.emit(
                    "fault", now_s, path="sensor", kind="dropout", count=drop_count
                )

        return out

    # ------------------------------------------------------------------
    # Actuation path
    # ------------------------------------------------------------------

    def _outcome(self, fail_prob: float, noop_prob: float) -> str:
        if fail_prob <= 0.0 and noop_prob <= 0.0:
            return OUTCOME_OK
        roll = self._rng.random()
        if roll < fail_prob:
            return OUTCOME_FAIL
        if roll < fail_prob + noop_prob:
            return OUTCOME_NOOP
        return OUTCOME_OK

    def governor_outcome(self) -> str:
        """Outcome of one ``set_governor`` call."""
        self.stats.governor_calls += 1
        outcome = self._outcome(
            self.config.governor_fail_prob, self.config.governor_noop_prob
        )
        if outcome == OUTCOME_FAIL:
            self.stats.governor_failures += 1
        elif outcome == OUTCOME_NOOP:
            self.stats.governor_noops += 1
        return outcome

    def mapping_outcome(self) -> str:
        """Outcome of one ``set_mapping`` call."""
        self.stats.mapping_calls += 1
        outcome = self._outcome(
            self.config.mapping_fail_prob, self.config.mapping_noop_prob
        )
        if outcome == OUTCOME_FAIL:
            self.stats.mapping_failures += 1
        elif outcome == OUTCOME_NOOP:
            self.stats.mapping_noops += 1
        return outcome
